"""Cross-cutting tests over every sequential MSA system."""

import pytest

from repro.metrics import qscore
from repro.msa import available_aligners, get_aligner
from repro.seq.sequence import Sequence

ALL_ALIGNERS = [
    "muscle",
    "muscle-p",
    "muscle-draft",
    "clustalw",
    "clustalw-full",
    "tcoffee",
    "mafft-nwnsi",
    "mafft-fftnsi",
    "center-star",
]


@pytest.mark.parametrize("name", ALL_ALIGNERS)
class TestEveryAligner:
    def test_roundtrip(self, name, small_family):
        aln = get_aligner(name).align(small_family.sequences)
        un = aln.ungapped()
        for s in small_family.sequences:
            assert un[s.id].residues == s.residues

    def test_row_order(self, name, small_family):
        aln = get_aligner(name).align(small_family.sequences)
        assert aln.ids == small_family.sequences.ids

    def test_deterministic(self, name, tiny_seqs):
        a = get_aligner(name).align(tiny_seqs)
        b = get_aligner(name).align(tiny_seqs)
        assert a == b

    def test_single_sequence(self, name):
        aln = get_aligner(name).align([Sequence("only", "MKVAW")])
        assert aln.n_rows == 1 and aln.row_text("only") == "MKVAW"

    def test_two_sequences(self, name):
        aln = get_aligner(name).align(
            [Sequence("a", "MKTAYIAKQR"), Sequence("b", "MKTAYIQR")]
        )
        assert aln.n_rows == 2
        un = aln.ungapped()
        assert un["a"].residues == "MKTAYIAKQR"
        assert un["b"].residues == "MKTAYIQR"

    def test_quality_on_easy_family(self, name, easy_family):
        aln = get_aligner(name).align(easy_family.sequences)
        q = qscore(aln, easy_family.reference)
        assert q > 0.7, f"{name} scored Q={q:.3f} on a near-identical family"

    def test_empty_input_rejected(self, name):
        with pytest.raises(ValueError):
            get_aligner(name).align([])

    def test_mixed_alphabets_rejected(self, name):
        from repro.seq.alphabet import DNA

        with pytest.raises(ValueError, match="alphabet"):
            get_aligner(name).align(
                [Sequence("a", "MKV"), Sequence("b", "ACGT", alphabet=DNA)]
            )

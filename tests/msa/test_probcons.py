"""Tests for the ProbCons-like aligner and the pair HMM beneath it."""

import numpy as np
import pytest

from repro.align.pairhmm import PairHmmParams, match_posteriors, mea_align
from repro.metrics import qscore
from repro.msa import get_aligner
from repro.msa.probcons import ProbConsLike
from repro.seq.sequence import Sequence


class TestPairHmm:
    def test_params_validation(self):
        with pytest.raises(ValueError):
            PairHmmParams(delta=0.6)
        with pytest.raises(ValueError):
            PairHmmParams(epsilon=0.0)
        with pytest.raises(ValueError):
            PairHmmParams(temperature=0.0)

    def test_emissions_normalised(self):
        log_joint, log_bg = PairHmmParams().log_emissions()
        assert np.isclose(np.exp(log_joint).sum(), 1.0)
        assert np.isclose(np.exp(log_bg).sum(), 1.0, atol=1e-6)

    def test_identical_sequences_diagonal(self):
        x = Sequence("x", "MKTAYIAKQRQISFVKSH")
        P = match_posteriors(x, x.with_id("y"))
        assert np.diag(P).mean() > 0.9

    def test_posteriors_in_unit_interval(self):
        x = Sequence("x", "MKTAYIAK")
        y = Sequence("y", "WWHHCCPP")
        P = match_posteriors(x, y)
        assert (P >= 0).all() and (P <= 1).all()

    def test_row_mass_at_most_one(self):
        # A residue aligns to at most one partner: row posterior mass <= 1.
        x = Sequence("x", "MKTAYIAKQR")
        y = Sequence("y", "MKTAYIQR")
        P = match_posteriors(x, y)
        assert (P.sum(axis=1) <= 1.0 + 1e-9).all()
        assert (P.sum(axis=0) <= 1.0 + 1e-9).all()

    def test_empty_sequences(self):
        x = Sequence("x", "MKV")
        y = Sequence("y", "")
        assert match_posteriors(x, y).shape == (3, 0)

    def test_matches_bruteforce_enumeration(self):
        """Exactness check against full path enumeration on tiny inputs."""
        import math

        params = PairHmmParams()
        lj, lb = params.log_emissions()
        t = params.log_transitions()
        trans = {
            ("M", "D"): t["MM"], ("X", "D"): t["XM"], ("Y", "D"): t["YM"],
            ("M", "X"): t["MX"], ("X", "X"): t["XX"],
            ("M", "Y"): t["MY"], ("Y", "Y"): t["YY"],
        }

        def brute(xc, yc):
            m, n = len(xc), len(yc)
            paths = []

            def rec(i, j, moves):
                if i == m and j == n:
                    paths.append(list(moves))
                    return
                if i < m and j < n:
                    rec(i + 1, j + 1, moves + ["D"])
                if i < m:
                    rec(i + 1, j, moves + ["X"])
                if j < n:
                    rec(i, j + 1, moves + ["Y"])

            rec(0, 0, [])
            post = np.zeros((m, n))
            tot = 0.0
            for path in paths:
                lp, i, j, prev, ok = 0.0, 0, 0, "M", True
                for mv in path:
                    if (prev, mv) not in trans:
                        ok = False
                        break
                    lp += trans[(prev, mv)]
                    if mv == "D":
                        lp += lj[xc[i], yc[j]]
                        i, j, prev = i + 1, j + 1, "M"
                    elif mv == "X":
                        lp += lb[xc[i]]
                        i, prev = i + 1, "X"
                    else:
                        lp += lb[yc[j]]
                        j, prev = j + 1, "Y"
                if not ok:
                    continue
                p = math.exp(lp)
                tot += p
                i = j = 0
                for mv in path:
                    if mv == "D":
                        post[i, j] += p
                        i += 1
                        j += 1
                    elif mv == "X":
                        i += 1
                    else:
                        j += 1
            return post / tot

        rng = np.random.default_rng(3)
        for _ in range(4):
            m, n = rng.integers(1, 5, 2)
            xs = Sequence("x", "".join(rng.choice(list("ARNDCQ"), m)))
            ys = Sequence("y", "".join(rng.choice(list("ARNDCQ"), n)))
            assert np.allclose(
                match_posteriors(xs, ys, params),
                brute(xs.codes, ys.codes),
                atol=1e-10,
            )

    def test_mea_consumes_everything(self):
        P = np.array([[0.9, 0.0], [0.0, 0.9], [0.1, 0.1]])
        res = mea_align(P)
        xm = res.x_map[res.x_map >= 0]
        ym = res.y_map[res.y_map >= 0]
        assert xm.tolist() == [0, 1, 2]
        assert ym.tolist() == [0, 1]


class TestProbConsLike:
    def test_registry(self):
        assert get_aligner("probcons").name == "probcons"

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbConsLike(consistency_rounds=-1)
        with pytest.raises(ValueError):
            ProbConsLike(posterior_floor=1.0)

    def test_roundtrip(self, small_family):
        aln = ProbConsLike().align(small_family.sequences)
        un = aln.ungapped()
        for s in small_family.sequences:
            assert un[s.id].residues == s.residues

    def test_deterministic(self, tiny_seqs):
        a = ProbConsLike().align(tiny_seqs)
        b = ProbConsLike().align(tiny_seqs)
        assert a == b

    def test_quality_leads_the_pack(self, small_family):
        """ProbCons was the accuracy leader of its era; at minimum it
        must not fall behind the draft progressive here."""
        q_pc = qscore(
            ProbConsLike().align(small_family.sequences),
            small_family.reference,
        )
        q_draft = qscore(
            get_aligner("muscle-draft").align(small_family.sequences),
            small_family.reference,
        )
        assert q_pc >= q_draft

    def test_consistency_rounds_help_or_tie(self, small_family):
        q0 = qscore(
            ProbConsLike(consistency_rounds=0).align(small_family.sequences),
            small_family.reference,
        )
        q2 = qscore(
            ProbConsLike(consistency_rounds=2).align(small_family.sequences),
            small_family.reference,
        )
        assert q2 >= q0 - 0.05

    def test_single_and_pair(self):
        one = ProbConsLike().align([Sequence("a", "MKV")])
        assert one.n_rows == 1
        two = ProbConsLike().align(
            [Sequence("a", "MKTAYIAK"), Sequence("b", "MKTAYI")]
        )
        assert two.n_rows == 2

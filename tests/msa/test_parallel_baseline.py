"""Tests for the stage-parallel CLUSTALW baseline."""

import numpy as np
import pytest

from repro.msa import ClustalWLike, ParallelClustalW
from repro.seq.sequence import Sequence, SequenceSet


class TestParallelClustalW:
    def test_roundtrip(self, small_family):
        res = ParallelClustalW().align(small_family.sequences, n_procs=3)
        un = res.alignment.ungapped()
        for s in small_family.sequences:
            assert un[s.id].residues == s.residues

    def test_row_order(self, small_family):
        res = ParallelClustalW().align(small_family.sequences, n_procs=2)
        assert res.alignment.ids == small_family.sequences.ids

    def test_matches_sequential_clustalw(self, tiny_seqs):
        """Stage-parallelism must not change the result."""
        seq_aln = ClustalWLike().align(tiny_seqs)
        par = ParallelClustalW().align(tiny_seqs, n_procs=3)
        assert par.alignment == seq_aln

    def test_p1_equivalent(self, tiny_seqs):
        a = ParallelClustalW().align(tiny_seqs, n_procs=1).alignment
        b = ParallelClustalW().align(tiny_seqs, n_procs=4).alignment
        assert a == b

    def test_single_sequence(self):
        res = ParallelClustalW().align(
            SequenceSet([Sequence("a", "MKV")]), n_procs=2
        )
        assert res.alignment.n_rows == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ParallelClustalW().align(SequenceSet(), n_procs=2)

    def test_distance_stage_parallelised(self, small_family):
        """More ranks must shrink the max per-rank compute share of the
        distance stage (the part that actually parallelises)."""
        res = ParallelClustalW().align(small_family.sequences, n_procs=4)
        # Rank 0 carries the sequential stage 3, others only stage 1.
        others = res.ledger.compute[1:]
        assert res.ledger.compute[0] > others.max()

    def test_ledger_metering(self, small_family):
        res = ParallelClustalW().align(small_family.sequences, n_procs=4)
        assert res.ledger.n_messages() > 0
        assert res.modeled_time > 0

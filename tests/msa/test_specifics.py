"""Aligner-specific behaviour tests (stages, weights, libraries, anchors)."""

import numpy as np
import pytest

from repro.align.guide_tree import neighbor_joining, upgma
from repro.align.profile import Profile
from repro.align.profile_align import ProfileAlignConfig
from repro.metrics import qscore
from repro.msa import (
    ClustalWLike,
    MafftLike,
    MuscleLike,
    TCoffeeLike,
    alignment_identity_matrix,
    full_dp_distance_matrix,
    kimura_distance,
    ktuple_distance_matrix,
)
from repro.msa.clustalw import clustal_sequence_weights
from repro.msa.mafft import align_profiles_anchored, fft_anchor_segments
from repro.msa.registry import get_aligner, register_aligner
from repro.seq.alignment import Alignment
from repro.seq.sequence import Sequence


class TestDistances:
    def test_ktuple_diagonal_zero(self, tiny_seqs):
        d = ktuple_distance_matrix(list(tiny_seqs), k=3)
        assert np.allclose(np.diag(d), 0.0)

    def test_full_dp_identical_zero(self):
        seqs = [Sequence("a", "MKTAYI"), Sequence("b", "MKTAYI")]
        d = full_dp_distance_matrix(seqs)
        assert d[0, 1] == pytest.approx(0.0)

    def test_full_dp_symmetric(self, tiny_seqs):
        d = full_dp_distance_matrix(list(tiny_seqs)[:4])
        assert np.allclose(d, d.T)

    def test_alignment_identity_matrix(self):
        aln = Alignment.from_rows(
            ["a", "b", "c"], ["MKV-", "MKVA", "MLV-"]
        )
        ident = alignment_identity_matrix(aln)
        assert ident[0, 0] == 1.0
        assert ident[0, 1] == pytest.approx(1.0)  # overlap columns identical
        assert ident[0, 2] == pytest.approx(2 / 3)

    def test_alignment_identity_no_overlap(self):
        aln = Alignment.from_rows(["a", "b"], ["M-", "-K"])
        assert alignment_identity_matrix(aln)[0, 1] == 0.0

    def test_kimura_monotone(self):
        ident = np.array([[1.0, 0.9], [0.9, 1.0]])
        far = np.array([[1.0, 0.5], [0.5, 1.0]])
        assert kimura_distance(far)[0, 1] > kimura_distance(ident)[0, 1]

    def test_kimura_zero_for_identical(self):
        d = kimura_distance(np.ones((2, 2)))
        assert d[0, 1] == pytest.approx(0.0)

    def test_kimura_saturates(self):
        d = kimura_distance(np.array([[1.0, 0.01], [0.01, 1.0]]))
        assert np.isfinite(d).all()


class TestMuscleStages:
    def test_flags(self, small_family):
        draft = MuscleLike(two_stage=False, refine=False)
        full = MuscleLike()
        a1 = draft.align(small_family.sequences)
        a2 = full.align(small_family.sequences)
        q1 = qscore(a1, small_family.reference)
        q2 = qscore(a2, small_family.reference)
        # The full pipeline must not be (much) worse than the draft.
        assert q2 >= q1 - 0.05

    def test_refine_improves_or_keeps_sp(self, small_family):
        from repro.align.scoring import sp_score

        p = MuscleLike(refine=False).align(small_family.sequences)
        f = MuscleLike(refine=True).align(small_family.sequences)
        assert sp_score(f) >= sp_score(p) - 1e-9

    def test_anchored_mode_roundtrips(self, small_family):
        aln = MuscleLike(anchored=True).align(small_family.sequences)
        un = aln.ungapped()
        for s in small_family.sequences:
            assert un[s.id].residues == s.residues

    def test_anchored_close_to_exact(self, small_family):
        from repro.metrics import qscore

        q_exact = qscore(
            MuscleLike().align(small_family.sequences),
            small_family.reference,
        )
        q_anch = qscore(
            MuscleLike(anchored=True).align(small_family.sequences),
            small_family.reference,
        )
        assert q_anch >= q_exact - 0.15


class TestClustalW:
    def test_weights_positive_mean_one(self, tiny_seqs):
        d = ktuple_distance_matrix(list(tiny_seqs), k=3)
        tree = neighbor_joining(d, tiny_seqs.ids)
        w = clustal_sequence_weights(tree)
        assert (w > 0).all()
        assert w.mean() == pytest.approx(1.0)

    def test_weights_single_leaf(self):
        tree = upgma(np.zeros((1, 1)), ["a"])
        assert clustal_sequence_weights(tree).tolist() == [1.0]

    def test_outlier_gets_higher_weight(self):
        # Three near-identical sequences plus one outlier: the outlier's
        # root path is not shared, so its weight must be the largest.
        m = np.array(
            [
                [0.0, 0.05, 0.06, 0.9],
                [0.05, 0.0, 0.055, 0.9],
                [0.06, 0.055, 0.0, 0.9],
                [0.9, 0.9, 0.9, 0.0],
            ]
        )
        tree = neighbor_joining(m, ["a", "b", "c", "out"])
        w = clustal_sequence_weights(tree)
        assert w[3] == w.max()

    def test_distance_mode_validation(self):
        with pytest.raises(ValueError):
            ClustalWLike(distance_mode="bogus")


class TestTCoffee:
    def test_extension_toggle_runs(self, tiny_seqs):
        for extend in (False, True):
            aln = TCoffeeLike(extend=extend, use_local=False).align(tiny_seqs)
            un = aln.ungapped()
            for s in tiny_seqs:
                assert un[s.id].residues == s.residues

    def test_library_scores_consistency_wins(self, small_family):
        # Consistency scoring should at least match the draft progressive.
        t = TCoffeeLike().align(small_family.sequences)
        d = get_aligner("muscle-draft").align(small_family.sequences)
        qt = qscore(t, small_family.reference)
        qd = qscore(d, small_family.reference)
        assert qt >= qd - 0.02


class TestMafft:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            MafftLike(mode="turbo")

    def test_fft_anchor_segments_on_identical_profiles(self):
        s = Sequence("a", "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQAPILSRVGDGTQDNLSGAEKAVQ")
        px = Profile.from_sequence(s)
        py = Profile.from_sequence(s.with_id("b"))
        anchors = fft_anchor_segments(px, py, ProfileAlignConfig())
        assert anchors, "identical profiles must anchor"
        # Anchors must be consistent (strictly increasing, non-overlapping)
        # and lie on the main diagonal for identical profiles.
        prev_end = (0, 0)
        for i, j, length in anchors:
            assert i == j
            assert i >= prev_end[0] and j >= prev_end[1]
            prev_end = (i + length, j + length)

    def test_anchored_merge_roundtrip(self, small_family):
        seqs = list(small_family.sequences)
        pa = Profile.from_sequence(seqs[0])
        pb = Profile.from_sequence(seqs[1])
        merged = align_profiles_anchored(pa, pb, ProfileAlignConfig())
        un = merged.alignment.ungapped()
        assert un[seqs[0].id].residues == seqs[0].residues
        assert un[seqs[1].id].residues == seqs[1].residues

    def test_fftnsi_close_to_nwnsi(self, small_family):
        q_nw = qscore(
            MafftLike(mode="nwnsi").align(small_family.sequences),
            small_family.reference,
        )
        q_fft = qscore(
            MafftLike(mode="fftnsi").align(small_family.sequences),
            small_family.reference,
        )
        assert q_fft >= q_nw - 0.15  # anchoring trades a little accuracy

    def test_short_profiles_skip_anchoring(self):
        px = Profile.from_sequence(Sequence("a", "MKV"))
        py = Profile.from_sequence(Sequence("b", "MKV"))
        assert fft_anchor_segments(px, py, ProfileAlignConfig()) == []


class TestRegistry:
    def test_available(self):
        names = get_available = set()
        from repro.msa import available_aligners

        names = set(available_aligners())
        assert {"muscle", "clustalw", "tcoffee", "center-star"} <= names

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown aligner"):
            get_aligner("nope")

    def test_kwargs_passthrough(self):
        a = get_aligner("muscle", refine_rounds=5)
        assert a.refine_rounds == 5

    def test_register_custom_and_duplicate(self):
        class Custom(MuscleLike):
            name = "custom-test"

        register_aligner("custom-test-xyz", lambda **kw: Custom(**kw))
        assert get_aligner("custom-test-xyz").name in ("muscle", "custom-test")
        with pytest.raises(ValueError, match="already registered"):
            register_aligner("custom-test-xyz", lambda **kw: Custom(**kw))

"""Tests for repro.metrics.stats."""

import numpy as np
import pytest

from repro.metrics.stats import (
    ascii_histogram,
    deviation_stats,
    histogram_series,
    summarize,
)


class TestSummarize:
    def test_known_values(self):
        s = summarize(np.array([1.0, 2.0, 3.0, 4.0]))
        assert s.n == 4
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.mean == 2.5
        assert s.variance == pytest.approx(1.25)
        assert s.std == pytest.approx(np.sqrt(1.25))

    def test_row_renders(self):
        row = summarize(np.array([1.0, 2.0])).row()
        assert "mean=1.5" in row and "n=2" in row

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize(np.zeros(0))


class TestDeviationStats:
    def test_zero_for_identical(self):
        x = np.array([0.5, 1.0, 1.5])
        var, std = deviation_stats(x, x)
        assert var == 0.0 and std == 0.0

    def test_known(self):
        g = np.array([1.0, 2.0])
        c = np.array([0.0, 0.0])
        var, std = deviation_stats(g, c)
        assert var == pytest.approx(2.5)
        assert std == pytest.approx(np.sqrt(2.5))

    def test_table1_identity_check(self):
        # The paper's Table 1: std == sqrt(variance).
        rng = np.random.default_rng(0)
        g, c = rng.normal(size=50), rng.normal(size=50)
        var, std = deviation_stats(g, c)
        assert std == pytest.approx(np.sqrt(var))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            deviation_stats(np.ones(3), np.ones(4))


class TestHistogram:
    def test_counts_sum(self):
        vals = np.random.default_rng(1).normal(size=200)
        counts, centers = histogram_series(vals, bins=16)
        assert counts.sum() == 200
        assert len(centers) == 16

    def test_fixed_range(self):
        counts, centers = histogram_series(
            np.array([0.5]), bins=4, range_=(0.0, 2.0)
        )
        assert centers.tolist() == [0.25, 0.75, 1.25, 1.75]
        assert counts.tolist() == [0, 1, 0, 0]

    def test_ascii_histogram(self):
        out = ascii_histogram(np.random.default_rng(0).normal(size=100),
                              bins=8, label="demo")
        assert "demo" in out
        assert out.count("\n") == 8  # label + 8 bins
        assert "#" in out

"""Tests for the quality metrics."""

import numpy as np
import pytest

from repro.metrics import qscore, qscore_pair, total_column_score
from repro.seq.alignment import Alignment


def mk(rows, ids=None):
    ids = ids or [f"r{i}" for i in range(len(rows))]
    return Alignment.from_rows(ids, rows)


class TestQscorePair:
    def test_identical_alignments(self):
        a = mk(["MKTA-Y", "MK-AWY"])
        assert qscore_pair(a, a, "r0", "r1") == 1.0

    def test_completely_wrong(self):
        ref = mk(["MKV", "MKV"])
        # Shift one row by three: no reference pair survives.
        test = mk(["MKV---", "---MKV"])
        assert qscore_pair(test, ref, "r0", "r1") == 0.0

    def test_half_right(self):
        ref = mk(["MKVA", "MKVA"])  # four reference pairs
        test = mk(["MKVA--", "MK--VA"])  # MK aligned, VA shifted
        assert qscore_pair(test, ref, "r0", "r1") == 0.5

    def test_no_reference_pairs(self):
        ref = mk(["MK--", "--VA"])
        test = mk(["MK--", "--VA"])
        assert qscore_pair(test, ref, "r0", "r1") == 1.0

    def test_missing_row(self):
        a = mk(["MK", "MV"])
        with pytest.raises(KeyError):
            qscore_pair(a, a, "r0", "zz")

    def test_sequence_mismatch_detected(self):
        ref = mk(["MKV", "MKV"])
        test = mk(["MKVA", "MKVA"])
        with pytest.raises(ValueError, match="lengths"):
            qscore_pair(test, ref, "r0", "r1")


class TestQscoreMsa:
    def test_identical(self):
        a = mk(["MK-V", "MKAV", "M--V"])
        assert qscore(a, a) == 1.0

    def test_gap_free_columns_only_counted(self):
        ref = mk(["MKV", "MKV", "MKV"])
        test = mk(["MKV--", "MK--V", "--MKV"])
        # Pairs: (0,1): M,K aligned (2 of 3); (0,2): none of 3; (1,2): V and
        # ... row1 vs row2: K? row1 cols 0,1,4; row2 cols 2,3,4 -> V aligned.
        q = qscore(test, ref)
        assert q == pytest.approx((2 + 0 + 1) / 9)

    def test_requires_two_rows(self):
        with pytest.raises(ValueError):
            qscore(mk(["MK"]), mk(["MK"]))

    def test_subset_of_rows(self):
        ref = mk(["MKV", "MKV", "MKV"])
        test = mk(["MKV", "MKV"], ids=["r0", "r1"])
        assert qscore(test, ref) == 1.0


class TestTotalColumn:
    def test_identical(self):
        a = mk(["MKV", "MLV", "MKV"])
        assert total_column_score(a, a) == 1.0

    def test_partial(self):
        ref = mk(["MKV", "MKV"])
        test = mk(["MKV--", "MK--V"])
        # Columns M, K reproduced; V split -> 2/3.
        assert total_column_score(test, ref) == pytest.approx(2 / 3)

    def test_single_residue_columns_skipped(self):
        ref = mk(["MK-", "M-V"])
        test = mk(["MK-", "M-V"])
        # Columns 2 and 3 have only one present row; only column 0 counts.
        assert total_column_score(test, ref) == 1.0

    def test_worst_case_zero(self):
        ref = mk(["MKVA", "MKVA"])
        test = mk(["MKVA----", "----MKVA"])
        assert total_column_score(test, ref) == 0.0

"""Tests for the method-comparison harness."""

import pytest

from repro.datagen.prefab import make_prefab_like
from repro.metrics import compare_methods
from repro.msa import get_aligner


@pytest.fixture(scope="module")
def cases():
    return make_prefab_like(
        n_cases=3, seqs_per_case=(6, 8), mean_length=60, seed=4
    )


@pytest.fixture(scope="module")
def report(cases):
    methods = {
        "muscle-draft": get_aligner("muscle-draft").align,
        "center-star": get_aligner("center-star").align,
    }
    return compare_methods(cases, methods)


class TestCompareMethods:
    def test_all_methods_scored(self, report):
        assert set(report.results) == {"muscle-draft", "center-star"}
        for r in report.results.values():
            assert len(r.q_scores) == report.n_cases == 3
            assert len(r.tc_scores) == 3
            assert all(0.0 <= q <= 1.0 for q in r.q_scores)

    def test_ranking_sorted_by_q(self, report):
        ranked = report.ranking()
        qs = [report.results[m].mean_q for m in ranked]
        assert qs == sorted(qs, reverse=True)

    def test_table_renders(self, report):
        table = report.table()
        assert "mean Q" in table and "muscle-draft" in table

    def test_pair_only_protocol(self, cases):
        methods = {"center-star": get_aligner("center-star").align}
        rep = compare_methods(cases, methods, pair_only=True)
        assert len(rep.results["center-star"].q_scores) == 3

    def test_timing_collected(self, report):
        for r in report.results.values():
            assert r.total_seconds > 0

    def test_validation(self, cases):
        with pytest.raises(ValueError):
            compare_methods([], {"x": lambda s: None})
        with pytest.raises(ValueError):
            compare_methods(cases, {})

    def test_sample_align_d_as_method(self, cases):
        from repro import sample_align_d

        methods = {
            "sad-p2": lambda seqs: sample_align_d(seqs, n_procs=2).alignment
        }
        rep = compare_methods(cases, methods, pair_only=True)
        assert rep.results["sad-p2"].mean_q >= 0.0

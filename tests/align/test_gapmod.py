"""Tests for the CLUSTALW-style gap modifiers (repro.align.gapmod)."""

import numpy as np
import pytest

from repro.align.gapmod import (
    HYDROPHILIC,
    hydrophilic_run_mask,
    position_specific_open_factors,
    residue_gap_factors,
)
from repro.align.profile import Profile
from repro.align.profile_align import ProfileAlignConfig
from repro.seq.alignment import Alignment
from repro.seq.alphabet import PROTEIN
from repro.seq.sequence import Sequence


def prof(rows, ids=None):
    ids = ids or [f"r{i}" for i in range(len(rows))]
    return Profile(Alignment.from_rows(ids, rows))


class TestResidueFactors:
    def test_shape_and_mean(self):
        f = residue_gap_factors()
        assert f.shape == (PROTEIN.size,)
        assert np.isclose(f.mean(), 1.0)
        assert (f > 0).all()

    def test_glycine_cheaper_than_tryptophan(self):
        f = residue_gap_factors()
        # Gaps near G are common in nature; near W they are rare.
        assert f[PROTEIN.index("G")] > f[PROTEIN.index("W")]

    def test_proline_cheap(self):
        f = residue_gap_factors()
        assert f[PROTEIN.index("P")] > f[PROTEIN.index("I")]


class TestHydrophilicRuns:
    def test_detects_long_run(self):
        # Ten hydrophilic columns surrounded by hydrophobic ones.
        rows = ["WWW" + "DEGKN" * 2 + "WWW"] * 2
        mask = hydrophilic_run_mask(prof(rows))
        assert mask[3:13].all()
        assert not mask[:3].any() and not mask[13:].any()

    def test_short_run_ignored(self):
        rows = ["WWWDEGWWW"] * 2  # run of 3 < min_run 5
        assert not hydrophilic_run_mask(prof(rows)).any()

    def test_all_hydrophobic(self):
        assert not hydrophilic_run_mask(prof(["WFILVWFILV"] * 2)).any()

    def test_threshold(self):
        rows = ["DWDWDWDWDW" * 2] * 2  # 50% hydrophilic columns interleaved
        mask = hydrophilic_run_mask(prof(rows), threshold=0.9)
        assert not mask.all()


class TestCombinedFactors:
    def test_range(self):
        rows = ["WWWDEGKNQPRSWWW"] * 3
        f = position_specific_open_factors(prof(rows))
        assert (f >= 0.1).all() and (f <= 3.0).all()

    def test_hydrophilic_run_reduced(self):
        rows = ["WWW" + "DEGKN" * 2 + "WWW"] * 2
        f = position_specific_open_factors(prof(rows))
        assert f[5] < f[0]

    def test_config_integration(self):
        cfg = ProfileAlignConfig(clustalw_gap_modifiers=True)
        p = prof(["WWWDEGKNQPRSWWW"] * 2)
        go, ge = cfg.gap_vectors(p)
        assert go.shape == (p.n_columns,)
        # Extension penalties untouched by the modifiers.
        assert np.allclose(ge, cfg.gaps.extend * np.ones(p.n_columns))

    def test_alignment_still_roundtrips(self, small_family):
        from repro.msa import ClustalWLike

        aln = ClustalWLike().align(small_family.sequences)
        un = aln.ungapped()
        for s in small_family.sequences:
            assert un[s.id].residues == s.residues

"""Batched DP kernel (repro.align.batchdp): byte-identity everywhere.

The batched kernel's contract is *exact* equality with the scalar
kernel -- same scores bit for bit, same traceback paths, same
tie-breaks -- so every comparison here is ``==`` / ``array_equal``,
never ``allclose``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.batchdp import (
    DEFAULT_BATCH_PAIRS,
    DEFAULT_MAX_BATCH_CELLS,
    _chunk_bounds,
    affine_align_batch,
    affine_score_batch,
    dp_batch_pairs,
    max_batch_cells_setting,
)
from repro.align.dp import affine_align, affine_score

PENALTY_VALUES = (0.0, 0.5, 1.0, 2.0, 7.5, 11.0)


@st.composite
def batch_problems(draw):
    """A ragged batch of pair problems with mixed penalty specs.

    Scores and penalties are drawn from small exact-float sets; shapes
    include empty axes (degenerate pairs) and length-1 edges.
    """
    K = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    S_list = []
    specs = {"ox": [], "ex": [], "oy": [], "ey": []}
    for _ in range(K):
        m = draw(st.integers(min_value=0, max_value=9))
        n = draw(st.integers(min_value=0, max_value=9))
        S_list.append(
            rng.integers(-11, 17, size=(m, n)).astype(np.float64)
        )
        for name, length in (("ox", m), ("ex", m), ("oy", n), ("ey", n)):
            if draw(st.booleans()):
                specs[name].append(draw(st.sampled_from(PENALTY_VALUES)))
            else:
                specs[name].append(
                    rng.choice(PENALTY_VALUES, size=length)
                )
    tf = draw(st.sampled_from((0.0, 0.5, 1.0)))
    return S_list, specs["ox"], specs["ex"], specs["oy"], specs["ey"], tf


@settings(max_examples=40, deadline=None)
@given(batch_problems())
def test_score_batch_matches_scalar_exactly(problem):
    S_list, ox, ex, oy, ey, tf = problem
    got = affine_score_batch(S_list, ox, ex, oy, ey, terminal_factor=tf)
    for k, S in enumerate(S_list):
        want = affine_score(
            S, ox[k], ex[k], oy[k], ey[k], terminal_factor=tf
        )
        assert got[k] == want


@settings(max_examples=40, deadline=None)
@given(batch_problems())
def test_align_batch_matches_scalar_exactly(problem):
    S_list, ox, ex, oy, ey, tf = problem
    got = affine_align_batch(S_list, ox, ex, oy, ey, terminal_factor=tf)
    for k, S in enumerate(S_list):
        want = affine_align(
            S, ox[k], ex[k], oy[k], ey[k], terminal_factor=tf
        )
        assert got[k].score == want.score
        assert np.array_equal(got[k].x_map, want.x_map)
        assert np.array_equal(got[k].y_map, want.y_map)


@settings(max_examples=15, deadline=None)
@given(batch_problems())
def test_chunking_never_changes_results(problem):
    """A tiny cell budget forces many chunks; results are unchanged."""
    S_list, ox, ex, oy, ey, tf = problem
    base = affine_score_batch(S_list, ox, ex, oy, ey, terminal_factor=tf)
    chunked = affine_score_batch(
        S_list, ox, ex, oy, ey, terminal_factor=tf, max_batch_cells=8
    )
    assert base.tobytes() == chunked.tobytes()
    a = affine_align_batch(S_list, ox, ex, oy, ey, terminal_factor=tf)
    b = affine_align_batch(
        S_list, ox, ex, oy, ey, terminal_factor=tf, max_batch_cells=8
    )
    for ra, rb in zip(a, b):
        assert ra.score == rb.score
        assert np.array_equal(ra.x_map, rb.x_map)
        assert np.array_equal(ra.y_map, rb.y_map)


class TestEdges:
    def test_empty_batch(self):
        assert affine_score_batch([], 10.0, 0.5).shape == (0,)
        assert affine_align_batch([], 10.0, 0.5) == []

    def test_all_degenerate_batch(self):
        S_list = [np.zeros((0, 4)), np.zeros((3, 0)), np.zeros((0, 0))]
        got = affine_score_batch(S_list, 10.0, 0.5)
        for k, S in enumerate(S_list):
            assert got[k] == affine_score(S, 10.0, 0.5)
        res = affine_align_batch(S_list, 10.0, 0.5)
        for k, S in enumerate(S_list):
            want = affine_align(S, 10.0, 0.5)
            assert res[k].score == want.score
            assert np.array_equal(res[k].x_map, want.x_map)
            assert np.array_equal(res[k].y_map, want.y_map)

    def test_single_pair(self):
        rng = np.random.default_rng(3)
        S = rng.integers(-4, 12, size=(7, 5)).astype(np.float64)
        got = affine_score_batch([S], 10.0, 0.5)
        assert got[0] == affine_score(S, 10.0, 0.5)

    def test_tie_breaks_match_scalar(self):
        """An all-zero score matrix is one giant tie; paths must still
        be identical because tie-break order is part of the contract."""
        S_list = [np.zeros((6, 6)), np.zeros((4, 8)), np.zeros((8, 4))]
        got = affine_align_batch(S_list, 1.0, 1.0)
        for k, S in enumerate(S_list):
            want = affine_align(S, 1.0, 1.0)
            assert np.array_equal(got[k].x_map, want.x_map)
            assert np.array_equal(got[k].y_map, want.y_map)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            affine_score_batch([np.zeros(4)], 1.0, 1.0)

    def test_spec_count_mismatch_rejected(self):
        S_list = [np.zeros((3, 3)), np.zeros((3, 3))]
        with pytest.raises(ValueError, match="one spec per pair"):
            affine_score_batch(S_list, [1.0, 1.0, 1.0], 0.5)

    def test_vector_length_mismatch_rejected(self):
        S_list = [np.zeros((3, 3))]
        with pytest.raises(ValueError, match="gap_open"):
            affine_score_batch(S_list, [np.ones(5)], 0.5)


class TestChunkBounds:
    def test_single_chunk_when_under_budget(self):
        assert _chunk_bounds([(5, 5)] * 8, 10_000) == [(0, 8)]

    def test_chunks_are_balanced(self):
        # 10 pairs, budget for 3 padded pairs per chunk -> 4 chunks of
        # near-equal size, not greedy 3+3+3+1.
        bounds = _chunk_bounds([(80, 80)] * 10, 3 * 81 * 81)
        sizes = [b - a for a, b in bounds]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1
        assert max(sizes) <= 3

    def test_oversized_pair_gets_own_chunk(self):
        bounds = _chunk_bounds([(100, 100), (100, 100)], 50)
        assert bounds == [(0, 1), (1, 2)]


class TestEnvKnobs:
    def test_batch_pairs_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_DP_BATCH_PAIRS", raising=False)
        assert dp_batch_pairs() == DEFAULT_BATCH_PAIRS

    def test_batch_pairs_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_DP_BATCH_PAIRS", "256")
        assert dp_batch_pairs() == 256
        monkeypatch.setenv("REPRO_DP_BATCH_PAIRS", "0")
        assert dp_batch_pairs() == 0
        monkeypatch.setenv("REPRO_DP_BATCH_PAIRS", "-3")
        assert dp_batch_pairs() == 0
        monkeypatch.setenv("REPRO_DP_BATCH_PAIRS", "banana")
        assert dp_batch_pairs() == DEFAULT_BATCH_PAIRS

    def test_max_cells_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_DP_MAX_BATCH_CELLS", raising=False)
        assert max_batch_cells_setting() == DEFAULT_MAX_BATCH_CELLS
        monkeypatch.setenv("REPRO_DP_MAX_BATCH_CELLS", "1024")
        assert max_batch_cells_setting() == 1024
        monkeypatch.setenv("REPRO_DP_MAX_BATCH_CELLS", "0")
        assert max_batch_cells_setting() == 1
        monkeypatch.setenv("REPRO_DP_MAX_BATCH_CELLS", "junk")
        assert max_batch_cells_setting() == DEFAULT_MAX_BATCH_CELLS


class TestObsCounters:
    def test_batch_counters_increment(self):
        from repro.obs.metrics import registry

        before = registry().snapshot()
        S_list = [np.zeros((4, 4)), np.zeros((5, 3))]
        affine_score_batch(S_list, 10.0, 0.5)
        delta = registry().snapshot().diff(before)
        assert delta.metrics["dp.batch_calls"].value >= 1
        assert delta.metrics["dp.batch_pairs"].value == 2
        assert delta.metrics["dp.batch_cells"].value == 16 + 15

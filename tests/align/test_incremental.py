"""Tests for incremental alignment (repro.align.incremental)."""

import numpy as np
import pytest

from repro.align.incremental import add_sequence, add_sequences
from repro.msa import get_aligner
from repro.seq.alignment import Alignment
from repro.seq.sequence import Sequence


class TestAddSequence:
    def test_columns_preserved(self, tiny_seqs):
        aln = get_aligner("muscle-draft").align(tiny_seqs[:4])
        new = tiny_seqs[4]
        out = add_sequence(aln, new)
        assert out.n_rows == 5
        # Original rows keep their relative column structure: ungapping
        # the original block reproduces the old rows.
        un = out.ungapped()
        for s in tiny_seqs:
            assert un[s.id].residues == s.residues

    def test_new_row_is_last(self, tiny_seqs):
        aln = get_aligner("muscle-draft").align(tiny_seqs[:4])
        out = add_sequence(aln, tiny_seqs[4])
        assert out.ids[-1] == tiny_seqs[4].id

    def test_duplicate_id_rejected(self, tiny_seqs):
        aln = get_aligner("muscle-draft").align(tiny_seqs[:4])
        with pytest.raises(ValueError, match="already present"):
            add_sequence(aln, tiny_seqs[0])

    def test_into_empty(self):
        empty = Alignment([], np.zeros((0, 0), dtype=np.uint8))
        out = add_sequence(empty, Sequence("a", "MKV"))
        assert out.n_rows == 1

    def test_identical_sequence_aligns_cleanly(self):
        aln = Alignment.from_rows(["a", "b"], ["MKTAYI", "MKTAYI"])
        out = add_sequence(aln, Sequence("c", "MKTAYI"))
        assert out.n_columns == 6
        assert out.row_text("c") == "MKTAYI"


class TestAddSequences:
    def test_batch(self, small_family):
        seqs = list(small_family.sequences)
        aln = get_aligner("muscle-draft").align(seqs[:6])
        out = add_sequences(aln, seqs[6:])
        assert out.n_rows == len(seqs)
        un = out.ungapped()
        for s in seqs:
            assert un[s.id].residues == s.residues

    def test_given_order(self, small_family):
        seqs = list(small_family.sequences)
        aln = get_aligner("muscle-draft").align(seqs[:6])
        out = add_sequences(aln, seqs[6:9], order="given")
        assert out.ids[-3:] == [s.id for s in seqs[6:9]]

    def test_empty_batch(self, tiny_seqs):
        aln = get_aligner("muscle-draft").align(tiny_seqs)
        assert add_sequences(aln, []) is aln

    def test_bad_order(self, tiny_seqs):
        aln = get_aligner("muscle-draft").align(tiny_seqs)
        with pytest.raises(ValueError):
            add_sequences(aln, [Sequence("z", "MKV")], order="best")

    def test_quality_close_to_full_realign(self, small_family):
        """Incremental addition should stay within reach of aligning
        everything from scratch."""
        from repro.metrics import qscore

        seqs = list(small_family.sequences)
        base = get_aligner("muscle-draft").align(seqs[:8])
        incremental = add_sequences(base, seqs[8:])
        full = get_aligner("muscle-draft").align(seqs)
        q_inc = qscore(incremental, small_family.reference)
        q_full = qscore(full, small_family.reference)
        assert q_inc > q_full - 0.25

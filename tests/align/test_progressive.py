"""Tests for repro.align.progressive and refine and consensus and scoring."""

import numpy as np
import pytest

from repro.align.consensus import consensus_sequence
from repro.align.guide_tree import upgma
from repro.align.profile import Profile
from repro.align.profile_align import ProfileAlignConfig, align_profiles
from repro.align.progressive import progressive_align
from repro.align.refine import refine_alignment
from repro.align.scoring import affine_sp_score, sp_score
from repro.kmer.distance import kmer_distance_matrix
from repro.kmer.counting import KmerCounter
from repro.seq.alignment import Alignment
from repro.seq.matrices import BLOSUM62, GapPenalties
from repro.seq.sequence import Sequence


def build_tree(seqs):
    d = kmer_distance_matrix(list(seqs), counter=KmerCounter(k=3))
    return upgma(d, [s.id for s in seqs])


class TestProgressive:
    def test_roundtrip(self, tiny_seqs):
        tree = build_tree(tiny_seqs)
        aln = progressive_align(list(tiny_seqs), tree)
        un = aln.ungapped()
        for s in tiny_seqs:
            assert un[s.id].residues == s.residues

    def test_row_order_is_input_order(self, tiny_seqs):
        tree = build_tree(tiny_seqs)
        aln = progressive_align(list(tiny_seqs), tree)
        assert aln.ids == tiny_seqs.ids

    def test_single_sequence_rejected(self):
        """<2 sequences is a clean ValueError (wrap lone sequences with
        Alignment.from_single instead, as every baseline does)."""
        s = Sequence("a", "MKV")
        tree = upgma(np.zeros((1, 1)), ["a"])
        with pytest.raises(ValueError, match="at least 2"):
            progressive_align([s], tree)

    def test_label_mismatch_rejected(self, tiny_seqs):
        """Equal leaf count but different ids hits the label-set check."""
        seqs = list(tiny_seqs)
        tree = build_tree(seqs[:-1] + [Sequence("imposter", "MKVLLT")])
        with pytest.raises(ValueError, match="labels"):
            progressive_align(seqs, tree)

    def test_leaf_count_mismatch_rejected(self, tiny_seqs):
        """A tree over a subset errors cleanly instead of IndexError-ing
        deep inside numpy."""
        tree = build_tree(list(tiny_seqs)[:-2])
        with pytest.raises(ValueError, match="leaves"):
            progressive_align(list(tiny_seqs), tree)

    def test_weights_change_result_shape_safely(self, tiny_seqs):
        tree = build_tree(tiny_seqs)
        w = np.linspace(0.5, 2.0, len(tiny_seqs))
        aln = progressive_align(list(tiny_seqs), tree, sequence_weights=w)
        un = aln.ungapped()
        for s in tiny_seqs:
            assert un[s.id].residues == s.residues

    def test_bad_weights(self, tiny_seqs):
        tree = build_tree(tiny_seqs)
        with pytest.raises(ValueError):
            progressive_align(
                list(tiny_seqs), tree, sequence_weights=np.zeros(len(tiny_seqs))
            )
        with pytest.raises(ValueError):
            progressive_align(
                list(tiny_seqs), tree, sequence_weights=np.ones(2)
            )

    def test_merge_fn_hook(self, tiny_seqs):
        tree = build_tree(tiny_seqs)
        calls = []

        def merge(pa, pb):
            calls.append((pa.n_sequences, pb.n_sequences))
            merged, _res = align_profiles(pa, pb)
            return merged

        progressive_align(list(tiny_seqs), tree, merge_fn=merge)
        assert len(calls) == len(tiny_seqs) - 1

    def test_zero_sequences(self):
        tree = upgma(np.zeros((1, 1)), ["a"])
        with pytest.raises(ValueError):
            progressive_align([], tree)


class TestRefine:
    def test_score_never_decreases(self, small_family):
        seqs = list(small_family.sequences)
        tree = build_tree(seqs)
        aln = progressive_align(seqs, tree)
        res = refine_alignment(aln, tree, max_rounds=2)
        assert res.final_score >= res.initial_score
        assert res.n_attempted > 0

    def test_roundtrip_after_refine(self, small_family):
        seqs = list(small_family.sequences)
        tree = build_tree(seqs)
        aln = progressive_align(seqs, tree)
        res = refine_alignment(aln, tree, max_rounds=1)
        un = res.alignment.ungapped()
        for s in seqs:
            assert un[s.id].residues == s.residues

    def test_deterministic_without_rng(self, small_family):
        seqs = list(small_family.sequences)
        tree = build_tree(seqs)
        aln = progressive_align(seqs, tree)
        a = refine_alignment(aln, tree, max_rounds=1).alignment
        b = refine_alignment(aln, tree, max_rounds=1).alignment
        assert a == b

    def test_label_mismatch(self, small_family):
        seqs = list(small_family.sequences)
        tree = build_tree(seqs)
        aln = progressive_align(seqs, tree)
        other_tree = build_tree(seqs[:-1])
        with pytest.raises(ValueError, match="labels"):
            refine_alignment(aln, other_tree)


class TestConsensus:
    def test_identical_rows(self):
        aln = Alignment.from_rows(["a", "b"], ["MKV", "MKV"])
        c = consensus_sequence(aln)
        assert c.residues == "MKV"

    def test_majority(self):
        aln = Alignment.from_rows(["a", "b", "c"], ["MKV", "MKV", "MLV"])
        assert consensus_sequence(aln).residues == "MKV"

    def test_gappy_columns_dropped(self):
        aln = Alignment.from_rows(["a", "b"], ["M-KV", "MW-V"])
        # Middle columns are 50% occupied -> kept at threshold 0.5; raise it.
        c = consensus_sequence(aln, min_occupancy=0.8)
        assert c.residues == "MV"

    def test_never_empty(self):
        aln = Alignment.from_rows(["a", "b"], ["M-", "-K"])
        c = consensus_sequence(aln, min_occupancy=1.0)
        assert len(c) >= 1

    def test_empty_alignment_rejected(self):
        with pytest.raises(ValueError):
            consensus_sequence(
                Alignment(["a"], np.zeros((1, 0), dtype=np.uint8))
            )

    def test_bad_threshold(self):
        aln = Alignment.from_rows(["a"], ["MK"])
        with pytest.raises(ValueError):
            consensus_sequence(aln, min_occupancy=2.0)

    def test_id_passthrough(self):
        aln = Alignment.from_rows(["a"], ["MK"])
        assert consensus_sequence(aln, id="anc").id == "anc"

    def test_profile_input(self):
        aln = Alignment.from_rows(["a", "b"], ["MKV", "MKV"])
        assert consensus_sequence(Profile(aln)).residues == "MKV"


class TestScoring:
    def test_sp_manual_example(self):
        # Columns: (M,M): s(M,M); (K,-): -gap; (V,L): s(V,L)
        aln = Alignment.from_rows(["a", "b"], ["MKV", "M-L"])
        s = sp_score(aln, BLOSUM62, gap_penalty=2.0)
        expected = (
            BLOSUM62.score("M", "M") - 2.0 + BLOSUM62.score("V", "L")
        )
        assert s == pytest.approx(expected)

    def test_sp_gap_gap_free(self):
        aln = Alignment.from_rows(["a", "b"], ["M-V", "M-L"])
        s = sp_score(aln, BLOSUM62, gap_penalty=2.0)
        expected = BLOSUM62.score("M", "M") + BLOSUM62.score("V", "L")
        assert s == pytest.approx(expected)

    def test_sp_trivial_cases(self):
        one = Alignment.from_rows(["a"], ["MKV"])
        assert sp_score(one) == 0.0

    def test_sp_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        from repro.seq.alphabet import PROTEIN

        mat = rng.integers(0, PROTEIN.gap_code + 1, (5, 12)).astype(np.uint8)
        aln = Alignment([f"r{i}" for i in range(5)], mat)
        got = sp_score(aln, BLOSUM62, gap_penalty=1.5)
        brute = 0.0
        gap = PROTEIN.gap_code
        for i in range(5):
            for j in range(i + 1, 5):
                for c in range(12):
                    a, b = mat[i, c], mat[j, c]
                    if a == gap and b == gap:
                        continue
                    if a == gap or b == gap:
                        brute -= 1.5
                    else:
                        brute += BLOSUM62.matrix[a, b]
        assert got == pytest.approx(brute)

    def test_affine_no_gaps_equals_matrix_sum(self):
        aln = Alignment.from_rows(["a", "b"], ["MKV", "MLV"])
        expected = (
            BLOSUM62.score("M", "M")
            + BLOSUM62.score("K", "L")
            + BLOSUM62.score("V", "V")
        )
        assert affine_sp_score(aln) == pytest.approx(expected)

    def test_affine_single_run_counted_once(self):
        aln = Alignment.from_rows(["a", "b"], ["MKKKV", "M---V"])
        gaps = GapPenalties(4, 1)
        expected = (
            BLOSUM62.score("M", "M")
            + BLOSUM62.score("V", "V")
            - (4 + 3 * 1)
        )
        assert affine_sp_score(aln, BLOSUM62, gaps) == pytest.approx(expected)

    def test_affine_terminal_scaling(self):
        aln = Alignment.from_rows(["a", "b"], ["MKV--", "MKVWW"])
        gaps = GapPenalties(4, 1, terminal_factor=0.5)
        expected = (
            BLOSUM62.score("M", "M")
            + BLOSUM62.score("K", "K")
            + BLOSUM62.score("V", "V")
            - 0.5 * (4 + 2)
        )
        assert affine_sp_score(aln, BLOSUM62, gaps) == pytest.approx(expected)

    def test_affine_both_gap_columns_ignored(self):
        a1 = Alignment.from_rows(["a", "b"], ["M--V", "M--V"])
        a2 = Alignment.from_rows(["a", "b"], ["MV", "MV"])
        assert affine_sp_score(a1) == pytest.approx(affine_sp_score(a2))

"""Tests for repro.align.pairwise."""

import numpy as np
import pytest

from repro.align.pairwise import (
    global_align,
    global_score,
    local_align,
    pairwise_identity,
)
from repro.seq.matrices import BLOSUM62, DNA_SIMPLE, GapPenalties
from repro.seq.alphabet import DNA
from repro.seq.sequence import Sequence


class TestGlobalAlign:
    def test_identical(self):
        s = Sequence("a", "MKTAYIAKQR")
        t = Sequence("b", "MKTAYIAKQR")
        res = global_align(s, t)
        gx, gy = res.gapped_texts()
        assert gx == gy == s.residues
        assert res.identity() == 1.0

    def test_score_matches_score_only(self):
        s = Sequence("a", "HEAGAWGHEE")
        t = Sequence("b", "PAWHEAE")
        gaps = GapPenalties(8, 1)
        assert np.isclose(
            global_align(s, t, gaps=gaps).score, global_score(s, t, gaps=gaps)
        )

    def test_gapped_texts_strip_to_inputs(self):
        s = Sequence("a", "MKTAYIAKQRLG")
        t = Sequence("b", "MKTAYIQRLG")
        gx, gy = global_align(s, t).gapped_texts()
        assert gx.replace("-", "") == s.residues
        assert gy.replace("-", "") == t.residues
        assert len(gx) == len(gy)

    def test_known_deletion_placed(self):
        s = Sequence("a", "MKTAYIAKQRLG")
        t = Sequence("b", "MKTAYIQRLG")  # AK deleted
        gx, gy = global_align(s, t).gapped_texts()
        assert gy.count("-") == 2 and gx.count("-") == 0

    def test_matched_pairs(self):
        s = Sequence("a", "MKV")
        t = Sequence("b", "MKV")
        xi, yi = global_align(s, t).matched_pairs()
        assert xi.tolist() == [0, 1, 2] and yi.tolist() == [0, 1, 2]

    def test_alphabet_mismatch(self):
        s = Sequence("a", "ACGT", alphabet=DNA)
        t = Sequence("b", "MKVA")
        with pytest.raises(ValueError, match="alphabet"):
            global_align(s, t)

    def test_dna_alignment(self):
        s = Sequence("a", "ACGTACGT", alphabet=DNA)
        t = Sequence("b", "ACGACGT", alphabet=DNA)
        res = global_align(s, t, matrix=DNA_SIMPLE, gaps=GapPenalties(5, 1))
        gx, gy = res.gapped_texts()
        assert gy.count("-") == 1

    def test_empty_vs_nonempty(self):
        s = Sequence("a", "M")
        # Sequence construction strips gaps; an empty sequence is legal.
        t = Sequence("b", "-")
        res = global_align(s, t)
        assert res.n_columns == 1
        assert res.y_map.tolist() == [-1]


class TestLocalAlign:
    def test_finds_planted_motif(self):
        a = Sequence("a", "AAAAAWGHEMKAAAA")
        b = Sequence("b", "TTTWGHEMKTTT")
        res = local_align(a, b)
        gx, gy = res.gapped_texts()
        assert "WGHEMK" in gx.replace("-", "")
        assert gx == gy  # exact shared motif

    def test_score_nonnegative(self):
        a = Sequence("a", "AAAA")
        b = Sequence("b", "WWWW")
        assert local_align(a, b).score >= 0.0

    def test_empty(self):
        a = Sequence("a", "")
        b = Sequence("b", "MKV")
        res = local_align(a, b)
        assert res.score == 0.0 and res.n_columns == 0

    def test_local_at_least_global_interior(self):
        a = Sequence("a", "MKTAYIAKQRQISFVK")
        b = Sequence("b", "WWTAYIAKWW")
        loc = local_align(a, b)
        glo = global_align(a, b)
        assert loc.score >= glo.score

    def test_no_terminal_gaps(self):
        a = Sequence("a", "AAAWGHEAAA")
        b = Sequence("b", "TTWGHETT")
        res = local_align(a, b)
        assert res.x_map[0] >= 0 and res.y_map[0] >= 0
        assert res.x_map[-1] >= 0 and res.y_map[-1] >= 0


class TestIdentity:
    def test_identical(self):
        s = Sequence("a", "MKTAYI")
        assert pairwise_identity(s, Sequence("b", "MKTAYI")) == 1.0

    def test_half(self):
        s = Sequence("a", "MMMMMM")
        t = Sequence("b", "MMMWWW")
        assert 0.3 <= pairwise_identity(s, t) <= 0.7

    def test_empty_overlap(self):
        s = Sequence("a", "M")
        t = Sequence("b", "")
        assert global_align(s, t).identity() == 0.0

"""Batched k-band certification is bit-identical to the scalar loop.

PR 9's second tentpole half: ``_banded_forward_batch`` fuses the banded
forward recurrence of many pairs into one padded pass, and
``_certified_band_batch`` runs the adaptive doubling breadth-first over
it.  Exactness here is *bit*-level, not tolerance-level: the driver
feeds on the touched-boundary flags, so any drift in a dead cell or a
reassociated sum changes certified band widths, not just scores.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.dp import affine_score
from repro.align.kband import (
    _band_chunks,
    _banded_forward,
    _banded_forward_batch,
    _certified_band,
    _certified_band_batch,
    banded_align,
    banded_align_batch,
    kband_batch_enabled,
    kband_global_score,
    kband_global_score_batch,
)
from repro.datagen.rose import generate_family
from repro.seq.sequence import Sequence


def _random_batch(rng, count, max_side=40):
    mats = []
    for _ in range(count):
        m, n = rng.integers(1, max_side, 2)
        mats.append(rng.normal(0, 3, (int(m), int(n))))
    return mats


class TestBandedForwardBatch:
    @given(st.integers(0, 2**32 - 1))
    def test_bit_identical_to_scalar(self, seed):
        rng = np.random.default_rng(seed)
        mats = _random_batch(rng, int(rng.integers(2, 8)))
        go, ge = rng.uniform(1, 8), rng.uniform(0, 0.5)
        k = int(rng.integers(1, 40))
        scores, touched = _banded_forward_batch(mats, go, ge, k)
        for S, score, flag in zip(mats, scores, touched):
            ref_score, ref_flag = _banded_forward(S, go, ge, k)
            assert score == ref_score  # bitwise, not isclose
            assert bool(flag) == ref_flag

    def test_mixed_shapes_share_one_pass(self):
        # Strongly heterogeneous geometry: slopes above and below 1,
        # single-row and single-column matrices in the same batch.
        rng = np.random.default_rng(11)
        mats = [
            rng.normal(0, 2, shape)
            for shape in [(1, 30), (30, 1), (5, 40), (40, 5), (17, 17)]
        ]
        scores, touched = _banded_forward_batch(mats, 4.0, 0.25, 3)
        for S, score, flag in zip(mats, scores, touched):
            ref_score, ref_flag = _banded_forward(S, 4.0, 0.25, 3)
            assert score == ref_score
            assert bool(flag) == ref_flag

    def test_wide_band_covers_matrix(self):
        # k >= max(m, n) triggers the straight-copy SB fast path and
        # must equal the unbanded optimum.
        rng = np.random.default_rng(23)
        mats = _random_batch(rng, 5, max_side=25)
        scores, touched = _banded_forward_batch(mats, 5.0, 0.3, 64)
        for S, score in zip(mats, scores):
            assert np.isclose(score, affine_score(S, 5.0, 0.3))
        assert not touched.any()


class TestCertifiedBandBatch:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15)
    def test_scores_and_widths_match_scalar(self, seed):
        rng = np.random.default_rng(seed)
        mats = _random_batch(rng, int(rng.integers(2, 7)))
        go, ge = rng.uniform(1, 8), rng.uniform(0, 0.5)
        k0 = int(rng.integers(1, 12))
        scores, ks = _certified_band_batch(mats, go, ge, k0)
        for S, score, k in zip(mats, scores, ks):
            ref_score, ref_k = _certified_band(S, go, ge, k0)
            assert score == ref_score
            assert int(k) == ref_k

    def test_single_pair_falls_back_to_scalar(self):
        rng = np.random.default_rng(3)
        S = rng.normal(0, 2, (20, 24))
        scores, ks = _certified_band_batch([S], 4.0, 0.2, 4)
        ref_score, ref_k = _certified_band(S, 4.0, 0.2, 4)
        assert scores[0] == ref_score and int(ks[0]) == ref_k

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_KBAND_BATCH", "0")
        assert not kband_batch_enabled()
        rng = np.random.default_rng(9)
        mats = _random_batch(rng, 4)
        scores, ks = _certified_band_batch(mats, 5.0, 0.3, 8)
        monkeypatch.setenv("REPRO_KBAND_BATCH", "1")
        assert kband_batch_enabled()
        scores2, ks2 = _certified_band_batch(mats, 5.0, 0.3, 8)
        assert np.array_equal(scores, scores2)
        assert np.array_equal(ks, ks2)

    def test_counters_and_span(self):
        from repro.obs.metrics import registry
        from repro.obs.tracing import (
            disable_tracing,
            drain_spans,
            enable_tracing,
        )

        rng = np.random.default_rng(17)
        mats = _random_batch(rng, 6, max_side=30)
        calls = registry().counter("kband.batch_calls")
        pairs = registry().counter("kband.batch_pairs")
        c0, p0 = calls.value, pairs.value
        drain_spans()
        enable_tracing()
        try:
            _certified_band_batch(mats, 5.0, 0.3, 8)
        finally:
            disable_tracing()
        spans = [r for r in drain_spans() if r.name == "kband.batch"]
        assert spans, "fused certification rounds must be traced"
        assert calls.value > c0
        assert pairs.value - p0 >= len(mats)
        for rec in spans:
            assert rec.attrs["pairs"] >= 2
            assert rec.attrs["k"] >= 1


class TestBandChunks:
    def test_respects_pair_cap(self):
        ms = np.full(10, 20)
        ns = np.full(10, 20)
        parts = list(_band_chunks(list(range(10)), ms, ns, 4, 3, 10**9))
        assert [len(p) for p in parts] == [3, 3, 3, 1]
        assert sorted(t for p in parts for t in p) == list(range(10))

    def test_respects_cell_budget(self):
        # Each pair is 100 rows x full width; a tight budget forces
        # small chunks even though the pair cap would allow one chunk.
        ms = np.full(8, 100)
        ns = np.full(8, 100)
        budget = 100 * 101 * 2  # two pairs' worth of padded cells
        parts = list(_band_chunks(list(range(8)), ms, ns, 64, 128, budget))
        assert all(len(p) <= 2 for p in parts)
        assert sorted(t for p in parts for t in p) == list(range(8))


class TestPublicBatchApis:
    def test_kband_global_score_batch_matches_per_pair(self):
        rng = np.random.default_rng(31)
        mats = _random_batch(rng, 6)
        # Interleave empty matrices with live ones.
        mats[2] = np.empty((0, 5))
        mats[4] = np.empty((7, 0))
        out = kband_global_score_batch(mats, 5.0, 0.3, initial_k=4)
        for S, score in zip(mats, out):
            assert score == kband_global_score(S, 5.0, 0.3, initial_k=4)

    def test_banded_align_batch_matches_per_pair(self):
        fam = generate_family(8, 80, relatedness=250, seed=13,
                              track_alignment=False)
        seqs = list(fam.sequences)
        pairs = [(seqs[i], seqs[i + 1]) for i in range(0, 8, 2)]
        pairs.append((seqs[0], Sequence("empty", "")))
        batch = banded_align_batch(pairs)
        for (x, y), res in zip(pairs, batch):
            ref = banded_align(x, y)
            assert res.score == ref.score
            assert np.array_equal(res.x_map, ref.x_map)
            assert np.array_equal(res.y_map, ref.y_map)

    def test_banded_align_batch_env_off_identical(self, monkeypatch):
        fam = generate_family(6, 60, relatedness=200, seed=29,
                              track_alignment=False)
        seqs = list(fam.sequences)
        pairs = [(seqs[i], seqs[i + 1]) for i in range(0, 6, 2)]
        on = banded_align_batch(pairs)
        monkeypatch.setenv("REPRO_KBAND_BATCH", "0")
        off = banded_align_batch(pairs)
        for a, b in zip(on, off):
            assert a.score == b.score
            assert np.array_equal(a.x_map, b.x_map)
            assert np.array_equal(a.y_map, b.y_map)

    def test_estimator_matrix_identical_batch_on_off(self, monkeypatch):
        from repro.distance import all_pairs

        fam = generate_family(7, 70, relatedness=220, seed=41,
                              track_alignment=False)
        seqs = list(fam.sequences)
        d_on = all_pairs(seqs, "kband")
        monkeypatch.setenv("REPRO_KBAND_BATCH", "0")
        d_off = all_pairs(seqs, "kband")
        assert np.array_equal(d_on, d_off)

"""Tests for the shared affine DP kernel (repro.align.dp).

The vectorised kernel is validated against a direct scalar Gotoh
implementation, including position-specific penalties -- the strongest
correctness guarantee in the suite, since every aligner builds on it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.align.dp import NEG, affine_align, affine_score


def scalar_gotoh(S, open_x, ext_x, open_y, ext_y):
    """Reference O(mn) scalar implementation (fully penalised ends)."""
    m, n = S.shape
    open_x = np.broadcast_to(np.asarray(open_x, float), (m,))
    ext_x = np.broadcast_to(np.asarray(ext_x, float), (m,))
    open_y = np.broadcast_to(np.asarray(open_y, float), (n,))
    ext_y = np.broadcast_to(np.asarray(ext_y, float), (n,))
    H = np.full((m + 1, n + 1), NEG)
    E = np.full((m + 1, n + 1), NEG)
    F = np.full((m + 1, n + 1), NEG)
    H[0, 0] = 0.0
    for i in range(1, m + 1):
        H[i, 0] = -(open_x[0] + ext_x[:i].sum())
    for j in range(1, n + 1):
        H[0, j] = -(open_y[0] + ext_y[:j].sum())
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            E[i, j] = max(E[i - 1, j], H[i - 1, j] - open_x[i - 1]) - ext_x[i - 1]
            F[i, j] = max(F[i, j - 1], H[i, j - 1] - open_y[j - 1]) - ext_y[j - 1]
            H[i, j] = max(H[i - 1, j - 1] + S[i - 1, j - 1], E[i, j], F[i, j])
    return H[m, n]


def path_score(S, res, open_x, ext_x, open_y, ext_y, tf=1.0):
    """Recompute an alignment's score from its maps (independent check)."""
    m, n = S.shape
    open_x = np.broadcast_to(np.asarray(open_x, float), (m,))
    ext_x = np.broadcast_to(np.asarray(ext_x, float), (m,))
    open_y = np.broadcast_to(np.asarray(open_y, float), (n,))
    ext_y = np.broadcast_to(np.asarray(ext_y, float), (n,))
    total = 0.0
    cols = list(zip(res.x_map, res.y_map))
    k = 0
    n_cols = len(cols)
    while k < n_cols:
        x, y = cols[k]
        if x >= 0 and y >= 0:
            total += S[x, y]
            k += 1
            continue
        # A gap run: consecutive columns gapped on the same side.
        side_x = x >= 0  # consuming x against gaps in y
        run = []
        while k < n_cols:
            x2, y2 = cols[k]
            if (x2 >= 0 and y2 < 0) != side_x or (x2 >= 0 and y2 >= 0):
                break
            run.append((x2, y2))
            k += 1
        terminal = (run[0] == cols[0]) or (run[-1] == cols[-1])
        scale = tf if terminal else 1.0
        if side_x:
            first = run[0][0]
            total -= scale * (open_x[first] + sum(ext_x[x2] for x2, _ in run))
        else:
            first = run[0][1]
            total -= scale * (open_y[first] + sum(ext_y[_y] for _, _y in run))
    return total


def assert_valid_maps(res, m, n):
    xm = res.x_map[res.x_map >= 0]
    ym = res.y_map[res.y_map >= 0]
    assert xm.tolist() == list(range(m))
    assert ym.tolist() == list(range(n))
    # No column may be a double gap.
    assert ((res.x_map >= 0) | (res.y_map >= 0)).all()


class TestAgainstScalarReference:
    @given(st.integers(0, 2**32 - 1))
    def test_scalar_penalties(self, seed):
        rng = np.random.default_rng(seed)
        m, n = rng.integers(1, 14, 2)
        S = rng.normal(0, 3, (m, n))
        go, ge = rng.uniform(0.5, 8), rng.uniform(0.0, 0.5)
        expected = scalar_gotoh(S, go, ge, go, ge)
        assert np.isclose(affine_score(S, go, ge), expected)
        res = affine_align(S, go, ge)
        assert np.isclose(res.score, expected)
        assert_valid_maps(res, m, n)
        assert np.isclose(path_score(S, res, go, ge, go, ge), expected)

    @given(st.integers(0, 2**32 - 1))
    def test_position_specific_penalties(self, seed):
        rng = np.random.default_rng(seed)
        m, n = rng.integers(1, 12, 2)
        S = rng.normal(0, 3, (m, n))
        open_x = rng.uniform(0.5, 8, m)
        ext_x = rng.uniform(0.0, 0.5, m)
        open_y = rng.uniform(0.5, 8, n)
        ext_y = rng.uniform(0.0, 0.5, n)
        expected = scalar_gotoh(S, open_x, ext_x, open_y, ext_y)
        got = affine_score(S, open_x, ext_x, open_y, ext_y)
        assert np.isclose(got, expected)
        res = affine_align(S, open_x, ext_x, open_y, ext_y)
        assert np.isclose(res.score, expected)
        assert_valid_maps(res, m, n)
        assert np.isclose(
            path_score(S, res, open_x, ext_x, open_y, ext_y), expected
        )

    def test_big_matrix_spot_check(self):
        rng = np.random.default_rng(42)
        S = rng.normal(0, 2, (60, 45))
        expected = scalar_gotoh(S, 5.0, 0.3, 5.0, 0.3)
        assert np.isclose(affine_score(S, 5.0, 0.3), expected)


class TestTerminalFactor:
    @given(st.integers(0, 2**32 - 1))
    def test_free_ends_score_matches_path(self, seed):
        rng = np.random.default_rng(seed)
        m, n = rng.integers(1, 10, 2)
        S = rng.normal(0, 3, (m, n))
        go, ge = 4.0, 0.25
        tf = float(rng.choice([0.0, 0.3, 1.0]))
        res = affine_align(S, go, ge, terminal_factor=tf)
        assert_valid_maps(res, m, n)
        recomputed = path_score(S, res, go, ge, go, ge, tf=tf)
        assert res.score >= scalar_gotoh(S, go, ge, go, ge) - 1e-9
        assert np.isclose(res.score, recomputed)
        assert np.isclose(affine_score(S, go, ge, terminal_factor=tf), res.score)

    def test_free_ends_prefer_overlap(self):
        # With free ends, a strong diagonal block should be matched and the
        # overhangs gapped for free.
        S = np.full((6, 6), -5.0)
        for i in range(3):
            S[3 + i, i] = 10.0  # x suffix matches y prefix
        res = affine_align(S, 8.0, 0.5, terminal_factor=0.0)
        assert res.score == pytest.approx(30.0)

    def test_full_penalty_is_global(self):
        S = np.array([[1.0, -1.0], [-1.0, 1.0]])
        assert np.isclose(
            affine_score(S, 2.0, 0.5, terminal_factor=1.0),
            scalar_gotoh(S, 2.0, 0.5, 2.0, 0.5),
        )


class TestEdgeCases:
    def test_empty_both(self):
        res = affine_align(np.zeros((0, 0)), 5, 0.5)
        assert res.score == 0.0 and res.n_columns == 0

    def test_empty_x(self):
        res = affine_align(np.zeros((0, 3)), 5, 0.5)
        assert res.n_columns == 3
        assert (res.x_map == -1).all()
        assert res.score == pytest.approx(-(5 + 3 * 0.5))

    def test_empty_y(self):
        res = affine_align(np.zeros((2, 0)), 5, 0.5)
        assert (res.y_map == -1).all()
        assert res.score == pytest.approx(-(5 + 2 * 0.5))

    def test_single_cell(self):
        res = affine_align(np.array([[7.0]]), 5, 0.5)
        assert res.score == 7.0
        assert res.x_map.tolist() == [0] and res.y_map.tolist() == [0]

    def test_bad_penalty_shape(self):
        with pytest.raises(ValueError, match="length"):
            affine_score(np.zeros((3, 2)), np.zeros(2), 0.5)

    def test_deterministic_tie_break(self):
        S = np.zeros((3, 3))
        r1 = affine_align(S, 1.0, 0.1)
        r2 = affine_align(S, 1.0, 0.1)
        assert np.array_equal(r1.x_map, r2.x_map)
        assert np.array_equal(r1.y_map, r2.y_map)

"""Tests for repro.align.profile_align."""

import numpy as np
import pytest

from repro.align.profile import Profile
from repro.align.profile_align import (
    ProfileAlignConfig,
    align_profiles,
    profile_score_matrix,
    score_profiles,
)
from repro.seq.alignment import Alignment
from repro.seq.matrices import GapPenalties
from repro.seq.sequence import Sequence


def prof(rows, ids=None):
    ids = ids or [f"r{i}" for i in range(len(rows))]
    return Profile(Alignment.from_rows(ids, rows))


class TestScoreMatrix:
    def test_matches_manual_loop(self):
        cfg = ProfileAlignConfig()
        px = prof(["MK-V", "MALV"], ids=["a", "b"])
        py = prof(["MKV"], ids=["c"])
        S = profile_score_matrix(px, py, cfg)
        M = cfg.matrix.residue_part
        for i in range(px.n_columns):
            for j in range(py.n_columns):
                manual = px.frequencies[i] @ M @ py.frequencies[j]
                assert np.isclose(S[i, j], manual)

    def test_gappy_columns_weigh_less(self):
        cfg = ProfileAlignConfig()
        full = prof(["MM", "MM"])
        gappy = prof(["MM", "-M"])
        sf = profile_score_matrix(full, prof(["M"], ids=["z"]), cfg)
        sg = profile_score_matrix(gappy, prof(["M"], ids=["z"]), cfg)
        assert sg[0, 0] < sf[0, 0]


class TestGapVectors:
    def test_occupancy_scaling(self):
        cfg = ProfileAlignConfig()
        p = prof(["M-", "MM"])
        go, ge = cfg.gap_vectors(p)
        assert go[0] == cfg.gaps.open  # fully occupied column
        assert go[1] == pytest.approx(cfg.gaps.open * 0.5)

    def test_floor(self):
        cfg = ProfileAlignConfig(min_gap_scale=0.25)
        p = prof(["M-", "M-", "M-", "M-"])
        go, _ge = cfg.gap_vectors(p)
        assert go[1] == pytest.approx(cfg.gaps.open * 0.25)

    def test_disabled(self):
        cfg = ProfileAlignConfig(occupancy_scaled_gaps=False)
        go, ge = cfg.gap_vectors(prof(["M-", "MM"]))
        assert np.isscalar(go) and go == cfg.gaps.open


class TestAlignProfiles:
    def test_identical_profiles_no_gaps(self):
        px = prof(["MKTAYIAK"], ids=["a"])
        py = prof(["MKTAYIAK"], ids=["b"])
        merged, res = align_profiles(px, py)
        assert merged.n_columns == 8
        assert (res.x_map >= 0).all() and (res.y_map >= 0).all()

    def test_rows_preserved(self, tiny_seqs):
        from repro.msa import get_aligner

        aln = get_aligner("muscle-draft").align(tiny_seqs)
        px = Profile(aln.select_rows(aln.ids[:2]).drop_all_gap_columns())
        py = Profile(aln.select_rows(aln.ids[2:]).drop_all_gap_columns())
        merged, _res = align_profiles(px, py)
        un = merged.alignment.ungapped()
        for s in tiny_seqs:
            assert un[s.id].residues == s.residues

    def test_score_matches_align(self):
        px = prof(["MKTAYIAK", "MKTA-IAK"], ids=["a", "b"])
        py = prof(["MKAYIAK"], ids=["c"])
        cfg = ProfileAlignConfig()
        _merged, res = align_profiles(px, py, cfg)
        assert np.isclose(res.score, score_profiles(px, py, cfg))

    def test_alphabet_mismatch(self):
        from repro.seq.matrices import DNA_SIMPLE
        from repro.seq.alphabet import DNA

        cfg = ProfileAlignConfig(matrix=DNA_SIMPLE, gaps=GapPenalties(5, 1))
        px = prof(["MK"], ids=["a"])
        py = Profile(
            Alignment.from_rows(["b"], ["AC"], DNA)
        )
        with pytest.raises(ValueError, match="alphabet"):
            align_profiles(px, py, cfg)

"""Tests for repro.align.guide_tree."""

import numpy as np
import pytest
from scipy.cluster.hierarchy import linkage
from scipy.spatial.distance import squareform

from repro.align.guide_tree import GuideTree, neighbor_joining, upgma, wpgma


def random_distance_matrix(n, seed):
    rng = np.random.default_rng(seed)
    m = rng.uniform(0.1, 2.0, (n, n))
    m = (m + m.T) / 2
    np.fill_diagonal(m, 0.0)
    return m


class TestGuideTreeStructure:
    def tree4(self):
        return GuideTree(
            4,
            np.array([[0, 1], [2, 3], [4, 5]]),
            np.array([0.1, 0.2, 0.3]),
            ["a", "b", "c", "d"],
        )

    def test_basic(self):
        t = self.tree4()
        assert t.n_nodes == 7 and t.root == 6
        assert t.children(6) == (4, 5)

    def test_leaves_have_no_children(self):
        with pytest.raises(ValueError):
            self.tree4().children(1)

    def test_leaves_under(self):
        t = self.tree4()
        assert t.leaves_under(4).tolist() == [0, 1]
        assert t.leaves_under(6).tolist() == [0, 1, 2, 3]
        assert t.leaves_under(2).tolist() == [2]

    def test_bipartitions(self):
        t = self.tree4()
        parts = t.bipartitions(include_leaves=False)
        assert [p.tolist() for p in parts] == [[0, 1], [2, 3]]
        with_leaves = t.bipartitions(include_leaves=True)
        assert len(with_leaves) == 4 + 2

    def test_newick(self):
        assert self.tree4().to_newick() == "((a,b),(c,d));"

    def test_single_leaf(self):
        t = GuideTree(1, np.zeros((0, 2)), np.zeros(0), ["a"])
        assert t.root == 0
        assert t.leaves_under(0).tolist() == [0]

    def test_invalid_merge_reuse(self):
        with pytest.raises(ValueError, match="reuses"):
            GuideTree(
                3,
                np.array([[0, 1], [0, 2]]),
                np.array([0.1, 0.2]),
                ["a", "b", "c"],
            )

    def test_invalid_merge_forward_reference(self):
        with pytest.raises(ValueError, match="invalid children"):
            GuideTree(
                3,
                np.array([[0, 4], [1, 2]]),
                np.array([0.1, 0.2]),
                ["a", "b", "c"],
            )

    def test_label_length(self):
        with pytest.raises(ValueError, match="labels"):
            GuideTree(3, np.array([[0, 1], [2, 3]]), np.zeros(2), ["a"])


class TestUpgma:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("n", [3, 7, 16, 40])
    def test_heights_match_scipy_average(self, n, seed):
        m = random_distance_matrix(n, seed)
        ours = upgma(m)
        Z = linkage(squareform(m, checks=False), method="average")
        assert np.allclose(
            np.sort(ours.heights), np.sort(Z[:, 2] / 2.0), atol=1e-9
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_wpgma_matches_scipy_weighted(self, seed):
        m = random_distance_matrix(12, seed)
        ours = wpgma(m)
        Z = linkage(squareform(m, checks=False), method="weighted")
        assert np.allclose(
            np.sort(ours.heights), np.sort(Z[:, 2] / 2.0), atol=1e-9
        )

    def test_heights_monotone(self):
        m = random_distance_matrix(20, 3)
        t = upgma(m)
        assert (np.diff(t.heights) >= -1e-9).all()

    def test_two_leaves(self):
        m = np.array([[0.0, 1.0], [1.0, 0.0]])
        t = upgma(m, ["x", "y"])
        assert t.merges.tolist() == [[0, 1]]
        assert t.heights[0] == pytest.approx(0.5)

    def test_clear_clusters_separated(self):
        # Two tight clusters far apart must merge internally first.
        m = np.full((4, 4), 10.0)
        np.fill_diagonal(m, 0.0)
        m[0, 1] = m[1, 0] = 0.1
        m[2, 3] = m[3, 2] = 0.2
        t = upgma(m)
        first_two = {tuple(sorted(t.merges[0])), tuple(sorted(t.merges[1]))}
        assert first_two == {(0, 1), (2, 3)}

    def test_asymmetric_rejected(self):
        m = np.zeros((3, 3))
        m[0, 1] = 1.0
        with pytest.raises(ValueError, match="symmetric"):
            upgma(m)

    def test_nonzero_diagonal_rejected(self):
        m = np.eye(3)
        with pytest.raises(ValueError, match="diagonal"):
            upgma(m)


class TestNeighborJoining:
    def test_recovers_additive_quartet(self):
        # Quartet ((a,b),(c,d)) with additive distances.
        #   a-b: 2, c-d: 2, cross pairs: 6.
        m = np.array(
            [
                [0.0, 2.0, 6.0, 6.0],
                [2.0, 0.0, 6.0, 6.0],
                [6.0, 6.0, 0.0, 2.0],
                [6.0, 6.0, 2.0, 0.0],
            ]
        )
        t = neighbor_joining(m, ["a", "b", "c", "d"])
        first = tuple(sorted(t.merges[0]))
        assert first in {(0, 1), (2, 3)}
        newick = t.to_newick()
        assert ("(a,b)" in newick or "(b,a)" in newick)

    def test_all_leaves_present(self):
        m = random_distance_matrix(9, 1)
        t = neighbor_joining(m)
        assert t.leaves_under(t.root).tolist() == list(range(9))

    def test_two_leaves(self):
        m = np.array([[0.0, 3.0], [3.0, 0.0]])
        t = neighbor_joining(m, ["x", "y"])
        assert t.merges.tolist() == [[0, 1]]

    def test_three_leaves(self):
        m = random_distance_matrix(3, 2)
        t = neighbor_joining(m)
        assert t.n_nodes == 5

    def test_single_leaf(self):
        t = neighbor_joining(np.zeros((1, 1)), ["only"])
        assert t.n_leaves == 1

"""Tests for the adaptive k-band aligner (repro.align.kband)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.align.dp import affine_score
from repro.align.kband import banded_align, banded_score, kband_global_score
from repro.align.pairwise import global_align, global_score
from repro.datagen.rose import generate_family
from repro.seq.sequence import Sequence


class TestExactness:
    @given(st.integers(0, 2**32 - 1))
    def test_matches_full_dp(self, seed):
        rng = np.random.default_rng(seed)
        m, n = rng.integers(1, 30, 2)
        S = rng.normal(0, 3, (m, n))
        go, ge = rng.uniform(1, 8), rng.uniform(0, 0.5)
        assert np.isclose(
            kband_global_score(S, go, ge, initial_k=2),
            affine_score(S, go, ge),
        )

    def test_tiny_initial_band_still_exact(self):
        rng = np.random.default_rng(7)
        S = rng.normal(0, 2, (50, 38))
        assert np.isclose(
            kband_global_score(S, 5.0, 0.3, initial_k=1),
            affine_score(S, 5.0, 0.3),
        )

    def test_sequences_match_global(self):
        fam = generate_family(2, 200, relatedness=200, seed=3,
                              track_alignment=False)
        x, y = list(fam.sequences)
        assert np.isclose(banded_score(x, y), global_score(x, y))

    def test_align_traceback_consistent(self):
        fam = generate_family(2, 150, relatedness=250, seed=5,
                              track_alignment=False)
        x, y = list(fam.sequences)
        banded = banded_align(x, y)
        full = global_align(x, y)
        assert np.isclose(banded.score, full.score)
        gx, gy = banded.gapped_texts()
        assert gx.replace("-", "") == x.residues
        assert gy.replace("-", "") == y.residues

    def test_empty_sequences(self):
        x = Sequence("x", "MKV")
        y = Sequence("y", "")
        res = banded_align(x, y)
        assert res.n_columns == 3
        assert (res.y_map == -1).all()

    def test_very_different_lengths(self):
        # The initial band must widen to cover |n - m|.
        x = Sequence("x", "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ")
        y = Sequence("y", "MKQR")
        assert np.isclose(banded_score(x, y), global_score(x, y))

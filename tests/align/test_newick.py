"""Tests for newick round-tripping (GuideTree.to_newick/from_newick)."""

import numpy as np
import pytest

from repro.align.guide_tree import GuideTree, neighbor_joining, upgma


def random_distance_matrix(n, seed):
    rng = np.random.default_rng(seed)
    m = rng.uniform(0.1, 2.0, (n, n))
    m = (m + m.T) / 2
    np.fill_diagonal(m, 0.0)
    return m


class TestNewickRoundTrip:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("n", [2, 3, 8, 15])
    def test_topology_roundtrip(self, n, seed):
        t = upgma(random_distance_matrix(n, seed))
        again = GuideTree.from_newick(t.to_newick())
        assert again.to_newick() == t.to_newick()
        assert again.n_leaves == n

    def test_branch_length_roundtrip(self):
        t = upgma(random_distance_matrix(10, 3))
        again = GuideTree.from_newick(t.to_newick(branch_lengths=True))
        assert again.to_newick() == t.to_newick()
        assert np.allclose(
            sorted(again.heights), sorted(t.heights), atol=1e-5
        )

    def test_nj_roundtrip(self):
        t = neighbor_joining(random_distance_matrix(7, 1))
        again = GuideTree.from_newick(t.to_newick())
        assert again.to_newick() == t.to_newick()

    def test_single_leaf(self):
        t = GuideTree.from_newick("only;")
        assert t.n_leaves == 1 and t.labels == ["only"]

    def test_hand_written(self):
        t = GuideTree.from_newick("((a:1,b:1):2,(c:0.5,d:0.5):2.5);")
        assert t.n_leaves == 4
        assert set(t.labels) == {"a", "b", "c", "d"}
        assert t.to_newick() == "((a,b),(c,d));"

    def test_usable_for_progressive(self, tiny_seqs):
        from repro.align.progressive import progressive_align

        ids = tiny_seqs.ids
        newick = f"((({ids[0]},{ids[1]}),{ids[2]}),({ids[3]},{ids[4]}));"
        tree = GuideTree.from_newick(newick)
        aln = progressive_align(list(tiny_seqs), tree)
        un = aln.ungapped()
        for s in tiny_seqs:
            assert un[s.id].residues == s.residues


class TestNewickErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ValueError, match=";"):
            GuideTree.from_newick("(a,b)")

    def test_multifurcation(self):
        with pytest.raises(ValueError, match="multifurcating"):
            GuideTree.from_newick("(a,b,c);")

    def test_empty_label(self):
        with pytest.raises(ValueError, match="empty leaf"):
            GuideTree.from_newick("(,b);")

    def test_duplicate_labels(self):
        with pytest.raises(ValueError, match="duplicate"):
            GuideTree.from_newick("(a,a);")

    def test_trailing_garbage(self):
        with pytest.raises(ValueError, match="trailing|expected"):
            GuideTree.from_newick("(a,b)junk(;")

"""Tests for repro.align.profile."""

import numpy as np
import pytest

from repro.align.profile import Profile, merge_profiles
from repro.seq.alignment import Alignment
from repro.seq.alphabet import PROTEIN
from repro.seq.sequence import Sequence


def mk(rows, ids=None):
    ids = ids or [f"r{i}" for i in range(len(rows))]
    return Profile(Alignment.from_rows(ids, rows))


class TestProfile:
    def test_from_sequence(self):
        p = Profile.from_sequence(Sequence("a", "MKV"))
        assert p.n_sequences == 1 and p.n_columns == 3
        assert np.allclose(p.occupancy, 1.0)

    def test_counts(self):
        p = mk(["MK", "MV"])
        assert p.counts[0, PROTEIN.index("M")] == 2
        assert p.counts[1, PROTEIN.index("K")] == 1
        assert p.counts[1, PROTEIN.index("V")] == 1

    def test_frequency_mass_equals_occupancy(self):
        p = mk(["M-K", "MVK", "M--"])
        assert np.allclose(p.frequencies.sum(axis=1), p.occupancy)

    def test_gap_counts(self):
        p = mk(["M-", "M-"])
        assert p.counts[1, PROTEIN.gap_code] == 2
        assert p.occupancy[1] == 0.0

    def test_from_sequences_equal_length(self):
        p = Profile.from_sequences(
            [Sequence("a", "MKV"), Sequence("b", "MKL")]
        )
        assert p.n_sequences == 2


class TestMergeProfiles:
    def test_identity_merge(self):
        px = mk(["MK"], ids=["a"])
        py = mk(["MK"], ids=["b"])
        merged = merge_profiles(
            px, py, np.array([0, 1]), np.array([0, 1])
        )
        assert merged.alignment.ids == ["a", "b"]
        assert merged.alignment.row_text("a") == "MK"
        assert merged.alignment.row_text("b") == "MK"

    def test_gapped_merge(self):
        px = mk(["MK"], ids=["a"])
        py = mk(["K"], ids=["b"])
        # Path: x0 vs gap, x1 vs y0.
        merged = merge_profiles(px, py, np.array([0, 1]), np.array([-1, 0]))
        assert merged.alignment.row_text("a") == "MK"
        assert merged.alignment.row_text("b") == "-K"

    def test_existing_gaps_preserved(self):
        px = mk(["M-K", "MVK"], ids=["a", "b"])
        py = mk(["MK"], ids=["c"])
        merged = merge_profiles(
            px, py, np.array([0, 1, 2]), np.array([0, -1, 1])
        )
        assert merged.alignment.row_text("a") == "M-K"
        assert merged.alignment.row_text("c") == "M-K"

    def test_incomplete_path_rejected(self):
        px = mk(["MK"], ids=["a"])
        py = mk(["MK"], ids=["b"])
        with pytest.raises(ValueError, match="consume"):
            merge_profiles(px, py, np.array([0]), np.array([0]))

    def test_length_mismatch_rejected(self):
        px = mk(["M"], ids=["a"])
        py = mk(["M"], ids=["b"])
        with pytest.raises(ValueError, match="equal length"):
            merge_profiles(px, py, np.array([0]), np.array([0, -1]))

    def test_merged_counts_consistent(self):
        px = mk(["MKV", "M-V"], ids=["a", "b"])
        py = mk(["KV"], ids=["c"])
        merged = merge_profiles(
            px, py, np.array([0, 1, 2]), np.array([-1, 0, 1])
        )
        # Counts recomputed from the merged alignment must match bincount.
        aln = merged.alignment
        man = np.zeros_like(merged.counts)
        for r in range(aln.n_rows):
            for c in range(aln.n_columns):
                man[c, aln.matrix[r, c]] += 1
        assert np.array_equal(man, merged.counts)

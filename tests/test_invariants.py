"""Cross-layer invariants, property-tested end to end.

These tests tie multiple subsystems together under randomised inputs:
whatever the family, the processor count, or the configuration, the
pipeline must preserve sequences exactly, keep orders stable, respect
occupancy bounds, and stay deterministic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import sample_align_d
from repro.core.config import SampleAlignDConfig
from repro.datagen.rose import generate_family
from repro.samplesort import max_bucket_bound
from repro.seq.alignment import Alignment
from repro.seq.alphabet import DNA, PROTEIN
from repro.seq.formats import parse_clustal, parse_phylip, to_clustal, to_phylip
from repro.seq.fasta import parse_fasta_alignment
from repro.seq.sequence import Sequence, SequenceSet


@st.composite
def family_params(draw):
    return dict(
        n_sequences=draw(st.integers(4, 20)),
        mean_length=draw(st.integers(30, 90)),
        relatedness=draw(st.sampled_from([100.0, 400.0, 800.0])),
        seed=draw(st.integers(0, 10_000)),
    )


class TestPipelineInvariants:
    @given(family_params(), st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_any_family_any_p(self, params, n_procs):
        fam = generate_family(track_alignment=False, **params)
        res = sample_align_d(fam.sequences, n_procs=n_procs)
        aln = res.alignment
        assert aln.ids == fam.sequences.ids
        un = aln.ungapped()
        for s in fam.sequences:
            assert un[s.id].residues == s.residues
        n = len(fam.sequences)
        assert res.bucket_sizes.sum() == n
        assert res.bucket_sizes.max() <= max_bucket_bound(n, n_procs) + n_procs

    @given(family_params())
    @settings(max_examples=5, deadline=None)
    def test_determinism_property(self, params):
        fam = generate_family(track_alignment=False, **params)
        a = sample_align_d(fam.sequences, n_procs=3)
        b = sample_align_d(fam.sequences, n_procs=3)
        assert a.alignment == b.alignment

    @given(family_params())
    @settings(max_examples=5, deadline=None)
    def test_input_order_irrelevant_to_roundtrip(self, params):
        fam = generate_family(track_alignment=False, **params)
        seqs = list(fam.sequences)
        shuffled = SequenceSet(seqs[::-1])
        res = sample_align_d(shuffled, n_procs=3)
        un = res.alignment.ungapped()
        for s in seqs:
            assert un[s.id].residues == s.residues


class TestFormatInvariants:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_alignment_format_roundtrips(self, seed):
        rng = np.random.default_rng(seed)
        n_rows = int(rng.integers(2, 6))
        n_cols = int(rng.integers(1, 80))
        mat = rng.integers(0, PROTEIN.gap_code + 1, (n_rows, n_cols)).astype(
            np.uint8
        )
        # Avoid all-gap rows (formats with per-row text handle them, but
        # Sequence round-trips through fasta need at least one residue).
        mat[:, 0] = rng.integers(0, PROTEIN.gap_code, n_rows)
        aln = Alignment([f"r{i}" for i in range(n_rows)], mat)

        assert parse_clustal(to_clustal(aln)) == aln
        again = parse_phylip(to_phylip(aln))
        assert again.n_columns == aln.n_columns
        assert [again.row_text(i) for i in range(n_rows)] == [
            aln.row_text(i) for i in range(n_rows)
        ]
        fasta_again = parse_fasta_alignment(aln.to_fasta())
        assert fasta_again == aln


class TestDnaPipeline:
    """The stack is generic over alphabets: run it end to end on DNA."""

    @staticmethod
    def _dna_family(n=10, L=60, seed=0):
        rng = np.random.default_rng(seed)
        root = rng.integers(0, 4, L).astype(np.uint8)
        seqs = []
        for i in range(n):
            codes = root.copy()
            hit = rng.random(L) < 0.15
            codes[hit] = rng.integers(0, 4, int(hit.sum()))
            text = DNA.decode(codes)
            seqs.append(Sequence(f"dna{i}", text, alphabet=DNA))
        return SequenceSet(seqs)

    def test_dna_sample_align_d(self):
        from repro.align.profile_align import ProfileAlignConfig
        from repro.kmer.rank import RankConfig
        from repro.seq.matrices import DNA_SIMPLE, GapPenalties

        seqs = self._dna_family()
        scoring = ProfileAlignConfig(
            matrix=DNA_SIMPLE, gaps=GapPenalties(8, 1)
        )
        config = SampleAlignDConfig(
            rank_config=RankConfig(k=6, alphabet=DNA),
            scoring=scoring,
            local_aligner="muscle-draft",
            local_aligner_kwargs={"scoring": scoring, "kmer_k": 6},
        )
        res = sample_align_d(seqs, n_procs=2, config=config)
        un = res.alignment.ungapped()
        for s in seqs:
            assert un[s.id].residues == s.residues
        assert res.alignment.alphabet == DNA

    def test_dna_kmer_rank(self):
        from repro.kmer.rank import RankConfig, centralized_rank

        seqs = self._dna_family()
        ranks = centralized_rank(list(seqs), RankConfig(k=6, alphabet=DNA))
        assert ranks.shape == (len(seqs),)
        assert (ranks >= 0).all()

"""Tests for the synthetic genome and the PREFAB-like benchmark."""

import numpy as np
import pytest

from repro.datagen.genome import SyntheticGenome
from repro.datagen.prefab import make_prefab_like


class TestSyntheticGenome:
    @pytest.fixture(scope="class")
    def genome(self):
        return SyntheticGenome(n_proteins=150, mean_length=120, seed=1)

    def test_count(self, genome):
        assert len(genome.proteins) == 150

    def test_deterministic(self):
        a = SyntheticGenome(n_proteins=40, mean_length=100, seed=9)
        b = SyntheticGenome(n_proteins=40, mean_length=100, seed=9)
        assert list(a.proteins) == list(b.proteins)

    def test_mean_length_in_range(self, genome):
        mean = genome.proteins.mean_length()
        assert 70 <= mean <= 180

    def test_unique_ids(self, genome):
        assert len(set(genome.proteins.ids)) == 150

    def test_families(self, genome):
        labels = genome.family_labels()
        assert labels.shape == (150,)
        assert genome.n_families > 3

    def test_family_members_share_prefix(self, genome):
        labels = genome.family_labels()
        ids = genome.proteins.ids
        for fam in np.unique(labels)[:5]:
            members = [ids[i] for i in np.flatnonzero(labels == fam)]
            prefixes = {m.rsplit("_", 1)[0] for m in members}
            assert len(prefixes) == 1

    def test_sampling(self, genome):
        s1 = genome.sample_proteins(20, seed=3)
        s2 = genome.sample_proteins(20, seed=3)
        assert s1.ids == s2.ids
        assert len(s1) == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticGenome(n_proteins=0)

    def test_composition_diversity(self, genome):
        """Distinct families must have measurably different compositions."""
        from repro.kmer.rank import centralized_rank

        ranks = centralized_rank(list(genome.proteins[:80]))
        assert ranks.std() > 0.02


class TestPrefabLike:
    @pytest.fixture(scope="class")
    def cases(self):
        return make_prefab_like(
            n_cases=6, seqs_per_case=(8, 12), mean_length=70, seed=0
        )

    def test_case_count(self, cases):
        assert len(cases) == 6

    def test_set_sizes(self, cases):
        for c in cases:
            assert 8 <= len(c.sequences) <= 12

    def test_ref_pair_members(self, cases):
        for c in cases:
            a, b = c.ref_pair
            assert a in c.sequences and b in c.sequences
            assert a != b

    def test_reference_consistency(self, cases):
        for c in cases:
            un = c.reference.ungapped()
            for s in c.sequences:
                assert un[s.id].residues == s.residues

    def test_divergence_sweep(self, cases):
        assert len({c.relatedness for c in cases}) >= 3

    def test_reference_pair_alignment(self, cases):
        pair = cases[0].reference_pair_alignment()
        assert pair.n_rows == 2
        assert not pair.gap_mask().all(axis=0).any()

    def test_shuffled_presentation(self, cases):
        # At least one case must present sequences out of generation order.
        assert any(
            c.sequences.ids != c.reference.ids for c in cases
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            make_prefab_like(n_cases=0)
        with pytest.raises(ValueError):
            make_prefab_like(seqs_per_case=(5, 3))

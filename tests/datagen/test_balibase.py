"""Tests for the BAliBASE-like categorised benchmark."""

import numpy as np
import pytest

from repro.datagen.balibase import CATEGORIES, make_balibase_like


@pytest.fixture(scope="module")
def cases():
    return make_balibase_like(cases_per_category=1, seed=3)


class TestGeneration:
    def test_all_categories_present(self, cases):
        assert {c.category for c in cases} == set(CATEGORIES)

    def test_reference_roundtrip_every_case(self, cases):
        for c in cases:
            un = c.reference.ungapped()
            for s in c.sequences:
                assert un[s.id].residues == s.residues, (c.name, s.id)

    def test_reference_no_all_gap_columns(self, cases):
        for c in cases:
            assert not c.reference.gap_mask().all(axis=0).any(), c.name

    def test_deterministic(self):
        a = make_balibase_like(cases_per_category=1, seed=5)
        b = make_balibase_like(cases_per_category=1, seed=5)
        for ca, cb in zip(a, b):
            assert ca.sequences.ids == cb.sequences.ids
            assert ca.reference == cb.reference

    def test_counts(self):
        cases = make_balibase_like(cases_per_category=2, seed=0)
        assert len(cases) == 2 * len(CATEGORIES)

    def test_category_subset(self):
        cases = make_balibase_like(
            cases_per_category=1, categories=("RV11", "RV50"), seed=0
        )
        assert {c.category for c in cases} == {"RV11", "RV50"}

    def test_validation(self):
        with pytest.raises(ValueError):
            make_balibase_like(cases_per_category=0)
        with pytest.raises(ValueError):
            make_balibase_like(categories=("RV99",))


class TestCategoryStructure:
    def test_rv40_has_terminal_extensions(self, cases):
        case = next(c for c in cases if c.category == "RV40")
        lengths = case.sequences.lengths()
        # Extended members are markedly longer than the core.
        assert lengths.max() >= lengths.min() + 15

    def test_rv50_has_internal_insertions(self, cases):
        case = next(c for c in cases if c.category == "RV50")
        ref = case.reference
        # Insertion columns: occupied by exactly one row.
        counts = (ref.matrix != ref.alphabet.gap_code).sum(axis=0)
        assert (counts == 1).sum() >= 15

    def test_rv20_orphans_more_divergent(self, cases):
        from repro.msa.distances import alignment_identity_matrix

        case = next(c for c in cases if c.category == "RV20")
        ident = alignment_identity_matrix(case.reference)
        mean_ident = (ident.sum(axis=1) - 1) / (ident.shape[0] - 1)
        # The two most isolated members sit well below the median.
        isolated = np.sort(mean_ident)[:2]
        assert isolated.mean() < np.median(mean_ident)

    def test_rv11_harder_than_rv12(self, cases):
        from repro.metrics import qscore
        from repro.msa import get_aligner

        by_cat = {c.category: c for c in cases}
        q = {}
        for cat in ("RV11", "RV12"):
            case = by_cat[cat]
            aln = get_aligner("muscle-draft").align(case.sequences)
            q[cat] = qscore(aln, case.reference)
        assert q["RV11"] <= q["RV12"] + 0.05

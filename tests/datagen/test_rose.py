"""Tests for the rose-style family generator."""

import numpy as np
import pytest

from repro.datagen.rose import BACKGROUND, RoseParams, generate_family
from repro.msa.distances import full_dp_distance_matrix


class TestParams:
    def test_defaults(self):
        p = RoseParams()
        assert p.n_sequences == 20 and p.mean_length == 300

    def test_validation(self):
        with pytest.raises(ValueError):
            RoseParams(n_sequences=0)
        with pytest.raises(ValueError):
            RoseParams(mean_length=1)
        with pytest.raises(ValueError):
            RoseParams(relatedness=-1)
        with pytest.raises(ValueError):
            RoseParams(background=np.ones(5))

    def test_background_normalised(self):
        p = RoseParams(background=BACKGROUND * 7)
        assert np.isclose(p.background.sum(), 1.0)


class TestGeneration:
    def test_counts_and_ids(self):
        fam = generate_family(n_sequences=9, mean_length=60, seed=0)
        assert len(fam.sequences) == 9
        assert len(set(fam.sequences.ids)) == 9
        assert fam.leaf_depths.shape == (9,)

    def test_reproducible(self):
        a = generate_family(8, 70, relatedness=400, seed=5)
        b = generate_family(8, 70, relatedness=400, seed=5)
        assert list(a.sequences) == list(b.sequences)
        assert a.reference == b.reference

    def test_different_seeds_differ(self):
        a = generate_family(8, 70, seed=1)
        b = generate_family(8, 70, seed=2)
        assert list(a.sequences) != list(b.sequences)

    def test_lengths_near_mean(self):
        fam = generate_family(16, 120, relatedness=400, seed=0)
        mean = fam.sequences.mean_length()
        assert 80 <= mean <= 160

    def test_reference_roundtrip(self, small_family):
        un = small_family.reference.ungapped()
        for s in small_family.sequences:
            assert un[s.id].residues == s.residues

    def test_reference_rows_match_sequence_order(self, small_family):
        assert small_family.reference.ids == small_family.sequences.ids

    def test_no_tracking_path(self):
        fam = generate_family(6, 60, seed=0, track_alignment=False)
        assert fam.reference is None
        assert len(fam.sequences) == 6

    def test_divergence_monotone(self):
        """Higher relatedness (rose PAM convention) => lower identity."""
        close = generate_family(6, 80, relatedness=60, seed=3)
        far = generate_family(6, 80, relatedness=900, seed=3)
        d_close = full_dp_distance_matrix(list(close.sequences))
        d_far = full_dp_distance_matrix(list(far.sequences))
        off = ~np.eye(6, dtype=bool)
        assert d_far[off].mean() > d_close[off].mean()

    def test_zero_relatedness_identical(self):
        fam = generate_family(5, 60, relatedness=0.0, seed=4)
        texts = {s.residues for s in fam.sequences}
        assert len(texts) == 1

    def test_single_sequence(self):
        fam = generate_family(1, 50, seed=0)
        assert len(fam.sequences) == 1
        assert fam.reference.n_rows == 1

    def test_id_prefix(self):
        fam = generate_family(3, 50, seed=0, id_prefix="prot")
        assert all(s.id.startswith("prot") for s in fam.sequences)

    def test_custom_params_win(self):
        params = RoseParams(n_sequences=4, mean_length=55, relatedness=100)
        fam = generate_family(
            n_sequences=99, mean_length=999, seed=0, params=params
        )
        assert len(fam.sequences) == 4

    def test_reference_has_no_all_gap_columns(self, small_family):
        ref = small_family.reference
        gap_mask = ref.gap_mask()
        assert not gap_mask.all(axis=0).any()

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.datagen.rose import generate_family
from repro.seq.sequence import Sequence, SequenceSet

# Hypothesis: keep examples modest (DP kernels are exercised heavily) and
# drop the deadline (first-call numpy warmup can be slow on CI).
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def tiny_seqs() -> SequenceSet:
    """Five short, clearly homologous sequences."""
    return SequenceSet(
        [
            Sequence("s1", "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ"),
            Sequence("s2", "MKTAYIAKQRQISFVKHFSRQLEERLGLIEV"),
            Sequence("s3", "MKTAYIARQRQISFVKSHFSRQEERLGLIEVQ"),
            Sequence("s4", "MAYIAKQRQISFVKSHFSRQLEERLG"),
            Sequence("s5", "MKTAYIAKQRQTSFVKSHFSRQLEERLGLIE"),
        ]
    )


@pytest.fixture(scope="session")
def small_family():
    """A 12-member rose family with its true alignment."""
    return generate_family(
        n_sequences=12, mean_length=90, relatedness=350, seed=7
    )


@pytest.fixture(scope="session")
def easy_family():
    """A closely related family (high expected aligner quality)."""
    return generate_family(
        n_sequences=10, mean_length=80, relatedness=120, seed=11
    )


@pytest.fixture(scope="session")
def diverse_family():
    """A phylogenetically diverse family (the paper's regime)."""
    return generate_family(
        n_sequences=40, mean_length=100, relatedness=700, seed=5
    )

"""The tree seam threaded through baselines, engines, serving and CLI."""

import json

import pytest

import repro
from repro.engine import AlignRequest
from repro.engine.registry import engine_tree_options
from repro.msa import (
    CenterStar,
    ClustalWLike,
    MafftLike,
    MuscleLike,
    ParallelClustalW,
)
from repro.serve.gateway import AlignmentGateway
from repro.tree import TreeConfig, get_builder

BASELINES = [
    lambda **kw: ClustalWLike(**kw),
    lambda **kw: MuscleLike(refine=False, **kw),
    lambda **kw: MafftLike(iterations=0, **kw),
    lambda **kw: CenterStar(**kw),
]


class TestBaselineSeam:
    @pytest.mark.parametrize("make", BASELINES)
    def test_tree_backend_identical_alignment(self, make, tiny_seqs):
        """threads/processes merge stages reproduce the serial result
        byte-for-byte (the acceptance criterion, through the baselines)."""
        serial = make().align(tiny_seqs)
        threads = make(tree_backend="threads",
                       tree_workers=2).align(tiny_seqs)
        assert serial == threads
        assert serial.to_fasta() == threads.to_fasta()

    def test_processes_tree_backend_identical(self, tiny_seqs):
        serial = ClustalWLike().align(tiny_seqs)
        procs = ClustalWLike(
            tree_backend="processes", tree_workers=2
        ).align(tiny_seqs)
        assert serial.to_fasta() == procs.to_fasta()

    def test_default_builders_match_history(self, tiny_seqs):
        """tree='nj' on clustalw and tree='upgma' on muscle are the
        historical defaults -- identical output."""
        assert ClustalWLike(tree="nj").align(tiny_seqs) == \
            ClustalWLike().align(tiny_seqs)
        assert MuscleLike(refine=False, tree="upgma").align(tiny_seqs) == \
            MuscleLike(refine=False).align(tiny_seqs)

    def test_builder_choice_changes_muscle(self, small_family):
        seqs = list(small_family.sequences)
        upgma_aln = MuscleLike(refine=False, two_stage=False).align(seqs)
        single = MuscleLike(
            refine=False, two_stage=False, tree="single-linkage"
        ).align(seqs)
        # Different topologies are allowed to give different alignments,
        # but both must round-trip the inputs.
        for aln in (upgma_aln, single):
            un = aln.ungapped()
            for s in seqs:
                assert un[s.id].residues == s.residues

    def test_anchored_merge_fn_survives_process_backend(self, tiny_seqs):
        """The fftnsi/anchored merge hook must be picklable (a partial
        over a module-level function, not a lambda) so the processes
        backend works under any start method."""
        import pickle

        serial = MafftLike(mode="fftnsi", iterations=0).align(tiny_seqs)
        procs = MafftLike(
            mode="fftnsi", iterations=0,
            tree_backend="processes", tree_workers=2,
        ).align(tiny_seqs)
        assert serial.to_fasta() == procs.to_fasta()
        import functools

        from repro.msa.mafft import align_profiles_anchored

        pickle.dumps(functools.partial(
            align_profiles_anchored,
            config=MafftLike(mode="fftnsi").scoring,
        ))

    def test_tree_config_value(self, tiny_seqs):
        cfg = TreeConfig(builder="wpgma", backend="threads", workers=2)
        aln = CenterStar(tree=cfg).align(tiny_seqs)
        assert aln == CenterStar(tree="wpgma").align(tiny_seqs)

    def test_tree_dict_value(self, tiny_seqs):
        aln = MafftLike(iterations=0, tree={"builder": "upgma"}).align(
            tiny_seqs
        )
        assert aln == MafftLike(iterations=0, tree="upgma").align(tiny_seqs)

    def test_center_star_default_is_caterpillar(self, tiny_seqs):
        """tree=None keeps the classic star order; a builder override is
        a different (tree-guided) aligner."""
        star = CenterStar().align(tiny_seqs)
        guided = CenterStar(tree="upgma").align(tiny_seqs)
        un_star, un_guided = star.ungapped(), guided.ungapped()
        for s in tiny_seqs:
            assert un_star[s.id].residues == s.residues
            assert un_guided[s.id].residues == s.residues

    def test_center_star_tree_backend_on_caterpillar(self, tiny_seqs):
        # The caterpillar is a chain (max_width 1) -- the scheduler must
        # degrade gracefully and stay byte-identical.
        serial = CenterStar().align(tiny_seqs)
        par = CenterStar(tree_backend="threads").align(tiny_seqs)
        assert serial.to_fasta() == par.to_fasta()

    @pytest.mark.parametrize("make", BASELINES)
    def test_bad_tree_options_fail_fast(self, make):
        with pytest.raises((ValueError, KeyError)):
            make(tree="nope")
        with pytest.raises(ValueError):
            make(tree_backend="gpu")
        with pytest.raises(ValueError):
            make(tree_workers=0)

    def test_parallel_baseline_builder_choice(self, tiny_seqs):
        res = ParallelClustalW(tree="upgma").align(tiny_seqs, n_procs=3)
        assert res.alignment.n_rows == len(tiny_seqs)

    def test_parallel_baseline_rejects_nested_backend(self):
        with pytest.raises(ValueError, match="nested"):
            ParallelClustalW(
                tree={"builder": "nj", "backend": "threads"}
            )

    def test_parallel_baseline_cooperative_merge_identical(self, tiny_seqs):
        """merge_mode='cooperative' lifts the stage-3 Amdahl cap with a
        byte-identical alignment."""
        root = ParallelClustalW().align(tiny_seqs, n_procs=3)
        coop = ParallelClustalW(merge_mode="cooperative").align(
            tiny_seqs, n_procs=3
        )
        assert root.alignment.to_fasta() == coop.alignment.to_fasta()
        assert coop.ledger.n_messages() > 0

    def test_parallel_baseline_bad_merge_mode(self):
        with pytest.raises(ValueError, match="merge_mode"):
            ParallelClustalW(merge_mode="teleport")


class TestEngineSeam:
    def test_engine_kwargs_reach_the_aligner(self, tiny_seqs):
        base = repro.align(tiny_seqs, engine="clustalw")
        via = repro.align(
            tiny_seqs,
            engine="clustalw",
            tree="nj",
            tree_backend="threads",
        )
        assert base.alignment == via.alignment

    def test_tree_options_change_the_content_hash(self, tiny_seqs):
        plain = AlignRequest(tuple(tiny_seqs), engine="clustalw")
        opinionated = AlignRequest(
            tuple(tiny_seqs),
            engine="clustalw",
            engine_kwargs={"tree": "upgma"},
        )
        assert plain.content_hash() != opinionated.content_hash()

    def test_registry_advertises_the_seam(self):
        for name in ("clustalw", "muscle", "mafft-nwnsi", "center-star"):
            assert engine_tree_options(name) == {
                "tree", "tree_backend", "tree_workers"
            }
        assert engine_tree_options("parallel-baseline") == {"tree"}
        assert engine_tree_options("tcoffee") == frozenset()
        assert engine_tree_options("sample-align-d") == frozenset()
        assert engine_tree_options("not-an-engine") == frozenset()

    def test_sample_align_d_local_aligner_tree(self, tiny_seqs):
        """The builder choice reaches the per-bucket local aligners."""
        cfg = repro.SampleAlignDConfig(
            local_aligner="muscle-draft",
            local_aligner_kwargs={"tree": "wpgma"},
        )
        result = repro.align(
            tiny_seqs, engine="sample-align-d", n_procs=2, config=cfg
        )
        assert result.alignment.n_rows == len(tiny_seqs)

    def test_custom_aligner_can_advertise_tree_options(self):
        from repro.msa.registry import register_aligner, unregister_aligner

        register_aligner(
            "tree-capable-test",
            lambda **kw: CenterStar(**kw),
            tree_options=("tree", "tree_backend"),
        )
        try:
            assert engine_tree_options("tree-capable-test") == {
                "tree", "tree_backend"
            }
        finally:
            unregister_aligner("tree-capable-test")


class TestGatewaySeam:
    def test_defaults_rewrite_pre_hash(self, tiny_seqs):
        request = AlignRequest(tuple(tiny_seqs), engine="center-star")
        expected = AlignRequest(
            tuple(tiny_seqs),
            engine="center-star",
            engine_kwargs={"tree": "upgma", "tree_backend": "threads"},
        )
        with AlignmentGateway(
            n_workers=1,
            default_tree="upgma",
            default_tree_backend="threads",
        ) as gw:
            ticket = gw.submit(request)
            assert ticket.request_hash == expected.content_hash()
            assert ticket.wait(30).alignment.n_rows == len(tiny_seqs)

    def test_opinionated_request_untouched(self, tiny_seqs):
        request = AlignRequest(
            tuple(tiny_seqs),
            engine="center-star",
            engine_kwargs={"tree": "nj"},
        )
        with AlignmentGateway(n_workers=1, default_tree="upgma") as gw:
            ticket = gw.submit(request)
            assert ticket.request_hash == request.content_hash()

    def test_non_capable_engine_untouched(self, tiny_seqs):
        request = AlignRequest(tuple(tiny_seqs), engine="tcoffee")
        with AlignmentGateway(
            n_workers=1,
            default_tree="nj",
            default_tree_backend="threads",
        ) as gw:
            ticket = gw.submit(request)
            assert ticket.request_hash == request.content_hash()

    def test_coalescing_sees_effective_request(self, tiny_seqs):
        plain = AlignRequest(tuple(tiny_seqs), engine="center-star")
        explicit = AlignRequest(
            tuple(tiny_seqs),
            engine="center-star",
            engine_kwargs={"tree_backend": "threads"},
        )
        with AlignmentGateway(
            n_workers=1, default_tree_backend="threads"
        ) as gw:
            t1 = gw.submit(plain)
            t2 = gw.submit(explicit)
            assert t1.request_hash == t2.request_hash
            t1.wait(30)

    def test_bad_defaults_rejected(self):
        with pytest.raises(ValueError):
            AlignmentGateway(n_workers=1, default_tree="nope")
        with pytest.raises(ValueError):
            AlignmentGateway(n_workers=1, default_tree_backend="gpu")

    def test_metrics_expose_tree_defaults(self):
        with AlignmentGateway(
            n_workers=1,
            default_tree="nj",
            default_tree_backend="threads",
        ) as gw:
            m = gw.metrics()
            assert m["default_tree"] == "nj"
            assert m["default_tree_backend"] == "threads"

    def test_defaults_case_normalised(self, tiny_seqs):
        request = AlignRequest(tuple(tiny_seqs), engine="center-star")
        with AlignmentGateway(
            n_workers=1, default_tree="UPGMA",
            default_tree_backend="Threads",
        ) as upper, AlignmentGateway(
            n_workers=1, default_tree="upgma",
            default_tree_backend="threads",
        ) as lower:
            assert (
                upper.submit(request).request_hash
                == lower.submit(request).request_hash
            )


class TestCli:
    @pytest.fixture()
    def fasta(self, tmp_path, tiny_seqs):
        from repro.seq.fasta import to_fasta

        path = tmp_path / "tiny.fasta"
        path.write_text(to_fasta(list(tiny_seqs)), encoding="ascii")
        return str(path)

    def test_trees_listing(self, capsys):
        from repro.cli import main

        assert main(["trees"]) == 0
        out = capsys.readouterr().out
        for name in ("upgma", "wpgma", "nj", "single-linkage"):
            assert name in out

    def test_trees_build_and_export(self, fasta, tmp_path, capsys):
        from repro.cli import main

        nwk = tmp_path / "out.nwk"
        stats = tmp_path / "stats.json"
        rc = main([
            "trees", fasta, "--builder", "nj",
            "-o", str(nwk), "--json", str(stats),
        ])
        assert rc == 0
        payload = json.loads(stats.read_text())
        assert payload["builder"] == "nj"
        assert payload["schedule"]["n_leaves"] == 5
        assert payload["schedule"]["n_merges"] == 4
        text = nwk.read_text()
        assert text.strip().endswith(";")
        from repro.align.guide_tree import GuideTree

        assert GuideTree.from_newick(text).n_leaves == 5

    def test_trees_from_newick(self, tmp_path, capsys):
        from repro.cli import main

        nwk = tmp_path / "t.nwk"
        nwk.write_text("((a,b),(c,d));", encoding="ascii")
        assert main(["trees", str(nwk), "--from-newick"]) == 0
        out = capsys.readouterr().out
        assert "leaves=4" in out

    def test_trees_bad_builder(self, fasta, capsys):
        from repro.cli import main

        assert main(["trees", fasta, "--builder", "nope"]) == 2
        assert "unknown tree builder" in capsys.readouterr().err

    def test_align_tree_flags(self, fasta, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "aln.fasta"
        rc = main([
            "align", fasta, "--engine", "clustalw",
            "--tree", "upgma", "--tree-backend", "threads",
            "-o", str(out),
        ])
        assert rc == 0
        assert out.read_text().startswith(">")

    def test_align_rejects_tree_backend_for_sample_align_d(
        self, fasta, capsys
    ):
        from repro.cli import main

        rc = main(["align", fasta, "--tree-backend", "threads"])
        assert rc == 2
        assert "--tree-backend" in capsys.readouterr().err

    def test_align_rejects_tree_backend_for_parallel_baseline(
        self, fasta, capsys
    ):
        from repro.cli import main

        rc = main([
            "align", fasta, "--engine", "parallel-baseline",
            "--tree-backend", "threads",
        ])
        assert rc == 2
        assert "SPMD ranks" in capsys.readouterr().err

    def test_align_tree_reaches_local_aligner(self, fasta, tmp_path):
        from repro.cli import main

        report = tmp_path / "run.json"
        rc = main([
            "align", fasta, "-p", "2", "--tree", "upgma",
            "-o", str(tmp_path / "a.fasta"), "--json", str(report),
        ])
        assert rc == 0
        payload = json.loads(report.read_text())
        assert payload["engine"] == "sample-align-d"

    def test_engines_json_advertises_tree_layer(self, capsys):
        from repro.cli import main

        assert main(["engines", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "tree_builders" in payload
        by_name = {e["name"]: e for e in payload["engines"]}
        assert by_name["clustalw"]["tree_options"] == [
            "tree", "tree_backend", "tree_workers"
        ]
        assert by_name["parallel-baseline"]["tree_options"] == ["tree"]
        assert by_name["sample-align-d"]["tree_options"] == []

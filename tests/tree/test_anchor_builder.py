"""The anchored sampled guide-tree builder: invariants and degeneracy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distance import all_pairs
from repro.distance.tilestore import CondensedMatrix, condensed_size
from repro.seq.sequence import Sequence
from repro.tree import (
    AnchorTreeBuilder,
    TreeConfig,
    anchor_guide_tree,
    available_builders,
    get_builder,
    select_anchors,
)


def random_matrix(n, seed=0):
    rng = np.random.default_rng(seed)
    vec = rng.uniform(0.05, 1.0, size=condensed_size(n))
    d = np.zeros((n, n))
    ii, jj = np.triu_indices(n, k=1)
    d[ii, jj] = vec
    d[jj, ii] = vec
    return d


def tree_bytes(tree):
    return tree.merges.tobytes() + tree.heights.tobytes()


@pytest.fixture(scope="module")
def family():
    from repro.datagen.rose import generate_family

    fam = generate_family(
        n_sequences=30, mean_length=60, relatedness=400, seed=17,
        track_alignment=False,
    )
    return list(fam.sequences)


class TestSelectAnchors:
    @given(
        n=st.integers(1, 200),
        k=st.integers(1, 250),
        seed=st.one_of(st.none(), st.integers(0, 5)),
    )
    @settings(max_examples=40, deadline=None)
    def test_sorted_unique_in_range(self, n, k, seed):
        idx = select_anchors(n, k, seed)
        assert len(idx) == min(k, n)
        assert (np.diff(idx) > 0).all()  # sorted, distinct
        assert idx[0] >= 0 and idx[-1] < n

    def test_deterministic(self):
        a = select_anchors(100, 10, seed=42)
        assert np.array_equal(a, select_anchors(100, 10, seed=42))
        assert not np.array_equal(a, select_anchors(100, 10, seed=43))

    def test_evenly_spaced_without_seed(self):
        assert np.array_equal(
            select_anchors(10, 5, seed=None), [0, 2, 4, 6, 8]
        )

    def test_all_leaves_when_k_exceeds_n(self):
        assert np.array_equal(select_anchors(4, 99, seed=1), np.arange(4))

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            select_anchors(10, 0, seed=1)


class TestAnchorBuilder:
    def test_registered(self):
        assert "anchor" in available_builders()
        assert isinstance(get_builder("anchor"), AnchorTreeBuilder)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            AnchorTreeBuilder(anchors=0)
        with pytest.raises(ValueError):
            AnchorTreeBuilder(base="anchor")

    @given(
        n=st.integers(2, 40),
        k=st.integers(1, 12),
        seed=st.one_of(st.none(), st.integers(0, 3)),
        base=st.sampled_from(["upgma", "wpgma", "nj", "single-linkage"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_leaf_exactly_once(self, n, k, seed, base):
        d = random_matrix(n, seed=n)
        tree = AnchorTreeBuilder(anchors=k, base=base, seed=seed).build(d)
        assert tree.n_leaves == n
        leaves = tree.merges[tree.merges < n]
        assert sorted(int(x) for x in leaves) == list(range(n))

    @pytest.mark.parametrize("base", ["upgma", "nj"])
    def test_anchors_at_n_degenerates_to_base(self, base):
        d = random_matrix(20, seed=4)
        exact = get_builder(base).build(d)
        for k in (20, 50):
            sampled = AnchorTreeBuilder(anchors=k, base=base).build(d)
            assert tree_bytes(sampled) == tree_bytes(exact)

    def test_dense_and_condensed_inputs_identical(self):
        n = 25
        d = random_matrix(n, seed=9)
        ii, jj = np.triu_indices(n, k=1)
        builder = AnchorTreeBuilder(anchors=7, seed=1)
        from_dense = builder.build(d)
        from_cond = builder.build(CondensedMatrix(d[ii, jj]))
        from_vec = builder.build(d[ii, jj])  # bare condensed vector
        assert tree_bytes(from_dense) == tree_bytes(from_cond)
        assert tree_bytes(from_dense) == tree_bytes(from_vec)

    def test_labels_carried(self):
        d = random_matrix(6)
        labels = [f"leaf{i}" for i in range(6)]
        tree = AnchorTreeBuilder(anchors=3).build(d, labels)
        assert tree.labels == labels

    def test_pure_function_of_params(self):
        d = random_matrix(30, seed=2)
        b = AnchorTreeBuilder(anchors=8, seed=5)
        assert tree_bytes(b.build(d)) == tree_bytes(b.build(d))
        other = AnchorTreeBuilder(anchors=8, seed=6).build(d)
        assert tree_bytes(b.build(d)) != tree_bytes(other)


class TestAnchorGuideTree:
    def test_matches_builder_over_full_matrix(self, family):
        d = all_pairs(family, "ktuple")
        ids = [s.id for s in family]
        for k in (1, 5, 11):
            via_rect = anchor_guide_tree(
                family, "ktuple", anchors=k, seed=3, labels=ids
            )
            via_matrix = AnchorTreeBuilder(anchors=k, seed=3).build(d, ids)
            assert via_rect.labels == via_matrix.labels
            assert tree_bytes(via_rect) == tree_bytes(via_matrix)

    def test_anchors_at_n_matches_exact_pipeline(self, family):
        d = all_pairs(family, "ktuple")
        exact = get_builder("upgma").build(d)
        sampled = anchor_guide_tree(
            family, "ktuple", anchors=len(family), seed=None
        )
        assert tree_bytes(sampled) == tree_bytes(exact)

    def test_tree_drives_progressive_alignment(self, family):
        from repro.align.profile_align import ProfileAlignConfig
        from repro.align.progressive import progressive_align

        ids = [s.id for s in family]
        tree = anchor_guide_tree(
            family, "ktuple", anchors=6, labels=ids
        )
        aln = progressive_align(family, tree, ProfileAlignConfig())
        assert sorted(aln.ids) == sorted(ids)

    def test_single_sequence(self):
        tree = anchor_guide_tree([Sequence("a", "MKV")], "ktuple")
        assert tree.n_leaves == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            anchor_guide_tree([], "ktuple")


class TestTreeConfigAnchorParams:
    def test_round_trip(self):
        cfg = TreeConfig(
            builder="anchor", anchors=32, anchor_base="nj", anchor_seed=7
        )
        assert TreeConfig.from_dict(cfg.to_dict()) == cfg
        builder = cfg.make_builder()
        assert isinstance(builder, AnchorTreeBuilder)
        assert builder.anchors == 32
        assert builder.base == "nj"
        assert builder.seed == 7

    def test_anchor_params_need_anchor_builder(self):
        with pytest.raises(ValueError, match="anchor"):
            TreeConfig(builder="upgma", anchors=16)
        with pytest.raises(ValueError):
            TreeConfig(builder="anchor", anchors=0)
        with pytest.raises(ValueError):
            TreeConfig(builder="anchor", anchor_base="nope")

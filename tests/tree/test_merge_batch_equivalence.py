"""Level-batched progressive merges are byte-identical to per-pair ones.

PR 9's tentpole: the merge executor hands each DAG level (or a rank's
share of one) to ``align_profiles_batch``, which routes the fused
batched DP kernel.  The kernel is proven exact, so every builder and
every execution mode must produce byte-for-byte the FASTA the per-pair
walk (``REPRO_DP_BATCH_PAIRS=0``) produces.
"""

import numpy as np
import pytest

from repro.align.profile_align import (
    ProfileAlignConfig,
    align_profiles,
    align_profiles_batch,
)
from repro.align.progressive import progressive_align
from repro.datagen.rose import generate_family
from repro.distance import all_pairs
from repro.msa.clustalw import clustal_sequence_weights
from repro.parcomp.launcher import run_spmd
from repro.tree import get_builder, merge_schedule


@pytest.fixture(scope="module")
def family_seqs():
    """Big enough that the merge DAG has levels above _MIN_BATCH_PAIRS."""
    fam = generate_family(
        n_sequences=16, mean_length=70, relatedness=300, seed=19,
        track_alignment=False,
    )
    return list(fam.sequences)


@pytest.fixture(scope="module")
def family_trees(family_seqs):
    d = all_pairs(family_seqs, "ktuple")
    ids = [s.id for s in family_seqs]
    return {
        name: get_builder(name).build(d, ids)
        for name in ["upgma", "wpgma", "nj", "single-linkage"]
    }


@pytest.fixture(scope="module")
def per_pair_reference(family_seqs, family_trees):
    """Per-pair serial alignments with the batched kernel disabled."""
    import os

    old = os.environ.get("REPRO_DP_BATCH_PAIRS")
    os.environ["REPRO_DP_BATCH_PAIRS"] = "0"
    try:
        return {
            name: progressive_align(family_seqs, tree).to_fasta()
            for name, tree in family_trees.items()
        }
    finally:
        if old is None:
            del os.environ["REPRO_DP_BATCH_PAIRS"]
        else:
            os.environ["REPRO_DP_BATCH_PAIRS"] = old


class TestLevelBatchedByteIdentity:
    @pytest.mark.parametrize(
        "name", ["upgma", "wpgma", "nj", "single-linkage"]
    )
    def test_serial_batched_matches_per_pair(
        self, name, family_seqs, family_trees, per_pair_reference
    ):
        batched = progressive_align(
            family_seqs, family_trees[name]
        ).to_fasta()
        assert batched == per_pair_reference[name]

    @pytest.mark.parametrize("backend", ["threads", "processes", "pool"])
    def test_backends_batched_match_per_pair(
        self, backend, family_seqs, family_trees, per_pair_reference
    ):
        out = progressive_align(
            family_seqs, family_trees["upgma"], backend=backend, workers=2
        ).to_fasta()
        assert out == per_pair_reference["upgma"]

    def test_spmd_batched_matches_per_pair(
        self, family_seqs, family_trees, per_pair_reference
    ):
        tree = family_trees["nj"]
        coop = run_spmd(
            2,
            lambda comm: progressive_align(
                family_seqs, tree, comm=comm
            ).to_fasta(),
        )
        assert all(r == per_pair_reference["nj"] for r in coop.results)

    def test_weighted_path_batched_matches_per_pair(
        self, family_seqs, family_trees, monkeypatch
    ):
        tree = family_trees["upgma"]
        w = clustal_sequence_weights(tree)
        batched = progressive_align(family_seqs, tree, None, w).to_fasta()
        monkeypatch.setenv("REPRO_DP_BATCH_PAIRS", "0")
        per_pair = progressive_align(family_seqs, tree, None, w).to_fasta()
        assert batched == per_pair

    def test_merge_fn_override_still_per_node(
        self, family_seqs, family_trees
    ):
        """A custom merge_fn is an opaque per-pair callable: the
        executor must not try to level-batch it, and results match."""
        cfg = ProfileAlignConfig()

        def merge(pa, pb):
            merged, _res = align_profiles(pa, pb, cfg)
            return merged

        tree = family_trees["upgma"]
        out = progressive_align(
            family_seqs, tree, cfg, merge_fn=merge
        ).to_fasta()
        assert out == progressive_align(family_seqs, tree, cfg).to_fasta()

    @pytest.mark.parametrize("batch_pairs", ["2", "3", "8", "128"])
    def test_chunk_size_grid(
        self,
        batch_pairs,
        family_seqs,
        family_trees,
        per_pair_reference,
        monkeypatch,
    ):
        """Every chunking of a level is byte-identical."""
        monkeypatch.setenv("REPRO_DP_BATCH_PAIRS", batch_pairs)
        out = progressive_align(
            family_seqs, family_trees["wpgma"]
        ).to_fasta()
        assert out == per_pair_reference["wpgma"]


class TestAlignProfilesBatchApi:
    def test_matches_per_pair_calls(self, family_seqs):
        from repro.align.profile import Profile

        cfg = ProfileAlignConfig()
        profs = [Profile.from_sequence(s) for s in family_seqs[:10]]
        pairs = [(profs[i], profs[i + 1]) for i in range(0, 10, 2)]
        batch = align_profiles_batch(pairs, cfg)
        for (px, py), (merged, res) in zip(pairs, batch):
            m1, r1 = align_profiles(px, py, cfg)
            assert m1.alignment.to_fasta() == merged.alignment.to_fasta()
            assert r1.score == res.score
            assert np.array_equal(r1.x_map, res.x_map)
            assert np.array_equal(r1.y_map, res.y_map)

    def test_empty_batch(self):
        assert align_profiles_batch([], ProfileAlignConfig()) == []

    def test_batched_spans_and_counters_fire(
        self, family_seqs, family_trees
    ):
        from repro.obs.metrics import registry
        from repro.obs.tracing import (
            disable_tracing,
            drain_spans,
            enable_tracing,
        )

        before = registry().counter("dp.profile_batch_pairs").value
        drain_spans()
        enable_tracing()
        try:
            progressive_align(family_seqs, family_trees["upgma"])
        finally:
            disable_tracing()
        names = {r.name for r in drain_spans()}
        assert "tree.merge_level" in names
        assert "dp.profile_batch" in names  # a level above _MIN_BATCH_PAIRS
        assert "tree.merge_node" not in names
        after = registry().counter("dp.profile_batch_pairs").value
        assert after > before

    def test_schedule_has_batchable_level(self, family_trees):
        """The fixture family must actually exercise the fused path."""
        from repro.align.profile_align import _MIN_BATCH_PAIRS

        widths = [
            len(level)
            for level in merge_schedule(family_trees["upgma"]).levels
        ]
        assert max(widths) >= _MIN_BATCH_PAIRS

"""The acceptance criterion: serial, threads, processes and cooperative
progressive merges are byte-identical for every registered tree builder."""

import numpy as np
import pytest

from repro.align.profile_align import ProfileAlignConfig, align_profiles
from repro.align.progressive import progressive_align
from repro.distance import all_pairs
from repro.msa.clustalw import clustal_sequence_weights
from repro.parcomp.launcher import run_spmd
from repro.tree import available_builders, get_builder, progressive_merge


@pytest.fixture(scope="module")
def trees(tiny_seqs):
    d = all_pairs(list(tiny_seqs), "ktuple", k=3)
    return {
        name: get_builder(name).build(d, tiny_seqs.ids)
        for name in available_builders()
    }


class TestAllModesIdentical:
    @pytest.mark.parametrize(
        "name", ["upgma", "wpgma", "nj", "single-linkage"]
    )
    def test_serial_threads_processes_comm(self, name, trees, tiny_seqs):
        tree = trees[name]
        seqs = list(tiny_seqs)
        serial = progressive_align(seqs, tree).to_fasta()
        threads = progressive_align(
            seqs, tree, backend="threads", workers=3
        ).to_fasta()
        procs = progressive_align(
            seqs, tree, backend="processes", workers=2
        ).to_fasta()
        coop = run_spmd(
            3, lambda comm: progressive_align(seqs, tree, comm=comm).to_fasta()
        )
        assert threads == serial
        assert procs == serial
        assert all(r == serial for r in coop.results)

    def test_weighted_merge_identical(self, trees, tiny_seqs):
        """The CLUSTALW weighted path re-weights merged profiles; it must
        stay byte-identical too."""
        tree = trees["nj"]
        seqs = list(tiny_seqs)
        w = clustal_sequence_weights(tree)
        serial = progressive_align(seqs, tree, None, w).to_fasta()
        threads = progressive_align(
            seqs, tree, None, w, backend="threads", workers=2
        ).to_fasta()
        procs = progressive_align(
            seqs, tree, None, w, backend="processes", workers=2
        ).to_fasta()
        assert threads == serial == procs

    def test_merge_fn_override_identical(self, trees, tiny_seqs):
        """A custom merge_fn (the MAFFT anchored path's hook) schedules
        identically."""
        tree = trees["upgma"]
        seqs = list(tiny_seqs)
        cfg = ProfileAlignConfig()

        def merge(pa, pb):
            merged, _res = align_profiles(pa, pb, cfg)
            return merged

        serial = progressive_align(seqs, tree, cfg, merge_fn=merge).to_fasta()
        threads = progressive_align(
            seqs, tree, cfg, merge_fn=merge, backend="threads", workers=3
        ).to_fasta()
        assert threads == serial

    def test_larger_family_processes(self, small_family):
        from repro.align.guide_tree import upgma

        seqs = list(small_family.sequences)
        d = all_pairs(seqs, "ktuple")
        tree = upgma(d, [s.id for s in seqs])
        serial = progressive_align(seqs, tree).to_fasta()
        procs = progressive_align(
            seqs, tree, backend="processes", workers=2
        ).to_fasta()
        assert procs == serial


class TestProgressiveMergeApi:
    def test_root_profile_matches_serial_walk(self, trees, tiny_seqs):
        from repro.align.profile import Profile

        tree = trees["upgma"]
        by_id = {s.id: s for s in tiny_seqs}
        profiles = [Profile.from_sequence(by_id[l]) for l in tree.labels]
        cfg = ProfileAlignConfig()

        def node(step, pa, pb):
            merged, _res = align_profiles(pa, pb, cfg)
            return merged

        root_serial = progressive_merge(profiles, tree, node)
        root_par = progressive_merge(
            profiles, tree, node, backend="threads", workers=2
        )
        assert (
            root_serial.alignment.to_fasta() == root_par.alignment.to_fasta()
        )

    def test_too_few_profiles_rejected(self, trees):
        with pytest.raises(ValueError, match="at least 2"):
            progressive_merge([], trees["upgma"], lambda s, a, b: a)
        from repro.align.profile import Profile
        from repro.seq.sequence import Sequence

        p = Profile.from_sequence(Sequence("x", "MKV"))
        with pytest.raises(ValueError, match="at least 2"):
            progressive_merge([p], trees["upgma"], lambda s, a, b: a)

    def test_leaf_count_mismatch_rejected(self, trees, tiny_seqs):
        from repro.align.profile import Profile

        profiles = [Profile.from_sequence(s) for s in list(tiny_seqs)[:3]]
        with pytest.raises(ValueError, match="leaves"):
            progressive_merge(
                profiles, trees["upgma"], lambda s, a, b: a
            )

    def test_comm_excludes_backend(self, trees, tiny_seqs):
        from repro.align.profile import Profile

        profiles = [Profile.from_sequence(s) for s in tiny_seqs]

        def program(comm):
            with pytest.raises(ValueError, match="cooperative"):
                progressive_merge(
                    profiles, trees["upgma"], lambda s, a, b: a,
                    comm=comm, backend="threads",
                )
            return True

        assert run_spmd(1, program).results == [True]

    def test_bad_workers(self, trees, tiny_seqs):
        from repro.align.profile import Profile

        profiles = [Profile.from_sequence(s) for s in tiny_seqs]
        with pytest.raises(ValueError, match="workers"):
            progressive_merge(
                profiles, trees["upgma"], lambda s, a, b: a, workers=0
            )

    def test_workers_capped_at_schedule_width(self, trees, tiny_seqs):
        """Asking for more ranks than the DAG can feed must still work."""
        seqs = list(tiny_seqs)
        aln = progressive_align(
            seqs, trees["single-linkage"], backend="threads", workers=64
        )
        assert aln.to_fasta() == progressive_align(
            seqs, trees["single-linkage"]
        ).to_fasta()

"""Tests for repro.tree.builders: the TreeBuilder registry + the math."""

import numpy as np
import pytest
import scipy.cluster.hierarchy as sch
from scipy.spatial.distance import squareform

from repro.align.guide_tree import GuideTree, neighbor_joining, upgma, wpgma
from repro.tree import (
    DEFAULT_BUILDER,
    NeighborJoiningBuilder,
    SingleLinkageBuilder,
    TreeBuilder,
    TreeConfig,
    UpgmaBuilder,
    available_builders,
    builder_info,
    get_builder,
    register_builder,
    resolve_tree_stage,
    unregister_builder,
)


def random_distance_matrix(n, seed):
    rng = np.random.default_rng(seed)
    m = rng.uniform(0.1, 2.0, (n, n))
    m = (m + m.T) / 2
    np.fill_diagonal(m, 0.0)
    return m


class TestRegistry:
    def test_builtins_present(self):
        assert set(available_builders()) >= {
            "upgma", "wpgma", "nj", "single-linkage"
        }
        assert DEFAULT_BUILDER in available_builders()

    def test_info_has_descriptions(self):
        info = builder_info()
        assert set(info) == set(available_builders())
        assert all(desc for desc in info.values())

    def test_get_by_name_case_insensitive(self):
        assert isinstance(get_builder("UPGMA"), UpgmaBuilder)
        assert isinstance(get_builder("NJ"), NeighborJoiningBuilder)

    def test_get_default(self):
        assert get_builder(None).name == DEFAULT_BUILDER

    def test_instance_passthrough(self):
        b = SingleLinkageBuilder()
        assert get_builder(b) is b
        with pytest.raises(ValueError, match="instance"):
            get_builder(b, k=3)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown tree builder"):
            get_builder("neighbour-of-the-beast")

    def test_register_unregister_roundtrip(self):
        register_builder("custom-tree-xyz", UpgmaBuilder, "test")
        try:
            assert "custom-tree-xyz" in available_builders()
            with pytest.raises(ValueError, match="already registered"):
                register_builder("custom-tree-xyz", UpgmaBuilder)
            register_builder(
                "custom-tree-xyz", SingleLinkageBuilder, overwrite=True
            )
            assert isinstance(
                get_builder("custom-tree-xyz"), SingleLinkageBuilder
            )
        finally:
            unregister_builder("custom-tree-xyz")
        assert "custom-tree-xyz" not in available_builders()
        with pytest.raises(KeyError):
            unregister_builder("custom-tree-xyz")

    def test_builders_are_picklable(self):
        import pickle

        for name in available_builders():
            b = get_builder(name)
            assert pickle.loads(pickle.dumps(b)).name == b.name


class TestBuilderMath:
    @pytest.mark.parametrize("name", ["upgma", "wpgma", "nj", "single-linkage"])
    @pytest.mark.parametrize("n", [2, 3, 9])
    def test_valid_tree_any_size(self, name, n):
        t = get_builder(name).build(random_distance_matrix(n, n))
        assert isinstance(t, GuideTree)
        assert t.n_leaves == n

    def test_single_leaf(self):
        for name in available_builders():
            t = get_builder(name).build(np.zeros((1, 1)), ["only"])
            assert t.n_leaves == 1 and t.labels == ["only"]

    @pytest.mark.parametrize("seed", range(4))
    def test_single_linkage_matches_scipy(self, seed):
        m = random_distance_matrix(10, seed)
        ours = SingleLinkageBuilder().build(m)
        Z = sch.linkage(squareform(m), method="single")
        # Merge heights are half the linkage distances.
        assert np.allclose(sorted(2 * ours.heights), sorted(Z[:, 2]))

    @pytest.mark.parametrize("seed", range(3))
    def test_single_linkage_heights_monotone(self, seed):
        # The minimum pairwise distance never shrinks under min-linkage
        # updates, so merge heights are non-decreasing.
        t = SingleLinkageBuilder().build(random_distance_matrix(12, seed))
        assert (np.diff(t.heights) >= -1e-12).all()

    def test_legacy_delegates_agree_with_registry(self):
        m = random_distance_matrix(8, 42)
        labels = [f"s{i}" for i in range(8)]
        for legacy, name in (
            (upgma, "upgma"), (wpgma, "wpgma"), (neighbor_joining, "nj"),
        ):
            a = legacy(m, labels)
            b = get_builder(name).build(m, labels)
            assert a.merges.tobytes() == b.merges.tobytes()
            assert a.heights.tobytes() == b.heights.tobytes()
            assert a.labels == b.labels

    def test_bad_matrices_rejected(self):
        b = get_builder("upgma")
        with pytest.raises(ValueError, match="square"):
            b.build(np.zeros((2, 3)))
        with pytest.raises(ValueError, match="symmetric"):
            b.build(np.array([[0.0, 1.0], [2.0, 0.0]]))
        with pytest.raises(ValueError, match="diagonal"):
            b.build(np.array([[1.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError, match="labels"):
            b.build(random_distance_matrix(3, 0), ["a", "b"])

    def test_builder_is_callable(self):
        m = random_distance_matrix(4, 1)
        b = get_builder("wpgma")
        assert b(m).merges.tobytes() == b.build(m).merges.tobytes()


class TestTreeConfig:
    def test_defaults_valid(self):
        cfg = TreeConfig()
        assert cfg.builder == "upgma"
        assert cfg.make_builder().name == "upgma"

    def test_dict_roundtrip(self):
        cfg = TreeConfig(builder="nj", backend="threads", workers=3)
        assert TreeConfig.from_dict(cfg.to_dict()) == cfg
        import json

        json.dumps(cfg.to_dict())  # JSON-able (engine_kwargs contract)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown TreeConfig keys"):
            TreeConfig.from_dict({"builder": "nj", "estimator": "ktuple"})

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown tree builder"):
            TreeConfig(builder="nope")
        with pytest.raises(ValueError, match="backend"):
            TreeConfig(backend="gpu")
        with pytest.raises(ValueError, match="workers"):
            TreeConfig(workers=0)


class TestResolveTreeStage:
    def test_none_uses_default_factory(self):
        builder, backend, workers = resolve_tree_stage(
            None, default=lambda: NeighborJoiningBuilder()
        )
        assert builder.name == "nj"
        assert backend is None and workers is None

    def test_name_and_config_and_instance(self):
        for tree in ("wpgma", TreeConfig(builder="wpgma"),
                     {"builder": "wpgma"}, get_builder("wpgma")):
            builder, _, _ = resolve_tree_stage(tree)
            assert builder.name == "wpgma"

    def test_config_backend_flows_unless_overridden(self):
        cfg = TreeConfig(builder="nj", backend="threads", workers=2)
        _, backend, workers = resolve_tree_stage(cfg)
        assert (backend, workers) == ("threads", 2)
        _, backend, workers = resolve_tree_stage(cfg, "processes", 4)
        assert (backend, workers) == ("processes", 4)

    def test_bad_values(self):
        with pytest.raises(ValueError):
            resolve_tree_stage("nope")
        with pytest.raises(ValueError):
            resolve_tree_stage(123)
        with pytest.raises(ValueError):
            resolve_tree_stage("nj", "gpu")
        with pytest.raises(ValueError):
            resolve_tree_stage("nj", None, 0)

    def test_protocol_subclass_accepted(self):
        class Star(TreeBuilder):
            name = "star-test"

            def build(self, dist, labels=None):
                return get_builder("upgma").build(dist, labels)

        builder, _, _ = resolve_tree_stage(Star())
        assert builder.name == "star-test"

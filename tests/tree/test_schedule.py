"""merge_schedule() invariants -- hypothesis suite over random trees."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.align.guide_tree import GuideTree
from repro.tree import merge_schedule


@st.composite
def random_trees(draw):
    """Uniformly shaped random binary merge orders over 2..20 leaves."""
    n = draw(st.integers(min_value=2, max_value=20))
    avail = list(range(n))
    merges = []
    for step in range(n - 1):
        a = avail.pop(draw(st.integers(0, len(avail) - 1)))
        b = avail.pop(draw(st.integers(0, len(avail) - 1)))
        merges.append((a, b))
        avail.append(n + step)
    heights = np.arange(1, n, dtype=np.float64)
    return GuideTree(
        n, np.array(merges), heights, [f"L{k}" for k in range(n)]
    )


def caterpillar(n):
    merges = []
    spine = 0
    for step in range(n - 1):
        merges.append((spine, step + 1))
        spine = n + step
    return GuideTree(
        n, np.array(merges), np.arange(1, n, dtype=np.float64),
        [f"L{k}" for k in range(n)],
    )


def balanced(levels):
    n = 1 << levels
    merges = []
    nodes = list(range(n))
    step = 0
    while len(nodes) > 1:
        nxt = []
        for i in range(0, len(nodes), 2):
            merges.append((nodes[i], nodes[i + 1]))
            nxt.append(n + step)
            step += 1
        nodes = nxt
    return GuideTree(
        n, np.array(merges), np.arange(1, n, dtype=np.float64),
        [f"L{k}" for k in range(n)],
    )


class TestInvariants:
    @given(random_trees())
    def test_every_merge_scheduled_exactly_once(self, tree):
        s = merge_schedule(tree)
        steps = [step for level in s.levels for step in level]
        assert sorted(steps) == list(range(tree.n_leaves - 1))
        assert len(steps) == len(set(steps)) == s.n_merges

    @given(random_trees())
    def test_children_complete_before_parent(self, tree):
        s = merge_schedule(tree)
        n = tree.n_leaves
        level_of = {}
        for k, level in enumerate(s.levels):
            for step in level:
                level_of[n + step] = k
        for level in s.levels:
            for step in level:
                for child in tree.merges[step]:
                    child = int(child)
                    if child >= n:  # internal child: strictly earlier level
                        assert level_of[child] < level_of[n + step]

    @given(random_trees())
    def test_levels_are_disjoint_in_nodes(self, tree):
        """Merges within one level never share a node (true concurrency)."""
        n = tree.n_leaves
        s = merge_schedule(tree)
        for level in s.levels:
            touched = set()
            for step in level:
                nodes = {int(tree.merges[step][0]),
                         int(tree.merges[step][1]), n + step}
                assert not (touched & nodes)
                touched |= nodes

    @given(random_trees())
    def test_stats_consistent(self, tree):
        s = merge_schedule(tree)
        assert sum(s.widths) == s.n_merges == tree.n_leaves - 1
        assert s.max_width == max(s.widths)
        assert s.mean_parallelism == pytest.approx(s.n_merges / s.n_levels)
        assert 1 <= s.n_levels <= s.n_merges
        d = s.to_dict()
        assert d["n_leaves"] == tree.n_leaves
        assert d["widths"] == s.widths

    @given(random_trees())
    def test_concatenation_is_topological(self, tree):
        """Replaying levels in order is a valid serial merge order."""
        n = tree.n_leaves
        have = set(range(n))
        for level in merge_schedule(tree).levels:
            for step in level:
                a, b = tree.merges[step]
                assert int(a) in have and int(b) in have
            for step in level:
                have.add(n + step)
        assert tree.root in have


class TestKnownShapes:
    @pytest.mark.parametrize("n", [2, 5, 16])
    def test_caterpillar_is_fully_serial(self, n):
        s = merge_schedule(caterpillar(n))
        assert s.n_levels == s.n_merges == n - 1
        assert s.max_width == 1
        assert s.mean_parallelism == 1.0

    @pytest.mark.parametrize("levels", [1, 3, 4])
    def test_balanced_tree_is_log_depth(self, levels):
        s = merge_schedule(balanced(levels))
        assert s.n_levels == levels
        assert s.max_width == (1 << levels) // 2

    def test_single_leaf_empty_schedule(self):
        t = GuideTree(1, np.zeros((0, 2)), np.zeros(0), ["a"])
        s = merge_schedule(t)
        assert s.n_merges == 0 and s.levels == ()
        assert s.max_width == 0 and s.mean_parallelism == 0.0

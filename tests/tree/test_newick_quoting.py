"""Newick round-trips for labels with metacharacters and branch lengths."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.align.guide_tree import GuideTree, upgma

NASTY_LABELS = [
    "plain",
    "with space",
    "comma,inside",
    "paren(open",
    "paren)close",
    "colon:sep",
    "semi;colon",
    "quote'single",
    "double''quote",
    "all of ():;','em",
    "[bracketed]",
    "tab\tchar",
]


def tree_over(labels):
    n = len(labels)
    rng = np.random.default_rng(7)
    m = rng.uniform(0.2, 1.5, (n, n))
    m = (m + m.T) / 2
    np.fill_diagonal(m, 0.0)
    return upgma(m, labels)


class TestMetacharacterRoundTrip:
    def test_all_nasty_labels_topology(self):
        t = tree_over(NASTY_LABELS)
        again = GuideTree.from_newick(t.to_newick())
        assert again.labels == [
            t.labels[i] for i in _leaf_reading_order(t)
        ]
        assert set(again.labels) == set(NASTY_LABELS)
        # A second trip is a fixed point.
        assert GuideTree.from_newick(again.to_newick()).to_newick() == \
            again.to_newick()

    def test_all_nasty_labels_with_branch_lengths(self):
        t = tree_over(NASTY_LABELS)
        text = t.to_newick(branch_lengths=True)
        again = GuideTree.from_newick(text)
        assert set(again.labels) == set(NASTY_LABELS)
        assert np.allclose(
            sorted(again.heights), sorted(t.heights), atol=1e-5
        )
        # Topology survives exactly; branch lengths only to rendering
        # precision (%.6g), so compare the topology-only rendering.
        assert again.to_newick() == t.to_newick()

    def test_single_quoted_leaf(self):
        t = GuideTree.from_newick("'only label';")
        assert t.labels == ["only label"]
        assert t.to_newick() == "'only label';"

    def test_doubled_quote_unescapes(self):
        t = GuideTree.from_newick("('it''s a','plain');")
        assert t.labels == ["it's a", "plain"]

    def test_quoted_label_with_branch_length(self):
        t = GuideTree.from_newick("('a b':1.5,c:0.5);")
        assert t.labels == ["a b", "c"]
        assert t.heights[0] == pytest.approx(1.5)

    def test_unsafe_label_is_quoted_on_emit(self):
        t = GuideTree(2, np.array([[0, 1]]), np.array([1.0]), ["a b", "c"])
        assert t.to_newick() == "('a b',c);"

    def test_plain_labels_stay_unquoted(self):
        t = GuideTree(2, np.array([[0, 1]]), np.array([1.0]), ["a", "b"])
        assert t.to_newick() == "(a,b);"

    def test_unterminated_quote_rejected(self):
        with pytest.raises(ValueError, match="unterminated"):
            GuideTree.from_newick("('oops,b);")

    @given(
        st.lists(
            st.text(
                alphabet=st.characters(
                    codec="ascii", min_codepoint=32, max_codepoint=126
                ),
                min_size=1,
                max_size=12,
            ).filter(lambda s: s.strip() == s and s.strip() != ""),
            min_size=2,
            max_size=8,
            unique=True,
        )
    )
    def test_arbitrary_printable_labels_roundtrip(self, labels):
        t = tree_over(labels)
        again = GuideTree.from_newick(t.to_newick(branch_lengths=True))
        assert set(again.labels) == set(labels)
        assert again.to_newick() == GuideTree.from_newick(
            again.to_newick()
        ).to_newick()


def _leaf_reading_order(tree):
    """Leaf ids in newick reading order (left-to-right rendering)."""
    order = []

    def walk(node):
        if node < tree.n_leaves:
            order.append(node)
        else:
            a, b = tree.children(node)
            walk(a)
            walk(b)

    walk(tree.root)
    return order

"""AlignmentService: cache semantics, batch ordering, deduplication."""

import threading
import time

import pytest

from repro.engine import (
    AlignmentService,
    AlignRequest,
    register_engine,
    unregister_engine,
)
from repro.engine.api import AlignResult
from repro.seq.alignment import Alignment


@pytest.fixture()
def req(tiny_seqs):
    def make(engine="center-star", **kw):
        return AlignRequest(sequences=tuple(tiny_seqs), engine=engine, **kw)

    return make


class CountingEngine:
    """Deterministic toy engine that counts its executions."""

    name = "counting"
    kind = "sequential"
    calls = 0
    lock = threading.Lock()
    started = threading.Event()
    release = threading.Event()

    def run(self, request):
        with CountingEngine.lock:
            CountingEngine.calls += 1
        CountingEngine.started.set()
        CountingEngine.release.wait(timeout=10)
        aln = Alignment.from_rows(
            [s.id for s in request.sequences],
            [s.residues.ljust(40, "-")[:40] for s in request.sequences],
        )
        return AlignResult(
            alignment=aln, engine=self.name, sp=0.0, wall_time=0.0,
            request_hash=request.content_hash(),
        )


@pytest.fixture()
def counting_engine():
    CountingEngine.calls = 0
    CountingEngine.started = threading.Event()
    CountingEngine.release = threading.Event()
    CountingEngine.release.set()  # default: do not block
    register_engine("counting", lambda **kw: CountingEngine(), overwrite=True)
    yield CountingEngine
    unregister_engine("counting")


class TestCache:
    def test_miss_then_hit(self, req):
        with AlignmentService(max_workers=2) as svc:
            first = svc.submit(req())
            r1 = first.wait()
            second = svc.submit(req())
            r2 = second.wait()
            assert not first.cache_hit and second.cache_hit
            assert r1.alignment == r2.alignment
            assert r2 is r1  # served from cache, not recomputed
            stats = svc.stats
            assert stats["hits"] == stats["served"] == 1
            assert stats["misses"] == stats["computed"] == 1
            assert stats["cached"] == 1 and stats["inflight"] == 0
            assert stats["evictions"] == 0
            assert stats["cache_backend"]["backend"] == "memory"

    def test_different_requests_both_miss(self, req):
        with AlignmentService(max_workers=2) as svc:
            svc.run(req())
            svc.run(req(seed=1))  # seed participates in the content hash
            assert svc.stats["misses"] == 2 and svc.stats["hits"] == 0

    def test_lru_eviction(self, req, counting_engine):
        with AlignmentService(max_workers=1, cache_size=1) as svc:
            a, b = req(engine="counting"), req(engine="counting", seed=1)
            svc.run(a)
            svc.run(b)  # evicts a
            svc.run(a)  # recompute
            assert counting_engine.calls == 3
            assert svc.stats["cached"] == 1
            assert svc.stats["evictions"] == 2

    def test_pluggable_backend(self, req, counting_engine):
        """An explicit CacheBackend replaces the default memory LRU."""
        from repro.engine.service import CacheBackend, MemoryResultCache

        backend = MemoryResultCache(capacity=4)
        assert isinstance(backend, CacheBackend)
        with AlignmentService(max_workers=1, cache=backend) as svc:
            svc.run(req(engine="counting"))
        # A second service sharing the backend serves without recomputing.
        with AlignmentService(max_workers=1, cache=backend) as svc:
            job = svc.submit(req(engine="counting"))
            job.wait()
            assert job.cache_hit and counting_engine.calls == 1

    def test_cache_disabled(self, req, counting_engine):
        with AlignmentService(max_workers=1, cache_size=0) as svc:
            svc.run(req(engine="counting"))
            svc.run(req(engine="counting"))
            assert counting_engine.calls == 2

    def test_clear_cache(self, req):
        with AlignmentService(max_workers=1) as svc:
            svc.run(req())
            svc.clear_cache()
            job = svc.submit(req())
            job.wait()
            assert not job.cache_hit


class TestBatch:
    def test_duplicate_requests_run_once(self, req, counting_engine):
        with AlignmentService(max_workers=4) as svc:
            r = req(engine="counting")
            jobs = svc.run_batch([r, r, r, r])
            assert counting_engine.calls == 1
            hits = [j.cache_hit for j in jobs]
            assert hits[0] is False and all(hits[1:])
            results = [j.result for j in jobs]
            assert all(res.alignment == results[0].alignment for res in results)

    def test_inflight_dedup(self, req, counting_engine):
        """A duplicate submitted while the first is running attaches to it."""
        counting_engine.release.clear()  # hold the engine mid-run
        with AlignmentService(max_workers=2) as svc:
            r = req(engine="counting")
            j1 = svc.submit(r)
            assert counting_engine.started.wait(timeout=10)
            j2 = svc.submit(r)  # first is in flight, not yet cached
            assert j2.cache_hit
            counting_engine.release.set()
            assert j1.wait().alignment == j2.wait().alignment
            assert counting_engine.calls == 1

    def test_order_preserved(self, req, tiny_seqs):
        reqs = [
            req(engine="center-star"),
            AlignRequest(tuple(tiny_seqs)[:3], engine="center-star"),
            req(engine="sample-align-d", n_procs=2, seed=0),
        ]
        with AlignmentService(max_workers=3) as svc:
            jobs = svc.run_batch(reqs)
            assert [j.request.engine for j in jobs] == [
                "center-star", "center-star", "sample-align-d"
            ]
            assert jobs[1].result.alignment.n_rows == 3
            assert jobs[2].result.engine == "sample-align-d"
            results = svc.results(reqs)
            assert [r.alignment.n_rows for r in results] == [5, 3, 5]

    def test_job_metadata(self, req):
        with AlignmentService(max_workers=1) as svc:
            jobs = svc.run_batch([req(), req()])
            meta = [j.metadata() for j in jobs]
            assert meta[0]["cache_hit"] is False
            assert meta[1]["cache_hit"] is True
            assert meta[0]["status"] == meta[1]["status"] == "done"
            assert meta[0]["request_hash"] == meta[1]["request_hash"]
            assert all(m["wall_time"] is not None for m in meta)


class TestErrors:
    def test_engine_failure_recorded_not_fatal(self, req):
        with AlignmentService(max_workers=2) as svc:
            bad = req(engine="does-not-exist")
            good = req()
            jobs = svc.run_batch([bad, good])
            assert jobs[0].status == "failed"
            assert isinstance(jobs[0].error, KeyError)
            assert jobs[1].status == "done"
            with pytest.raises(KeyError):
                svc.results([bad])

    def test_wait_reraises(self, req):
        with AlignmentService(max_workers=1) as svc:
            job = svc.submit(req(engine="does-not-exist"))
            with pytest.raises(KeyError, match="unknown engine"):
                job.wait()

    def test_failed_run_not_cached(self, req, counting_engine):
        with AlignmentService(max_workers=1) as svc:
            with pytest.raises(KeyError):
                svc.run(req(engine="does-not-exist"))
            assert svc.stats["cached"] == 0 and svc.stats["inflight"] == 0

    def test_wait_timeout_does_not_poison_job(self, req, counting_engine):
        from concurrent.futures import TimeoutError as FuturesTimeoutError

        counting_engine.release.clear()  # hold the engine mid-run
        with AlignmentService(max_workers=1) as svc:
            job = svc.submit(req(engine="counting"))
            with pytest.raises(FuturesTimeoutError):
                job.wait(timeout=0.01)
            assert job.error is None and job.status == "running"
            counting_engine.release.set()
            result = job.wait()
            assert job.status == "done" and result is not None

    def test_closed_service_rejects(self, req):
        svc = AlignmentService(max_workers=1)
        svc.close()
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit(req())


class TestLifecycle:
    def test_close_drains_inflight_jobs(self, req, counting_engine):
        """close() blocks until running jobs finish; their results remain."""
        counting_engine.release.clear()  # hold the engine mid-run
        svc = AlignmentService(max_workers=1)
        job = svc.submit(req(engine="counting"))
        assert counting_engine.started.wait(timeout=10)
        threading.Timer(0.05, counting_engine.release.set).start()
        svc.close()  # must wait for the in-flight job, not abandon it
        assert job.done and job.status == "done"
        assert job.wait().alignment.n_rows == 5
        assert counting_engine.calls == 1

    def test_concurrent_same_request_coalesces(self, req, counting_engine):
        """Two threads submitting the same request share one computation."""
        counting_engine.release.clear()
        jobs = []
        errors = []
        barrier = threading.Barrier(2)

        with AlignmentService(max_workers=4) as svc:
            r = req(engine="counting")

            def submit():
                barrier.wait(timeout=10)
                try:
                    jobs.append(svc.submit(r))
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=submit) for _ in range(2)]
            for t in threads:
                t.start()
            assert counting_engine.started.wait(timeout=10)
            # Hold the engine until BOTH submissions are in: the second
            # must arrive while the first is in flight (that in-flight
            # window is what coalescing guarantees; a submission after
            # completion may legitimately recompute on a cold cache).
            deadline = time.monotonic() + 10
            while len(jobs) + len(errors) < 2 and time.monotonic() < deadline:
                time.sleep(0.001)
            counting_engine.release.set()
            for t in threads:
                t.join(timeout=10)
            assert not errors and len(jobs) == 2
            results = [j.wait() for j in jobs]
            assert counting_engine.calls == 1
            assert sum(j.cache_hit for j in jobs) == 1
            assert results[0].alignment == results[1].alignment

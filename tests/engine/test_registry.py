"""Unified engine registry: resolution, parity with legacy paths, plug-ins."""

import pytest

from repro import sample_align_d
from repro.engine import (
    align,
    available_engines,
    get_engine,
    register_engine,
    unregister_engine,
)
from repro.engine.registry import (
    available_sequential_aligners,
    register_sequential_aligner,
)
from repro.msa import available_aligners, get_aligner
from repro.msa.centerstar import CenterStar
from repro.msa.parallel_baseline import ParallelClustalW
from repro.msa.registry import register_aligner, unregister_aligner


class TestResolution:
    def test_every_msa_name_is_an_engine(self):
        engines = available_engines()
        for name in available_aligners():
            assert engines[name] == "sequential"

    def test_distributed_engines_present(self):
        engines = available_engines()
        assert engines["sample-align-d"] == "distributed"
        assert engines["parallel-baseline"] == "distributed"

    def test_unknown_engine(self):
        with pytest.raises(KeyError, match="unknown engine"):
            get_engine("nope")

    def test_case_insensitive(self):
        assert get_engine("Center-Star").name == "center-star"

    def test_kwargs_passthrough(self):
        eng = get_engine("muscle", refine_rounds=5)
        assert eng.aligner.refine_rounds == 5


class TestLegacyParity:
    """Every unified-registry name produces the legacy path's output."""

    @pytest.mark.parametrize("name", sorted(
        # Every built-in sequential name, probcons included: the engine
        # path must match the legacy registry path output exactly.
        ["muscle", "muscle-p", "muscle-draft", "clustalw", "clustalw-full",
         "tcoffee", "probcons", "mafft-nwnsi", "mafft-fftnsi", "center-star"]
    ))
    def test_sequential_matches_legacy(self, name, tiny_seqs):
        legacy = get_aligner(name).align(tiny_seqs)
        unified = align(tiny_seqs, engine=name)
        assert unified.alignment == legacy
        assert unified.engine == name
        assert unified.n_procs == 1

    def test_all_builtin_names_covered(self):
        covered = set(
            self.test_sequential_matches_legacy.pytestmark[0].args[1]
        )
        assert covered >= set(available_aligners())

    def test_sample_align_d_matches_legacy(self, tiny_seqs):
        legacy = sample_align_d(tiny_seqs, n_procs=2, seed=3)
        unified = align(tiny_seqs, engine="sample-align-d", n_procs=2, seed=3)
        assert unified.alignment == legacy.alignment
        assert unified.sp == legacy.sp
        assert unified.details.config == legacy.config

    def test_parallel_baseline_matches_legacy(self, tiny_seqs):
        legacy = ParallelClustalW().align(tiny_seqs, n_procs=2)
        unified = align(tiny_seqs, engine="parallel-baseline", n_procs=2)
        assert unified.alignment == legacy.alignment
        assert unified.n_procs == 2


class TestPlugins:
    def test_register_engine_requires_known_kind(self):
        with pytest.raises(ValueError, match="kind"):
            register_engine("weird", lambda **kw: None, kind="quantum")

    def test_register_overwrite_unregister(self):
        register_sequential_aligner("plug-seq", lambda **kw: CenterStar(**kw))
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_sequential_aligner(
                    "plug-seq", lambda **kw: CenterStar(**kw)
                )
            # Escape hatch.
            register_sequential_aligner(
                "plug-seq", lambda **kw: CenterStar(**kw), overwrite=True
            )
        finally:
            unregister_engine("plug-seq")
        assert "plug-seq" not in available_engines()

    def test_unregister_unknown(self):
        with pytest.raises(KeyError, match="not registered"):
            unregister_engine("never-was")

    def test_msa_register_mirrors_into_engines(self, tiny_seqs):
        register_aligner("mirror-test", lambda **kw: CenterStar(**kw))
        try:
            assert "mirror-test" in available_aligners()
            assert available_engines()["mirror-test"] == "sequential"
            # Usable through every front door.
            assert get_aligner("mirror-test").align(tiny_seqs).n_rows == 5
            assert align(tiny_seqs, engine="mirror-test").alignment.n_rows == 5
        finally:
            unregister_aligner("mirror-test")
        assert "mirror-test" not in available_aligners()
        assert "mirror-test" not in available_engines()

    def test_msa_register_overwrite(self):
        register_aligner("swap-test", lambda **kw: CenterStar(**kw))
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_aligner("swap-test", lambda **kw: CenterStar(**kw))
            register_aligner(
                "swap-test", lambda **kw: CenterStar(**kw), overwrite=True
            )
        finally:
            unregister_aligner("swap-test")

    def test_unregister_aligner_rejects_distributed(self):
        with pytest.raises(KeyError, match="unknown aligner"):
            unregister_aligner("sample-align-d")
        assert "sample-align-d" in available_engines()

    def test_overwrite_cannot_change_engine_kind(self):
        """A sequential plug-in must not displace a distributed engine."""
        with pytest.raises(ValueError, match="cannot overwrite"):
            register_aligner(
                "sample-align-d", lambda **kw: CenterStar(**kw),
                overwrite=True,
            )
        assert available_engines()["sample-align-d"] == "distributed"

    def test_registered_name_valid_as_local_aligner(self, tiny_seqs):
        from repro.core.config import SampleAlignDConfig

        register_aligner("cfg-test", lambda **kw: CenterStar(**kw))
        try:
            cfg = SampleAlignDConfig(local_aligner="cfg-test")
            res = sample_align_d(tiny_seqs, n_procs=2, config=cfg)
            assert res.alignment.n_rows == len(tiny_seqs)
        finally:
            unregister_aligner("cfg-test")

    def test_sequential_section_view(self):
        assert set(available_sequential_aligners()) == set(available_aligners())
        assert "sample-align-d" not in available_sequential_aligners()

"""AlignRequest/AlignResult/SampleAlignDConfig serialization and hashing."""

import json

import pytest

from repro.align.profile_align import ProfileAlignConfig
from repro.core.config import SampleAlignDConfig
from repro.engine import align
from repro.engine.api import Aligner, AlignRequest, AlignResult
from repro.kmer.rank import RankConfig
from repro.seq.alphabet import MURPHY10
from repro.seq.matrices import PAM250, GapPenalties
from repro.seq.sequence import Sequence, SequenceSet


@pytest.fixture()
def request_seqs(tiny_seqs):
    return tuple(tiny_seqs)


class TestAlignRequest:
    def test_accepts_sequence_set(self, tiny_seqs):
        req = AlignRequest(sequences=tiny_seqs, engine="center-star")
        assert isinstance(req.sequences, tuple)
        assert req.sequence_set() == tiny_seqs

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no sequences"):
            AlignRequest(sequences=())

    def test_rejects_duplicate_ids(self):
        s = Sequence("x", "MKV")
        with pytest.raises(ValueError, match="duplicate"):
            AlignRequest(sequences=(s, s))

    def test_rejects_bad_n_procs(self, request_seqs):
        with pytest.raises(ValueError, match="n_procs"):
            AlignRequest(sequences=request_seqs, n_procs=0)

    def test_content_hash_stable_and_json(self, request_seqs):
        req = AlignRequest(sequences=request_seqs, engine="muscle")
        h1 = req.content_hash()
        assert h1 == req.content_hash()
        json.dumps(req.canonical())  # canonical form must be JSON-able

    def test_hash_ignores_kwarg_order(self, request_seqs):
        a = AlignRequest(
            request_seqs, engine="muscle",
            engine_kwargs={"x": 1, "y": 2},
        )
        b = AlignRequest(
            request_seqs, engine="muscle",
            engine_kwargs={"y": 2, "x": 1},
        )
        assert a.content_hash() == b.content_hash()
        assert hash(a) == hash(b)

    def test_hash_sensitive_to_content(self, request_seqs):
        base = AlignRequest(request_seqs, engine="center-star")
        assert (
            base.content_hash()
            != AlignRequest(request_seqs, engine="muscle").content_hash()
        )
        assert (
            base.content_hash()
            != AlignRequest(request_seqs[:-1], engine="center-star").content_hash()
        )
        assert (
            base.content_hash()
            != AlignRequest(request_seqs, engine="center-star", seed=1).content_hash()
        )

    def test_rejects_non_json_engine_kwargs(self, request_seqs):
        with pytest.raises(TypeError, match="JSON-able"):
            AlignRequest(
                request_seqs, engine="muscle",
                engine_kwargs={"scorer": object()},
            )

    def test_hash_distinguishes_custom_matrix_content(self, request_seqs):
        """A custom matrix reusing a bundled name must not collide."""
        import numpy as np

        from repro.align.profile_align import ProfileAlignConfig
        from repro.seq.alphabet import PROTEIN
        from repro.seq.matrices import BLOSUM62, SubstitutionMatrix

        tweaked = SubstitutionMatrix(
            "blosum62", PROTEIN, BLOSUM62.residue_part + np.eye(PROTEIN.size)
        )
        base = AlignRequest(
            request_seqs, engine="sample-align-d",
            config=SampleAlignDConfig(),
        )
        custom = AlignRequest(
            request_seqs, engine="sample-align-d",
            config=SampleAlignDConfig(
                scoring=ProfileAlignConfig(matrix=tweaked)
            ),
        )
        assert base.content_hash() != custom.content_hash()

    def test_dict_round_trip(self, request_seqs):
        req = AlignRequest(
            sequences=request_seqs,
            engine="sample-align-d",
            n_procs=3,
            seed=11,
            config=SampleAlignDConfig(local_aligner="center-star"),
            engine_kwargs={},
        )
        back = AlignRequest.from_dict(req.to_dict())
        assert back == req
        assert back.content_hash() == req.content_hash()
        # The dict itself must survive a JSON round trip too.
        back2 = AlignRequest.from_dict(json.loads(json.dumps(req.to_dict())))
        assert back2.content_hash() == req.content_hash()


class TestAlignResult:
    def test_round_trip(self, tiny_seqs):
        result = align(tiny_seqs, engine="center-star")
        assert isinstance(result, AlignResult)
        back = AlignResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back.alignment == result.alignment
        assert back.engine == result.engine
        assert back.sp == result.sp

    def test_report_json_able(self, tiny_seqs):
        result = align(tiny_seqs, engine="sample-align-d", n_procs=2, seed=0)
        report = json.loads(json.dumps(result.report()))
        assert report["engine"] == "sample-align-d"
        assert report["n_rows"] == len(tiny_seqs)
        assert "bucket_sizes" in report["diagnostics"]

    def test_summary_mentions_engine(self, tiny_seqs):
        result = align(tiny_seqs, engine="center-star")
        assert "center-star" in result.summary()

    def test_protocol_conformance(self):
        from repro.engine import get_engine

        for name in ("center-star", "sample-align-d", "parallel-baseline"):
            assert isinstance(get_engine(name), Aligner)


class TestConfigSerialization:
    def test_default_round_trip(self):
        cfg = SampleAlignDConfig()
        assert SampleAlignDConfig.from_dict(cfg.to_dict()) == cfg

    def test_non_default_round_trip(self):
        cfg = SampleAlignDConfig(
            rank_config=RankConfig(k=5, alphabet=MURPHY10, transform="log"),
            scoring=ProfileAlignConfig(
                matrix=PAM250,
                gaps=GapPenalties(8.0, 0.4, 0.5),
                clustalw_gap_modifiers=True,
            ),
            samples_per_proc=2,
            local_aligner="center-star",
            local_aligner_kwargs={"kmer_k": 3},
            root_aligner="clustalw",
            tweak=False,
            sampling="random",
            sampling_seed=9,
            ancestor_reduction="tree",
            refine_local_rounds=1,
            post_refine_rounds=2,
        )
        back = SampleAlignDConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))
        assert back == cfg

    def test_validates_local_aligner_name(self):
        with pytest.raises(ValueError, match="local_aligner 'nope'.*available"):
            SampleAlignDConfig(local_aligner="nope")

    def test_validates_root_aligner_name(self):
        with pytest.raises(ValueError, match="root_aligner"):
            SampleAlignDConfig(root_aligner="not-an-engine")

    def test_error_lists_available_names(self):
        with pytest.raises(ValueError, match="muscle"):
            SampleAlignDConfig(local_aligner="nope")

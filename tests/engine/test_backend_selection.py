"""Backend selection through the unified engine API and service."""

import pytest

from repro.core.config import SampleAlignDConfig
from repro.engine import AlignRequest, AlignmentService, get_engine


@pytest.fixture(scope="module")
def seqs(request):
    family = request.getfixturevalue("small_family")
    return tuple(family.sequences)


class TestEngineFactory:
    def test_engine_kwargs_build_backend_engine(self):
        engine = get_engine("sample-align-d", backend="processes")
        assert engine.backend == "processes"
        assert "processes" in repr(engine)

    def test_bad_backend_rejected_at_factory(self):
        with pytest.raises(ValueError, match="not a registered execution"):
            get_engine("sample-align-d", backend="gpu")


class TestRequestPaths:
    def test_engine_kwargs_backend_runs_processes(self, seqs):
        request = AlignRequest(
            sequences=seqs,
            engine="sample-align-d",
            n_procs=2,
            engine_kwargs={"backend": "processes"},
        )
        with AlignmentService(max_workers=1) as svc:
            result = svc.run(request)
        assert result.diagnostics["backend"] == "processes"

    def test_config_backend_wins_over_engine_default(self, seqs):
        engine = get_engine("sample-align-d", backend="processes")
        request = AlignRequest(
            sequences=seqs,
            engine="sample-align-d",
            n_procs=2,
            config=SampleAlignDConfig(backend="threads"),
        )
        result = engine.run(request)
        assert result.diagnostics["backend"] == "threads"

    def test_default_is_threads(self, seqs):
        request = AlignRequest(
            sequences=seqs, engine="sample-align-d", n_procs=2
        )
        with AlignmentService(max_workers=1) as svc:
            result = svc.run(request)
        assert result.diagnostics["backend"] == "threads"

    def test_backend_affects_cache_key(self, seqs):
        """Requests differing only in backend are distinct jobs."""
        base = dict(sequences=seqs, engine="sample-align-d", n_procs=2)
        r_threads = AlignRequest(
            config=SampleAlignDConfig(backend="threads"), **base
        )
        r_procs = AlignRequest(
            config=SampleAlignDConfig(backend="processes"), **base
        )
        assert r_threads.content_hash() != r_procs.content_hash()
        with AlignmentService(max_workers=1) as svc:
            a = svc.run(r_threads)
            b = svc.run(r_procs)
            assert svc.stats["computed"] == 2
        # ... but the alignment bytes agree (the backend contract).
        assert a.alignment.to_fasta() == b.alignment.to_fasta()

    def test_round_trip_request_with_backend(self, seqs):
        request = AlignRequest(
            sequences=seqs,
            engine="sample-align-d",
            n_procs=2,
            config=SampleAlignDConfig(backend="processes"),
        )
        restored = AlignRequest.from_dict(request.to_dict())
        assert restored.config.backend == "processes"
        assert restored.content_hash() == request.content_hash()

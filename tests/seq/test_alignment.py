"""Tests for repro.seq.alignment."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.seq.alignment import Alignment
from repro.seq.alphabet import PROTEIN
from repro.seq.sequence import Sequence


def mk(rows, ids=None):
    ids = ids or [f"r{i}" for i in range(len(rows))]
    return Alignment.from_rows(ids, rows)


class TestConstruction:
    def test_from_rows(self):
        a = mk(["MK-V", "M-AV"])
        assert a.n_rows == 2 and a.n_columns == 4

    def test_unequal_rows_rejected(self):
        with pytest.raises(ValueError, match="differing lengths"):
            mk(["MKV", "MK"])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            mk(["MK", "MV"], ids=["a", "a"])

    def test_id_count_mismatch(self):
        with pytest.raises(ValueError, match="row count"):
            Alignment(["a"], np.zeros((2, 3), dtype=np.uint8))

    def test_out_of_range_codes_rejected(self):
        with pytest.raises(ValueError, match="out-of-range"):
            Alignment(["a"], np.full((1, 2), 99, dtype=np.uint8))

    def test_from_single(self):
        s = Sequence("x", "MKV")
        a = Alignment.from_single(s)
        assert a.n_rows == 1 and a.row_text("x") == "MKV"

    def test_concatenate_rows(self):
        a = mk(["MK-V"], ids=["a"])
        b = mk(["M-AV"], ids=["b"])
        c = Alignment.concatenate_rows([a, b])
        assert c.ids == ["a", "b"] and c.n_columns == 4

    def test_concatenate_mismatched_columns(self):
        with pytest.raises(ValueError, match="column"):
            Alignment.concatenate_rows([mk(["MK"]), mk(["MKV"], ids=["b"])])

    def test_concatenate_empty(self):
        with pytest.raises(ValueError):
            Alignment.concatenate_rows([])


class TestAccess:
    def test_row_by_id_and_index(self):
        a = mk(["MK-V", "M-AV"])
        assert np.array_equal(a.row("r0"), a.row(0))
        assert a.row_text("r1") == "M-AV"

    def test_column(self):
        a = mk(["MK", "MV"])
        assert a.column(0)[0] == a.column(0)[1] == PROTEIN.index("M")

    def test_gap_mask(self):
        a = mk(["M-", "MV"])
        assert a.gap_mask().tolist() == [[False, True], [False, False]]

    def test_occupancy(self):
        a = mk(["M-", "MV"])
        assert np.allclose(a.occupancy(), [1.0, 0.5])

    def test_column_counts(self):
        a = mk(["MM-", "MV-", "M--"])
        counts = a.column_counts()
        assert counts.shape == (3, PROTEIN.size + 1)
        assert counts[0, PROTEIN.index("M")] == 3
        assert counts[1, PROTEIN.index("V")] == 1
        assert counts[2, PROTEIN.gap_code] == 3
        # Without gap column.
        res = a.column_counts(include_gap=False)
        assert res.shape == (3, PROTEIN.size)

    def test_column_counts_match_manual(self):
        rng = np.random.default_rng(0)
        mat = rng.integers(0, PROTEIN.gap_code + 1, (6, 40)).astype(np.uint8)
        a = Alignment([f"r{i}" for i in range(6)], mat)
        counts = a.column_counts()
        for j in range(40):
            manual = np.bincount(mat[:, j], minlength=PROTEIN.size + 1)
            assert np.array_equal(counts[j], manual)

    def test_iteration(self):
        a = mk(["MK", "MV"])
        assert list(a) == [("r0", "MK"), ("r1", "MV")]

    def test_equality(self):
        assert mk(["MK"]) == mk(["MK"])
        assert mk(["MK"]) != mk(["MV"])


class TestTransforms:
    def test_ungapped_roundtrip(self):
        a = mk(["M-KV-", "MA-V-"])
        un = a.ungapped()
        assert un["r0"].residues == "MKV"
        assert un["r1"].residues == "MAV"

    def test_select_rows(self):
        a = mk(["MK", "MV", "ML"])
        sel = a.select_rows(["r2", "r0"])
        assert sel.ids == ["r2", "r0"]
        sel2 = a.select_rows([1])
        assert sel2.ids == ["r1"]

    def test_drop_all_gap_columns(self):
        a = mk(["M--K", "M--V"])
        d = a.drop_all_gap_columns()
        assert d.n_columns == 2
        assert d.row_text("r0") == "MK"

    def test_drop_all_gap_noop(self):
        a = mk(["M-K", "MV-"])
        assert a.drop_all_gap_columns().n_columns == 3

    def test_insert_gap_columns(self):
        a = mk(["MK", "MV"])
        b = a.insert_gap_columns(np.array([0, 1, 2]))
        assert b.n_columns == 5
        assert b.row_text("r0") == "-M-K-"

    def test_insert_gap_columns_repeat(self):
        a = mk(["MK"])
        b = a.insert_gap_columns(np.array([1, 1]))
        assert b.row_text("r0") == "M--K"

    def test_insert_then_drop_roundtrip(self):
        a = mk(["M-KV", "MA-V"])
        b = a.insert_gap_columns(np.array([0, 2, 4])).drop_all_gap_columns()
        assert b == a

    def test_residue_to_column(self):
        a = mk(["M-K", "-MV"])
        maps = a.residue_to_column()
        assert maps[0].tolist() == [0, 2]
        assert maps[1].tolist() == [1, 2]

    @given(st.integers(0, 2**32 - 1))
    def test_insert_positions_property(self, seed):
        rng = np.random.default_rng(seed)
        mat = rng.integers(0, PROTEIN.gap_code + 1, (3, 12)).astype(np.uint8)
        a = Alignment(["a", "b", "c"], mat)
        pos = np.sort(rng.integers(0, 13, size=rng.integers(0, 5)))
        b = a.insert_gap_columns(pos)
        assert b.n_columns == a.n_columns + len(pos)
        # Residue order per row is preserved.
        for r in range(3):
            row_a = a.matrix[r][a.matrix[r] != PROTEIN.gap_code]
            row_b = b.matrix[r][b.matrix[r] != PROTEIN.gap_code]
            assert np.array_equal(row_a, row_b)


class TestRendering:
    def test_to_fasta(self):
        text = mk(["M-K", "MVK"]).to_fasta()
        assert ">r0\nM-K\n>r1\nMVK\n" == text

    def test_to_fasta_wraps(self):
        a = mk(["M" * 130])
        lines = a.to_fasta(width=60).splitlines()
        assert lines[1] == "M" * 60 and lines[3] == "M" * 10

    def test_pretty_blocks(self):
        out = mk(["MK" * 40, "MV" * 40]).pretty(block=30)
        assert "r0" in out and "r1" in out
        assert len(out.splitlines()) > 4

    def test_pretty_max_rows(self):
        out = mk(["MK", "MV", "ML"]).pretty(max_rows=2)
        assert "r2" not in out

"""Tests for repro.seq.fasta."""

import pytest

from repro.seq.fasta import (
    parse_fasta,
    parse_fasta_alignment,
    read_fasta,
    to_fasta,
    write_fasta,
)
from repro.seq.sequence import Sequence, SequenceSet


SAMPLE = """>s1 first protein
MKTAYIAK
QRQISFVK
>s2
MKVA
"""


class TestParse:
    def test_basic(self):
        ss = parse_fasta(SAMPLE)
        assert ss.ids == ["s1", "s2"]
        assert ss["s1"].residues == "MKTAYIAKQRQISFVK"
        assert ss["s2"].residues == "MKVA"

    def test_description(self):
        ss = parse_fasta(SAMPLE)
        assert ss["s1"].description == "first protein"
        assert ss["s2"].description == ""

    def test_blank_lines_ignored(self):
        ss = parse_fasta(">a\n\nMK\n\n>b\nMV\n\n")
        assert ss.ids == ["a", "b"]

    def test_gaps_stripped_for_sequences(self):
        ss = parse_fasta(">a\nM-K.V\n")
        assert ss["a"].residues == "MKV"

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            parse_fasta("MKV\n")

    def test_empty_header_rejected(self):
        with pytest.raises(ValueError, match="empty header"):
            parse_fasta(">\nMKV\n")

    def test_empty_text(self):
        assert len(parse_fasta("")) == 0

    def test_alignment_parse(self):
        aln = parse_fasta_alignment(">a\nM-K\n>b\nMVK\n")
        assert aln.n_rows == 2 and aln.n_columns == 3
        assert aln.row_text("a") == "M-K"

    def test_alignment_parse_unequal_rejected(self):
        with pytest.raises(ValueError, match="differing"):
            parse_fasta_alignment(">a\nM-K\n>b\nMV\n")


class TestWrite:
    def test_roundtrip(self):
        ss = SequenceSet(
            [Sequence("a", "MKV" * 30, description="x y"), Sequence("b", "MK")]
        )
        again = parse_fasta(to_fasta(ss))
        assert again.ids == ss.ids
        assert again["a"].residues == ss["a"].residues
        assert again["a"].description == "x y"

    def test_wrapping(self):
        text = to_fasta([Sequence("a", "M" * 125)], width=50)
        lines = text.splitlines()
        assert [len(l) for l in lines[1:]] == [50, 50, 25]

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "x.fasta"
        ss = SequenceSet([Sequence("a", "MKVA")])
        write_fasta(path, ss)
        assert read_fasta(path)["a"].residues == "MKVA"

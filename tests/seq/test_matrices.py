"""Tests for repro.seq.matrices."""

import numpy as np
import pytest

from repro.seq.alphabet import DNA, PROTEIN
from repro.seq.matrices import (
    BLOSUM62,
    DNA_SIMPLE,
    GapPenalties,
    IDENTITY,
    PAM250,
    SubstitutionMatrix,
    get_matrix,
)


class TestGapPenalties:
    def test_defaults(self):
        g = GapPenalties()
        assert g.open > 0 and g.extend >= 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            GapPenalties(open=-1)

    def test_extend_gt_open_rejected(self):
        with pytest.raises(ValueError, match="extend"):
            GapPenalties(open=1.0, extend=2.0)

    def test_terminal_factor_range(self):
        with pytest.raises(ValueError):
            GapPenalties(terminal_factor=1.5)

    def test_cost(self):
        g = GapPenalties(open=10, extend=1, terminal_factor=0.5)
        assert g.cost(3) == 13.0
        assert g.cost(3, terminal=True) == 6.5
        assert g.cost(0) == 0.0


class TestBundledMatrices:
    @pytest.mark.parametrize("mat", [BLOSUM62, PAM250, IDENTITY, DNA_SIMPLE])
    def test_symmetric(self, mat):
        assert np.allclose(mat.matrix, mat.matrix.T)

    def test_blosum62_known_values(self):
        assert BLOSUM62.score("A", "A") == 4
        assert BLOSUM62.score("W", "W") == 11
        assert BLOSUM62.score("W", "F") == 1
        assert BLOSUM62.score("C", "C") == 9
        assert BLOSUM62.score("E", "Q") == 2
        assert BLOSUM62.score("I", "V") == 3
        assert BLOSUM62.score("G", "P") == -2

    def test_pam250_known_values(self):
        assert PAM250.score("W", "W") == 17
        assert PAM250.score("C", "C") == 12
        assert PAM250.score("F", "Y") == 7
        assert PAM250.score("A", "A") == 2

    def test_wildcard_scores(self):
        assert BLOSUM62.score("X", "A") == -1
        assert BLOSUM62.score("X", "X") == -1

    def test_gap_row_zero(self):
        assert BLOSUM62.matrix[PROTEIN.gap_code].sum() == 0
        assert BLOSUM62.matrix[:, PROTEIN.gap_code].sum() == 0

    def test_dna_matrix(self):
        assert DNA_SIMPLE.score("A", "A") == 5
        assert DNA_SIMPLE.score("A", "C") == -4
        assert DNA_SIMPLE.score("N", "A") == 0

    def test_expected_score_negative(self):
        # A scoring matrix must have negative expectation over background.
        assert BLOSUM62.expected_score() < 0
        assert PAM250.expected_score() < 0

    def test_pair_scores_shape_and_values(self):
        x = PROTEIN.encode("AR")
        y = PROTEIN.encode("ARN")
        S = BLOSUM62.pair_scores(x, y)
        assert S.shape == (2, 3)
        assert S[0, 0] == 4 and S[1, 1] == 5

    def test_residue_part(self):
        assert BLOSUM62.residue_part.shape == (21, 21)


class TestConstruction:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            SubstitutionMatrix("bad", DNA, np.zeros((3, 3)))

    def test_asymmetric_rejected(self):
        m = np.zeros((DNA.size, DNA.size))
        m[0, 1] = 1.0
        with pytest.raises(ValueError, match="symmetric"):
            SubstitutionMatrix("bad", DNA, m)

    def test_matrix_readonly(self):
        with pytest.raises(ValueError):
            BLOSUM62.matrix[0, 0] = 99


class TestRegistry:
    def test_get(self):
        assert get_matrix("blosum62") is BLOSUM62
        assert get_matrix("PAM250") is PAM250

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown matrix"):
            get_matrix("nope")

"""Tests for repro.seq.sequence."""

import numpy as np
import pytest

from repro.seq.alphabet import DAYHOFF6, DNA, PROTEIN
from repro.seq.sequence import Sequence, SequenceSet


class TestSequence:
    def test_basic(self):
        s = Sequence("a", "MKV")
        assert len(s) == 3
        assert s.residues == "MKV"
        assert s.alphabet == PROTEIN

    def test_gaps_stripped(self):
        assert Sequence("a", "M-K.V").residues == "MKV"

    def test_uppercased(self):
        assert Sequence("a", "mkv").residues == "MKV"

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError, match="id"):
            Sequence("", "MKV")

    def test_codes_cached_and_readonly(self):
        s = Sequence("a", "MKV")
        c1 = s.codes
        assert c1 is s.codes
        with pytest.raises(ValueError):
            c1[0] = 0

    def test_codes_values(self):
        s = Sequence("a", "AR")
        assert list(s.codes) == [PROTEIN.index("A"), PROTEIN.index("R")]

    def test_encoded_other_alphabet(self):
        s = Sequence("a", "DEN")
        proj = s.encoded(DAYHOFF6)
        assert len(set(proj.tolist())) == 1  # all in the DENQ class

    def test_equality(self):
        assert Sequence("a", "MKV") == Sequence("a", "MKV")
        assert Sequence("a", "MKV") != Sequence("b", "MKV")
        assert Sequence("a", "MKV") != Sequence("a", "MKL")

    def test_iteration_and_indexing(self):
        s = Sequence("a", "MKV")
        assert list(s) == ["M", "K", "V"]
        assert s[1] == "K"
        assert s[1:] == "KV"

    def test_with_id(self):
        s = Sequence("a", "MKV", description="desc")
        t = s.with_id("b")
        assert t.id == "b" and t.residues == "MKV" and t.description == "desc"

    def test_dna_sequence(self):
        s = Sequence("a", "ACGU", alphabet=DNA)
        assert s.codes[3] == DNA.index("T")  # U aliases to T


class TestSequenceSet:
    def _mk(self, n=5, L=4):
        return SequenceSet(
            Sequence(f"s{i}", "ACDE"[: L - 1] + "KRHW"[i % 4]) for i in range(n)
        )

    def test_len_iter(self):
        ss = self._mk(5)
        assert len(ss) == 5
        assert [s.id for s in ss] == [f"s{i}" for i in range(5)]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SequenceSet([Sequence("a", "MK"), Sequence("a", "MV")])

    def test_indexing(self):
        ss = self._mk(5)
        assert ss[0].id == "s0"
        assert ss["s3"].id == "s3"
        assert ss[1:3].ids == ["s1", "s2"]
        assert ss[[0, 4]].ids == ["s0", "s4"]
        assert ss[np.array([2, 1])].ids == ["s2", "s1"]

    def test_contains(self):
        ss = self._mk(3)
        assert "s1" in ss and "zz" not in ss

    def test_lengths_stats(self):
        ss = SequenceSet([Sequence("a", "MK"), Sequence("b", "MKVA")])
        assert list(ss.lengths()) == [2, 4]
        assert ss.mean_length() == 3.0
        assert ss.max_length() == 4

    def test_empty_stats(self):
        ss = SequenceSet()
        assert ss.mean_length() == 0.0
        assert ss.max_length() == 0

    def test_add_extend(self):
        ss = self._mk(2)
        ss.add(Sequence("new", "MK"))
        assert "new" in ss
        with pytest.raises(ValueError, match="duplicate"):
            ss.add(Sequence("new", "MK"))
        ss.extend([Sequence("n2", "MK")])
        assert len(ss) == 4

    def test_subset(self):
        ss = self._mk(6)
        sub = ss.subset(lambda s: s.id.endswith(("0", "2")))
        assert sub.ids == ["s0", "s2"]

    def test_sample_deterministic(self):
        ss = self._mk(10)
        a = ss.sample(4, np.random.default_rng(0))
        b = ss.sample(4, np.random.default_rng(0))
        assert a.ids == b.ids
        assert len(a) == 4

    def test_sample_too_many(self):
        with pytest.raises(ValueError, match="sample"):
            self._mk(3).sample(4, np.random.default_rng(0))

    def test_split_near_equal(self):
        ss = self._mk(10)
        parts = ss.split(3)
        assert sorted(len(p) for p in parts) == [3, 3, 4]
        assert sum((p.ids for p in parts), []) == ss.ids

    def test_split_more_parts_than_items(self):
        parts = self._mk(2).split(4)
        assert sum(len(p) for p in parts) == 2

    def test_split_invalid(self):
        with pytest.raises(ValueError):
            self._mk(2).split(0)

    def test_reordered(self):
        ss = self._mk(3)
        r = ss.reordered(["s2", "s0", "s1"])
        assert r.ids == ["s2", "s0", "s1"]
        with pytest.raises(ValueError, match="permutation"):
            ss.reordered(["s0", "s1"])

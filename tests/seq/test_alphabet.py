"""Tests for repro.seq.alphabet."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.seq.alphabet import (
    DAYHOFF6,
    DNA,
    MURPHY10,
    PROTEIN,
    SE_B14,
    Alphabet,
    CompressedAlphabet,
    compressed_alphabets,
)


class TestAlphabetBasics:
    def test_protein_size(self):
        assert PROTEIN.size == 21
        assert len(PROTEIN) == 21

    def test_gap_code_is_one_past_last(self):
        assert PROTEIN.gap_code == PROTEIN.size
        assert DNA.gap_code == DNA.size

    def test_contains(self):
        assert "A" in PROTEIN
        assert "-" not in PROTEIN

    def test_index(self):
        assert PROTEIN.index("A") == 0
        assert PROTEIN.index("R") == 1
        assert PROTEIN.index("X") == 20

    def test_index_alias(self):
        assert PROTEIN.index("B") == PROTEIN.index("D")
        assert PROTEIN.index("Z") == PROTEIN.index("E")
        assert PROTEIN.index("U") == PROTEIN.index("C")

    def test_duplicate_symbols_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Alphabet("bad", "AAB")

    def test_gap_symbol_rejected(self):
        with pytest.raises(ValueError, match="gap"):
            Alphabet("bad", "AB-")

    def test_wildcard_must_be_symbol(self):
        with pytest.raises(ValueError, match="wildcard"):
            Alphabet("bad", "AB", wildcard="Z")

    def test_equality_and_hash(self):
        a = Alphabet("x", "ABC")
        b = Alphabet("x", "ABC")
        assert a == b
        assert hash(a) == hash(b)
        assert a != Alphabet("y", "ABC")


class TestEncodeDecode:
    def test_roundtrip(self):
        text = "ACDEFGHIKLMNPQRSTVWY"
        assert PROTEIN.decode(PROTEIN.encode(text)) == text

    def test_lowercase_input(self):
        assert np.array_equal(PROTEIN.encode("acd"), PROTEIN.encode("ACD"))

    def test_gap_encoding(self):
        codes = PROTEIN.encode("A-C")
        assert codes[1] == PROTEIN.gap_code

    def test_dot_is_gap(self):
        codes = PROTEIN.encode("A.C")
        assert codes[1] == PROTEIN.gap_code

    def test_gaps_disallowed(self):
        with pytest.raises(ValueError, match="gap"):
            PROTEIN.encode("A-C", allow_gaps=False)

    def test_unknown_maps_to_wildcard(self):
        codes = PROTEIN.encode("A?C")
        assert codes[1] == PROTEIN.index("X")

    def test_unknown_without_wildcard_raises(self):
        plain = Alphabet("plain", "AB")
        with pytest.raises(ValueError, match="not in alphabet"):
            plain.encode("AZB")

    def test_alias_encoding(self):
        codes = PROTEIN.encode("BZ")
        assert codes[0] == PROTEIN.index("D")
        assert codes[1] == PROTEIN.index("E")

    def test_decode_gap(self):
        assert PROTEIN.decode(np.array([0, PROTEIN.gap_code])) == "A-"

    def test_decode_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            PROTEIN.decode(np.array([PROTEIN.gap_code + 1]))

    def test_empty(self):
        assert PROTEIN.encode("").size == 0
        assert PROTEIN.decode(np.zeros(0, dtype=np.uint8)) == ""

    @given(st.text(alphabet="ARNDCQEGHILKMFPSTWYV", max_size=200))
    def test_roundtrip_property(self, text):
        assert PROTEIN.decode(PROTEIN.encode(text)) == text

    def test_background_frequencies(self):
        bg = PROTEIN.background_frequencies()
        assert bg.shape == (21,)
        assert np.isclose(bg.sum(), 1.0)


class TestCompressedAlphabets:
    def test_registry(self):
        reg = compressed_alphabets()
        assert set(reg) == {"dayhoff6", "murphy10", "se_b14"}

    @pytest.mark.parametrize("alpha", [DAYHOFF6, MURPHY10, SE_B14])
    def test_groups_partition_parent(self, alpha):
        covered = "".join(alpha.groups)
        assert sorted(covered) == sorted(PROTEIN.symbols)

    def test_dayhoff_size(self):
        assert DAYHOFF6.size == 7  # 6 classes + X class

    def test_projection_matches_encoding(self):
        text = "ARNDCQEGHILKMFPSTWYVX"
        direct = DAYHOFF6.encode(text)
        projected = DAYHOFF6.project(PROTEIN.encode(text))
        assert np.array_equal(direct, projected)

    def test_projection_gap(self):
        assert DAYHOFF6.project(
            np.array([PROTEIN.gap_code], dtype=np.uint8)
        )[0] == DAYHOFF6.gap_code

    def test_same_group_same_code(self):
        assert DAYHOFF6.index("D") == DAYHOFF6.index("E") == DAYHOFF6.index("N")
        assert MURPHY10.index("L") == MURPHY10.index("V")

    def test_different_groups_differ(self):
        assert DAYHOFF6.index("C") != DAYHOFF6.index("A")

    def test_parent_alias_survives(self):
        # B aliases to D in the parent; D is in the DENQ group.
        assert DAYHOFF6.index("B") == DAYHOFF6.index("D")

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ValueError, match="two groups"):
            CompressedAlphabet("bad", PROTEIN, ["AC", "CD", "X"])

    def test_incomplete_groups_rejected(self):
        with pytest.raises(ValueError, match="not covered"):
            CompressedAlphabet("bad", PROTEIN, ["A", "X"])

    def test_unknown_residue_in_group_rejected(self):
        with pytest.raises(ValueError, match="not in parent"):
            CompressedAlphabet("bad", PROTEIN, ["A?", "X"])

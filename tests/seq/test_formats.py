"""Tests for the CLUSTAL and PHYLIP formats (repro.seq.formats)."""

import pytest

from repro.seq.alignment import Alignment
from repro.seq.formats import (
    parse_clustal,
    parse_phylip,
    read_clustal,
    to_clustal,
    to_phylip,
    write_clustal,
)


def mk(rows, ids=None):
    ids = ids or [f"r{i}" for i in range(len(rows))]
    return Alignment.from_rows(ids, rows)


class TestClustal:
    def test_roundtrip(self):
        aln = mk(["MKTAYI-KQR" * 8, "MKTAYIAKQR" * 8, "MK-AYIAKQR" * 8])
        again = parse_clustal(to_clustal(aln))
        assert again == aln

    def test_header_present(self):
        assert to_clustal(mk(["MK"])).startswith("CLUSTAL")

    def test_conservation_symbols(self):
        text = to_clustal(mk(["MKV", "MKV"]))
        # Identical columns must be starred.
        star_line = [l for l in text.splitlines() if "*" in l]
        assert star_line and star_line[0].strip() == "***"

    def test_strong_group_symbol(self):
        # I/V are in the MILV strong group.
        text = to_clustal(mk(["MIV", "MVV"]))
        cons = [l for l in text.splitlines() if set(l.strip()) <= set("*:. ")
                and l.strip()]
        assert cons[0].strip()[1] == ":"

    def test_gap_column_blank(self):
        text = to_clustal(mk(["M-V", "MKV"]))
        cons = [l for l in text.splitlines()
                if l.strip() and set(l.strip()) <= set("*:. ")]
        assert len(cons[0].strip()) < 3 or cons[0][1] == " "

    def test_wraps_long_alignments(self):
        aln = mk(["M" * 150, "M" * 150])
        text = to_clustal(aln, width=60)
        occurrences = sum(1 for l in text.splitlines() if l.startswith("r0"))
        assert occurrences == 3

    def test_not_clustal_rejected(self):
        with pytest.raises(ValueError, match="CLUSTAL"):
            parse_clustal(">fasta\nMKV\n")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_clustal("CLUSTAL W header only\n")

    def test_file_roundtrip(self, tmp_path):
        aln = mk(["MK-V", "MKAV"])
        path = tmp_path / "x.aln"
        write_clustal(path, aln)
        assert read_clustal(path) == aln


class TestPhylip:
    def test_roundtrip(self):
        aln = mk(["MKTAYI-KQR", "MKTAYIAKQR"])
        again = parse_phylip(to_phylip(aln))
        assert again.n_rows == 2
        assert again.row_text(0) == aln.row_text(0)

    def test_header_counts(self):
        text = to_phylip(mk(["MKV", "MLV"]))
        assert text.splitlines()[0].split() == ["2", "3"]

    def test_name_truncation_disambiguated(self):
        aln = mk(["MKV", "MLV"],
                 ids=["averylongname_one", "averylongname_two"])
        again = parse_phylip(to_phylip(aln))
        assert len(set(again.ids)) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            to_phylip(mk([], ids=[]))
        with pytest.raises(ValueError):
            parse_phylip("")

    def test_bad_header(self):
        with pytest.raises(ValueError, match="header"):
            parse_phylip("not a header\nABC\n")

    def test_column_mismatch_detected(self):
        with pytest.raises(ValueError, match="columns"):
            parse_phylip(" 1 5\nname      MKV\n")

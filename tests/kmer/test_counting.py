"""Tests for repro.kmer.counting."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kmer.counting import KmerCounter, kmer_codes
from repro.seq.alphabet import DAYHOFF6, MURPHY10, PROTEIN, Alphabet
from repro.seq.sequence import Sequence


class TestKmerCodes:
    def test_manual(self):
        # codes [1, 0, 2] over radix 3, k=2 -> [1*3+0, 0*3+2] = [3, 2]
        out = kmer_codes(np.array([1, 0, 2]), k=2, alphabet_size=3)
        assert out.tolist() == [3, 2]

    def test_k1_identity(self):
        codes = np.array([0, 2, 1])
        assert kmer_codes(codes, 1, 3).tolist() == [0, 2, 1]

    def test_too_short(self):
        assert kmer_codes(np.array([1]), 3, 4).size == 0

    def test_empty(self):
        assert kmer_codes(np.zeros(0, dtype=np.int64), 2, 4).size == 0

    def test_bad_k(self):
        with pytest.raises(ValueError):
            kmer_codes(np.array([0]), 0, 4)

    def test_out_of_range_code(self):
        with pytest.raises(ValueError, match="out of range"):
            kmer_codes(np.array([5]), 1, 4)

    @given(st.lists(st.integers(0, 3), min_size=2, max_size=50))
    def test_codes_in_range(self, vals):
        out = kmer_codes(np.array(vals), 2, 4)
        assert out.size == len(vals) - 1
        assert (out >= 0).all() and (out < 16).all()


class TestKmerCounter:
    def test_space_size(self):
        kc = KmerCounter(k=3, alphabet=DAYHOFF6)
        assert kc.space_size == DAYHOFF6.size**3

    def test_dense_ok(self):
        assert KmerCounter(k=4, alphabet=DAYHOFF6).dense_ok
        assert not KmerCounter(k=8, alphabet=MURPHY10).dense_ok

    def test_bad_k(self):
        with pytest.raises(ValueError):
            KmerCounter(k=0)

    def test_count_vector_total(self):
        kc = KmerCounter(k=3)
        s = Sequence("a", "MKVAMKVA")
        assert kc.count_vector(s).sum() == len(s) - 2
        assert kc.n_kmers(s) == len(s) - 2

    def test_count_vector_dense_required(self):
        kc = KmerCounter(k=9, alphabet=MURPHY10)
        with pytest.raises(ValueError, match="dense"):
            kc.count_vector(Sequence("a", "MKVAMKVA"))

    def test_count_matrix_rows(self):
        kc = KmerCounter(k=2)
        seqs = [Sequence("a", "MKVA"), Sequence("b", "MKV")]
        m = kc.count_matrix(seqs)
        assert m.shape == (2, kc.space_size)
        assert m[0].sum() == 3 and m[1].sum() == 2

    def test_projection_equals_direct_encoding(self):
        kc = KmerCounter(k=3, alphabet=DAYHOFF6)
        s_protein = Sequence("a", "MKVADENQW", alphabet=PROTEIN)
        s_direct = Sequence("a", "MKVADENQW", alphabet=DAYHOFF6)
        assert np.array_equal(
            kc.count_vector(s_protein), kc.count_vector(s_direct)
        )

    def test_repeated_kmers_counted(self):
        kc = KmerCounter(k=2, alphabet=PROTEIN)
        s = Sequence("a", "AAAA")
        v = kc.count_vector(s)
        assert v.max() == 3  # "AA" occurs three times

    def test_sorted_kmers(self):
        kc = KmerCounter(k=2)
        km = kc.sorted_kmers(Sequence("a", "MKVAMK"))
        assert (np.diff(km) >= 0).all()

    def test_decorated_unique(self):
        kc = KmerCounter(k=2)
        d = kc.decorated_kmers(Sequence("a", "AAAAAA"))
        assert len(np.unique(d)) == len(d)

    def test_decorated_intersection_equals_min_sum(self):
        kc = KmerCounter(k=2)
        rng = np.random.default_rng(0)
        for _ in range(10):
            a = Sequence("a", "".join(rng.choice(list("ACDEG"), 30)))
            b = Sequence("b", "".join(rng.choice(list("ACDEG"), 25)))
            expected = int(
                np.minimum(kc.count_vector(a), kc.count_vector(b)).sum()
            )
            got = np.intersect1d(
                kc.decorated_kmers(a), kc.decorated_kmers(b), assume_unique=True
            ).size
            assert got == expected

    def test_short_sequence(self):
        kc = KmerCounter(k=5)
        s = Sequence("a", "MK")
        assert kc.count_vector(s).sum() == 0
        assert kc.n_kmers(s) == 0
        assert kc.decorated_kmers(s).size == 0

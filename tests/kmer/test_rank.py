"""Tests for repro.kmer.rank."""

import numpy as np
import pytest

from repro.datagen.rose import generate_family
from repro.kmer.rank import (
    RankConfig,
    centralized_rank,
    globalized_rank,
    rank_from_fractions,
)
from repro.seq.sequence import Sequence


class TestRankConfig:
    def test_defaults(self):
        cfg = RankConfig()
        assert cfg.k == 4 and cfg.transform == "neglog"

    def test_bad_offset(self):
        with pytest.raises(ValueError):
            RankConfig(offset=0.0)

    def test_bad_transform(self):
        with pytest.raises(ValueError):
            RankConfig(transform="exp")

    def test_counter(self):
        assert RankConfig(k=3).counter().k == 3


class TestRankTransform:
    def test_neglog_monotone_decreasing(self):
        d = np.array([0.1, 0.4, 0.9])
        r = rank_from_fractions(d)
        assert (np.diff(r) < 0).all()

    def test_neglog_range(self):
        r = rank_from_fractions(np.array([0.0, 1.0]))
        assert np.isclose(r[0], -np.log(0.1))
        assert r[1] == 0.0  # clipped at zero (Table 1's minimum)

    def test_literal_log_variant(self):
        cfg = RankConfig(transform="log")
        r = rank_from_fractions(np.array([0.0, 1.0]), cfg)
        assert np.isclose(r[0], np.log(0.1))
        assert np.isclose(r[1], np.log(1.1))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            rank_from_fractions(np.array([1.5]))


class TestEstimators:
    def test_globalized_equals_centralized_with_full_sample(self, small_family):
        seqs = list(small_family.sequences)
        cfg = RankConfig()
        central = centralized_rank(seqs, cfg)
        globalized = globalized_rank(seqs, seqs, cfg)
        assert np.allclose(central, globalized)

    def test_globalized_tracks_centralized(self):
        # Composition-diverse input (several families with distinct residue
        # backgrounds, the paper's "phylogenetically diverse" regime),
        # sampled the way the algorithm does: regularly from a rank-sorted
        # list.
        from repro.datagen.rose import BACKGROUND, RoseParams

        rng = np.random.default_rng(0)
        seqs = []
        for f in range(4):
            bg = rng.dirichlet(BACKGROUND * 30.0 + 1e-3)
            params = RoseParams(
                n_sequences=12, mean_length=90, relatedness=500, background=bg
            )
            fam = generate_family(
                seed=f, track_alignment=False, id_prefix=f"f{f}_", params=params
            )
            seqs.extend(fam.sequences)
        cfg = RankConfig()
        central = centralized_rank(seqs, cfg)
        order = np.argsort(central)
        sample = [seqs[int(i)] for i in order[:: max(len(seqs) // 12, 1)]]
        globalized = globalized_rank(seqs, sample, cfg)
        corr = np.corrcoef(central, globalized)[0, 1]
        assert corr > 0.75

    def test_diverse_family_ranks_higher(self):
        close = generate_family(12, 80, relatedness=80, seed=1,
                                track_alignment=False)
        far = generate_family(12, 80, relatedness=900, seed=1,
                              track_alignment=False)
        cfg = RankConfig()
        r_close = centralized_rank(list(close.sequences), cfg).mean()
        r_far = centralized_rank(list(far.sequences), cfg).mean()
        assert r_far > r_close

    def test_identical_sequences_rank_zero_ish(self):
        seqs = [Sequence(f"s{i}", "MKVAWDENQRTS" * 4) for i in range(6)]
        r = centralized_rank(seqs)
        # All-identical set: D_i = 1, rank = max(-ln(1.1), 0) = 0.
        assert np.allclose(r, 0.0)

    def test_include_self_effect(self, small_family):
        seqs = list(small_family.sequences)
        with_self = centralized_rank(seqs, RankConfig(include_self=True))
        without = centralized_rank(seqs, RankConfig(include_self=False))
        # Excluding the perfect self-match lowers D_i, raising the rank.
        assert (without >= with_self - 1e-12).all()
        assert without.mean() > with_self.mean()

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError, match="sample"):
            globalized_rank([Sequence("a", "MKVA")], [])

    def test_empty_sequences(self):
        assert centralized_rank([]).size == 0

    def test_rank_values_in_table1_range(self, diverse_family):
        # The paper's Table 1 reports ranks in [0, ~1.46] for divergent
        # sets; the neglog transform is bounded by -ln(0.1) ~ 2.30.
        r = centralized_rank(list(diverse_family.sequences))
        assert (r >= 0).all() and (r <= -np.log(0.1) + 1e-9).all()

"""Tests for repro.kmer.distance."""

import numpy as np
import pytest

from repro.kmer.counting import KmerCounter
from repro.kmer.distance import (
    fractional_identity_estimate,
    kmer_distance_matrix,
    kmer_match_fraction_matrix,
)
from repro.seq.alphabet import MURPHY10, PROTEIN
from repro.seq.sequence import Sequence


def seqs_from(texts):
    return [Sequence(f"s{i}", t) for i, t in enumerate(texts)]


class TestMatchFraction:
    def test_self_is_one(self):
        seqs = seqs_from(["MKVAWDEN", "QQWERTYH"])
        f = kmer_match_fraction_matrix(seqs, counter=KmerCounter(k=2))
        assert np.allclose(np.diag(f), 1.0)

    def test_symmetric(self):
        seqs = seqs_from(["MKVAWDEN", "MKVAWDQQ", "WWWWYYYY"])
        f = kmer_match_fraction_matrix(seqs, counter=KmerCounter(k=2))
        assert np.allclose(f, f.T)

    def test_range(self):
        seqs = seqs_from(["MKVAWDEN", "MKVAWDQQ", "WWWWYYYY"])
        f = kmer_match_fraction_matrix(seqs, counter=KmerCounter(k=2))
        assert (f >= 0).all() and (f <= 1).all()

    def test_identical_sequences(self):
        seqs = seqs_from(["MKVAWDEN", "MKVAWDEN"])
        f = kmer_match_fraction_matrix(seqs, counter=KmerCounter(k=3))
        assert f[0, 1] == 1.0

    def test_disjoint_kmers(self):
        # Protein alphabet (no compression) keeps the k-mers distinct.
        kc = KmerCounter(k=2, alphabet=PROTEIN)
        seqs = seqs_from(["AAAA", "WWWW"])
        f = kmer_match_fraction_matrix(seqs, counter=kc)
        assert f[0, 1] == 0.0

    def test_normalised_by_shorter(self):
        # Prefix sequence: all its k-mers appear in the longer one.
        kc = KmerCounter(k=2, alphabet=PROTEIN)
        seqs = seqs_from(["MKVA", "MKVAWDENQ"])
        f = kmer_match_fraction_matrix(seqs, counter=kc)
        assert f[0, 1] == 1.0

    def test_rectangular_matches_square(self):
        seqs = seqs_from(["MKVAWDEN", "MKVAWDQQ", "WWWWYYYY", "MKVAYYYY"])
        kc = KmerCounter(k=2)
        square = kmer_match_fraction_matrix(seqs, counter=kc)
        rect = kmer_match_fraction_matrix(seqs, seqs[:2], counter=kc)
        assert np.allclose(rect, square[:, :2])

    def test_sparse_path_agrees_with_dense(self):
        seqs = seqs_from(
            ["MKVAWDENAAQ", "MKVAWDQQFFF", "WWWWYYYYGGG", "MKVAYYYYHHH"]
        )
        dense = kmer_match_fraction_matrix(
            seqs, counter=KmerCounter(k=4, alphabet=MURPHY10)
        )
        sparse = kmer_match_fraction_matrix(
            seqs, counter=KmerCounter(k=8, alphabet=MURPHY10)
        )
        # Same shape; the sparse (k=8) path runs the intersection code.
        assert dense.shape == sparse.shape == (4, 4)
        assert np.allclose(np.diag(sparse), 1.0)

    def test_sparse_vs_dense_same_k(self):
        # Force the sparse path by monkeypatching dense_ok.
        seqs = seqs_from(["MKVAWDENAAQ", "MKVAWDQQFFF", "WWWWYYYYGGG"])
        kc = KmerCounter(k=3)
        dense = kmer_match_fraction_matrix(seqs, counter=kc)

        class Sparse(KmerCounter):
            dense_ok = property(lambda self: False)

        sparse = kmer_match_fraction_matrix(seqs, counter=Sparse(k=3))
        assert np.allclose(dense, sparse)

    def test_empty_inputs(self):
        assert kmer_match_fraction_matrix([], counter=KmerCounter(k=2)).shape == (
            0,
            0,
        )

    def test_too_short_pairs_zero(self):
        kc = KmerCounter(k=6)
        seqs = seqs_from(["MKV", "MKVAWDENQ"])
        f = kmer_match_fraction_matrix(seqs, counter=kc)
        assert f[0, 1] == 0.0 and f[0, 0] == 0.0


class TestDistance:
    def test_complement(self):
        seqs = seqs_from(["MKVAWDEN", "MKVAWDQQ"])
        kc = KmerCounter(k=2)
        f = kmer_match_fraction_matrix(seqs, counter=kc)
        d = kmer_distance_matrix(seqs, counter=kc)
        assert np.allclose(d, 1.0 - f)

    def test_related_closer_than_unrelated(self):
        related = seqs_from(["MKVAWDENQRTS", "MKVAWDENQRTA"])
        stranger = Sequence("z", "HHHHCCCCPPPP")
        kc = KmerCounter(k=2)
        d = kmer_distance_matrix(related + [stranger], counter=kc)
        assert d[0, 1] < d[0, 2]


class TestFractionalIdentity:
    def test_monotone(self):
        f = np.array([0.0, 0.3, 0.8])
        est = fractional_identity_estimate(f)
        assert (np.diff(est) > 0).all()

    def test_clipped(self):
        assert fractional_identity_estimate(np.array([1.5])).max() <= 1.0
        assert fractional_identity_estimate(np.array([0.0])).min() >= 0.0

"""Span propagation across the execution-backend seam.

The same tiled all-pairs computation must produce the same *logical*
span tree on every backend: identical span names and attributes (modulo
the backend's own identity and per-rank labels), identical parenting of
``distance.rank`` under ``distance.dispatch``, identical distance
matrices.  Threads ranks share the parent's address space, processes and
pool ranks pickle their spans home -- the canonicalised span sets must
not be able to tell the difference.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.distance import all_pairs
from repro.obs.tracing import collect, drain_spans, enable_tracing
from repro.seq.sequence import Sequence

BACKENDS = ["threads", "processes", "pool"]


@pytest.fixture(scope="module", autouse=True)
def _close_pool_after_module():
    """The pool backend warms a process-wide default pool; later suites
    assert ``mp.active_children() == []``, so close it on the way out."""
    yield
    from repro.pool import close_default_pool

    close_default_pool()


@pytest.fixture(scope="module")
def seqs():
    rows = ["MKTAYIAKQR", "MKTAYIAKQL", "MKTAYIARQR", "MKAYIAKQRQ",
            "MKTAYIAKQG"]
    return [Sequence(f"s{i}", r) for i, r in enumerate(rows)]


def canonical(records):
    """Backend-independent view of a span set, as sorted JSON lines.

    Drops per-rank identity (pids, tids, ids, timings) and the
    dispatch/pool spans' backend-specific attributes; keeps names,
    logical attributes, and each span's parent *name* -- which pins the
    tree shape without depending on id values.
    """
    by_id = {r.span_id: r for r in records}
    drop_attrs = {"backend", "rank", "attempt", "shm_msgs", "shm_bytes",
                  "pickle_msgs", "pickle_bytes"}
    lines = []
    for r in records:
        if r.name == "pool.dispatch":
            continue  # the pool's extra hop under <stage>.dispatch
        parent = by_id.get(r.parent_id)
        attrs = {k: v for k, v in sorted(r.attrs.items())
                 if k not in drop_attrs}
        lines.append(json.dumps(
            {"name": r.name, "parent": parent.name if parent else None,
             "attrs": attrs},
            sort_keys=True,
        ))
    return sorted(lines)


def run_traced_all_pairs(seqs, backend):
    enable_tracing()
    drain_spans()
    with collect(tee=False) as buf:
        d = all_pairs(seqs, "ktuple", backend=backend, workers=2,
                      tile_pairs=3)
    return d, buf.records()


class TestCrossBackendEquivalence:
    def test_span_trees_identical_across_backends(self, seqs):
        matrices, trees = {}, {}
        for backend in BACKENDS:
            d, records = run_traced_all_pairs(seqs, backend)
            matrices[backend] = d
            trees[backend] = canonical(records)
        for backend in BACKENDS[1:]:
            assert matrices[backend].tobytes() == matrices["threads"].tobytes()
            assert trees[backend] == trees["threads"], backend

    def test_rank_spans_parent_under_dispatch(self, seqs):
        _, records = run_traced_all_pairs(seqs, "processes")
        by_id = {r.span_id: r for r in records}
        ranks = [r for r in records if r.name == "distance.rank"]
        assert len(ranks) == 2
        for r in ranks:
            assert by_id[r.parent_id].name == "distance.dispatch"
            assert r.pid != os.getpid()  # genuinely recorded elsewhere

    def test_threads_ranks_record_in_parent_pid(self, seqs):
        _, records = run_traced_all_pairs(seqs, "threads")
        ranks = [r for r in records if r.name == "distance.rank"]
        assert ranks and all(r.pid == os.getpid() for r in ranks)

    def test_serial_mode_still_traces_tiles(self, seqs):
        enable_tracing()
        drain_spans()
        with collect(tee=False) as buf:
            d_serial = all_pairs(seqs, "ktuple", tile_pairs=3)
        names = [r.name for r in buf.records()]
        assert "distance.all_pairs" in names
        assert "distance.tile" in names
        assert "distance.dispatch" not in names  # no backend hop
        d_backend, _ = run_traced_all_pairs(seqs, "threads")
        assert d_serial.tobytes() == d_backend.tobytes()

    def test_untraced_results_identical_to_traced(self, seqs):
        from repro.obs.tracing import disable_tracing

        disable_tracing()
        d_off = all_pairs(seqs, "ktuple", backend="threads", workers=2,
                          tile_pairs=3)
        d_on, _ = run_traced_all_pairs(seqs, "threads")
        assert d_off.tobytes() == d_on.tobytes()


class TestMetricsRideHome:
    def test_dp_counters_cross_process(self, seqs):
        """Rank-side DP work increments the *parent's* registry.

        ``full-dp`` on the processes backend runs every pair DP in
        foreign address spaces; the per-rank metric deltas ride home
        with the spans and are absorbed exactly once.
        """
        from repro.obs.metrics import registry

        enable_tracing()
        drain_spans()
        before = registry().snapshot()
        with collect(tee=False):
            d = all_pairs(seqs, "full-dp", backend="processes", workers=2,
                          tile_pairs=3)
        assert np.all(np.isfinite(d))
        delta = registry().snapshot().diff(before)
        # The distance stage may run pairs through the scalar kernel or
        # the batched one (REPRO_DP_BATCH_PAIRS); either way every pair
        # is counted by exactly one of these.
        scalar = delta.metrics.get("dp.align_calls")
        batched = delta.metrics.get("dp.batch_pairs")
        total = (scalar.value if scalar else 0) + (
            batched.value if batched else 0
        )
        assert total >= 10  # C(5,2) pairs

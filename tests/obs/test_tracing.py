"""Spans: no-op discipline, nesting, collection, export, breakdowns."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.tracing import (
    SpanRecord,
    TraceContext,
    collect,
    disable_tracing,
    drain_spans,
    enable_tracing,
    global_records,
    install_context,
    propagation_context,
    record_spans,
    restore_context,
    span,
    stage_breakdown,
    to_chrome_trace,
    tracing_enabled,
    write_chrome_trace,
)


class TestDisabledPath:
    def test_disabled_span_is_shared_noop(self):
        assert not tracing_enabled()
        a, b = span("x"), span("y", k=1)
        assert a is b  # one shared singleton: zero allocation per call
        with a as s:
            s.set(irrelevant=True)
        assert drain_spans() == []


class TestEnabledPath:
    def test_records_name_duration_attrs(self):
        enable_tracing()
        with span("work", kind="test") as s:
            s.set(extra=7)
        (rec,) = drain_spans()
        assert rec.name == "work"
        assert rec.attrs == {"kind": "test", "extra": 7}
        assert rec.dur >= 0.0
        assert rec.parent_id is None

    def test_nesting_sets_parent_ids(self):
        enable_tracing()
        with span("outer"):
            with span("inner"):
                pass
        recs = {r.name: r for r in drain_spans()}
        assert recs["inner"].parent_id == recs["outer"].span_id
        assert recs["inner"].trace_id == recs["outer"].trace_id

    def test_exception_annotates_and_closes(self):
        enable_tracing()
        with pytest.raises(RuntimeError):
            with span("boom"):
                raise RuntimeError("x")
        (rec,) = drain_spans()
        assert rec.attrs["error"] == "RuntimeError"
        # The stack unwound: a fresh span is a root again.
        with span("after"):
            pass
        (rec,) = drain_spans()
        assert rec.parent_id is None

    def test_collect_tees_to_global(self):
        enable_tracing()
        with collect() as buf:
            with span("job"):
                pass
        assert [r.name for r in buf.records()] == ["job"]
        assert [r.name for r in global_records()] == ["job"]

    def test_collect_no_tee_keeps_global_clean(self):
        enable_tracing()
        with collect(tee=False) as buf:
            with span("private"):
                pass
        assert len(buf) == 1
        assert global_records() == []

    def test_record_spans_feeds_current_sink(self):
        enable_tracing()
        foreign = SpanRecord(
            name="shipped", span_id="p-1", parent_id=None, trace_id="t",
            pid=1, tid=1, t0=0.0, dur=0.5,
        )
        with collect() as buf:
            record_spans([foreign])
        assert buf.records() == [foreign]
        assert global_records() == [foreign]  # teed like a local span


class TestContextPropagation:
    def test_install_restore_roundtrip(self):
        enable_tracing()
        with span("parent"):
            ctx = propagation_context()
            assert isinstance(ctx, TraceContext)
            assert ctx.parent_id is not None

            result = {}

            def worker():
                buf, token = install_context(ctx)
                try:
                    with span("child"):
                        pass
                    result["spans"] = buf.drain()
                finally:
                    restore_context(token)

            t = threading.Thread(target=worker)
            t.start()
            t.join()
        (child,) = result["spans"]
        assert child.parent_id == ctx.parent_id
        assert child.trace_id == ctx.trace_id
        # The worker's spans were shipped, not teed into the global sink.
        assert [r.name for r in drain_spans()] == ["parent"]

    def test_install_force_enables(self):
        disable_tracing()
        ctx = TraceContext(trace_id="t", parent_id=None)
        buf, token = install_context(ctx)
        try:
            assert tracing_enabled()
            with span("in-worker"):
                pass
            assert len(buf) == 1
        finally:
            restore_context(token)
        assert not tracing_enabled()


class TestExports:
    def _records(self):
        enable_tracing()
        with span("a", backend="threads"):
            with span("b"):
                pass
        return drain_spans()

    def test_chrome_trace_shape(self):
        doc = to_chrome_trace(self._records())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert {e["ph"] for e in events} == {"X"}
        by_name = {e["name"]: e for e in events}
        assert by_name["b"]["args"]["parent_id"] == by_name["a"]["args"]["span_id"]
        assert by_name["a"]["args"]["backend"] == "threads"
        assert all(e["ts"] > 0 and e["dur"] >= 0 for e in events)

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), self._records())
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 2

    def test_stage_breakdown_groups_by_name(self):
        enable_tracing()
        with span("root"):
            for _ in range(3):
                with span("step"):
                    pass
        (node,) = stage_breakdown(drain_spans())
        assert node["stage"] == "root"
        assert node["count"] == 1
        (child,) = node["children"]
        assert child["stage"] == "step"
        assert child["count"] == 3
        assert 0.0 <= child["total_s"] <= node["total_s"]

    def test_stage_breakdown_orphans_become_roots(self):
        rec = SpanRecord(
            name="orphan", span_id="s", parent_id="missing", trace_id="t",
            pid=1, tid=1, t0=0.0, dur=1.0,
        )
        (node,) = stage_breakdown([rec])
        assert node["stage"] == "orphan"
        assert node["total_s"] == 1.0

    def test_stage_breakdown_sorts_by_total(self):
        recs = [
            SpanRecord(name="slow", span_id="a", parent_id=None,
                       trace_id="t", pid=1, tid=1, t0=0.0, dur=2.0),
            SpanRecord(name="fast", span_id="b", parent_id=None,
                       trace_id="t", pid=1, tid=1, t0=0.0, dur=0.5),
        ]
        assert [n["stage"] for n in stage_breakdown(recs)] == ["slow", "fast"]

"""Metrics: counters, gauges, log-bucketed histograms and their merges.

The load-bearing properties are the algebraic ones: snapshot ``merge``
must be associative and commutative (per-rank deltas arrive in whatever
order the backend's ledger walk produces) and must conserve bucket
counts exactly (a merged histogram sees every observation exactly once).
Hypothesis drives those; the rest are direct unit checks.
"""

from __future__ import annotations

import math
import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    percentile,
    registry,
)

values = st.lists(
    st.floats(
        min_value=1e-9, max_value=1e9,
        allow_nan=False, allow_infinity=False,
    ),
    max_size=40,
)


def snap(vals):
    h = Histogram()
    for v in vals:
        h.observe(v)
    return h.snapshot()


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 0.5) is None

    def test_nearest_rank(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert percentile(vals, 0.5) == 2.0
        assert percentile(vals, 0.99) == 4.0
        assert percentile(vals, 0.0) == 1.0

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestHistogram:
    def test_observe_and_stats(self):
        s = snap([1.0, 2.0, 4.0, 8.0])
        assert s.count == 4
        assert s.total == pytest.approx(15.0)
        assert s.vmin == 1.0 and s.vmax == 8.0
        assert s.mean == pytest.approx(3.75)

    def test_quantiles_bracket_the_data(self):
        vals = [0.001 * (i + 1) for i in range(100)]
        s = snap(vals)
        # Log buckets at base 1.15: any quantile is within one bucket
        # width (15%) of the true value, and clamped to [vmin, vmax].
        assert s.quantile(0.0) >= s.vmin
        assert s.quantile(1.0) <= s.vmax
        p50 = s.quantile(0.5)
        assert 0.04 < p50 < 0.07

    def test_nonpositive_goes_to_underflow(self):
        s = snap([0.0, -1.0, 2.0])
        assert s.underflow == 2
        assert s.count == 3
        assert s.quantile(0.0) == s.vmin  # underflow ranks report vmin

    def test_empty_quantile_is_none(self):
        assert Histogram().snapshot().quantile(0.5) is None

    def test_base_mismatch_raises(self):
        a = Histogram(base=1.15).snapshot()
        b = Histogram(base=2.0).snapshot()
        with pytest.raises(ValueError):
            a.merge(b)

    def test_snapshot_is_picklable(self):
        s = snap([1.0, 2.0])
        clone = pickle.loads(pickle.dumps(s))
        assert clone == s

    @given(values, values)
    def test_merge_commutative(self, a, b):
        sa, sb = snap(a), snap(b)
        ab, ba = sa.merge(sb), sb.merge(sa)
        assert ab.buckets == ba.buckets
        assert ab.count == ba.count
        assert math.isclose(ab.total, ba.total, rel_tol=1e-9, abs_tol=1e-12)

    @given(values, values, values)
    def test_merge_associative(self, a, b, c):
        sa, sb, sc = snap(a), snap(b), snap(c)
        left = sa.merge(sb).merge(sc)
        right = sa.merge(sb.merge(sc))
        assert left.buckets == right.buckets
        assert left.count == right.count
        assert math.isclose(
            left.total, right.total, rel_tol=1e-9, abs_tol=1e-12
        )

    @given(values, values)
    def test_merge_conserves_buckets(self, a, b):
        merged = snap(a).merge(snap(b))
        assert merged.count == len(a) + len(b)
        assert sum(merged.buckets.values()) + merged.underflow == merged.count
        whole = snap(a + b)
        assert merged.buckets == whole.buckets
        assert merged.underflow == whole.underflow


class TestCounterGauge:
    def test_counter_roundtrip(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot().value == 5

    def test_counter_merge_adds(self):
        a, b = Counter(), Counter()
        a.inc(2), b.inc(3)
        assert a.snapshot().merge(b.snapshot()).value == 5

    def test_gauge_merge_keeps_latest(self):
        a, b = Gauge(), Gauge()
        a.set(1.0)
        b.set(2.0)  # stamped later
        sa, sb = a.snapshot(), b.snapshot()
        assert sa.merge(sb).value == 2.0
        assert sb.merge(sa).value == 2.0  # commutative: latest stamp wins


class TestRegistry:
    def test_create_or_fetch(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")  # same name, different kind

    def test_snapshot_diff_counters_and_histograms(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.histogram("h").observe(1.0)
        before = reg.snapshot()
        reg.counter("c").inc(3)
        reg.histogram("h").observe(2.0)
        delta = reg.snapshot().diff(before)
        assert delta.metrics["c"].value == 3
        assert delta.metrics["h"].count == 1

    def test_absorb_merges_foreign_delta(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(1)
        other = MetricsRegistry()
        other.counter("c").inc(41)
        other.histogram("h").observe(0.5)
        reg.absorb(other.snapshot())
        assert reg.counter("c").value == 42
        assert reg.histogram("h").snapshot().count == 1

    def test_snapshot_merge_type_conflict_raises(self):
        a = MetricsRegistry()
        a.counter("x").inc()
        b = MetricsRegistry()
        b.gauge("x").set(1.0)
        with pytest.raises(ValueError):
            a.snapshot().merge(b.snapshot())

    def test_default_registry_is_shared(self):
        assert registry() is registry()


class TestSnapshotRoundtrip:
    def test_to_dict_shapes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(7)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(3.0)
        d = reg.snapshot().to_dict()
        assert d["c"]["value"] == 7
        assert d["g"]["value"] == 1.5
        assert d["h"]["count"] == 1

    def test_dp_counters_flow_through_default_registry(self):
        import numpy as np

        from repro.align.dp import affine_align

        before = registry().snapshot()
        S = np.zeros((3, 4))
        affine_align(S, 1.0, 0.5)
        delta = registry().snapshot().diff(before)
        assert delta.metrics["dp.align_calls"].value == 1
        assert delta.metrics["dp.align_cells"].value == 12

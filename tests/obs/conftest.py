"""Shared fixtures for the observability tests."""

from __future__ import annotations

import pytest

from repro.obs.tracing import disable_tracing, drain_spans


@pytest.fixture(autouse=True)
def _tracing_isolation():
    """Every obs test starts from a drained buffer and leaves tracing off."""
    drain_spans()
    yield
    disable_tracing()
    drain_spans()

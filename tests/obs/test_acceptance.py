"""End-to-end acceptance: one traced request covers the whole pipeline.

A single gateway-submitted clustalw alignment must produce a span tree
covering gateway -> service -> engine -> distance -> tree -> merge ->
DP, with per-stage durations that actually account for the wall clock
(children sum to >= 90% of their parents at the top level), and an
``AlignResult`` whose diagnostics carry the same breakdown.
"""

from __future__ import annotations

import pytest

from repro.datagen.rose import generate_family
from repro.engine.api import AlignRequest
from repro.obs.tracing import (
    drain_spans,
    enable_tracing,
    stage_breakdown,
    to_chrome_trace,
)
from repro.serve.gateway import AlignmentGateway

REQUIRED_STAGES = {
    "gateway.admit",
    "gateway.compute",
    "service.execute",
    "engine.align",
    "distance.all_pairs",
    "tree.build",
    "tree.merge",
    # The serial walk is level-batched by default (PR 9): merges are
    # grouped per DAG level under tree.merge_level spans; levels too
    # narrow for the fused kernel still emit per-pair DP spans inside.
    "tree.merge_level",
    "dp.profile_align",
}


@pytest.fixture(scope="module")
def traced_run():
    fam = generate_family(
        n_sequences=10, mean_length=60, seed=3, track_alignment=False
    )
    request = AlignRequest(
        sequences=tuple(fam.sequences), engine="clustalw"
    )
    drain_spans()
    enable_tracing()
    gateway = AlignmentGateway(n_workers=1)
    try:
        ticket = gateway.submit(request, client_id="acceptance")
        result = ticket.wait(60)
    finally:
        gateway.close()
        from repro.obs.tracing import disable_tracing

        disable_tracing()
    return result, drain_spans()


def _index(breakdown):
    out = {}

    def walk(nodes, parent):
        for node in nodes:
            out[node["stage"]] = (node, parent)
            walk(node.get("children", []), node)

    walk(breakdown, None)
    return out


class TestPipelineCoverage:
    def test_all_stages_present(self, traced_run):
        _, records = traced_run
        names = {r.name for r in records}
        assert REQUIRED_STAGES <= names, REQUIRED_STAGES - names

    def test_tree_shape(self, traced_run):
        _, records = traced_run
        stages = _index(stage_breakdown(records))
        # gateway.compute and service.execute are roots: the gateway's
        # dispatcher hands the job to the service's own worker thread,
        # and sibling root spans on one timeline is the honest topology.
        assert stages["gateway.compute"][1] is None
        assert stages["service.execute"][1] is None
        assert stages["engine.align"][1]["stage"] == "service.execute"
        assert stages["distance.all_pairs"][1]["stage"] == "engine.align"
        assert stages["dp.profile_align"][1]["stage"] == "tree.merge_level"

    def test_children_account_for_parent_time(self, traced_run):
        _, records = traced_run
        stages = _index(stage_breakdown(records))
        for parent_name in ("service.execute", "engine.align"):
            parent, _ = stages[parent_name]
            child_total = sum(
                c["total_s"] for c in parent.get("children", [])
            )
            assert child_total >= 0.9 * parent["total_s"], parent_name
            assert child_total <= 1.1 * parent["total_s"], parent_name

    def test_stage_durations_cover_the_wall_clock(self, traced_run):
        result, records = traced_run
        execute = [r for r in records if r.name == "service.execute"]
        assert len(execute) == 1
        # The engine's own wall_time must be essentially all inside the
        # service.execute span (within 10%).
        assert execute[0].dur >= 0.9 * result.wall_time

    def test_result_diagnostics_carry_breakdown(self, traced_run):
        result, _ = traced_run
        breakdown = result.diagnostics.get("stage_breakdown")
        assert breakdown, "traced service runs must attach the breakdown"
        stages = _index(breakdown)
        # The per-job view starts at the service (admission is outside).
        assert "service.execute" in stages
        assert "dp.profile_align" in stages

    def test_chrome_export_is_perfetto_shaped(self, traced_run):
        _, records = traced_run
        doc = to_chrome_trace(records)
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == len(records)
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "ts", "dur", "pid", "tid", "args"}

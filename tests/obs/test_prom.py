"""Prometheus text exposition: names, escaping, TYPE headers, summaries."""

from __future__ import annotations

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsSnapshot
from repro.obs.prom import (
    PROM_CONTENT_TYPE,
    escape_label_value,
    render_prometheus,
    sanitize_metric_name,
)


class TestNames:
    def test_legal_passthrough(self):
        assert sanitize_metric_name("repro_dp_calls") == "repro_dp_calls"
        assert sanitize_metric_name("a:b") == "a:b"

    def test_dots_and_dashes_mapped(self):
        assert sanitize_metric_name("dp.align_calls") == "dp_align_calls"
        assert sanitize_metric_name("center-star") == "center_star"

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("9lives") == "_9lives"


class TestEscaping:
    def test_metacharacters(self):
        assert escape_label_value('po"ol') == 'po\\"ol'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("x\ny") == "x\\ny"

    def test_rendered_label_escapes(self):
        text = render_prometheus(
            extra={"engine": 'po"ol\nx\\'},
        )
        assert 'engine="po\\"ol\\nx\\\\"' in text


class TestRender:
    def test_content_type_constant(self):
        assert PROM_CONTENT_TYPE.startswith("text/plain; version=0.0.4")

    def test_counter_and_gauge(self):
        c, g = Counter(), Gauge()
        c.inc(3)
        g.set(1.5)
        snap = MetricsSnapshot(
            {"dp.calls": c.snapshot(), "queue.depth": g.snapshot()}
        )
        text = render_prometheus(snap)
        assert "# TYPE repro_dp_calls counter" in text
        assert "repro_dp_calls 3" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 1.5" in text
        assert text.endswith("\n")

    def test_histogram_renders_as_summary(self):
        h = Histogram()
        for v in (0.01, 0.02, 0.04, 0.4):
            h.observe(v)
        text = render_prometheus(
            MetricsSnapshot({"latency.seconds": h.snapshot()})
        )
        assert "# TYPE repro_latency_seconds summary" in text
        assert 'repro_latency_seconds{quantile="0.5"}' in text
        assert 'repro_latency_seconds{quantile="0.99"}' in text
        assert "repro_latency_seconds_sum" in text
        assert "repro_latency_seconds_count 4" in text

    def test_extra_dict_flattens(self):
        text = render_prometheus(
            extra={
                "gateway": {
                    "admitted": 7,
                    "closed": False,
                    "service": {"computed": 2},
                    "default_backend": "pool",
                    "skipped_list": [1, 2],
                }
            }
        )
        assert "repro_gateway_admitted 7" in text
        assert "repro_gateway_closed 0" in text
        assert "repro_gateway_service_computed 2" in text
        assert 'repro_gateway_default_backend_info{backend="pool"} 1' in text
        assert "skipped_list" not in text

    def test_empty_render_is_empty_string(self):
        assert render_prometheus() == ""
        assert render_prometheus(MetricsSnapshot({})) == ""

    def test_labels_applied_to_every_line(self):
        c = Counter()
        c.inc()
        text = render_prometheus(
            MetricsSnapshot({"x": c.snapshot()}), labels={"rank": "3"}
        )
        assert 'repro_x{rank="3"} 1' in text

    def test_unrenderable_snapshot_raises(self):
        with pytest.raises(TypeError):
            render_prometheus(MetricsSnapshot({"bad": object()}))

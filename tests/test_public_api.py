"""Public API surface tests."""

import pytest

import repro


class TestLazyImports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.not_a_thing

    def test_quickstart_flow(self):
        from repro import sample_align_d
        from repro.datagen import rose

        fam = rose.generate_family(
            n_sequences=8, mean_length=60, seed=0, track_alignment=False
        )
        result = sample_align_d(fam.sequences, n_procs=2)
        assert result.alignment.n_rows == 8
        assert result.alignment.to_fasta().startswith(">")

    def test_subpackages_importable(self):
        import repro.align
        import repro.core
        import repro.datagen
        import repro.kmer
        import repro.metrics
        import repro.msa
        import repro.parcomp
        import repro.perfmodel
        import repro.samplesort
        import repro.seq
        import repro.serve
        import repro.tree

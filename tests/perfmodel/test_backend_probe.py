"""Measured backend-throughput probe (the `plan --backend` machinery)."""

import pytest

from repro.perfmodel import measure_backend_throughput


class TestMeasureBackendThroughput:
    def test_probe_shape(self, small_family):
        seqs = list(small_family.sequences)
        out = measure_backend_throughput(seqs, "threads", procs=[1, 2])
        assert out["backend"] == "threads"
        assert out["n_probe"] == len(seqs)  # 12 <= probe_size
        assert set(out["wall_s"]) == {"1", "2"}
        assert out["speedup"]["1"] == pytest.approx(1.0)
        assert out["best_procs"] in (1, 2)
        assert out["host_cores"] >= 1

    def test_procs_clamped_to_sample(self, small_family):
        seqs = list(small_family.sequences)
        out = measure_backend_throughput(
            seqs, "threads", procs=[1, 999], probe_size=4
        )
        # 999 ranks cannot run on a 4-sequence subsample.
        assert set(out["wall_s"]) == {"1"}
        assert out["n_probe"] == 4

    def test_validation(self, small_family):
        with pytest.raises(ValueError, match="no sequences"):
            measure_backend_throughput([], "threads")
        with pytest.raises(ValueError, match="probe_size"):
            measure_backend_throughput(
                list(small_family.sequences), "threads", probe_size=1
            )

    def test_unknown_backend_raises(self, small_family):
        with pytest.raises(KeyError, match="unknown execution backend"):
            measure_backend_throughput(
                list(small_family.sequences), "bogus", procs=[1]
            )

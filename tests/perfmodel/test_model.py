"""Tests for the calibrated performance model."""

import numpy as np
import pytest

from repro.parcomp.cost import CostModel
from repro.perfmodel import (
    KernelCoefficients,
    calibrate_kernels,
    predict_sequential_time,
    predict_stage_times,
    predict_total_time,
    speedup_curve,
)


@pytest.fixture(scope="module")
def coeffs():
    return calibrate_kernels(lengths=(50, 80), widths=(6, 12, 20))


class TestCalibration:
    def test_positive_coefficients(self, coeffs):
        assert coeffs.a_cnt > 0 and coeffs.a_pair > 0
        assert coeffs.d_dist > 0 and coeffs.d_prof > 0
        assert coeffs.d_tweak > 0
        assert coeffs.d_quart == 0.0

    def test_prediction_tracks_measurement(self, coeffs):
        """The model must predict the calibrated regime within ~3x."""
        import time

        from repro.datagen.rose import generate_family
        from repro.msa.muscle import MuscleLike

        fam = generate_family(16, 70, relatedness=500, seed=3,
                              track_alignment=False)
        t0 = time.perf_counter()
        MuscleLike(two_stage=False, refine=False).align(fam.sequences)
        measured = time.perf_counter() - t0
        predicted = coeffs.d_dist * 16**2 * 70 + coeffs.d_prof * 16 * 70**2
        assert predicted / 3 <= measured <= predicted * 3


class TestPredictions:
    def test_time_decreases_with_p(self, coeffs):
        times = [
            predict_total_time(2000, p, 300, coeffs) for p in (1, 2, 4, 8, 16)
        ]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_superlinear_speedup(self, coeffs):
        s = speedup_curve(5000, 300, [2, 4, 8, 16], coeffs)
        assert (s > np.array([2, 4, 8, 16])).all()

    def test_speedup_monotone(self, coeffs):
        s = speedup_curve(5000, 300, [2, 4, 8, 16], coeffs)
        assert (np.diff(s) > 0).all()

    def test_paper_mode_quartic(self, coeffs):
        t_plain = predict_total_time(2000, 4, 300, coeffs)
        t_paper = predict_total_time(2000, 4, 300, coeffs, paper_mode=True)
        assert t_paper > t_plain

    def test_sequential_dominates_parallel(self, coeffs):
        t_seq = predict_sequential_time(2000, 316, coeffs)
        t_par = predict_total_time(2000, 16, 316, coeffs)
        assert t_seq / t_par > 10  # the Fig. 6 regime (paper: ~142x)

    def test_stage_breakdown(self, coeffs):
        st = predict_stage_times(1000, 8, 300, coeffs)
        assert st.total == pytest.approx(st.compute + st.comm)
        assert "bucket_align" in st.stages
        assert st.stages["bucket_align"] > 0
        assert "comm_redistribute" in st.stages
        assert "TOTAL" in st.table()

    def test_single_proc_has_no_comm(self, coeffs):
        st = predict_stage_times(1000, 1, 300, coeffs)
        assert st.comm == 0.0

    def test_comm_scales_with_cost_model(self, coeffs):
        fast = CostModel(alpha=1e-6, beta=1e-9)
        slow = CostModel(alpha=1e-2, beta=1e-6)
        t_fast = predict_stage_times(1000, 8, 300, coeffs, fast).comm
        t_slow = predict_stage_times(1000, 8, 300, coeffs, slow).comm
        assert t_slow > t_fast

    def test_with_quartic_reference(self):
        c = KernelCoefficients().with_quartic(w_ref=100, L_ref=300)
        assert c.d_quart > 0

"""Tests for the capacity-planning helpers."""

import numpy as np
import pytest

from repro.parcomp.cost import CostModel
from repro.perfmodel import (
    KernelCoefficients,
    breakeven_n,
    comm_compute_crossover,
    efficiency_curve,
    optimal_processors,
    predict_total_time,
)


@pytest.fixture(scope="module")
def coeffs():
    # Synthetic but realistic constants; planning logic must not depend
    # on host timing.
    return KernelCoefficients(
        a_cnt=5e-7, a_pair=2e-6, d_dist=2e-7, d_prof=1e-7, d_tweak=5e-8
    )


class TestOptimalProcessors:
    def test_larger_n_wants_more_procs(self, coeffs):
        slow_net = CostModel(alpha=5e-3, beta=1e-6)
        p_small = optimal_processors(200, 200, coeffs, 64, slow_net)
        p_large = optimal_processors(20000, 200, coeffs, 64, slow_net)
        assert p_large >= p_small

    def test_is_argmin(self, coeffs):
        cm = CostModel(alpha=1e-3, beta=1e-7)
        p_star = optimal_processors(1000, 150, coeffs, 32, cm)
        t_star = predict_total_time(1000, p_star, 150, coeffs, cm)
        for p in (1, 2, 4, 8, 16, 32):
            assert t_star <= predict_total_time(1000, p, 150, coeffs, cm) + 1e-12

    def test_validation(self, coeffs):
        with pytest.raises(ValueError):
            optimal_processors(100, 100, coeffs, max_procs=0)


class TestEfficiency:
    def test_superlinear_efficiency_above_one(self, coeffs):
        eff = efficiency_curve(20000, 300, [2, 4, 8], coeffs)
        assert (eff > 1.0).all()

    def test_small_n_efficiency_decays(self, coeffs):
        slow_net = CostModel(alpha=1e-2, beta=1e-5)
        eff = efficiency_curve(64, 100, [2, 8, 32], coeffs, slow_net)
        assert eff[-1] < eff[0]


class TestCrossover:
    def test_crossover_exists_with_slow_network(self, coeffs):
        slow = CostModel(alpha=0.5, beta=1e-4)
        p = comm_compute_crossover(500, 200, coeffs, cost_model=slow)
        assert p < 4096

    def test_fast_network_pushes_crossover_out(self, coeffs):
        fast = CostModel(alpha=1e-7, beta=1e-11)
        slow = CostModel(alpha=0.5, beta=1e-4)
        p_fast = comm_compute_crossover(5000, 300, coeffs, cost_model=fast)
        p_slow = comm_compute_crossover(5000, 300, coeffs, cost_model=slow)
        assert p_fast >= p_slow


class TestBreakeven:
    def test_breakeven_found(self, coeffs):
        n = breakeven_n(16, 300, coeffs)
        assert 2 <= n < 1 << 20
        # At the breakeven N the parallel run indeed wins.
        from repro.perfmodel import predict_sequential_time

        assert predict_total_time(n, 16, 300, coeffs) < (
            predict_sequential_time(n, 300, coeffs)
        )

    def test_monotone_in_network_speed(self, coeffs):
        fast = CostModel(alpha=1e-7, beta=1e-11)
        slow = CostModel(alpha=1e-1, beta=1e-5)
        assert breakeven_n(8, 300, coeffs, fast) <= breakeven_n(
            8, 300, coeffs, slow
        )

"""HTTP frontend: endpoints, status codes, async job polling."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import AlignmentGateway, serve_in_thread


@pytest.fixture()
def server(counting_engine):
    """A live server on an ephemeral port over a small gateway."""
    gateway = AlignmentGateway(n_workers=2, max_queue=16)
    server, thread = serve_in_thread(gateway)
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    gateway.close()


def _url(server, path):
    return f"http://127.0.0.1:{server.port}{path}"


def _get(server, path):
    with urllib.request.urlopen(_url(server, path), timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def _post(server, path, payload):
    req = urllib.request.Request(
        _url(server, path),
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def _align_body(make_request, **kw):
    return make_request(**kw).to_dict()


class TestEndpoints:
    def test_healthz(self, server):
        status, body = _get(server, "/healthz")
        assert status == 200 and body == {"status": "ok"}

    def test_metrics(self, server):
        status, body = _get(server, "/metrics")
        assert status == 200
        assert "queue_depth" in body and "latency" in body
        assert "service" in body

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/nope")
        assert err.value.code == 404

    def test_post_align_sync(self, server, make_request, counting_engine):
        status, body = _post(server, "/align", _align_body(make_request))
        assert status == 200
        assert body["ticket"]["status"] == "done"
        assert body["result"]["n_rows"] == 5
        assert body["result"]["alignment"]["ids"]

    def test_post_align_wrapper_form(self, server, make_request,
                                     counting_engine):
        payload = {
            "request": _align_body(make_request, seed=1),
            "client_id": "alice",
            "priority": "high",
        }
        status, body = _post(server, "/align", payload)
        assert status == 200
        assert body["ticket"]["client_id"] == "alice"
        assert body["ticket"]["priority"] == "high"

    def test_post_align_async_then_poll(self, server, make_request,
                                        counting_engine):
        payload = {"request": _align_body(make_request, seed=2), "wait": False}
        status, body = _post(server, "/align", payload)
        assert status == 202
        ticket_id = body["ticket"]["ticket_id"]
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            status, body = _get(server, f"/jobs/{ticket_id}")
            assert status == 200
            if body["ticket"]["status"] == "done":
                break
            time.sleep(0.01)
        assert body["ticket"]["status"] == "done"
        assert body["result"]["n_rows"] == 5

    def test_unknown_job_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/jobs/doesnotexist")
        assert err.value.code == 404

    def test_bad_body_400(self, server):
        req = urllib.request.Request(
            _url(server, "/align"),
            data=b"this is not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 400

    def test_bad_request_schema_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(server, "/align", {"sequences": []})
        assert err.value.code == 400

    def test_bad_timeout_type_400(self, server, make_request):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(server, "/align",
                  {"request": _align_body(make_request, seed=9),
                   "timeout": "soon"})
        assert err.value.code == 400

    def test_engine_failure_500(self, server, make_request):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(server, "/align",
                  _align_body(make_request, engine="does-not-exist"))
        assert err.value.code == 500
        body = json.loads(err.value.read())
        assert body["ticket"]["status"] == "failed"


class TestBackpressureCodes:
    def test_queue_full_503(self, make_request, counting_engine):
        counting_engine.release.clear()
        gateway = AlignmentGateway(n_workers=1, max_queue=1)
        server, thread = serve_in_thread(gateway)
        try:
            _post(server, "/align",
                  {"request": _align_body(make_request), "wait": False})
            assert counting_engine.started.wait(timeout=10)
            _post(server, "/align",
                  {"request": _align_body(make_request, seed=1),
                   "wait": False})
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(server, "/align",
                      {"request": _align_body(make_request, seed=2),
                       "wait": False})
            assert err.value.code == 503
            assert err.value.headers["Retry-After"]
        finally:
            counting_engine.release.set()
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            gateway.close()

    def test_rate_limited_429(self, make_request, counting_engine):
        gateway = AlignmentGateway(
            n_workers=1, max_queue=8, rate=0.001, burst=1.0
        )
        server, thread = serve_in_thread(gateway)
        try:
            _post(server, "/align",
                  {"request": _align_body(make_request),
                   "client_id": "greedy"})
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(server, "/align",
                      {"request": _align_body(make_request, seed=1),
                       "client_id": "greedy"})
            assert err.value.code == 429
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
            gateway.close()


class TestPrometheusEndpoint:
    def test_prom_format_and_content_type(self, server, make_request,
                                          counting_engine):
        _post(server, "/align", {"request": _align_body(make_request)})
        with urllib.request.urlopen(
            _url(server, "/metrics?format=prom"), timeout=30
        ) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            text = resp.read().decode("utf-8")
        assert "# TYPE repro_gateway_latency_seconds summary" in text
        assert 'repro_gateway_latency_seconds{quantile="0.5"}' in text
        assert "repro_gateway_latency_seconds_count 1" in text
        assert "repro_gateway_admitted 1" in text
        # The JSON latency block is replaced by the histogram summary.
        assert "repro_gateway_latency_p50_s" not in text

    def test_json_remains_the_default(self, server):
        status, body = _get(server, "/metrics")
        assert status == 200
        assert "latency" in body and "admitted" in body

    def test_unknown_format_falls_back_to_json(self, server):
        status, body = _get(server, "/metrics?format=yaml")
        assert status == 200
        assert "admitted" in body


class TestAccessLog:
    def test_quiet_suppresses_access_log(self, server, caplog):
        with caplog.at_level("INFO", logger="repro.serve.access"):
            _get(server, "/healthz")
        assert caplog.records == []

    def test_loud_mode_logs_one_structured_line(self, server, caplog):
        server.quiet = False
        try:
            with caplog.at_level("INFO", logger="repro.serve.access"):
                _get(server, "/healthz")
        finally:
            server.quiet = True
        lines = [r.getMessage() for r in caplog.records]
        assert len(lines) == 1
        line = lines[0]
        assert "method=GET" in line
        assert "path=/healthz" in line
        assert "status=200" in line
        assert "duration_ms=" in line

    def test_post_and_errors_logged_too(self, server, make_request,
                                        counting_engine, caplog):
        server.quiet = False
        try:
            with caplog.at_level("INFO", logger="repro.serve.access"):
                _post(server, "/align",
                      {"request": _align_body(make_request, seed=41)})
                with pytest.raises(urllib.error.HTTPError):
                    _get(server, "/nope")
        finally:
            server.quiet = True
        lines = [r.getMessage() for r in caplog.records]
        assert any("method=POST" in ln and "status=200" in ln
                   for ln in lines)
        assert any("status=404" in ln for ln in lines)

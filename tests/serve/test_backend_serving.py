"""Backend selection through the serving layer: gateway and HTTP."""

import json
import urllib.request

import pytest

from repro.core.config import SampleAlignDConfig
from repro.engine import AlignRequest
from repro.serve import AlignmentGateway
from repro.serve.httpd import serve_in_thread


@pytest.fixture()
def seqs(small_family):
    return tuple(small_family.sequences)


def _post(port, payload, timeout=120):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/align",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


class TestGatewayDefaultBackend:
    def test_unopinionated_request_inherits_default(self, seqs):
        with AlignmentGateway(n_workers=1, default_backend="processes") as gw:
            request = AlignRequest(
                sequences=seqs, engine="sample-align-d", n_procs=2
            )
            result = gw.run(request, timeout=120)
        assert result.diagnostics["backend"] == "processes"

    def test_explicit_config_wins_over_default(self, seqs):
        with AlignmentGateway(n_workers=1, default_backend="processes") as gw:
            request = AlignRequest(
                sequences=seqs,
                engine="sample-align-d",
                n_procs=2,
                config=SampleAlignDConfig(backend="threads"),
            )
            result = gw.run(request, timeout=120)
        assert result.diagnostics["backend"] == "threads"

    def test_sequential_requests_untouched(self, seqs):
        with AlignmentGateway(n_workers=1, default_backend="processes") as gw:
            request = AlignRequest(sequences=seqs, engine="center-star")
            ticket = gw.submit(request)
            # The request must pass through unrewritten: same hash.
            assert ticket.request_hash == request.content_hash()
            ticket.wait(60)

    def test_rewrite_happens_before_coalescing(self, seqs):
        """An explicit-processes request coalesces with a defaulted one."""
        with AlignmentGateway(n_workers=1, default_backend="processes") as gw:
            plain = AlignRequest(
                sequences=seqs, engine="sample-align-d", n_procs=2
            )
            explicit = AlignRequest(
                sequences=seqs,
                engine="sample-align-d",
                n_procs=2,
                engine_kwargs={"backend": "processes"},
            )
            t1 = gw.submit(plain)
            t2 = gw.submit(explicit)
            assert t1.request_hash == t2.request_hash
            t1.wait(120)
            assert gw.metrics()["coalesced"] == 1

    def test_bad_default_backend_rejected(self):
        with pytest.raises(ValueError, match="not a registered execution"):
            AlignmentGateway(n_workers=1, default_backend="gpu")

    def test_metrics_expose_default_backend(self, seqs):
        with AlignmentGateway(n_workers=1, default_backend="processes") as gw:
            assert gw.metrics()["default_backend"] == "processes"
        with AlignmentGateway(n_workers=1) as gw:
            assert gw.metrics()["default_backend"] is None


class TestHttpBackendSelection:
    def test_post_align_with_backend_engine_kwargs(self, seqs):
        with AlignmentGateway(n_workers=1) as gw:
            server, thread = serve_in_thread(gw)
            try:
                request = AlignRequest(
                    sequences=seqs[:6],
                    engine="sample-align-d",
                    n_procs=2,
                    engine_kwargs={"backend": "processes"},
                )
                status, body = _post(server.port, {"request": request.to_dict()})
            finally:
                server.shutdown()
                thread.join()
        assert status == 200
        assert body["result"]["diagnostics"]["backend"] == "processes"

    def test_post_align_with_config_backend(self, seqs):
        with AlignmentGateway(n_workers=1) as gw:
            server, thread = serve_in_thread(gw)
            try:
                request = AlignRequest(
                    sequences=seqs[:6],
                    engine="sample-align-d",
                    n_procs=2,
                    config=SampleAlignDConfig(backend="processes"),
                )
                status, body = _post(server.port, {"request": request.to_dict()})
            finally:
                server.shutdown()
                thread.join()
        assert status == 200
        assert body["result"]["diagnostics"]["backend"] == "processes"

    def test_gateway_default_reaches_http_clients(self, seqs):
        with AlignmentGateway(n_workers=1, default_backend="processes") as gw:
            server, thread = serve_in_thread(gw)
            try:
                request = AlignRequest(
                    sequences=seqs[:6], engine="sample-align-d", n_procs=2
                )
                status, body = _post(server.port, {"request": request.to_dict()})
            finally:
                server.shutdown()
                thread.join()
        assert status == 200
        assert body["result"]["diagnostics"]["backend"] == "processes"

"""Traffic generator: determinism, mixes, open/closed-loop driving."""

import pytest

from repro.engine import AlignmentService
from repro.serve import (
    AlignmentGateway,
    ResultStore,
    WorkloadConfig,
    build_request_pool,
    mix_indices,
    run_workload,
)


class TestDeterminism:
    def test_same_seed_same_pool(self):
        cfg = WorkloadConfig(pool_size=4, family_size=4, family_length=30)
        pool_a = build_request_pool(cfg)
        pool_b = build_request_pool(cfg)
        assert [r.content_hash() for r in pool_a] == [
            r.content_hash() for r in pool_b
        ]

    def test_different_seed_different_pool(self):
        cfg_a = WorkloadConfig(pool_size=2, family_size=4, family_length=30,
                               seed=0)
        cfg_b = WorkloadConfig(pool_size=2, family_size=4, family_length=30,
                               seed=1)
        assert {r.content_hash() for r in build_request_pool(cfg_a)}.isdisjoint(
            {r.content_hash() for r in build_request_pool(cfg_b)}
        )

    def test_mix_streams_are_seeded(self):
        cfg = WorkloadConfig(mix="zipf", pool_size=16)
        assert mix_indices(cfg, 50, 0) == mix_indices(cfg, 50, 0)
        assert mix_indices(cfg, 50, 0) != mix_indices(cfg, 50, 1)


class TestMixes:
    def test_uniform_covers_pool(self):
        cfg = WorkloadConfig(mix="uniform", pool_size=8)
        indices = mix_indices(cfg, 400, 0)
        assert set(indices) == set(range(8))

    def test_zipf_is_head_heavy(self):
        cfg = WorkloadConfig(mix="zipf", pool_size=16, zipf_s=1.5)
        indices = mix_indices(cfg, 1000, 0)
        head = sum(1 for i in indices if i < 4)
        assert head > 600  # the top quarter takes the clear majority

    def test_repeat_mix_concentrates_on_hot_set(self):
        cfg = WorkloadConfig(mix="repeat", pool_size=20, hot_fraction=0.1,
                             repeat_fraction=0.8)
        indices = mix_indices(cfg, 1000, 0)
        hot = sum(1 for i in indices if i < 2)
        assert hot > 700  # 80% + uniform spillover

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(mix="bursty")
        with pytest.raises(ValueError):
            WorkloadConfig(mode="half-open")
        with pytest.raises(ValueError):
            WorkloadConfig(n_requests=0)


class TestClosedLoop:
    def test_repeat_mix_end_to_end(self, counting_engine):
        cfg = WorkloadConfig(
            n_requests=64, n_clients=4, mode="closed", mix="repeat",
            pool_size=6, engine="serve-counting", family_size=4,
            family_length=30,
        )
        with AlignmentGateway(n_workers=4, max_queue=64) as gw:
            report = run_workload(gw, cfg)
        reqs = report["requests"]
        assert reqs["ok"] == 64 and reqs["errors"] == 0
        # Every distinct request computed at most once...
        assert counting_engine.calls <= cfg.pool_size
        # ...and the hot set repeated, so caching + coalescing did work.
        gw_metrics = report["gateway"]
        assert gw_metrics["coalesced"] + gw_metrics["service"]["hits"] > 0
        assert report["latency"]["p50_s"] is not None
        assert report["latency"]["p99_s"] >= report["latency"]["p50_s"]
        assert report["throughput_rps"] > 0

    def test_uneven_request_split(self, counting_engine):
        cfg = WorkloadConfig(
            n_requests=10, n_clients=3, mode="closed", mix="uniform",
            pool_size=3, engine="serve-counting", family_size=4,
            family_length=30,
        )
        with AlignmentGateway(n_workers=2, max_queue=32) as gw:
            report = run_workload(gw, cfg)
        assert report["requests"]["ok"] == 10


class TestOpenLoop:
    def test_poisson_arrivals_complete(self, counting_engine):
        cfg = WorkloadConfig(
            n_requests=40, n_clients=4, mode="open", mix="zipf",
            pool_size=5, arrival_rate=2000.0, engine="serve-counting",
            family_size=4, family_length=30,
        )
        with AlignmentGateway(n_workers=4, max_queue=64) as gw:
            report = run_workload(gw, cfg)
        reqs = report["requests"]
        assert reqs["ok"] + reqs["rejected"] == 40
        assert reqs["errors"] == 0

    def test_overload_is_rejected_not_erroring(self, counting_engine):
        """A tiny queue under a fast open-loop burst sheds load via
        admission control -- rejections, not failures."""
        counting_engine.release.clear()  # everything blocks: queue fills
        cfg = WorkloadConfig(
            n_requests=30, n_clients=2, mode="open", mix="uniform",
            pool_size=30, arrival_rate=10000.0, engine="serve-counting",
            family_size=4, family_length=30, wait_timeout=30.0,
        )
        gw = AlignmentGateway(n_workers=1, max_queue=2)
        try:
            import threading

            threading.Timer(0.3, counting_engine.release.set).start()
            report = run_workload(gw, cfg)
        finally:
            counting_engine.release.set()
            gw.close()
        reqs = report["requests"]
        assert reqs["rejected"] > 0
        assert reqs["errors"] == 0
        assert report["gateway"]["rejected_queue_full"] == reqs["rejected"]


class TestRobustness:
    def test_closed_gateway_reports_errors_not_vanished_requests(
            self, counting_engine):
        """A hard submit failure is counted, never silently dropped."""
        cfg = WorkloadConfig(
            n_requests=8, n_clients=2, mode="closed", mix="uniform",
            pool_size=2, engine="serve-counting", family_size=4,
            family_length=30,
        )
        gw = AlignmentGateway(n_workers=1, max_queue=8)
        gw.close()  # every submit now raises RuntimeError
        report = run_workload(gw, cfg)
        reqs = report["requests"]
        assert reqs["errors"] == 8
        assert reqs["ok"] + reqs["errors"] + reqs["rejected"] == 8


class TestStoreIntegration:
    def test_second_run_served_from_disk(self, tmp_path, counting_engine):
        cfg = WorkloadConfig(
            n_requests=30, n_clients=3, mode="closed", mix="zipf",
            pool_size=4, engine="serve-counting", family_size=4,
            family_length=30,
        )
        svc = AlignmentService(max_workers=2, cache=ResultStore(tmp_path))
        with AlignmentGateway(svc, n_workers=2, max_queue=32) as gw:
            run_workload(gw, cfg)
        first_calls = counting_engine.calls
        assert first_calls <= cfg.pool_size

        # Fresh service + store instance over the same directory: the
        # whole workload is served without a single engine call.
        svc = AlignmentService(max_workers=2, cache=ResultStore(tmp_path))
        with AlignmentGateway(svc, n_workers=2, max_queue=32) as gw:
            report = run_workload(gw, cfg)
        assert counting_engine.calls == first_calls
        assert report["requests"]["errors"] == 0
        assert report["gateway"]["service"]["computed"] == 0


class TestObservability:
    def test_traced_report_gains_stage_breakdown(self, counting_engine):
        from repro.obs.tracing import disable_tracing, drain_spans, enable_tracing

        cfg = WorkloadConfig(
            n_requests=8, n_clients=2, mode="closed", mix="uniform",
            pool_size=3, engine="serve-counting", family_size=4,
            family_length=30,
        )
        drain_spans()
        enable_tracing()
        try:
            with AlignmentGateway(n_workers=2, max_queue=16) as gw:
                report = run_workload(gw, cfg)
        finally:
            disable_tracing()
            drain_spans()
        assert report["trace_spans"] > 0
        stages = {node["stage"] for node in report["stage_breakdown"]}
        assert "gateway.compute" in stages
        assert "service.execute" in stages

    def test_untraced_report_has_no_breakdown(self, counting_engine):
        cfg = WorkloadConfig(
            n_requests=4, n_clients=2, mode="closed", mix="uniform",
            pool_size=2, engine="serve-counting", family_size=4,
            family_length=30,
        )
        with AlignmentGateway(n_workers=2, max_queue=16) as gw:
            report = run_workload(gw, cfg)
        assert "stage_breakdown" not in report

    def test_client_percentiles_use_shared_helper(self, counting_engine):
        """p50/p90/p99 in the report agree with the obs nearest-rank
        definition (one percentile implementation in the codebase)."""
        from repro.obs.metrics import percentile
        from repro.serve.gateway import percentile as gw_percentile

        cfg = WorkloadConfig(
            n_requests=10, n_clients=2, mode="closed", mix="uniform",
            pool_size=3, engine="serve-counting", family_size=4,
            family_length=30,
        )
        with AlignmentGateway(n_workers=2, max_queue=16) as gw:
            report = run_workload(gw, cfg)
        lat = report["latency"]
        assert lat["count"] == 10
        assert lat["p50_s"] <= lat["p90_s"] <= lat["p99_s"] <= lat["max_s"]
        # The gateway's public helper is a thin delegate of the same code.
        vals = [1.0, 2.0, 3.0]
        assert gw_percentile(vals, 0.5) == percentile(vals, 0.5)

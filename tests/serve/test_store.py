"""ResultStore: persistence, atomicity, corruption tolerance, eviction."""

import json
import os

import pytest

from repro.engine import AlignmentService
from repro.serve.store import ResultStore


def _result_for(make_request, svc_kwargs=None, **req_kwargs):
    """Run one request through a fresh service; return (request, result)."""
    request = make_request(**req_kwargs)
    with AlignmentService(max_workers=1, **(svc_kwargs or {})) as svc:
        result = svc.run(request)
    return request, result


class TestRoundTrip:
    def test_put_get(self, tmp_path, make_request, counting_engine):
        store = ResultStore(tmp_path)
        request, result = _result_for(make_request)
        key = request.content_hash()
        assert store.get(key) is None  # miss first
        store.put(key, result)
        got = store.get(key)
        assert got is not None
        assert got.alignment == result.alignment
        assert got.request_hash == key
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == len(store) == 1
        assert stats["bytes"] > 0

    def test_persists_across_instances(self, tmp_path, make_request,
                                       counting_engine):
        request, result = _result_for(make_request)
        key = request.content_hash()
        ResultStore(tmp_path).put(key, result)
        # A brand-new instance over the same directory sees the entry.
        reopened = ResultStore(tmp_path)
        assert len(reopened) == 1
        assert reopened.get(key).alignment == result.alignment

    def test_rejects_non_hash_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="content-hash"):
            store.get("../../etc/passwd")
        with pytest.raises(ValueError, match="content-hash"):
            store.get("zz")

    def test_no_temp_files_left_behind(self, tmp_path, make_request,
                                       counting_engine):
        store = ResultStore(tmp_path)
        request, result = _result_for(make_request)
        store.put(request.content_hash(), result)
        leftovers = [
            p for p in tmp_path.rglob("*") if p.is_file()
            and p.suffix != ".json"
        ]
        assert leftovers == []


class TestCorruption:
    def test_garbled_entry_is_a_miss_and_dropped(self, tmp_path, make_request,
                                                 counting_engine):
        store = ResultStore(tmp_path)
        request, result = _result_for(make_request)
        key = request.content_hash()
        store.put(key, result)
        path = store._path(key)
        path.write_bytes(b"{not json at all")
        assert store.get(key) is None
        assert not path.exists()  # dropped, not left to fail forever
        assert store.stats()["corrupt_dropped"] == 1
        # The store keeps working: re-put, re-get.
        store.put(key, result)
        assert store.get(key) is not None

    def test_wrong_schema_is_a_miss(self, tmp_path, make_request,
                                    counting_engine):
        store = ResultStore(tmp_path)
        request, result = _result_for(make_request)
        key = request.content_hash()
        store.put(key, result)
        store._path(key).write_text(json.dumps({"engine": "x"}))
        assert store.get(key) is None
        assert store.stats()["corrupt_dropped"] == 1

    def test_scan_removes_stale_temp_files(self, tmp_path):
        import time

        sub = tmp_path / "ab"
        sub.mkdir()
        stale = sub / ".abcd.123.456.tmp"
        stale.write_bytes(b"partial")
        old = time.time() - 2 * ResultStore._TMP_STALE_S
        os.utime(stale, (old, old))
        store = ResultStore(tmp_path)
        assert not stale.exists()
        assert len(store) == 0

    def test_scan_spares_fresh_temp_files(self, tmp_path):
        """A recent temp file may be a live writer in another process."""
        sub = tmp_path / "ab"
        sub.mkdir()
        live = sub / ".abcd.123.456.tmp"
        live.write_bytes(b"mid-publish")
        ResultStore(tmp_path)
        assert live.exists()

    def test_scan_ignores_foreign_json_files(self, tmp_path, make_request,
                                             counting_engine):
        """Non-key .json files are never indexed: eviction and clear()
        must only address content-hash paths."""
        sub = tmp_path / "ab"
        sub.mkdir()
        foreign = sub / "notes.json"
        foreign.write_text("{}")
        store = ResultStore(tmp_path, byte_budget=10)
        assert len(store) == 0
        request, result = _result_for(make_request)
        store.put(request.content_hash(), result)  # evicts; must not raise
        store.clear()
        assert foreign.exists()  # foreign files are left alone


class TestEviction:
    def test_lru_by_byte_budget(self, tmp_path, make_request, counting_engine):
        # Size one entry, then budget for ~2.5 of them.
        probe = ResultStore(tmp_path / "probe")
        request, result = _result_for(make_request)
        probe.put(request.content_hash(), result)
        entry_bytes = probe.total_bytes

        store = ResultStore(tmp_path / "real", byte_budget=int(entry_bytes * 2.5))
        requests = []
        for seed in range(3):
            req, res = _result_for(make_request, seed=seed)
            requests.append(req)
            store.put(req.content_hash(), res)
        assert len(store) == 2
        assert store.total_bytes <= store.byte_budget
        assert store.stats()["evictions"] == 1
        # Oldest (seed=0) was evicted; newest two remain.
        assert store.get(requests[0].content_hash()) is None
        assert store.get(requests[2].content_hash()) is not None

    def test_hit_refreshes_lru_order(self, tmp_path, make_request,
                                     counting_engine):
        probe = ResultStore(tmp_path / "probe")
        request, result = _result_for(make_request)
        probe.put(request.content_hash(), result)
        entry_bytes = probe.total_bytes

        store = ResultStore(tmp_path / "real", byte_budget=int(entry_bytes * 2.5))
        reqs = []
        for seed in range(2):
            req, res = _result_for(make_request, seed=seed)
            reqs.append(req)
            store.put(req.content_hash(), res)
        assert store.get(reqs[0].content_hash()) is not None  # refresh 0
        req2, res2 = _result_for(make_request, seed=2)
        store.put(req2.content_hash(), res2)  # evicts 1, not 0
        assert store.get(reqs[0].content_hash()) is not None
        assert store.get(reqs[1].content_hash()) is None

    def test_single_oversized_entry_is_kept(self, tmp_path, make_request,
                                            counting_engine):
        store = ResultStore(tmp_path, byte_budget=1)
        request, result = _result_for(make_request)
        store.put(request.content_hash(), result)
        assert len(store) == 1  # never evict down to nothing

    def test_clear(self, tmp_path, make_request, counting_engine):
        store = ResultStore(tmp_path)
        request, result = _result_for(make_request)
        store.put(request.content_hash(), result)
        store.clear()
        assert len(store) == 0
        assert store.get(request.content_hash()) is None


class TestTiered:
    def test_memory_front_skips_disk_and_survives_restart(
            self, tmp_path, make_request, counting_engine):
        from repro.engine import MemoryResultCache, TieredResultCache

        def tiered():
            return TieredResultCache(
                MemoryResultCache(8), ResultStore(tmp_path)
            )

        request = make_request()
        key = request.content_hash()
        with AlignmentService(max_workers=1, cache=tiered()) as svc:
            svc.run(request)
            svc.run(request)  # front hit
        assert counting_engine.calls == 1

        # "Restart": cold front, warm back; the get promotes into front.
        cache = tiered()
        with AlignmentService(max_workers=1, cache=cache) as svc:
            job = svc.submit(request)
            job.wait()
            assert job.cache_hit
            assert cache.front.get(key) is not None  # promoted
            assert svc.stats["cache_backend"]["backend"] == "tiered"
        assert counting_engine.calls == 1


class TestServiceIntegration:
    def test_results_survive_service_restart(self, tmp_path, make_request,
                                             counting_engine):
        """The acceptance proof: kill the process' service, restart over
        the same store directory, and repeats are served without
        recomputation (engine call counter stays put)."""
        request = make_request()
        with AlignmentService(max_workers=2, cache=ResultStore(tmp_path)) as svc:
            svc.run(request)
        assert counting_engine.calls == 1

        # "Restart": a brand-new service and a brand-new store instance.
        with AlignmentService(max_workers=2, cache=ResultStore(tmp_path)) as svc:
            job = svc.submit(request)
            result = job.wait()
            assert job.cache_hit
            assert svc.stats["computed"] == 0
        assert counting_engine.calls == 1  # never recomputed
        assert result.alignment.n_rows == 5

    def test_put_failure_does_not_fail_the_job(self, tmp_path, make_request,
                                               counting_engine):
        """A backend that cannot store costs a recomputation later, never
        the already-computed result."""

        class BrokenPut(ResultStore):
            def put(self, key, result):
                raise OSError("disk full")

        with AlignmentService(max_workers=1, cache=BrokenPut(tmp_path)) as svc:
            result = svc.run(make_request())
            assert result.alignment.n_rows == 5
            assert svc.stats["cache_put_failures"] == 1
            assert svc.stats["computed"] == 1

    def test_corrupt_store_entry_triggers_recompute(self, tmp_path,
                                                    make_request,
                                                    counting_engine):
        store = ResultStore(tmp_path)
        request = make_request()
        with AlignmentService(max_workers=1, cache=store) as svc:
            svc.run(request)
            store._path(request.content_hash()).write_bytes(b"\x00garbage")
            svc.run(request)
        assert counting_engine.calls == 2
        # And the recompute healed the entry on disk.
        assert ResultStore(tmp_path).get(request.content_hash()) is not None

"""Shared fixtures for the serving-layer tests."""

from __future__ import annotations

import threading

import pytest

from repro.engine import AlignRequest, register_engine, unregister_engine
from repro.engine.api import AlignResult
from repro.seq.alignment import Alignment


class ServeCountingEngine:
    """Deterministic toy engine that counts executions and can block.

    Class-level state so the counter survives service/gateway restarts
    within one test (the restart-without-recompute proofs).
    """

    name = "serve-counting"
    kind = "sequential"
    calls = 0
    lock = threading.Lock()
    started = threading.Event()
    release = threading.Event()

    def run(self, request):
        with ServeCountingEngine.lock:
            ServeCountingEngine.calls += 1
        ServeCountingEngine.started.set()
        ServeCountingEngine.release.wait(timeout=10)
        aln = Alignment.from_rows(
            [s.id for s in request.sequences],
            [s.residues.ljust(40, "-")[:40] for s in request.sequences],
        )
        return AlignResult(
            alignment=aln, engine=self.name, sp=0.0, wall_time=0.0,
            request_hash=request.content_hash(),
        )


@pytest.fixture()
def counting_engine():
    ServeCountingEngine.calls = 0
    ServeCountingEngine.started = threading.Event()
    ServeCountingEngine.release = threading.Event()
    ServeCountingEngine.release.set()  # default: do not block
    register_engine(
        "serve-counting", lambda **kw: ServeCountingEngine(), overwrite=True
    )
    yield ServeCountingEngine
    unregister_engine("serve-counting")


@pytest.fixture()
def make_request(tiny_seqs):
    """Requests over the session seqs; ``seed`` distinguishes content."""

    def make(engine="serve-counting", **kw):
        return AlignRequest(sequences=tuple(tiny_seqs), engine=engine, **kw)

    return make

"""AlignmentGateway: admission, rate limiting, coalescing, priorities."""

import threading
import time

import pytest

from repro.engine import AlignmentService
from repro.serve.gateway import (
    AlignmentGateway,
    QueueFullError,
    RateLimitedError,
    TokenBucket,
    percentile,
)


class TestTokenBucket:
    def test_burst_then_refusal(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill(self):
        bucket = TokenBucket(rate=1000.0, burst=1.0)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        time.sleep(0.01)
        assert bucket.try_acquire()

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) is None

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 0.99) == 4.0
        assert percentile(values, 0.0) == 1.0

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestSubmitAndWait:
    def test_basic_roundtrip(self, make_request, counting_engine):
        with AlignmentGateway(n_workers=2, max_queue=8) as gw:
            ticket = gw.submit(make_request())
            result = ticket.wait(timeout=30)
            assert result.alignment.n_rows == 5
            assert ticket.status == "done" and ticket.done
            assert not ticket.coalesced
            metrics = gw.metrics()
            assert metrics["admitted"] == metrics["completed"] == 1
            assert metrics["latency"]["count"] == 1
            assert metrics["service"]["computed"] == 1

    def test_run_convenience(self, make_request, counting_engine):
        with AlignmentGateway(n_workers=1, max_queue=8) as gw:
            assert gw.run(make_request()).alignment.n_rows == 5

    def test_engine_failure_on_ticket(self, make_request):
        with AlignmentGateway(n_workers=1, max_queue=8) as gw:
            ticket = gw.submit(make_request(engine="does-not-exist"))
            with pytest.raises(KeyError):
                ticket.wait(timeout=30)
            assert ticket.status == "failed"
            assert "KeyError" in ticket.to_dict()["error"]
            assert gw.metrics()["failed"] == 1

    def test_ticket_lookup(self, make_request, counting_engine):
        with AlignmentGateway(n_workers=1, max_queue=8) as gw:
            ticket = gw.submit(make_request())
            assert gw.get_ticket(ticket.ticket_id) is ticket
            assert gw.get_ticket("nope") is None
            ticket.wait(timeout=30)

    def test_submit_after_close_raises(self, make_request):
        gw = AlignmentGateway(n_workers=1, max_queue=8)
        gw.close()
        with pytest.raises(RuntimeError, match="closed"):
            gw.submit(make_request())

    def test_close_is_idempotent_and_drains(self, make_request,
                                            counting_engine):
        gw = AlignmentGateway(n_workers=1, max_queue=8)
        tickets = [gw.submit(make_request(seed=i)) for i in range(3)]
        gw.close()
        gw.close()
        assert all(t.status == "done" for t in tickets)

    def test_unknown_priority(self, make_request):
        with AlignmentGateway(n_workers=1, max_queue=8) as gw:
            with pytest.raises(ValueError, match="priority"):
                gw.submit(make_request(), priority="urgent")


class TestCoalescing:
    def test_cross_client_coalesce(self, make_request, counting_engine):
        """Identical in-flight requests from different clients share one
        computation (the engine-call-counter proof)."""
        counting_engine.release.clear()  # hold the first mid-run
        with AlignmentGateway(n_workers=2, max_queue=8) as gw:
            first = gw.submit(make_request(), client_id="alice")
            assert counting_engine.started.wait(timeout=10)
            second = gw.submit(make_request(), client_id="bob")
            assert second.coalesced and not first.coalesced
            counting_engine.release.set()
            r1 = first.wait(timeout=30)
            r2 = second.wait(timeout=30)
            assert r1.alignment == r2.alignment
            assert counting_engine.calls == 1
            metrics = gw.metrics()
            assert metrics["coalesced"] == 1 and metrics["admitted"] == 1

    def test_coalesced_requests_take_no_queue_slot(self, make_request,
                                                   counting_engine):
        counting_engine.release.clear()
        with AlignmentGateway(n_workers=1, max_queue=1) as gw:
            first = gw.submit(make_request())
            assert counting_engine.started.wait(timeout=10)
            # The queue (bound 1) is empty again; fill it with a distinct
            # request, then show an identical request still gets in by
            # coalescing while a second distinct one is refused.
            gw.submit(make_request(seed=1))
            coalesced = gw.submit(make_request())
            assert coalesced.coalesced
            with pytest.raises(QueueFullError):
                gw.submit(make_request(seed=2))
            counting_engine.release.set()
            first.wait(timeout=30)


class TestAdmissionControl:
    def test_queue_full_rejects(self, make_request, counting_engine):
        counting_engine.release.clear()  # jam the single worker
        with AlignmentGateway(n_workers=1, max_queue=2) as gw:
            running = gw.submit(make_request())
            assert counting_engine.started.wait(timeout=10)
            gw.submit(make_request(seed=1))
            gw.submit(make_request(seed=2))
            with pytest.raises(QueueFullError):
                gw.submit(make_request(seed=3))
            metrics = gw.metrics()
            assert metrics["rejected_queue_full"] == 1
            assert metrics["queue_depth"] == 2
            counting_engine.release.set()
            running.wait(timeout=30)

    def test_low_rate_default_burst_still_admits(self, make_request,
                                                 counting_engine):
        """rate < 0.5 must not default to a bucket too small to ever
        hold the one token a request costs."""
        with AlignmentGateway(n_workers=1, max_queue=8, rate=0.3) as gw:
            gw.run(make_request())  # admitted, not locked out forever

    def test_explicit_sub_token_burst_rejected(self):
        with pytest.raises(ValueError, match="burst"):
            AlignmentGateway(n_workers=1, max_queue=8, rate=5.0, burst=0.5)

    def test_nonpositive_rate_rejected_at_construction(self):
        """rate=0 must fail at boot, not 400 on every request."""
        with pytest.raises(ValueError, match="rate"):
            AlignmentGateway(n_workers=1, max_queue=8, rate=0.0)

    def test_burst_without_rate_rejected(self):
        """A silently-ignored burst would look like rate limiting."""
        with pytest.raises(ValueError, match="burst without rate"):
            AlignmentGateway(n_workers=1, max_queue=8, burst=5.0)

    def test_rate_limit_per_client(self, make_request, counting_engine):
        with AlignmentGateway(
            n_workers=1, max_queue=16, rate=0.001, burst=1.0
        ) as gw:
            gw.submit(make_request(), client_id="greedy")
            with pytest.raises(RateLimitedError):
                gw.submit(make_request(seed=1), client_id="greedy")
            # Other clients have their own bucket.
            other = gw.submit(make_request(seed=2), client_id="polite")
            other.wait(timeout=30)
            assert gw.metrics()["rejected_rate_limited"] == 1

    def test_queue_full_does_not_drain_rate_tokens(self, make_request,
                                                   counting_engine):
        """A 503 must not also debit the bucket: a client retrying a full
        queue is not over its rate."""
        counting_engine.release.clear()
        with AlignmentGateway(
            n_workers=1, max_queue=1, rate=0.001, burst=3.0
        ) as gw:
            running = gw.submit(make_request(), client_id="c")  # 1 token
            assert counting_engine.started.wait(timeout=10)
            gw.submit(make_request(seed=1), client_id="c")  # fills queue
            for _ in range(5):  # refusals, none of which cost a token
                with pytest.raises(QueueFullError):
                    gw.submit(make_request(seed=2), client_id="c")
            counting_engine.release.set()
            running.wait(timeout=30)
            # Queue drained; the client's last token still admits.
            gw.submit(make_request(seed=3), client_id="c").wait(timeout=30)

    def test_priority_dispatch_order(self, make_request, counting_engine):
        """With one worker jammed, a later high-priority request runs
        before an earlier low-priority one."""
        counting_engine.release.clear()
        order = []
        with AlignmentGateway(n_workers=1, max_queue=8) as gw:
            jam = gw.submit(make_request())
            assert counting_engine.started.wait(timeout=10)
            low = gw.submit(make_request(seed=1), priority="low")
            high = gw.submit(make_request(seed=2), priority="high")

            # Record completion order via per-ticket waits.
            def record(ticket, tag):
                ticket._entry.done.wait(timeout=30)
                order.append((tag, time.monotonic()))

            threads = [
                threading.Thread(target=record, args=(high, "high")),
                threading.Thread(target=record, args=(low, "low")),
            ]
            for t in threads:
                t.start()
            counting_engine.release.set()
            for t in threads:
                t.join(timeout=30)
            assert high.done and low.done
            by_time = [tag for tag, when in sorted(order, key=lambda x: x[1])]
            assert by_time[0] == "high"


class TestSharedService:
    def test_external_service_not_closed_when_asked(self, make_request,
                                                    counting_engine):
        svc = AlignmentService(max_workers=1)
        gw = AlignmentGateway(svc, n_workers=1, max_queue=4,
                              close_service=False)
        gw.run(make_request())
        gw.close()
        # The service is still usable afterwards.
        svc.run(make_request(seed=1))
        svc.close()

    def test_metrics_shape(self, make_request, counting_engine):
        with AlignmentGateway(n_workers=1, max_queue=4) as gw:
            gw.run(make_request())
            metrics = gw.metrics()
            for key in ("admitted", "coalesced", "rejected_queue_full",
                        "rejected_rate_limited", "completed", "failed",
                        "queue_depth", "inflight", "latency", "service"):
                assert key in metrics
            assert metrics["latency"]["p50_s"] is not None
            assert metrics["latency"]["p99_s"] is not None
            # JSON-able end to end.
            import json

            json.dumps(metrics)

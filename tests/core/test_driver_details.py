"""Focused tests of driver plumbing and result-object details."""

import numpy as np
import pytest

from repro import sample_align_d
from repro.core.config import SampleAlignDConfig
from repro.datagen.rose import generate_family
from repro.parcomp.cost import CostModel


@pytest.fixture(scope="module")
def family():
    return generate_family(24, 70, relatedness=500, seed=31,
                           track_alignment=False)


class TestDriverPlumbing:
    def test_cost_model_passthrough(self, family):
        slow = CostModel(alpha=0.01, beta=1e-6)
        fast = CostModel(alpha=1e-7, beta=1e-12)
        t_slow = sample_align_d(
            family.sequences, n_procs=4, cost_model=slow
        ).modeled_time
        t_fast = sample_align_d(
            family.sequences, n_procs=4, cost_model=fast
        ).modeled_time
        assert t_slow > t_fast

    def test_seeded_placement_changes_buckets_not_result_rows(self, family):
        a = sample_align_d(family.sequences, n_procs=4, seed=1)
        b = sample_align_d(family.sequences, n_procs=4, seed=2)
        # Output row order is always the input order.
        assert a.alignment.ids == b.alignment.ids == family.sequences.ids

    def test_p1_diagnostics(self, family):
        res = sample_align_d(family.sequences, n_procs=1)
        assert res.global_ancestor is None
        assert res.pivots.size == 0
        assert res.bucket_sizes.tolist() == [len(family.sequences)]

    def test_wall_time_positive(self, family):
        res = sample_align_d(family.sequences, n_procs=2)
        assert res.wall_time > 0

    def test_sp_matches_rescoring(self, family):
        from repro.align.scoring import sp_score

        res = sample_align_d(family.sequences, n_procs=3)
        assert res.sp == pytest.approx(
            sp_score(res.alignment, res.config.scoring.matrix)
        )

    def test_summary_bound_line(self, family):
        res = sample_align_d(family.sequences, n_procs=3)
        n = len(family.sequences)
        assert f"2N/p bound = {2 * int(np.ceil(n / 3))}" in res.summary()

    def test_plain_list_input(self, family):
        res = sample_align_d(list(family.sequences), n_procs=2)
        assert res.alignment.n_rows == len(family.sequences)


class TestLedgerDetails:
    def test_estimate_nbytes_profile_path(self):
        from repro.align.profile import Profile
        from repro.parcomp.cost import estimate_nbytes
        from repro.seq.sequence import Sequence

        p = Profile.from_sequence(Sequence("a", "MKVAW"))
        assert estimate_nbytes(p) >= 5

    def test_bytes_grow_with_n(self):
        small = generate_family(12, 60, relatedness=500, seed=1,
                                track_alignment=False)
        large = generate_family(48, 60, relatedness=500, seed=1,
                                track_alignment=False)
        b_small = sample_align_d(
            small.sequences, n_procs=4
        ).ledger.total_bytes()
        b_large = sample_align_d(
            large.sequences, n_procs=4
        ).ledger.total_bytes()
        assert b_large > b_small

    def test_message_count_grows_with_p(self, family):
        m2 = sample_align_d(family.sequences, n_procs=2).ledger.n_messages()
        m6 = sample_align_d(family.sequences, n_procs=6).ledger.n_messages()
        assert m6 > m2

"""Tests for the post-glue refinement extension (paper section-5)."""

import numpy as np
import pytest

from repro import sample_align_d
from repro.align.profile_align import ProfileAlignConfig
from repro.align.scoring import sp_score
from repro.core.config import SampleAlignDConfig
from repro.core.postrefine import bucket_level_refine, refine_bucket_alignment
from repro.datagen.rose import generate_family
from repro.metrics import qscore
from repro.msa import get_aligner
from repro.seq.alignment import Alignment


class TestRefineBucketAlignment:
    def test_noop_for_zero_rounds(self, small_family):
        aln = get_aligner("muscle-draft").align(small_family.sequences)
        assert refine_bucket_alignment(aln, ProfileAlignConfig(), 0) is aln

    def test_noop_for_tiny_alignment(self):
        aln = Alignment.from_rows(["a", "b"], ["MKV", "MKV"])
        assert refine_bucket_alignment(aln, ProfileAlignConfig(), 2) is aln

    def test_sp_never_decreases(self, small_family):
        aln = get_aligner("muscle-draft").align(small_family.sequences)
        out = refine_bucket_alignment(aln, ProfileAlignConfig(), 2)
        assert sp_score(out) >= sp_score(aln) - 1e-9

    def test_roundtrip(self, small_family):
        aln = get_aligner("muscle-draft").align(small_family.sequences)
        out = refine_bucket_alignment(aln, ProfileAlignConfig(), 1)
        un = out.ungapped()
        for s in small_family.sequences:
            assert un[s.id].residues == s.residues


class TestBucketLevelRefine:
    @pytest.fixture(scope="class")
    def glued(self):
        fam = generate_family(24, 80, relatedness=500, seed=8)
        res = sample_align_d(fam.sequences, n_procs=3)
        buckets = [
            list(d.globalized_ranks.keys()) for d in res.diagnostics
        ]
        return fam, res.alignment, buckets

    def test_sp_never_decreases(self, glued):
        _fam, aln, buckets = glued
        out = bucket_level_refine(aln, buckets, ProfileAlignConfig(), rounds=1)
        assert sp_score(out) >= sp_score(aln) - 1e-9

    def test_roundtrip(self, glued):
        fam, aln, buckets = glued
        out = bucket_level_refine(aln, buckets, ProfileAlignConfig(), rounds=1)
        un = out.ungapped()
        for s in fam.sequences:
            assert un[s.id].residues == s.residues

    def test_zero_rounds_noop(self, glued):
        _fam, aln, buckets = glued
        assert bucket_level_refine(aln, buckets, ProfileAlignConfig(), 0) is aln

    def test_row_order_preserved(self, glued):
        _fam, aln, buckets = glued
        out = bucket_level_refine(aln, buckets, ProfileAlignConfig(), rounds=1)
        assert out.ids == aln.ids


class TestPipelineIntegration:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SampleAlignDConfig(refine_local_rounds=-1)
        with pytest.raises(ValueError):
            SampleAlignDConfig(post_refine_rounds=-2)

    def test_post_refine_never_hurts_sp(self):
        """post_refine starts from the identical glued alignment and only
        accepts improvements, so global SP is monotone."""
        fam = generate_family(32, 80, relatedness=600, seed=5)
        base = sample_align_d(fam.sequences, n_procs=4)
        refined = sample_align_d(
            fam.sequences,
            n_procs=4,
            config=SampleAlignDConfig(post_refine_rounds=2),
        )
        un = refined.alignment.ungapped()
        for s in fam.sequences:
            assert un[s.id].residues == s.residues
        assert refined.sp >= base.sp - 1e-9

    def test_local_refine_run_is_sane(self):
        """refine_local is a heuristic (bucket-local SP up, global effect
        not guaranteed): assert round-trip and a quality floor only."""
        fam = generate_family(32, 80, relatedness=600, seed=5)
        refined = sample_align_d(
            fam.sequences,
            n_procs=4,
            config=SampleAlignDConfig(
                refine_local_rounds=1, post_refine_rounds=1
            ),
        )
        un = refined.alignment.ungapped()
        for s in fam.sequences:
            assert un[s.id].residues == s.residues
        assert qscore(refined.alignment, fam.reference) > 0.4

"""End-to-end tests of the Sample-Align-D pipeline."""

import numpy as np
import pytest

from repro import sample_align_d
from repro.core.config import SampleAlignDConfig
from repro.datagen.rose import generate_family
from repro.kmer.rank import RankConfig
from repro.metrics import qscore
from repro.msa import get_aligner
from repro.samplesort import max_bucket_bound
from repro.seq.sequence import Sequence, SequenceSet


class TestConfig:
    def test_defaults(self):
        cfg = SampleAlignDConfig()
        assert cfg.local_aligner == "muscle-p"
        assert cfg.tweak

    def test_validation(self):
        with pytest.raises(ValueError):
            SampleAlignDConfig(samples_per_proc=0)
        with pytest.raises(ValueError):
            SampleAlignDConfig(ancestor_min_occupancy=1.5)

    def test_factories(self):
        cfg = SampleAlignDConfig(
            local_aligner="center-star", root_aligner="muscle-draft"
        )
        assert cfg.make_local_aligner().name == "center-star"
        assert cfg.make_root_aligner().name == "muscle"


@pytest.mark.parametrize("n_procs", [1, 2, 4, 7])
class TestEndToEnd:
    def test_roundtrip_and_order(self, n_procs, diverse_family):
        res = sample_align_d(diverse_family.sequences, n_procs=n_procs)
        aln = res.alignment
        assert aln.ids == diverse_family.sequences.ids
        un = aln.ungapped()
        for s in diverse_family.sequences:
            assert un[s.id].residues == s.residues

    def test_equal_row_lengths(self, n_procs, diverse_family):
        res = sample_align_d(diverse_family.sequences, n_procs=n_procs)
        assert res.alignment.matrix.shape[0] == len(diverse_family.sequences)

    def test_bucket_bound(self, n_procs, diverse_family):
        res = sample_align_d(diverse_family.sequences, n_procs=n_procs)
        n = len(diverse_family.sequences)
        bound = max_bucket_bound(n, n_procs) + n_procs  # tie slack
        assert res.bucket_sizes.max() <= bound
        assert res.bucket_sizes.sum() == n


class TestBehaviour:
    def test_deterministic(self, diverse_family):
        a = sample_align_d(diverse_family.sequences, n_procs=4)
        b = sample_align_d(diverse_family.sequences, n_procs=4)
        assert a.alignment == b.alignment
        assert np.allclose(a.sp, b.sp)

    def test_seeded_placement_still_roundtrips(self, diverse_family):
        res = sample_align_d(diverse_family.sequences, n_procs=4, seed=123)
        assert res.alignment.ids == diverse_family.sequences.ids
        un = res.alignment.ungapped()
        for s in diverse_family.sequences:
            assert un[s.id].residues == s.residues

    def test_quality_close_to_sequential(self, diverse_family):
        res = sample_align_d(diverse_family.sequences, n_procs=4)
        q_par = qscore(res.alignment, diverse_family.reference)
        seq_aln = get_aligner("muscle-p").align(diverse_family.sequences)
        q_seq = qscore(seq_aln, diverse_family.reference)
        # Paper's Table 2 band: parallel quality comparable to (but a bit
        # below) the sequential aligner; 0.544 vs 0.645 there.
        assert q_par >= q_seq - 0.25
        assert q_par > 0.2

    def test_tweak_ablation_lowers_quality(self, diverse_family):
        with_tweak = sample_align_d(diverse_family.sequences, n_procs=4)
        without = sample_align_d(
            diverse_family.sequences,
            n_procs=4,
            config=SampleAlignDConfig(tweak=False),
        )
        q_with = qscore(with_tweak.alignment, diverse_family.reference)
        q_without = qscore(without.alignment, diverse_family.reference)
        assert q_with > q_without

    def test_fewer_sequences_than_ranks(self):
        seqs = SequenceSet(
            [Sequence(f"s{i}", "MKTAYIAKQR" + "LV" * i) for i in range(3)]
        )
        res = sample_align_d(seqs, n_procs=5)
        assert res.alignment.n_rows == 3
        un = res.alignment.ungapped()
        for s in seqs:
            assert un[s.id].residues == s.residues

    def test_identical_sequences(self):
        seqs = SequenceSet(
            [Sequence(f"s{i}", "MKTAYIAKQRQISFVK") for i in range(8)]
        )
        res = sample_align_d(seqs, n_procs=4)
        assert res.alignment.n_columns == 16
        assert res.bucket_sizes.sum() == 8

    def test_alternative_local_aligner(self, small_family):
        cfg = SampleAlignDConfig(local_aligner="center-star")
        res = sample_align_d(small_family.sequences, n_procs=3, config=cfg)
        un = res.alignment.ungapped()
        for s in small_family.sequences:
            assert un[s.id].residues == s.residues

    def test_custom_rank_config(self, small_family):
        cfg = SampleAlignDConfig(rank_config=RankConfig(k=3))
        res = sample_align_d(small_family.sequences, n_procs=2, config=cfg)
        assert res.alignment.n_rows == len(small_family.sequences)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            sample_align_d(SequenceSet(), n_procs=2)

    def test_bad_nprocs(self, small_family):
        with pytest.raises(ValueError):
            sample_align_d(small_family.sequences, n_procs=0)


class TestResultObject:
    @pytest.fixture(scope="class")
    def result(self):
        fam = generate_family(32, 80, relatedness=600, seed=2,
                              track_alignment=False)
        return sample_align_d(fam.sequences, n_procs=4)

    def test_summary_mentions_key_facts(self, result):
        s = result.summary()
        assert "p=4" in s and "buckets" in s

    def test_ledger_populated(self, result):
        assert result.ledger.n_messages() > 0
        assert result.ledger.total_bytes() > 0
        assert result.modeled_time > 0

    def test_ranks_by_id_complete(self, result):
        ranks = result.ranks_by_id()
        assert len(ranks) == result.alignment.n_rows
        assert all(np.isfinite(v) for v in ranks.values())

    def test_pivots_sorted(self, result):
        assert (np.diff(result.pivots) >= 0).all()
        assert result.pivots.size == 3

    def test_global_ancestor_present(self, result):
        assert result.global_ancestor is not None
        assert len(result.global_ancestor) > 10

    def test_diagnostics_per_rank(self, result):
        assert [d.rank for d in result.diagnostics] == [0, 1, 2, 3]
        assert sum(d.n_initial for d in result.diagnostics) == 32

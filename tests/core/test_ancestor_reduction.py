"""Tests for the tree-reduction global-ancestor extension."""

import pytest

from repro import sample_align_d
from repro.core.ancestor import merge_ancestors
from repro.core.config import SampleAlignDConfig
from repro.datagen.rose import generate_family
from repro.metrics import qscore
from repro.seq.sequence import Sequence


class TestMergeAncestors:
    def test_none_identity(self):
        a = Sequence("a", "MKV")
        assert merge_ancestors(None, a) is a
        assert merge_ancestors(a, None) is a
        assert merge_ancestors(None, None) is None

    def test_merge_identical(self):
        a = Sequence("anc", "MKTAYIAKQR")
        merged = merge_ancestors(a, Sequence("b", "MKTAYIAKQR"))
        assert merged.residues == "MKTAYIAKQR"
        assert merged.id == "anc"

    def test_merge_related(self):
        a = Sequence("a", "MKTAYIAKQR")
        b = Sequence("b", "MKTAYIQR")
        merged = merge_ancestors(a, b)
        assert 8 <= len(merged) <= 10


class TestTreeReduction:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SampleAlignDConfig(ancestor_reduction="ring")

    @pytest.mark.parametrize("n_procs", [2, 4, 7])
    def test_roundtrip(self, n_procs, diverse_family):
        res = sample_align_d(
            diverse_family.sequences,
            n_procs=n_procs,
            config=SampleAlignDConfig(ancestor_reduction="tree"),
        )
        un = res.alignment.ungapped()
        for s in diverse_family.sequences:
            assert un[s.id].residues == s.residues
        assert res.global_ancestor is not None
        assert res.global_ancestor.id == "global_ancestor"

    def test_quality_floor(self, diverse_family):
        res = sample_align_d(
            diverse_family.sequences,
            n_procs=4,
            config=SampleAlignDConfig(ancestor_reduction="tree"),
        )
        assert qscore(res.alignment, diverse_family.reference) > 0.3

    def test_root_ancestor_work_reduced(self):
        """The tree fold moves ancestor work off the root: rank-0 compute
        must not exceed the gather-at-root variant's."""
        fam = generate_family(64, 110, relatedness=600, seed=9,
                              track_alignment=False)
        root = sample_align_d(
            fam.sequences, n_procs=8,
            config=SampleAlignDConfig(ancestor_reduction="root"),
        )
        tree = sample_align_d(
            fam.sequences, n_procs=8,
            config=SampleAlignDConfig(ancestor_reduction="tree"),
        )
        assert tree.ledger.compute[0] <= root.ledger.compute[0] * 1.5

"""Tests for the ancestor tweak and the glue step."""

import numpy as np
import pytest

from repro.core.ancestor import global_ancestor, local_ancestor
from repro.core.glue import glue_blocks, glue_blocks_diagonal
from repro.core.tweak import TweakedBlock, tweak_against_ancestor
from repro.msa import get_aligner
from repro.seq.alignment import Alignment
from repro.seq.alphabet import PROTEIN
from repro.seq.sequence import Sequence


def mk_aln(rows, ids=None):
    ids = ids or [f"r{i}" for i in range(len(rows))]
    return Alignment.from_rows(ids, rows)


class TestAncestor:
    def test_local_none_for_empty(self):
        assert local_ancestor(None, 0) is None
        empty = Alignment(["a"], np.zeros((1, 0), dtype=np.uint8))
        assert local_ancestor(empty, 0) is None

    def test_local_names_rank(self):
        aln = mk_aln(["MKV", "MKV"])
        anc = local_ancestor(aln, 3)
        assert anc.id == "ancestor_r3"
        assert anc.residues == "MKV"

    def test_global_single(self):
        anc = Sequence("ancestor_r0", "MKV")
        ga = global_ancestor([anc, None], get_aligner("muscle-draft"))
        assert ga.id == "global_ancestor"
        assert ga.residues == "MKV"

    def test_global_multiple(self):
        ancs = [
            Sequence("ancestor_r0", "MKTAYIAKQR"),
            Sequence("ancestor_r1", "MKTAYIQR"),
            None,
            Sequence("ancestor_r3", "MKTAYIAKQR"),
        ]
        ga = global_ancestor(ancs, get_aligner("muscle-draft"))
        assert ga.id == "global_ancestor"
        assert len(ga) >= 8

    def test_global_all_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            global_ancestor([None, None], get_aligner("muscle-draft"))


class TestTweak:
    def test_columns_unchanged(self):
        aln = mk_aln(["MKTAYI-KQR", "MKTAYIAKQR"])
        anc = Sequence("ga", "MKTAYIAKQR")
        block = tweak_against_ancestor(aln, anc)
        assert np.array_equal(block.matrix, aln.matrix)
        assert block.ids == aln.ids

    def test_match_slots_strictly_increasing(self):
        aln = mk_aln(["MKTAYIKQRW", "MKTAYIKQ-W"])
        anc = Sequence("ga", "MKTAYIAKQRW")
        block = tweak_against_ancestor(aln, anc)
        matched = block.anchor_slot[block.anchor_match]
        assert (np.diff(matched) > 0).all()

    def test_insert_ordinals_run_within_slot(self):
        # Block has residues the ancestor lacks -> insert columns.
        aln = mk_aln(["MKWWWWTA", "MKWWWWTA"])
        anc = Sequence("ga", "MKTA")
        block = tweak_against_ancestor(aln, anc)
        ins = ~block.anchor_match
        assert ins.any()
        counts = block.insert_counts()
        assert counts.sum() == int(ins.sum())
        # Ordinals inside one slot are 0..m-1.
        for slot in np.unique(block.anchor_slot[ins]):
            ords = block.anchor_ordinal[ins & (block.anchor_slot == slot)]
            assert sorted(ords.tolist()) == list(range(len(ords)))

    def test_identical_to_ancestor_all_match(self):
        aln = mk_aln(["MKTAYIAKQR"])
        anc = Sequence("ga", "MKTAYIAKQR")
        block = tweak_against_ancestor(aln, anc)
        assert block.anchor_match.all()

    def test_empty_block_rejected(self):
        empty = Alignment([], np.zeros((0, 3), dtype=np.uint8))
        with pytest.raises(ValueError):
            tweak_against_ancestor(empty, Sequence("ga", "MKV"))


class TestGlue:
    def _tweak(self, rows, anc, ids=None):
        return tweak_against_ancestor(mk_aln(rows, ids), anc)

    def test_two_blocks_share_ancestor_columns(self):
        anc = Sequence("ga", "MKTAYIAKQR")
        b1 = self._tweak(["MKTAYIAKQR"], anc, ids=["a"])
        b2 = self._tweak(["MKTAYIAKQR"], anc, ids=["b"])
        glued = glue_blocks([b1, b2], PROTEIN)
        assert glued.n_rows == 2
        assert glued.row_text("a") == glued.row_text("b") == "MKTAYIAKQR"

    def test_blocks_with_inserts(self):
        anc = Sequence("ga", "MKTA")
        b1 = self._tweak(["MKWWTA"], anc, ids=["a"])  # insert WW
        b2 = self._tweak(["MKTA"], anc, ids=["b"])
        glued = glue_blocks([b1, b2], PROTEIN)
        un = glued.ungapped()
        assert un["a"].residues == "MKWWTA"
        assert un["b"].residues == "MKTA"
        # b's row must show gaps where a's insert sits.
        assert "-" in glued.row_text("b")

    def test_roundtrip_many_blocks(self, small_family):
        anc = Sequence("ga", "".join(small_family.sequences[0].residues))
        seqs = list(small_family.sequences)
        blocks = []
        for i in range(0, len(seqs), 4):
            chunk = seqs[i : i + 4]
            aln = get_aligner("muscle-draft").align(chunk)
            blocks.append(tweak_against_ancestor(aln, anc))
        glued = glue_blocks(blocks, PROTEIN)
        un = glued.ungapped()
        for s in seqs:
            assert un[s.id].residues == s.residues

    def test_no_blocks_rejected(self):
        with pytest.raises(ValueError):
            glue_blocks([], PROTEIN)
        with pytest.raises(ValueError):
            glue_blocks_diagonal([], PROTEIN)

    def test_mismatched_ancestor_rejected(self):
        b1 = self._tweak(["MKTA"], Sequence("ga", "MKTA"), ids=["a"])
        b2 = self._tweak(["MKTA"], Sequence("ga", "MKTAY"), ids=["b"])
        with pytest.raises(ValueError, match="ancestor length"):
            glue_blocks([b1, b2], PROTEIN)

    def test_diagonal_glue(self):
        anc = Sequence("ga", "MKTA")
        b1 = self._tweak(["MKTA"], anc, ids=["a"])
        b2 = self._tweak(["MKTA"], anc, ids=["b"])
        glued = glue_blocks_diagonal([b1, b2], PROTEIN)
        assert glued.n_columns == 8
        assert glued.row_text("a") == "MKTA----"
        assert glued.row_text("b") == "----MKTA"

"""Tests for repro.parcomp.cost."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.parcomp.cost import CommEvent, CostModel, TimingLedger, estimate_nbytes
from repro.seq.alignment import Alignment
from repro.seq.sequence import Sequence


class TestCostModel:
    def test_message_cost(self):
        cm = CostModel(alpha=1e-4, beta=1e-8)
        assert cm.message_cost(0) == pytest.approx(1e-4)
        assert cm.message_cost(10**8) == pytest.approx(1e-4 + 1.0)

    def test_negative_bytes_clamped(self):
        cm = CostModel(alpha=1e-4, beta=1e-8)
        assert cm.message_cost(-5) == pytest.approx(1e-4)


class TestEstimateNbytes:
    def test_scalars(self):
        assert estimate_nbytes(5) == 8
        assert estimate_nbytes(2.5) == 8
        assert estimate_nbytes(True) == 8
        assert estimate_nbytes(None) == 1

    def test_strings_bytes(self):
        assert estimate_nbytes("hello") == 5
        assert estimate_nbytes(b"abc") == 3

    def test_ndarray(self):
        a = np.zeros(10, dtype=np.float64)
        assert estimate_nbytes(a) == 80

    def test_sequence(self):
        s = Sequence("id1", "MKVAW")
        assert estimate_nbytes(s) >= 5

    def test_alignment(self):
        aln = Alignment.from_rows(["a", "b"], ["MK", "MV"])
        assert estimate_nbytes(aln) >= 4

    def test_containers(self):
        assert estimate_nbytes([1, 2]) == 16 + 16
        assert estimate_nbytes({"k": 1}) == 16 + 1 + 8

    def test_dataclass(self):
        @dataclass
        class Thing:
            a: int
            b: str

        assert estimate_nbytes(Thing(1, "xy")) == 16 + 8 + 2

    def test_fallback_pickle(self):
        class Odd:
            pass

        assert estimate_nbytes(Odd()) > 0


class TestLedger:
    def mk(self):
        ledger = TimingLedger(3, CostModel(alpha=1e-4, beta=1e-9))
        ledger.events = [
            CommEvent("send", 0, 1, 100, 0),
            CommEvent("bcast", 0, 2, 50, 1),
            CommEvent("send", 1, 2, 25, 0),
        ]
        ledger.compute[:] = [1.0, 2.0, 3.0]
        ledger.clock[:] = [1.5, 2.5, 3.5]
        return ledger

    def test_totals(self):
        ledger = self.mk()
        assert ledger.total_bytes() == 175
        assert ledger.total_bytes("send") == 125
        assert ledger.n_messages() == 3
        assert ledger.n_messages("bcast") == 1

    def test_modeled_time(self):
        assert self.mk().modeled_time() == 3.5

    def test_compute_stats(self):
        ledger = self.mk()
        assert ledger.total_compute() == 6.0
        assert ledger.max_compute() == 3.0
        assert ledger.load_balance() == pytest.approx(1.5)

    def test_bytes_by_kind(self):
        assert self.mk().bytes_by_kind() == {"send": 125, "bcast": 50}

    def test_modeled_comm_time(self):
        ledger = self.mk()
        expected = sum(
            1e-4 + 1e-9 * e.nbytes for e in ledger.events
        )
        assert ledger.modeled_comm_time() == pytest.approx(expected)

"""Backend equivalence: threads and processes must be indistinguishable.

The contract of :mod:`repro.parcomp.backends` is that *where* ranks run
is invisible to the program: identical results, identical message
patterns, identical failure semantics.  Everything here is parametrized
over both backends and, where it matters, asserts cross-backend equality
outright.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.core.config import SampleAlignDConfig
from repro.core.driver import sample_align_d
from repro.parcomp import (
    CostModel,
    ExecutionBackend,
    ProcessBackend,
    SpmdAbort,
    ThreadBackend,
    available_backends,
    get_backend,
    register_backend,
    run_spmd,
)
from repro.parcomp.backends import unregister_backend

BACKENDS = ["threads", "processes"]


# -- module-level SPMD programs (picklable for the processes backend) -------


def _ring(comm):
    nxt = (comm.rank + 1) % comm.size
    prv = (comm.rank - 1) % comm.size
    comm.send(comm.rank, nxt, tag=1)
    return comm.recv(prv, tag=1)


def _collective_mix(comm):
    word = comm.bcast("seed" if comm.rank == 0 else None, root=0)
    part = comm.scatter(
        [i * 10 for i in range(comm.size)] if comm.rank == 0 else None, root=0
    )
    comm.barrier()
    everyone = comm.allgather(part + comm.rank)
    total = comm.allreduce(comm.rank + 1, op=lambda a, b: a + b)
    return (word, everyone, total)


def _fail_on_rank_one(comm):
    if comm.rank == 1:
        raise ValueError("injected rank failure")
    comm.recv((comm.rank + 1) % comm.size, tag=9)


def _send_array(comm):
    comm.send(np.zeros(50), (comm.rank + 1) % comm.size, tag=2)
    comm.recv((comm.rank - 1) % comm.size, tag=2)
    comm.charge_compute(0.25)


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert "threads" in available_backends()
        assert "processes" in available_backends()

    def test_get_backend_default_is_threads(self):
        assert isinstance(get_backend(), ThreadBackend)

    def test_get_backend_by_name_case_insensitive(self):
        assert isinstance(get_backend("PROCESSES"), ProcessBackend)

    def test_get_backend_passthrough_instance(self):
        be = ThreadBackend()
        assert get_backend(be) is be

    def test_unknown_backend(self):
        with pytest.raises(KeyError, match="unknown execution backend"):
            get_backend("gpu")

    def test_register_and_unregister(self):
        class Custom(ThreadBackend):
            name = "custom"

        register_backend("custom", Custom)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_backend("custom", Custom)
            assert isinstance(get_backend("custom"), Custom)
        finally:
            unregister_backend("custom")
        assert "custom" not in available_backends()
        with pytest.raises(KeyError):
            unregister_backend("custom")

    def test_bad_process_start_method(self):
        with pytest.raises(ValueError, match="start method"):
            ProcessBackend(start_method="teleport")

    def test_validation_shared_across_backends(self):
        for name in BACKENDS:
            with pytest.raises(ValueError):
                run_spmd(0, _ring, backend=name)
            with pytest.raises(ValueError, match="one tuple per rank"):
                run_spmd(2, _ring, rank_args=[()], backend=name)


@pytest.mark.parametrize("backend", BACKENDS)
class TestProgramEquivalence:
    def test_ring(self, backend):
        res = run_spmd(5, _ring, backend=backend)
        assert res.results == [(r - 1) % 5 for r in range(5)]
        assert res.backend == backend

    def test_collectives(self, backend):
        size = 4
        res = run_spmd(size, _collective_mix, backend=backend)
        expect_gather = [i * 10 + i for i in range(size)]
        for word, everyone, total in res.results:
            assert word == "seed"
            assert everyone == expect_gather
            assert total == size * (size + 1) // 2

    def test_abort_propagates_and_nothing_leaks(self, backend):
        with pytest.raises(RuntimeError, match="rank 1 failed") as exc_info:
            run_spmd(3, _fail_on_rank_one, backend=backend)
        assert isinstance(exc_info.value.__cause__, ValueError)
        # Hardened shutdown: no rank may outlive the launcher.
        assert mp.active_children() == []

    def test_metering_and_charge_compute(self, backend):
        res = run_spmd(3, _send_array, backend=backend)
        sends = [e for e in res.ledger.events if e.kind == "send"]
        assert len(sends) == 3
        assert all(e.nbytes == 400 for e in sends)
        assert (res.ledger.compute >= 0.25).all()
        assert res.modeled_time() >= 0.25


class TestCrossBackendLedgers:
    def test_message_pattern_identical(self):
        """Same program, same per-rank event counts and bytes, any backend."""
        by_backend = {
            name: run_spmd(4, _collective_mix, backend=name)
            for name in BACKENDS
        }

        def per_rank(res):
            counts = [0] * 4
            nbytes = [0] * 4
            for e in res.ledger.events:
                counts[e.src] += 1
                nbytes[e.src] += e.nbytes
            return counts, nbytes

        t_counts, t_bytes = per_rank(by_backend["threads"])
        p_counts, p_bytes = per_rank(by_backend["processes"])
        assert t_counts == p_counts
        assert t_bytes == p_bytes
        assert (
            by_backend["threads"].ledger.bytes_by_kind()
            == by_backend["processes"].ledger.bytes_by_kind()
        )

    def test_modeled_message_cost_identical(self):
        slow = CostModel(alpha=0.5, beta=0.0)
        times = {
            name: run_spmd(2, _ring, cost_model=slow, backend=name)
            for name in BACKENDS
        }
        for res in times.values():
            assert res.modeled_time() >= 0.5
        assert (
            times["threads"].ledger.modeled_comm_time()
            == pytest.approx(times["processes"].ledger.modeled_comm_time())
        )


class TestSampleAlignDEquivalence:
    @pytest.fixture(scope="class")
    def family(self, diverse_family):
        return list(diverse_family.sequences)[:24]

    @pytest.fixture(scope="class")
    def runs(self, family):
        return {
            name: sample_align_d(family, n_procs=4, backend=name)
            for name in BACKENDS
        }

    def test_identical_alignments(self, runs):
        assert (
            runs["threads"].alignment.to_fasta()
            == runs["processes"].alignment.to_fasta()
        )

    def test_identical_sp_scores(self, runs):
        assert runs["threads"].sp == pytest.approx(runs["processes"].sp)

    def test_identical_per_rank_message_counts(self, runs):
        def counts(res):
            out = [0] * res.n_procs
            for e in res.ledger.events:
                out[e.src] += 1
            return out

        assert counts(runs["threads"]) == counts(runs["processes"])

    def test_backend_recorded(self, runs):
        for name, res in runs.items():
            assert res.backend == name
            assert f"backend={name}" in res.summary()

    def test_config_backend_drives_run(self, family):
        res = sample_align_d(
            family[:8],
            n_procs=2,
            config=SampleAlignDConfig(backend="processes"),
        )
        assert res.backend == "processes"

    def test_explicit_backend_wins_over_config(self, family):
        res = sample_align_d(
            family[:8],
            n_procs=2,
            config=SampleAlignDConfig(backend="processes"),
            backend="threads",
        )
        assert res.backend == "threads"

    def test_unknown_backend_fails_fast(self, family):
        with pytest.raises(KeyError, match="unknown execution backend"):
            sample_align_d(family[:8], n_procs=2, backend="bogus")


class TestConfigBackendField:
    def test_round_trip(self):
        cfg = SampleAlignDConfig(backend="processes")
        assert cfg.to_dict()["backend"] == "processes"
        assert SampleAlignDConfig.from_dict(cfg.to_dict()) == cfg

    def test_default_none_round_trip(self):
        cfg = SampleAlignDConfig()
        assert cfg.to_dict()["backend"] is None
        assert SampleAlignDConfig.from_dict(cfg.to_dict()) == cfg

    def test_legacy_dict_without_backend(self):
        data = SampleAlignDConfig().to_dict()
        del data["backend"]
        assert SampleAlignDConfig.from_dict(data).backend is None

    def test_validation(self):
        with pytest.raises(ValueError, match="not a registered"):
            SampleAlignDConfig(backend="gpu")


class TestCustomBackendPluggability:
    def test_run_spmd_accepts_instance(self):
        calls = []

        class Spy(ThreadBackend):
            name = "spy"

            def run(self, *args, **kwargs):
                calls.append(args[0])
                return super().run(*args, **kwargs)

        res = run_spmd(3, _ring, backend=Spy())
        assert calls == [3]
        assert res.backend == "spy"
        assert isinstance(get_backend(ThreadBackend()), ExecutionBackend)


def _abort_observer(comm):
    """Rank 0 fails; others must raise SpmdAbort from their next wait."""
    if comm.rank == 0:
        raise RuntimeError("rank0 down")
    try:
        comm.recv(0, tag=3)
    except SpmdAbort:
        return "aborted"
    return "no abort"


@pytest.mark.parametrize("backend", BACKENDS)
def test_survivors_observe_spmd_abort(backend):
    with pytest.raises(RuntimeError, match="rank 0 failed"):
        run_spmd(3, _abort_observer, backend=backend)


def _fail_fast_or_sleep(comm):
    """Rank 0 fails immediately; rank 1 is stuck in compute (no comm)."""
    import time as _time

    if comm.rank == 0:
        raise ValueError("early failure")
    _time.sleep(5.0)
    return "slept"


class TestHardenedShutdown:
    def test_threads_abort_does_not_wait_for_stuck_rank(self):
        import time as _time

        backend = ThreadBackend(abort_join_timeout=0.5)
        t0 = _time.monotonic()
        with pytest.raises(RuntimeError, match="rank 0 failed") as exc_info:
            run_spmd(2, _fail_fast_or_sleep, backend=backend)
        elapsed = _time.monotonic() - t0
        assert elapsed < 4.0  # did not sit out the 5 s sleep
        assert "still unwinding" in str(exc_info.value)

    def test_processes_abort_terminates_stuck_rank(self):
        import time as _time

        backend = ProcessBackend(abort_join_timeout=0.5)
        t0 = _time.monotonic()
        with pytest.raises(RuntimeError, match="rank 0 failed") as exc_info:
            run_spmd(2, _fail_fast_or_sleep, backend=backend)
        elapsed = _time.monotonic() - t0
        assert elapsed < 4.0
        assert "terminated while unwinding" in str(exc_info.value)
        assert mp.active_children() == []

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            ThreadBackend(abort_join_timeout=0.0)
        with pytest.raises(ValueError):
            ProcessBackend(abort_join_timeout=-1.0)


def _string_tag(comm):
    comm.send("x", (comm.rank + 1) % comm.size, tag="__ctrl__")


def _string_tag_recv(comm):
    comm.recv((comm.rank + 1) % comm.size, tag="nope")


@pytest.mark.parametrize("backend", BACKENDS)
def test_non_int_tags_rejected(backend):
    """Tags are ints on every backend; strings are transport-internal."""
    with pytest.raises(RuntimeError, match="failed"):
        run_spmd(2, _string_tag, backend=backend)
    with pytest.raises(RuntimeError, match="failed"):
        run_spmd(2, _string_tag_recv, backend=backend)

"""Tests for the trace rendering (repro.parcomp.trace)."""

import numpy as np
import pytest

from repro.parcomp import run_spmd
from repro.parcomp.trace import render_timeline, render_traffic, traffic_matrix


@pytest.fixture(scope="module")
def ledger():
    def prog(comm):
        comm.send(np.zeros(64), (comm.rank + 1) % comm.size, tag=1)
        comm.recv((comm.rank - 1) % comm.size, tag=1)
        comm.bcast("x" * 100 if comm.rank == 0 else None, root=0)
        comm.barrier()

    return run_spmd(4, prog).ledger


class TestTrafficMatrix:
    def test_shape_and_totals(self, ledger):
        m = traffic_matrix(ledger)
        assert m.shape == (4, 4)
        assert m.sum() == ledger.total_bytes()

    def test_ring_pattern_present(self, ledger):
        m = traffic_matrix(ledger)
        for r in range(4):
            assert m[r, (r + 1) % 4] >= 512  # the 64-double ring send

    def test_no_self_messages(self, ledger):
        m = traffic_matrix(ledger)
        assert np.trace(m) == 0


class TestRenderers:
    def test_timeline_one_line_per_rank(self, ledger):
        out = render_timeline(ledger)
        lines = out.splitlines()
        assert len(lines) == 1 + 4
        assert all(l.startswith("rank") for l in lines[1:])

    def test_timeline_shows_sends(self, ledger):
        out = render_timeline(ledger)
        assert "s" in out  # ring sends
        assert "b" in out  # broadcast

    def test_timeline_events_have_clocks(self, ledger):
        assert all(e.send_clock >= 0 for e in ledger.events)
        assert any(e.send_clock > 0 for e in ledger.events)

    def test_traffic_renders(self, ledger):
        out = render_traffic(ledger)
        assert "src\\dst" in out
        assert str(ledger.total_bytes()) in out

"""Tests for the virtual communicator and launcher."""

import numpy as np
import pytest

from repro.parcomp import CostModel, SpmdAbort, run_spmd


class TestPointToPoint:
    def test_ring(self):
        def prog(comm):
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            comm.send(comm.rank, nxt, tag=1)
            return comm.recv(prv, tag=1)

        res = run_spmd(5, prog)
        assert res.results == [(r - 1) % 5 for r in range(5)]

    def test_fifo_per_source_and_tag(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, 1, tag=7)
                return None
            if comm.rank == 1:
                return [comm.recv(0, tag=7) for _ in range(5)]

        res = run_spmd(2, prog)
        assert res.results[1] == [0, 1, 2, 3, 4]

    def test_tags_are_independent(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=1)
                comm.send("b", 1, tag=2)
                return None
            # Receive in the reverse order of the sends.
            b = comm.recv(0, tag=2)
            a = comm.recv(0, tag=1)
            return (a, b)

        res = run_spmd(2, prog)
        assert res.results[1] == ("a", "b")

    def test_bad_ranks(self):
        def prog(comm):
            with pytest.raises(ValueError):
                comm.send(1, comm.size)
            with pytest.raises(ValueError):
                comm.recv(-1)
            return True

        assert run_spmd(2, prog).results == [True, True]


@pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
class TestCollectives:
    def test_bcast(self, size):
        def prog(comm):
            return comm.bcast("payload" if comm.rank == 0 else None, root=0)

        assert run_spmd(size, prog).results == ["payload"] * size

    def test_bcast_nonzero_root(self, size):
        root = size - 1

        def prog(comm):
            return comm.bcast(42 if comm.rank == root else None, root=root)

        assert run_spmd(size, prog).results == [42] * size

    def test_scatter_gather(self, size):
        def prog(comm):
            part = comm.scatter(
                [i * i for i in range(comm.size)] if comm.rank == 0 else None,
                root=0,
            )
            return comm.gather(part + 1, root=0)

        res = run_spmd(size, prog)
        assert res.results[0] == [i * i + 1 for i in range(size)]
        assert all(r is None for r in res.results[1:])

    def test_allgather(self, size):
        def prog(comm):
            return comm.allgather(comm.rank * 2)

        assert run_spmd(size, prog).results == [
            [i * 2 for i in range(size)]
        ] * size

    def test_alltoall(self, size):
        def prog(comm):
            out = [f"{comm.rank}->{d}" for d in range(comm.size)]
            return comm.alltoall(out)

        res = run_spmd(size, prog)
        for r in range(size):
            assert res.results[r] == [f"{s}->{r}" for s in range(size)]

    def test_reduce(self, size):
        def prog(comm):
            return comm.reduce(comm.rank + 1, op=lambda a, b: a + b, root=0)

        res = run_spmd(size, prog)
        assert res.results[0] == size * (size + 1) // 2

    def test_allreduce(self, size):
        def prog(comm):
            return comm.allreduce(comm.rank, op=max)

        assert run_spmd(size, prog).results == [size - 1] * size

    def test_barrier(self, size):
        def prog(comm):
            comm.barrier()
            return comm.rank

        assert run_spmd(size, prog).results == list(range(size))


class TestCollectiveValidation:
    def test_scatter_needs_full_list(self):
        def prog(comm):
            if comm.rank == 0:
                comm.scatter([1], root=0)  # wrong length for size 2
            else:
                comm.recv(0, tag=(1 << 20) + 2)
            return None

        with pytest.raises(RuntimeError, match="rank 0"):
            run_spmd(2, prog)

    def test_alltoall_needs_full_list(self):
        def prog(comm):
            comm.alltoall([1])

        with pytest.raises(RuntimeError):
            run_spmd(2, prog)


class TestClocksAndMetering:
    def test_events_recorded(self):
        def prog(comm):
            comm.send(np.zeros(100), (comm.rank + 1) % comm.size, tag=3)
            comm.recv((comm.rank - 1) % comm.size, tag=3)

        res = run_spmd(3, prog)
        sends = [e for e in res.ledger.events if e.kind == "send"]
        assert len(sends) == 3
        assert all(e.nbytes == 800 for e in sends)

    def test_modeled_time_includes_message_costs(self):
        slow = CostModel(alpha=0.5, beta=0.0)

        def prog(comm):
            if comm.rank == 0:
                comm.send("x", 1)
            elif comm.rank == 1:
                comm.recv(0)

        res = run_spmd(2, prog, cost_model=slow)
        assert res.modeled_time() >= 0.5

    def test_compute_attributed(self):
        def prog(comm):
            # A real CPU burn so thread_time moves.
            x = 0
            for i in range(200_000):
                x += i * i
            comm.barrier()
            return x

        res = run_spmd(2, prog)
        assert (res.ledger.compute > 0).all()

    def test_charge_compute(self):
        def prog(comm):
            comm.charge_compute(2.5)

        res = run_spmd(2, prog)
        assert res.modeled_time() >= 2.5
        assert (res.ledger.compute >= 2.5).all()

    def test_charge_compute_negative(self):
        def prog(comm):
            with pytest.raises(ValueError):
                comm.charge_compute(-1.0)

        run_spmd(1, prog)

    def test_recv_synchronises_clock(self):
        slow = CostModel(alpha=1.0, beta=0.0)

        def prog(comm):
            if comm.rank == 0:
                comm.send("x", 1)
                return 0.0
            comm.recv(0)
            comm.finalize()
            return None

        res = run_spmd(2, prog, cost_model=slow)
        # Receiver's clock is at least the sender's send completion time.
        assert res.ledger.clock[1] >= 1.0


class TestFailure:
    def test_error_propagates(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.recv((comm.rank + 1) % comm.size, tag=9)

        with pytest.raises(RuntimeError, match="rank 1"):
            run_spmd(3, prog)

    def test_rank_args(self):
        def prog(comm, a, b):
            return (comm.rank, a, b)

        res = run_spmd(2, prog, rank_args=[(1, 2), (3, 4)])
        assert res.results == [(0, 1, 2), (1, 3, 4)]

    def test_rank_args_validation(self):
        with pytest.raises(ValueError, match="one tuple per rank"):
            run_spmd(2, lambda comm: None, rank_args=[()])

    def test_bad_nranks(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: None)

    def test_shared_args_and_kwargs(self):
        def prog(comm, x, y=0):
            return x + y + comm.rank

        res = run_spmd(2, prog, args=(10,), y=5)
        assert res.results == [15, 16]

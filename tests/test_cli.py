"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.seq.fasta import read_fasta, to_fasta, write_fasta
from repro.seq.sequence import Sequence, SequenceSet


@pytest.fixture()
def fasta_file(tmp_path):
    path = tmp_path / "in.fasta"
    seqs = SequenceSet(
        [
            Sequence("a", "MKTAYIAKQRQISFVKSHFSRQ"),
            Sequence("b", "MKTAYIAKQRQISFVKHFSRQ"),
            Sequence("c", "MKTAYIARQRQISFVKSHFSR"),
            Sequence("d", "MTAYIAKQRQISFVKSHFSRQ"),
        ]
    )
    write_fasta(path, seqs)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_align_defaults(self):
        args = build_parser().parse_args(["align", "x.fasta"])
        assert args.procs == 4 and args.aligner is None


class TestCommands:
    def test_aligners_lists_registry(self, capsys):
        assert main(["aligners"]) == 0
        out = capsys.readouterr().out
        assert "muscle" in out and "tcoffee" in out

    def test_generate(self, tmp_path):
        out = tmp_path / "fam.fasta"
        ref = tmp_path / "ref.fasta"
        rc = main(
            [
                "generate", "-n", "6", "-l", "50", "-r", "200",
                "-s", "3", "-o", str(out), "--reference", str(ref),
            ]
        )
        assert rc == 0
        seqs = read_fasta(out)
        assert len(seqs) == 6
        assert ref.exists()

    def test_generate_stdout(self, capsys):
        assert main(["generate", "-n", "2", "-l", "40"]) == 0
        assert capsys.readouterr().out.startswith(">seq")

    def test_align_sample_align_d(self, fasta_file, tmp_path, capsys):
        out = tmp_path / "aln.fasta"
        rc = main(["align", str(fasta_file), "-p", "2", "-o", str(out)])
        assert rc == 0
        text = out.read_text()
        assert text.startswith(">a")
        assert "Sample-Align-D" in capsys.readouterr().err

    def test_align_sequential(self, fasta_file, capsys):
        rc = main(["align", str(fasta_file), "--aligner", "center-star"])
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.out.startswith(">a")
        assert "center-star" in captured.err

    def test_align_engine_flag(self, fasta_file, capsys):
        rc = main(["align", str(fasta_file), "--engine", "center-star"])
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.out.startswith(">a")
        assert "center-star" in captured.err

    def test_align_engine_parallel_baseline(self, fasta_file, capsys):
        rc = main(
            ["align", str(fasta_file), "--engine", "parallel-baseline",
             "-p", "2"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.out.startswith(">a")
        assert "parallel-baseline" in captured.err

    def test_align_engine_and_aligner_conflict(self, fasta_file, capsys):
        rc = main(
            ["align", str(fasta_file), "--engine", "muscle",
             "--aligner", "clustalw"]
        )
        assert rc == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_align_unknown_engine(self, fasta_file, capsys):
        rc = main(["align", str(fasta_file), "--engine", "nope"])
        assert rc == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_align_seed_changes_distribution(self, fasta_file, capsys):
        rc = main(["align", str(fasta_file), "-p", "2", "--seed", "5"])
        assert rc == 0
        assert "Sample-Align-D" in capsys.readouterr().err

    def test_align_json_to_file(self, fasta_file, tmp_path):
        import json

        out = tmp_path / "summary.json"
        rc = main(
            ["align", str(fasta_file), "-p", "2", "--seed", "1",
             "--json", str(out)]
        )
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["engine"] == "sample-align-d"
        assert report["n_rows"] == 4
        assert report["request_hash"]
        assert "bucket_sizes" in report["diagnostics"]
        # The serving-layer stats ride along in the JSON report.
        assert report["service"]["computed"] == 1
        assert report["service"]["misses"] == 1
        assert "evictions" in report["service"]
        assert report["job"]["cache_hit"] is False
        assert report["job"]["status"] == "done"

    def test_align_json_to_stderr(self, fasta_file, capsys):
        rc = main(
            ["align", str(fasta_file), "--engine", "center-star", "--json"]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert '"engine": "center-star"' in err

    def test_engines_lists_unified_registry(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "sample-align-d" in out and "distributed" in out
        assert "muscle" in out and "sequential" in out

    def test_rank(self, fasta_file, capsys):
        rc = main(["rank", str(fasta_file), "-k", "3", "--samples", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "centralized:" in out and "globalized" in out
        assert "variance w.r.t. centralized" in out

    def test_quality(self, tmp_path, capsys):
        test = tmp_path / "test.fasta"
        ref = tmp_path / "ref.fasta"
        test.write_text(">a\nMK-V\n>b\nMKAV\n")
        ref.write_text(">a\nMK-V\n>b\nMKAV\n")
        rc = main(["quality", str(test), str(ref)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Q  = 1.0000" in out and "TC = 1.0000" in out

    def test_model(self, capsys, monkeypatch):
        # Stub calibration so the test is fast and host-independent.
        from repro.perfmodel import KernelCoefficients
        import repro.perfmodel as pm

        monkeypatch.setattr(
            pm, "calibrate_kernels", lambda: KernelCoefficients()
        )
        rc = main(["model", "-n", "500", "-l", "120", "-p", "1", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "model-optimal" in out


class TestPlan:
    @pytest.fixture(autouse=True)
    def _stub_calibration(self, monkeypatch):
        from repro.perfmodel import KernelCoefficients
        import repro.perfmodel as pm

        monkeypatch.setattr(
            pm, "calibrate_kernels", lambda: KernelCoefficients()
        )

    def test_plan_text(self, fasta_file, capsys):
        rc = main(["plan", str(fasta_file), "--max-procs", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recommended workers:" in out
        assert "efficiency" in out

    def test_plan_json(self, fasta_file, tmp_path):
        import json

        out = tmp_path / "plan.json"
        rc = main(
            ["plan", str(fasta_file), "--max-procs", "8", "--json", str(out)]
        )
        assert rc == 0
        plan = json.loads(out.read_text())
        assert plan["n_sequences"] == 4
        assert 1 <= plan["recommended_procs"] <= 8
        assert plan["predicted_speedup"] is not None
        assert "1" in plan["efficiency"]

    def test_plan_json_stdout(self, fasta_file, capsys):
        rc = main(["plan", str(fasta_file), "--max-procs", "4", "--json"])
        assert rc == 0
        assert '"recommended_procs"' in capsys.readouterr().out


class TestLoadtest:
    def test_closed_loop_repeat_mix(self, capsys, tmp_path):
        import json

        out = tmp_path / "report.json"
        rc = main(
            ["loadtest", "--requests", "24", "--clients", "3",
             "--mix", "repeat", "--pool", "4", "--seed", "1",
             "--workers", "2", "--json", str(out)]
        )
        assert rc == 0
        printed = capsys.readouterr().out
        assert "0 errors" in printed
        assert "coalesce hit-rate:" in printed
        report = json.loads(out.read_text())
        assert report["requests"]["ok"] == 24
        assert report["requests"]["errors"] == 0
        assert report["latency"]["p99_s"] is not None
        svc = report["gateway"]["service"]
        assert svc["served"] + svc["computed"] >= 24 - report["gateway"]["coalesced"]

    def test_store_backed_loadtest_persists(self, tmp_path, capsys):
        store = tmp_path / "store"
        args = ["loadtest", "--requests", "12", "--clients", "2",
                "--mix", "repeat", "--pool", "3", "--seed", "2",
                "--workers", "2", "--store", str(store)]
        assert main(args) == 0
        capsys.readouterr()
        # Second process-equivalent run: everything served from disk.
        assert main(args) == 0
        assert "0 errors" in capsys.readouterr().out
        assert any(store.rglob("*.json"))


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8000 and args.queue_size == 256
        assert args.store is None

    def test_bad_gateway_options_clean_error(self, capsys):
        rc = main(["serve", "--burst", "4"])  # burst without rate
        assert rc == 2
        assert "error:" in capsys.readouterr().err
        rc = main(["loadtest", "--requests", "0"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_bind_failure_clean_error(self, capsys):
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            rc = main(["serve", "--port", str(port)])
            assert rc == 2
            assert "cannot bind" in capsys.readouterr().err
        finally:
            blocker.close()

    def test_loadtest_defaults(self):
        args = build_parser().parse_args(["loadtest"])
        assert args.requests == 500 and args.clients == 8
        assert args.mix == "zipf" and args.mode == "closed"


class TestBackendFlag:
    def test_align_backend_processes(self, fasta_file, capsys):
        rc = main(
            ["align", str(fasta_file), "-p", "2", "--backend", "processes"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.out.startswith(">a")
        assert "backend=processes" in captured.err

    def test_align_backend_threads_is_explicit_default(self, fasta_file,
                                                       capsys):
        rc = main(["align", str(fasta_file), "-p", "2",
                   "--backend", "threads"])
        assert rc == 0
        assert "backend=threads" in capsys.readouterr().err

    def test_align_backend_json_reports_backend(self, fasta_file, tmp_path):
        import json

        out = tmp_path / "run.json"
        rc = main(["align", str(fasta_file), "-p", "2", "--backend",
                   "processes", "-o", str(tmp_path / "aln.fasta"),
                   "--json", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["diagnostics"]["backend"] == "processes"

    def test_align_backend_rejected_for_sequential_engine(self, fasta_file,
                                                          capsys):
        rc = main(["align", str(fasta_file), "--engine", "center-star",
                   "--backend", "processes"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--backend currently applies only to" in err

    def test_align_unknown_backend_clean_error(self, fasta_file, capsys):
        rc = main(["align", str(fasta_file), "--backend", "gpu"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_unknown_backend_clean_error(self, capsys):
        rc = main(["serve", "--backend", "gpu"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_loadtest_unknown_backend_clean_error(self, capsys):
        rc = main(["loadtest", "--backend", "gpu"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_plan_backend_probe(self, fasta_file, tmp_path, monkeypatch):
        import json

        from repro.perfmodel import KernelCoefficients
        import repro.perfmodel as pm

        monkeypatch.setattr(
            pm, "calibrate_kernels", lambda: KernelCoefficients()
        )
        out = tmp_path / "plan.json"
        rc = main(["plan", str(fasta_file), "--max-procs", "2",
                   "--backend", "threads", "--json", str(out)])
        assert rc == 0
        plan = json.loads(out.read_text())
        probe = plan["backend_probe"]
        assert probe["backend"] == "threads"
        assert set(probe["wall_s"]) == {"1", "2"}
        assert probe["speedup"]["1"] == pytest.approx(1.0)
        # The measured throughput drives the recommendation.
        assert plan["recommended_procs"] == probe["best_procs"]
        assert "recommended_procs_model" in plan

    def test_plan_unknown_backend_clean_error(self, fasta_file, capsys,
                                              monkeypatch):
        from repro.perfmodel import KernelCoefficients
        import repro.perfmodel as pm

        monkeypatch.setattr(
            pm, "calibrate_kernels", lambda: KernelCoefficients()
        )
        rc = main(["plan", str(fasta_file), "--backend", "gpu"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_engines_documents_backends(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "execution backends" in out
        assert "threads" in out and "processes" in out


class TestDistanceCli:
    def test_distances_lists_estimators(self, capsys):
        assert main(["distances"]) == 0
        out = capsys.readouterr().out
        for name in ("ktuple", "kmer-fraction", "full-dp", "kband"):
            assert name in out
        assert "kimura" in out

    def test_distances_json_listing(self, capsys):
        import json

        assert main(["distances", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "full-dp" in payload["distance_estimators"]
        assert "threads" in payload["execution_backends"]

    def test_distances_matrix_stats(self, fasta_file, capsys):
        rc = main(["distances", str(fasta_file), "--estimator", "ktuple"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ktuple distances: N=4 pairs=6" in out

    def test_distances_matrix_tsv_and_backend(self, fasta_file, tmp_path,
                                              capsys):
        tsv = tmp_path / "d.tsv"
        rc = main(
            [
                "distances", str(fasta_file), "--backend", "threads",
                "--workers", "2", "-o", str(tsv),
            ]
        )
        assert rc == 0
        lines = tsv.read_text().strip().splitlines()
        assert len(lines) == 5  # header + 4 rows
        assert lines[0].split("\t")[1:] == ["a", "b", "c", "d"]

    def test_distances_json_stats(self, fasta_file, tmp_path):
        import json

        dest = tmp_path / "stats.json"
        rc = main(
            [
                "distances", str(fasta_file), "--estimator", "full-dp",
                "--transform", "kimura", "--json", str(dest),
            ]
        )
        assert rc == 0
        stats = json.loads(dest.read_text())
        assert stats["n_pairs"] == 6 and stats["estimator"] == "full-dp"

    def test_distances_unknown_estimator_clean_error(self, fasta_file,
                                                     capsys):
        rc = main(["distances", str(fasta_file), "--estimator", "nope"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_align_distance_flags(self, fasta_file, tmp_path, capsys):
        plain = tmp_path / "plain.fasta"
        opted = tmp_path / "opted.fasta"
        assert main(
            ["align", str(fasta_file), "--engine", "center-star",
             "-o", str(plain)]
        ) == 0
        assert main(
            ["align", str(fasta_file), "--engine", "center-star",
             "--distance", "ktuple", "--distance-backend", "threads",
             "-o", str(opted)]
        ) == 0
        # Same estimator, parallel schedule: byte-identical alignment.
        assert plain.read_text() == opted.read_text()

    def test_align_distance_rejected_for_tcoffee(self, fasta_file, capsys):
        rc = main(
            ["align", str(fasta_file), "--engine", "tcoffee",
             "--distance", "ktuple"]
        )
        assert rc == 2
        assert "does not take --distance" in capsys.readouterr().err

    def test_align_distance_backend_rejected_for_sample_align_d(
        self, fasta_file, capsys
    ):
        rc = main(
            ["align", str(fasta_file), "--distance-backend", "threads"]
        )
        assert rc == 2
        assert "--distance-backend" in capsys.readouterr().err

    def test_align_distance_reaches_local_aligner(self, fasta_file,
                                                  tmp_path, capsys):
        out = tmp_path / "sad.fasta"
        rc = main(
            ["align", str(fasta_file), "-p", "2", "--distance",
             "kmer-fraction", "-o", str(out)]
        )
        assert rc == 0
        assert out.read_text().startswith(">")

    def test_align_unknown_distance_clean_error(self, fasta_file, capsys):
        rc = main(
            ["align", str(fasta_file), "--engine", "clustalw",
             "--distance", "nope"]
        )
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_loadtest_distance_defaults(self, capsys, tmp_path):
        import json

        dest = tmp_path / "report.json"
        rc = main(
            [
                "loadtest", "--requests", "12", "--clients", "2",
                "--pool", "3", "--mix", "repeat", "--workers", "2",
                "--engine", "center-star", "--distance-backend", "threads",
                "--json", str(dest),
            ]
        )
        assert rc == 0
        report = json.loads(dest.read_text())
        gw = report["gateway"]
        assert gw["default_distance_backend"] == "threads"
        assert report["requests"]["errors"] == 0

    def test_serve_unknown_distance_clean_error(self, capsys):
        rc = main(["serve", "--port", "0", "--distance", "nope"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_engines_lists_distance_estimators(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "distance estimators" in out
        assert "ktuple" in out and "full-dp" in out

    def test_engines_json(self, capsys):
        import json

        assert main(["engines", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_name = {e["name"]: e for e in payload["engines"]}
        assert by_name["clustalw"]["distance_options"] == [
            "distance", "distance_backend", "distance_out",
            "distance_store_dir", "distance_workers"
        ]
        assert by_name["parallel-baseline"]["distance_options"] == [
            "distance", "distance_out", "distance_store_dir"
        ]
        assert "kband" in payload["distance_estimators"]


class TestTraceCli:
    def test_trace_synthetic_family(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        report = tmp_path / "stages.json"
        rc = main(
            ["trace", "-n", "6", "-l", "40", "-o", str(out),
             "--json", str(report)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"gateway.admit", "gateway.compute", "service.execute",
                "engine.align", "distance.all_pairs", "tree.build",
                "tree.merge", "dp.profile_align"} <= names
        stages = json.loads(report.read_text())
        assert stages["n_spans"] == len(doc["traceEvents"])
        assert stages["stage_breakdown"]

    def test_trace_fasta_input_text_output(self, fasta_file, tmp_path,
                                           capsys):
        out = tmp_path / "trace.json"
        rc = main(["trace", str(fasta_file), "-o", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "service.execute" in printed
        assert "chrome trace written to" in printed
        assert out.exists()

    def test_trace_leaves_tracing_disabled(self, tmp_path):
        from repro.obs.tracing import tracing_enabled

        assert main(["trace", "-n", "4", "-l", "30",
                     "-o", str(tmp_path / "t.json")]) == 0
        assert not tracing_enabled()

    def test_trace_unknown_engine_clean_error(self, tmp_path, capsys):
        rc = main(["trace", "-n", "4", "-l", "30", "--engine", "nope",
                   "-o", str(tmp_path / "t.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_loadtest_trace_out(self, tmp_path, capsys):
        import json

        trace = tmp_path / "load.json"
        rc = main(
            ["loadtest", "--requests", "6", "--clients", "2",
             "--pool", "2", "--workers", "2",
             "--trace-out", str(trace)]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "spans written to" in captured.err
        assert "stage breakdown:" in captured.out
        doc = json.loads(trace.read_text())
        assert any(e["name"] == "gateway.compute"
                   for e in doc["traceEvents"])
        from repro.obs.tracing import tracing_enabled

        assert not tracing_enabled()

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.seq.fasta import read_fasta, to_fasta, write_fasta
from repro.seq.sequence import Sequence, SequenceSet


@pytest.fixture()
def fasta_file(tmp_path):
    path = tmp_path / "in.fasta"
    seqs = SequenceSet(
        [
            Sequence("a", "MKTAYIAKQRQISFVKSHFSRQ"),
            Sequence("b", "MKTAYIAKQRQISFVKHFSRQ"),
            Sequence("c", "MKTAYIARQRQISFVKSHFSR"),
            Sequence("d", "MTAYIAKQRQISFVKSHFSRQ"),
        ]
    )
    write_fasta(path, seqs)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_align_defaults(self):
        args = build_parser().parse_args(["align", "x.fasta"])
        assert args.procs == 4 and args.aligner is None


class TestCommands:
    def test_aligners_lists_registry(self, capsys):
        assert main(["aligners"]) == 0
        out = capsys.readouterr().out
        assert "muscle" in out and "tcoffee" in out

    def test_generate(self, tmp_path):
        out = tmp_path / "fam.fasta"
        ref = tmp_path / "ref.fasta"
        rc = main(
            [
                "generate", "-n", "6", "-l", "50", "-r", "200",
                "-s", "3", "-o", str(out), "--reference", str(ref),
            ]
        )
        assert rc == 0
        seqs = read_fasta(out)
        assert len(seqs) == 6
        assert ref.exists()

    def test_generate_stdout(self, capsys):
        assert main(["generate", "-n", "2", "-l", "40"]) == 0
        assert capsys.readouterr().out.startswith(">seq")

    def test_align_sample_align_d(self, fasta_file, tmp_path, capsys):
        out = tmp_path / "aln.fasta"
        rc = main(["align", str(fasta_file), "-p", "2", "-o", str(out)])
        assert rc == 0
        text = out.read_text()
        assert text.startswith(">a")
        assert "Sample-Align-D" in capsys.readouterr().err

    def test_align_sequential(self, fasta_file, capsys):
        rc = main(["align", str(fasta_file), "--aligner", "center-star"])
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.out.startswith(">a")
        assert "center-star" in captured.err

    def test_align_engine_flag(self, fasta_file, capsys):
        rc = main(["align", str(fasta_file), "--engine", "center-star"])
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.out.startswith(">a")
        assert "center-star" in captured.err

    def test_align_engine_parallel_baseline(self, fasta_file, capsys):
        rc = main(
            ["align", str(fasta_file), "--engine", "parallel-baseline",
             "-p", "2"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.out.startswith(">a")
        assert "parallel-baseline" in captured.err

    def test_align_engine_and_aligner_conflict(self, fasta_file, capsys):
        rc = main(
            ["align", str(fasta_file), "--engine", "muscle",
             "--aligner", "clustalw"]
        )
        assert rc == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_align_unknown_engine(self, fasta_file, capsys):
        rc = main(["align", str(fasta_file), "--engine", "nope"])
        assert rc == 2
        assert "unknown engine" in capsys.readouterr().err

    def test_align_seed_changes_distribution(self, fasta_file, capsys):
        rc = main(["align", str(fasta_file), "-p", "2", "--seed", "5"])
        assert rc == 0
        assert "Sample-Align-D" in capsys.readouterr().err

    def test_align_json_to_file(self, fasta_file, tmp_path):
        import json

        out = tmp_path / "summary.json"
        rc = main(
            ["align", str(fasta_file), "-p", "2", "--seed", "1",
             "--json", str(out)]
        )
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["engine"] == "sample-align-d"
        assert report["n_rows"] == 4
        assert report["request_hash"]
        assert "bucket_sizes" in report["diagnostics"]

    def test_align_json_to_stderr(self, fasta_file, capsys):
        rc = main(
            ["align", str(fasta_file), "--engine", "center-star", "--json"]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert '"engine": "center-star"' in err

    def test_engines_lists_unified_registry(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        assert "sample-align-d" in out and "distributed" in out
        assert "muscle" in out and "sequential" in out

    def test_rank(self, fasta_file, capsys):
        rc = main(["rank", str(fasta_file), "-k", "3", "--samples", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "centralized:" in out and "globalized" in out
        assert "variance w.r.t. centralized" in out

    def test_quality(self, tmp_path, capsys):
        test = tmp_path / "test.fasta"
        ref = tmp_path / "ref.fasta"
        test.write_text(">a\nMK-V\n>b\nMKAV\n")
        ref.write_text(">a\nMK-V\n>b\nMKAV\n")
        rc = main(["quality", str(test), str(ref)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Q  = 1.0000" in out and "TC = 1.0000" in out

    def test_model(self, capsys, monkeypatch):
        # Stub calibration so the test is fast and host-independent.
        from repro.perfmodel import KernelCoefficients
        import repro.perfmodel as pm

        monkeypatch.setattr(
            pm, "calibrate_kernels", lambda: KernelCoefficients()
        )
        rc = main(["model", "-n", "500", "-l", "120", "-p", "1", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "model-optimal" in out

"""Byte-identity of the pool backend against serial/threads/processes.

The pool joins the backend contract of :mod:`repro.parcomp.backends`:
*where* ranks run is invisible to the program.  Every estimator, every
builder, and the full Sample-Align-D pipeline must produce the same
bytes through warm workers as they do serially -- and the ledgers must
carry the same message pattern.
"""

import numpy as np
import pytest

from repro.core.config import SampleAlignDConfig
from repro.core.driver import sample_align_d
from repro.distance import DistanceConfig, all_pairs, available_estimators
from repro.parcomp import get_backend, run_spmd
from repro.pool import PoolBackend
from repro.align.progressive import progressive_align
from repro.tree import TreeConfig, available_builders, get_builder


def _collective_mix(comm):
    word = comm.bcast("seed" if comm.rank == 0 else None, root=0)
    part = comm.scatter(
        [i * 10 for i in range(comm.size)] if comm.rank == 0 else None, root=0
    )
    comm.barrier()
    everyone = comm.allgather(part + comm.rank)
    total = comm.allreduce(comm.rank + 1, op=lambda a, b: a + b)
    return (word, everyone, total)


class TestRegistry:
    def test_pool_is_registered(self):
        from repro.parcomp import available_backends

        assert "pool" in available_backends()

    def test_get_backend_resolves_pool(self):
        assert isinstance(get_backend("pool"), PoolBackend)

    def test_configs_accept_pool(self):
        assert SampleAlignDConfig(backend="pool").backend == "pool"
        assert DistanceConfig(backend="pool").backend == "pool"
        assert TreeConfig(backend="pool").backend == "pool"


class TestSpmdEquivalence:
    def test_results_and_ledger_match_threads(self, pool):
        by_backend = {
            name: run_spmd(4, _collective_mix, backend=name)
            for name in ("threads", "pool")
        }
        assert (
            by_backend["threads"].results == by_backend["pool"].results
        )

        def per_rank(res):
            counts = [0] * 4
            nbytes = [0] * 4
            for e in res.ledger.events:
                counts[e.src] += 1
                nbytes[e.src] += e.nbytes
            return counts, nbytes

        assert per_rank(by_backend["threads"]) == per_rank(by_backend["pool"])
        assert (
            by_backend["threads"].ledger.bytes_by_kind()
            == by_backend["pool"].ledger.bytes_by_kind()
        )


class TestDistanceEquivalence:
    @pytest.fixture(scope="class")
    def seqs(self, diverse_family):
        return list(diverse_family.sequences)[:16]

    @pytest.mark.parametrize("estimator", sorted(available_estimators()))
    def test_all_pairs_identical_to_serial(self, pool, seqs, estimator):
        serial = all_pairs(seqs, estimator)
        pooled = all_pairs(seqs, estimator, backend="pool", workers=4)
        assert np.array_equal(serial, pooled)


class TestTreeEquivalence:
    @pytest.fixture(scope="class")
    def seqs(self, diverse_family):
        return list(diverse_family.sequences)[:12]

    @pytest.fixture(scope="class")
    def distances(self, seqs):
        return all_pairs(seqs, "ktuple")

    @pytest.mark.parametrize("builder", sorted(available_builders()))
    def test_progressive_merge_identical_to_serial(
        self, pool, seqs, distances, builder
    ):
        tree = get_builder(builder).build(distances, [s.id for s in seqs])
        serial = progressive_align(seqs, tree)
        pooled = progressive_align(seqs, tree, backend="pool", workers=4)
        assert serial.to_fasta() == pooled.to_fasta()


class TestSampleAlignDEquivalence:
    @pytest.fixture(scope="class")
    def family(self, diverse_family):
        return list(diverse_family.sequences)[:24]

    def test_identical_alignment_and_backend_recorded(self, pool, family):
        threads = sample_align_d(family, n_procs=4, backend="threads")
        pooled = sample_align_d(family, n_procs=4, backend="pool")
        assert threads.alignment.to_fasta() == pooled.alignment.to_fasta()
        assert threads.sp == pytest.approx(pooled.sp)
        assert pooled.backend == "pool"
        assert "backend=pool" in pooled.summary()

    def test_config_backend_drives_run(self, pool, family):
        res = sample_align_d(
            family[:8], n_procs=2, config=SampleAlignDConfig(backend="pool")
        )
        assert res.backend == "pool"

    def test_repeated_runs_reuse_the_same_workers(self, pool, family):
        pool.warm_up(4)
        pids = set(pool.stats()["worker_pids"])
        respawns = pool.stats()["respawns"]
        for _ in range(2):
            sample_align_d(family[:12], n_procs=4, backend="pool")
        assert set(pool.stats()["worker_pids"]) == pids
        assert pool.stats()["respawns"] == respawns

"""Crash recovery, hang handling, and idle shrink.

A SIGKILLed worker may die holding shared queue locks, so recovery is
always the pool-wide reset: every queue is rebuilt, orphan segments are
swept, and the run is retried on fresh workers.  These tests kill
workers at every stage -- idle, mid-SPMD-run, mid-all_pairs -- and
assert the pool comes back with byte-identical results and a clean
``/dev/shm``.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.distance import all_pairs
from repro.distance.estimators import DistanceEstimator, get_estimator
from repro.pool import PoolBackend, WorkerCrashError, WorkerPool
from repro.pool.shm import shm_dir_segments


def _wait_until(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# -- module-level programs (dispatch always pickles) ------------------------


def _ring(comm):
    nxt = (comm.rank + 1) % comm.size
    prv = (comm.rank - 1) % comm.size
    comm.send(comm.rank, nxt, tag=1)
    return comm.recv(prv, tag=1)


def _kill_rank_one_once(comm, sentinel):
    """Rank 1 SIGKILLs itself the first time through (then completes)."""
    if comm.rank == 1 and not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return _ring(comm)


def _kill_rank_zero_always(comm):
    if comm.rank == 0:
        os.kill(os.getpid(), signal.SIGKILL)
    return _ring(comm)


class KillerEstimator(DistanceEstimator):
    """ktuple distances, except the first worker to compute a tile dies."""

    name = "killer-test"

    def __init__(self, sentinel):
        self.sentinel = sentinel
        self.inner = get_estimator("ktuple")

    def prepare(self, seqs):
        return self.inner.prepare(seqs)

    def pair_distances(self, seqs, ii, jj, state):
        if not os.path.exists(self.sentinel):
            with open(self.sentinel, "w"):
                pass
            os.kill(os.getpid(), signal.SIGKILL)
        return self.inner.pair_distances(seqs, ii, jj, state)


class TestIdleCrashRespawn:
    def test_killed_idle_worker_is_respawned(self, pool):
        pool.warm_up(3)
        victim = pool.stats()["worker_pids"][0]
        before = pool.stats()["respawns"]
        os.kill(victim, signal.SIGKILL)
        # The supervisor notices within a few heartbeats and resets.
        assert _wait_until(lambda: pool.stats()["respawns"] > before)
        res = pool.run_spmd(3, _ring)
        assert res.results == [(r - 1) % 3 for r in range(3)]
        assert victim not in pool.stats()["worker_pids"]


class TestMidRunCrash:
    def test_pool_raises_worker_crash_error(self, pool):
        with pytest.raises(WorkerCrashError):
            pool.run_spmd(3, _kill_rank_zero_always)
        # The reset leaves a healthy pool behind.
        assert pool.run_spmd(3, _ring).results == [2, 0, 1]
        assert shm_dir_segments(pool.name) == []

    def test_backend_retries_to_success(self, pool, tmp_path):
        sentinel = str(tmp_path / "crashed-once")
        before = pool.stats()["respawns"]
        res = PoolBackend(pool=pool).run(
            3, _kill_rank_one_once, args=(sentinel,)
        )
        assert res.results == [(r - 1) % 3 for r in range(3)]
        assert res.backend == "pool"
        assert os.path.exists(sentinel)
        assert pool.stats()["respawns"] > before

    def test_backend_gives_up_after_max_retries(self, pool):
        backend = PoolBackend(pool=pool, max_retries=0)
        with pytest.raises(RuntimeError, match="after 1 attempts") as info:
            backend.run(3, _kill_rank_zero_always)
        assert isinstance(info.value.__cause__, WorkerCrashError)

    def test_crash_mid_all_pairs_still_byte_identical(
        self, pool, tmp_path, diverse_family
    ):
        seqs = list(diverse_family.sequences)[:16]
        serial = all_pairs(seqs, "ktuple")
        killer = KillerEstimator(str(tmp_path / "tile-crash"))
        before = pool.stats()["respawns"]
        pooled = all_pairs(seqs, killer, backend="pool", workers=4)
        assert np.array_equal(serial, pooled)
        assert os.path.exists(killer.sentinel)  # the crash really happened
        assert pool.stats()["respawns"] > before
        assert shm_dir_segments(pool.name) == []


class TestHungWorker:
    def test_stopped_worker_is_recycled(self):
        # Short heartbeats so the ~5 s hang floor dominates the test time.
        with WorkerPool(max_workers=2, heartbeat_interval=0.1) as own:
            own.warm_up()
            victim = own.stats()["worker_pids"][0]
            os.kill(victim, signal.SIGSTOP)
            try:
                assert _wait_until(
                    lambda: own.stats()["respawns"] > 0, timeout=20.0
                )
            finally:  # unstick it regardless, or close() would SIGKILL
                try:
                    os.kill(victim, signal.SIGCONT)
                except ProcessLookupError:
                    pass
            assert own.run_spmd(2, _ring).results == [1, 0]


class TestIdleShrink:
    def test_shrinks_to_floor_and_regrows_on_demand(self):
        own = WorkerPool(
            max_workers=3, min_workers=1,
            idle_timeout=0.3, heartbeat_interval=0.1,
        )
        try:
            own.warm_up()
            assert own.stats()["workers_alive"] == 3
            assert _wait_until(
                lambda: own.stats()["workers_alive"] == 1, timeout=10.0
            )
            # The next dispatch regrows transparently.
            assert own.run_spmd(3, _ring).results == [2, 0, 1]
        finally:
            own.close()
        assert shm_dir_segments(own.name) == []

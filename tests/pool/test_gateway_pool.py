"""The gateway as pool owner: startup warm-up, metrics, crash survival,
and default-pool restoration on close.
"""

import os
import signal

import pytest

from repro.engine import AlignRequest
from repro.pool import WorkerPool, get_default_pool
from repro.pool.shm import shm_dir_segments
from repro.serve import AlignmentGateway


@pytest.fixture()
def seqs(small_family):
    return tuple(small_family.sequences)


def _request(seqs, **kw):
    return AlignRequest(sequences=seqs, engine="sample-align-d", n_procs=2,
                        **kw)


class TestCallerOwnedPool:
    def test_requests_run_on_the_given_pool(self, pool, seqs):
        runs_before = pool.stats()["runs"]
        with AlignmentGateway(
            n_workers=1, default_backend="pool", pool=pool
        ) as gw:
            result = gw.run(_request(seqs), timeout=120)
            assert result.diagnostics["backend"] == "pool"
            assert gw.pool is pool
            assert pool.stats()["runs"] > runs_before
        assert not pool.closed  # caller-owned: close() must not touch it

    def test_metrics_surface_pool_stats(self, pool, seqs):
        with AlignmentGateway(
            n_workers=1, default_backend="pool", pool=pool
        ) as gw:
            gw.run(_request(seqs), timeout=120)
            stats = gw.metrics()["pool"]
            assert stats["name"] == pool.name
            assert stats["runs"] >= 1
            assert stats["workers_alive"] >= 1
            assert "transport" in stats and "respawns" in stats


class TestGatewayOwnedPool:
    def test_created_warmed_and_closed_with_the_gateway(self, seqs):
        gw = AlignmentGateway(n_workers=1, default_backend="pool")
        try:
            assert gw.pool is not None
            assert gw.pool.stats()["workers_alive"] >= 1  # warmed at start
            assert get_default_pool() is gw.pool
            result = gw.run(_request(seqs), timeout=120)
            assert result.diagnostics["backend"] == "pool"
        finally:
            gw.close()
        assert gw.pool.closed
        assert shm_dir_segments(gw.pool.name) == []

    def test_default_pool_restored_on_close(self, pool, seqs):
        assert get_default_pool() is pool
        with AlignmentGateway(n_workers=1, default_backend="pool") as gw:
            assert get_default_pool() is gw.pool
            assert get_default_pool() is not pool
        assert get_default_pool() is pool

    def test_tree_backend_alone_wants_a_pool(self):
        with AlignmentGateway(
            n_workers=1, default_tree_backend="pool"
        ) as gw:
            assert gw.pool is not None

    def test_no_pool_backend_means_no_pool(self):
        with AlignmentGateway(n_workers=1) as gw:
            assert gw.pool is None
            assert "pool" not in gw.metrics()


class TestCrashSurvival:
    def test_gateway_keeps_serving_after_a_worker_dies(self, pool, seqs):
        with AlignmentGateway(
            n_workers=1, default_backend="pool", pool=pool
        ) as gw:
            gw.run(_request(seqs), timeout=120)
            victim = gw.metrics()["pool"]["worker_pids"][0]
            os.kill(victim, signal.SIGKILL)
            # A *different* request (no cache hit), immediately: the
            # dispatcher detects the death, resets, and retries.
            second = gw.run(_request(seqs, seed=1), timeout=120)
            assert second.alignment.n_rows == len(seqs)
            assert second.diagnostics["backend"] == "pool"
            assert gw.metrics()["pool"]["respawns"] > 0

"""WorkerPool lifecycle and dispatch: warm reuse, both lanes, failure
semantics, close.

The pool's contract on top of the backend contract: workers persist
across runs (same pids), a program error poisons neither the pool nor
later runs, and close leaves no process and no segment behind.
"""

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.parcomp import run_spmd
from repro.pool import (
    PoolBackend,
    WorkerPool,
    get_default_pool,
    set_default_pool,
)
from repro.pool.shm import shm_dir_segments
from repro.pool.workers import default_worker_count


# -- module-level programs (dispatch always pickles) ------------------------


def _ring(comm):
    nxt = (comm.rank + 1) % comm.size
    prv = (comm.rank - 1) % comm.size
    comm.send(comm.rank, nxt, tag=1)
    return comm.recv(prv, tag=1)


def _fail_on_rank_one(comm):
    if comm.rank == 1:
        raise ValueError("injected rank failure")
    comm.recv((comm.rank + 1) % comm.size, tag=9)


def _big_allgather(comm):
    """Payloads above the shm threshold, so transport rides segments."""
    mine = np.full(16384, comm.rank, dtype=np.float64)
    everyone = comm.allgather(mine)
    return float(sum(a.sum() for a in everyone))


def _square(x, offset=0):
    return x * x + offset


def _task_boom(x):
    if x == 2:
        raise ValueError("task boom")
    return x


class TestLifecycle:
    def test_lazy_start_and_warm_up(self, pool):
        own = WorkerPool(max_workers=2)
        try:
            assert own.stats()["workers_alive"] == 0  # nothing until needed
            own.warm_up()
            assert own.stats()["workers_alive"] == 2
        finally:
            own.close()

    def test_workers_are_reused_across_runs(self, pool):
        pool.warm_up(3)
        pids = set(pool.stats()["worker_pids"])
        for _ in range(2):
            res = pool.run_spmd(3, _ring)
            assert res.results == [(r - 1) % 3 for r in range(3)]
        assert set(pool.stats()["worker_pids"]) >= pids  # nobody respawned

    def test_close_is_idempotent_and_complete(self):
        own = WorkerPool(max_workers=2)
        own.warm_up()
        pids = own.stats()["worker_pids"]
        own.close()
        own.close()
        assert own.closed
        assert all(p.pid not in pids for p in mp.active_children())
        assert shm_dir_segments(own.name) == []
        with pytest.raises(RuntimeError, match="closed"):
            own.run_spmd(1, _ring)

    def test_context_manager(self):
        with WorkerPool(max_workers=1) as own:
            assert own.map_tasks(_square, [3]) == [9]
        assert own.closed

    def test_warm_up_validates(self, pool):
        with pytest.raises(ValueError, match="n_workers"):
            pool.warm_up(pool.max_workers + 1)

    def test_stats_shape(self, pool):
        s = pool.stats()
        for key in (
            "name", "start_method", "max_workers", "min_workers",
            "workers_alive", "worker_pids", "respawns", "runs",
            "tasks_served", "fallback_runs", "transport",
            "shm_live_segments", "shm_bytes_in_flight", "closed",
        ):
            assert key in s
        assert set(s["transport"]) == {
            "shm_msgs", "shm_bytes", "pickle_msgs", "pickle_bytes"
        }


class TestRunSpmd:
    def test_ring(self, pool):
        res = pool.run_spmd(4, _ring)
        assert res.results == [(r - 1) % 4 for r in range(4)]
        assert res.backend == "pool"

    def test_shm_transport_used_for_big_payloads(self, pool):
        before = pool.stats()["transport"]["shm_msgs"]
        res = pool.run_spmd(3, _big_allgather)
        expect = 16384 * (0 + 1 + 2)
        assert res.results == [expect] * 3
        assert pool.stats()["transport"]["shm_msgs"] > before
        assert pool.stats()["shm_live_segments"] == 0  # nothing in flight

    def test_capacity_is_a_hard_limit_on_the_pool_itself(self, pool):
        with pytest.raises(ValueError, match="exceeds pool capacity"):
            pool.run_spmd(pool.max_workers + 1, _ring)

    def test_program_error_semantics_match_other_backends(self, pool):
        with pytest.raises(RuntimeError, match="rank 1 failed") as exc_info:
            pool.run_spmd(3, _fail_on_rank_one)
        assert isinstance(exc_info.value.__cause__, ValueError)
        # The failed run must not poison the pool for the next one.
        res = pool.run_spmd(3, _ring)
        assert res.results == [(r - 1) % 3 for r in range(3)]
        assert shm_dir_segments(pool.name) == []

    def test_run_spmd_entry_point_accepts_pool_backend(self, pool):
        res = run_spmd(3, _ring, backend="pool")
        assert res.backend == "pool"
        assert res.results == [(r - 1) % 3 for r in range(3)]


class TestMapTasks:
    def test_order_and_kwargs(self, pool):
        items = list(range(23))
        assert pool.map_tasks(_square, items) == [x * x for x in items]
        assert pool.map_tasks(_square, [1, 2], kwargs={"offset": 5}) == [6, 9]

    def test_empty(self, pool):
        assert pool.map_tasks(_square, []) == []

    def test_task_error_raises(self, pool):
        with pytest.raises(RuntimeError, match="pool task"):
            pool.map_tasks(_task_boom, [0, 1, 2, 3])
        # ...and later dispatches still work (staleness filter).
        assert pool.map_tasks(_square, [4]) == [16]

    def test_tasks_served_counted(self, pool):
        before = pool.stats()["tasks_served"]
        pool.map_tasks(_square, list(range(7)))
        assert pool.stats()["tasks_served"] == before + 7


class TestOverflowFallback:
    def test_overflow_runs_cold_but_still_reports_pool(self):
        with WorkerPool(max_workers=2) as own:
            backend = PoolBackend(pool=own)
            res = backend.run(3, _ring)
            assert res.results == [(r - 1) % 3 for r in range(3)]
            assert res.backend == "pool"
            assert own.stats()["fallback_runs"] == 1
            assert own.stats()["runs"] == 0  # never touched the warm slots


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_workers"):
            WorkerPool(max_workers=0)
        with pytest.raises(ValueError, match="min_workers"):
            WorkerPool(max_workers=2, min_workers=3)
        with pytest.raises(ValueError, match="shm_threshold"):
            WorkerPool(max_workers=1, shm_threshold=0)
        with pytest.raises(ValueError, match="timeouts"):
            WorkerPool(max_workers=1, idle_timeout=0.0)
        with pytest.raises(ValueError, match="abort_join_timeout"):
            WorkerPool(max_workers=1, abort_join_timeout=0.0)
        with pytest.raises(ValueError, match="start method"):
            WorkerPool(max_workers=1, start_method="teleport")
        with pytest.raises(ValueError, match="max_retries"):
            PoolBackend(max_retries=-1)

    def test_default_worker_count_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_WORKERS", "7")
        assert default_worker_count() == 7
        monkeypatch.delenv("REPRO_POOL_WORKERS")
        assert default_worker_count() == max(os.cpu_count() or 1, 2)

    def test_shm_threshold_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_SHM_THRESHOLD", "1234")
        own = WorkerPool(max_workers=1)
        try:
            assert own.shm_threshold == 1234
        finally:
            own.close()


class TestDefaultPool:
    def test_set_default_returns_previous(self, pool):
        assert get_default_pool() is pool  # conftest installed it
        other = WorkerPool(max_workers=1)
        try:
            assert set_default_pool(other) is pool
            assert get_default_pool() is other
        finally:
            assert set_default_pool(pool) is other
            other.close()

    def test_refused_inside_a_worker(self, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_IN_WORKER", "1")
        with pytest.raises(RuntimeError, match="inside a pool worker"):
            get_default_pool()

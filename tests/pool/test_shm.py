"""Wire format and segment lifecycle of :mod:`repro.pool.shm`.

Three wire kinds, one ownership rule each: inline (``"i"``) owns
nothing, single-consumer shm (``"s"``) is unlinked by its one decoder,
shared fan-out shm (``"S"``) is unlinked by the encoder's registry.
Every test asserts the segment count in ``/dev/shm`` because leaked
segments are the failure mode this module exists to prevent.
"""

import numpy as np
import pytest

from repro.pool import (
    DEFAULT_SHM_THRESHOLD,
    SegmentRegistry,
    ShmRef,
    TransportStats,
    decode_payload,
    encode_payload,
)
from repro.pool.shm import shm_dir_segments, unlink_wire


@pytest.fixture()
def registry():
    reg = SegmentRegistry("rpshm-test")
    yield reg
    reg.close_all()
    assert shm_dir_segments(reg.prefix) == []


def _payload():
    return {
        "text": "x" * 100,
        "array": np.arange(64, dtype=np.float64),
        "nested": [(1, 2.5), None, b"bytes"],
    }


def _assert_round_trip(obj, out):
    assert out["text"] == obj["text"]
    assert np.array_equal(out["array"], obj["array"])
    assert out["nested"] == obj["nested"]


class TestInlineWire:
    def test_small_payload_stays_inline(self, registry):
        wire = encode_payload(_payload(), registry)
        assert wire[0] == "i"
        assert registry.live_segments == 0
        _assert_round_trip(_payload(), decode_payload(wire))

    def test_no_registry_means_inline_at_any_size(self):
        big = np.zeros(2 * DEFAULT_SHM_THRESHOLD, dtype=np.uint8)
        wire = encode_payload({"big": big})
        assert wire[0] == "i"
        assert np.array_equal(decode_payload(wire)["big"], big)

    def test_inline_metering(self, registry):
        encode_payload(_payload(), registry)
        assert registry.stats.pickle_msgs == 1
        assert registry.stats.pickle_bytes > 0
        assert registry.stats.shm_msgs == 0


class TestShmWire:
    def test_threshold_forces_segment(self, registry):
        wire = encode_payload(_payload(), registry, threshold=1)
        assert wire[0] == "s"
        assert isinstance(wire[1], ShmRef)
        assert registry.live_segments == 1
        assert registry.live_bytes > 0

    def test_decode_copies_and_unlinks(self, registry):
        wire = encode_payload(_payload(), registry, threshold=1)
        registry.forget(wire[1].name)  # descriptor "on the queue" now
        assert len(shm_dir_segments(registry.prefix)) == 1
        _assert_round_trip(_payload(), decode_payload(wire))
        assert shm_dir_segments(registry.prefix) == []

    def test_large_payload_crosses_default_threshold(self, registry):
        big = np.arange(DEFAULT_SHM_THRESHOLD, dtype=np.uint8)
        wire = encode_payload({"big": big}, registry)
        assert wire[0] == "s"
        registry.forget(wire[1].name)
        assert np.array_equal(decode_payload(wire)["big"], big)

    def test_decoded_arrays_own_their_memory(self, registry):
        arr = np.arange(512, dtype=np.int64)
        wire = encode_payload(arr, registry, threshold=1)
        registry.forget(wire[1].name)
        out = decode_payload(wire)
        out[0] = -1  # segment is gone; the copy must be writable
        assert out[0] == -1 and np.array_equal(out[1:], arr[1:])

    def test_shm_metering(self, registry):
        wire = encode_payload(_payload(), registry, threshold=1)
        assert registry.stats.shm_msgs == 1
        assert registry.stats.shm_bytes == wire[1].nbytes

    def test_borrow_decode_is_registry_owned(self, registry):
        consumer = SegmentRegistry("rpshm-test-consumer")
        arr = np.arange(256, dtype=np.float32)
        wire = encode_payload(arr, registry, threshold=1)
        registry.forget(wire[1].name)
        out = decode_payload(wire, consumer, borrow=True)
        assert np.array_equal(out, arr)
        assert consumer.names() == [wire[1].name]
        del out  # drop the views before unmapping the segment
        consumer.release_all()
        assert shm_dir_segments(registry.prefix) == []

    def test_unlink_wire(self, registry):
        wire = encode_payload(_payload(), registry, threshold=1)
        registry.forget(wire[1].name)
        assert unlink_wire(wire)
        assert shm_dir_segments(registry.prefix) == []
        assert not unlink_wire(wire)  # second unlink is a no-op
        assert not unlink_wire(("i", b"", ()))  # inline owns nothing


class TestSharedWire:
    def test_fan_out_survives_many_decodes(self, registry):
        obj = _payload()
        wire = encode_payload(obj, registry, threshold=1, shared=True)
        assert wire[0] == "S"
        for _ in range(4):  # every consumer copies; none unlinks
            _assert_round_trip(obj, decode_payload(wire))
            assert len(shm_dir_segments(registry.prefix)) == 1
        registry.release_all()
        assert shm_dir_segments(registry.prefix) == []

    def test_shared_wire_cannot_be_borrowed(self, registry):
        wire = encode_payload(_payload(), registry, threshold=1, shared=True)
        with pytest.raises(ValueError, match="cannot be borrow-decoded"):
            decode_payload(wire, registry, borrow=True)


class TestValidation:
    def test_unknown_wire_kind(self):
        with pytest.raises(ValueError, match="unknown pool wire kind"):
            decode_payload(("z", None))

    def test_borrow_needs_registry(self, registry):
        wire = encode_payload(_payload(), registry, threshold=1)
        with pytest.raises(ValueError, match="needs a SegmentRegistry"):
            decode_payload(wire, borrow=True)

    def test_garbage_segment_rejected(self, registry):
        seg = registry.create(64)
        seg.buf[:4] = b"JUNK"
        wire = ("s", ShmRef(name=seg.name, nbytes=64))
        with pytest.raises(ValueError, match="does not carry"):
            decode_payload(wire)

    def test_truncated_segment_rejected(self, registry):
        seg = registry.create(4)
        wire = ("s", ShmRef(name=seg.name, nbytes=4))
        with pytest.raises(ValueError, match="too small"):
            decode_payload(wire)


class TestRegistry:
    def test_create_release_accounting(self, registry):
        seg = registry.create(128)
        assert registry.created_total == 1
        assert registry.live_segments == 1
        registry.release(seg.name)
        assert registry.unlinked_total == 1
        assert registry.live_segments == 0
        registry.release(seg.name)  # idempotent
        assert registry.unlinked_total == 1

    def test_forget_hands_off_without_unlinking(self, registry):
        seg = registry.create(128)
        registry.forget(seg.name)
        assert registry.live_segments == 0
        assert len(shm_dir_segments(registry.prefix)) == 1  # still exists
        from repro.pool.shm import unlink_segment

        assert unlink_segment(seg.name)

    def test_names_are_prefix_scoped_and_unique(self, registry):
        segs = [registry.create(32) for _ in range(3)]
        names = registry.names()
        assert len(set(names)) == 3
        assert all(n.startswith(registry.prefix) for n in names)
        assert sorted(shm_dir_segments(registry.prefix)) == sorted(names)
        del segs


class TestTransportStats:
    def test_absorb_and_to_dict(self):
        a = TransportStats(shm_msgs=1, shm_bytes=10, pickle_msgs=2,
                           pickle_bytes=20)
        b = TransportStats()
        b.absorb(a)
        b.absorb({"shm_msgs": 1, "shm_bytes": 5,
                  "pickle_msgs": 0, "pickle_bytes": 0})
        assert b.to_dict() == {
            "shm_msgs": 2, "shm_bytes": 15,
            "pickle_msgs": 2, "pickle_bytes": 20,
        }

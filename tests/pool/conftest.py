"""Shared fixtures for the pool-backend tests.

The build host may have a single core, in which case the process-default
pool holds only two slots and anything needing more ranks silently
falls back to the cold processes backend -- defeating every test here.
Each module therefore runs against an explicit five-slot pool installed
as the process default, and tears it down asserting the acceptance bar:
a closed pool leaves ``/dev/shm`` spotless.
"""

from __future__ import annotations

import pytest

from repro.pool import WorkerPool, set_default_pool
from repro.pool.shm import shm_dir_segments


@pytest.fixture(scope="module")
def pool():
    p = WorkerPool(max_workers=5)
    prev = set_default_pool(p)
    try:
        yield p
    finally:
        set_default_pool(prev)
        p.close()
        assert shm_dir_segments(p.name) == []

"""External-memory distances under worker crashes.

The memmap ``all_pairs`` mode writes tiles from pool workers; a
SIGKILLed worker must never corrupt the store (atomic publishes), the
retried run must produce byte-identical results, and a run that dies
for good must leave a store a later run resumes instead of recomputing.
"""

import os

import numpy as np
import pytest

from repro.distance import all_pairs
from repro.distance.tilestore import TileStore, condensed_size
from repro.obs.metrics import registry
from repro.pool import PoolBackend
from repro.pool.shm import shm_dir_segments

from tests.pool.test_supervision import KillerEstimator


def condensed_bytes(dense):
    ii, jj = np.triu_indices(dense.shape[0], k=1)
    return dense[ii, jj].tobytes()


class TestCrashMidMemmapAllPairs:
    def test_retried_run_byte_identical(self, pool, tmp_path, diverse_family):
        seqs = list(diverse_family.sequences)[:16]
        expected = condensed_bytes(all_pairs(seqs, "ktuple"))
        killer = KillerEstimator(str(tmp_path / "tile-crash"))
        before = pool.stats()["respawns"]
        mm = all_pairs(
            seqs, killer, backend="pool", workers=4,
            out="memmap", store_dir=tmp_path / "store",
        )
        assert mm.condensed.tobytes() == expected
        assert os.path.exists(killer.sentinel)  # the crash really happened
        assert pool.stats()["respawns"] > before
        assert shm_dir_segments(pool.name) == []

    def test_fatal_crash_leaves_resumable_store(
        self, pool, tmp_path, diverse_family
    ):
        seqs = list(diverse_family.sequences)[:16]
        expected = condensed_bytes(all_pairs(seqs, "ktuple"))
        root = tmp_path / "store"
        # Partial progress first: a non-crashing run writes some tiles,
        # then we undo its consolidation and damage part of the store --
        # the on-disk state a run killed midway leaves behind.
        all_pairs(
            seqs, "ktuple", out="memmap", store_dir=root,
            tile_pairs=8, keep_store_tiles=True,
        )
        store = TileStore(root)
        store.complete_path.unlink()
        store.condensed_path.unlink()
        tiles = sorted(store.tiles_dir.glob("*.tile"))
        assert len(tiles) > 2
        tiles[0].unlink()  # vanished tile
        tiles[1].write_bytes(tiles[1].read_bytes()[:12])  # torn write
        # The rerun (same estimator/tiling, this time on the pool)
        # recomputes only the damaged tiles and consolidates.
        before = registry().counter("tilestore.resumed_tiles").value
        mm = all_pairs(
            seqs, "ktuple", backend="pool", workers=4,
            out="memmap", store_dir=root, tile_pairs=8,
        )
        assert mm.condensed.tobytes() == expected
        n_tiles = -(-condensed_size(len(seqs)) // 8)
        resumed = (
            registry().counter("tilestore.resumed_tiles").value - before
        )
        assert resumed == n_tiles - 2
        assert shm_dir_segments(pool.name) == []

    def test_give_up_then_resume_completes(
        self, pool, tmp_path, diverse_family
    ):
        seqs = list(diverse_family.sequences)[:16]
        expected = condensed_bytes(all_pairs(seqs, "ktuple"))
        root = tmp_path / "store"
        killer = KillerEstimator(str(tmp_path / "always-dead"))
        backend = PoolBackend(pool=pool, max_retries=0)
        with pytest.raises(RuntimeError, match="after 1 attempts"):
            all_pairs(
                seqs, killer, backend=backend, workers=4,
                out="memmap", store_dir=root, tile_pairs=8,
            )
        # Whatever tiles made it to disk before the crash are intact
        # (atomic publishes) -- the signature-matched rerun keeps them.
        rerun = all_pairs(
            seqs, killer, backend=backend, workers=4,
            out="memmap", store_dir=root, tile_pairs=8,
        )
        assert rerun.condensed.tobytes() == expected
        assert shm_dir_segments(pool.name) == []

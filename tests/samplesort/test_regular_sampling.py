"""Tests for repro.samplesort.regular_sampling."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.samplesort.regular_sampling import (
    bucket_assignments,
    choose_pivots,
    max_bucket_bound,
    regular_sample,
)


class TestRegularSample:
    def test_count(self):
        keys = np.arange(100)
        assert regular_sample(keys, 3).size == 3

    def test_evenly_spaced(self):
        keys = np.arange(100)
        s = regular_sample(keys, 3)
        assert s.tolist() == [25, 50, 75]

    def test_never_extremes(self):
        keys = np.arange(10)
        s = regular_sample(keys, 2)
        assert 0 not in s

    def test_small_input_returns_all(self):
        keys = np.array([5.0, 7.0])
        assert regular_sample(keys, 5).tolist() == [5.0, 7.0]

    def test_zero_k(self):
        assert regular_sample(np.arange(10), 0).size == 0

    def test_empty(self):
        assert regular_sample(np.zeros(0), 3).size == 0

    def test_negative_k(self):
        with pytest.raises(ValueError):
            regular_sample(np.arange(5), -1)

    @given(st.integers(1, 200), st.integers(1, 20))
    def test_samples_are_sorted_subset(self, n, k):
        keys = np.sort(np.random.default_rng(n * 31 + k).normal(size=n))
        s = regular_sample(keys, k)
        assert s.size == min(n, k)
        assert (np.diff(s) >= 0).all()
        assert np.isin(s, keys).all()


class TestChoosePivots:
    def test_count(self):
        p = 4
        samples = np.random.default_rng(0).normal(size=p * (p - 1))
        piv = choose_pivots(samples, p)
        assert piv.size == p - 1
        assert (np.diff(piv) >= 0).all()

    def test_p_one(self):
        assert choose_pivots(np.arange(5), 1).size == 0

    def test_empty_samples(self):
        assert choose_pivots(np.zeros(0), 4).size == 0

    def test_paper_positions(self):
        # p=4: sorted 12 samples, pivots at positions 2, 6, 10.
        samples = np.arange(12)
        piv = choose_pivots(samples, 4)
        assert piv.tolist() == [2, 6, 10]

    def test_degenerate_small_sample(self):
        piv = choose_pivots(np.array([1.0, 2.0, 3.0]), 4)
        assert piv.size == 3

    def test_bad_p(self):
        with pytest.raises(ValueError):
            choose_pivots(np.arange(5), 0)


class TestBucketAssignments:
    def test_boundaries(self):
        pivots = np.array([10.0, 20.0])
        keys = np.array([5.0, 10.0, 15.0, 20.0, 25.0])
        b = bucket_assignments(keys, pivots)
        # Keys equal to a pivot go to the lower bucket (side='left').
        assert b.tolist() == [0, 0, 1, 1, 2]

    def test_empty_pivots_single_bucket(self):
        assert bucket_assignments(np.arange(4), np.zeros(0)).tolist() == [0] * 4

    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=60),
        st.integers(2, 8),
    )
    def test_range_property(self, vals, p):
        keys = np.array(vals)
        samples = regular_sample(np.sort(keys), p - 1)
        pivots = choose_pivots(samples, p)
        b = bucket_assignments(keys, pivots)
        assert (b >= 0).all() and (b < p).all()
        # Monotone: a larger key never lands in a smaller bucket.
        order = np.argsort(keys, kind="stable")
        assert (np.diff(b[order]) >= 0).all()


class TestBound:
    def test_formula(self):
        assert max_bucket_bound(100, 4) == 50
        assert max_bucket_bound(101, 4) == 52

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            max_bucket_bound(10, 0)

    @given(st.integers(0, 2**32 - 1))
    def test_bound_holds_for_full_psrs(self, seed):
        """The 2N/p guarantee under adversarially skewed data."""
        rng = np.random.default_rng(seed)
        p = int(rng.integers(2, 6))
        n_per = int(rng.integers(p, 40))
        # Skewed mixture: half the mass near 0, half spread out.
        blocks = []
        for _ in range(p):
            mode = rng.random()
            if mode < 0.5:
                blocks.append(rng.normal(0, 0.01, n_per))
            else:
                blocks.append(rng.normal(rng.uniform(-5, 5), 1.0, n_per))
        all_samples = np.concatenate(
            [regular_sample(np.sort(b), p - 1) for b in blocks]
        )
        pivots = choose_pivots(all_samples, p)
        counts = np.zeros(p, dtype=int)
        for b in blocks:
            assign = bucket_assignments(b, pivots)
            counts += np.bincount(assign, minlength=p)
        n_total = p * n_per
        # PSRS guarantee requires each rank to contribute p-1 samples;
        # ties can push one over, hence the +p slack on tiny inputs.
        assert counts.max() <= max_bucket_bound(n_total, p) + p

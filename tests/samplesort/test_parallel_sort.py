"""Tests for the PSRS parallel sort over the virtual cluster."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parcomp import run_spmd
from repro.samplesort import max_bucket_bound, parallel_sample_sort


def sort_distributed(blocks):
    """Run PSRS over len(blocks) ranks; return concatenated output."""
    res = run_spmd(
        len(blocks),
        lambda comm, local: parallel_sample_sort(comm, local),
        rank_args=[(b,) for b in blocks],
    )
    return res.results


class TestParallelSort:
    @pytest.mark.parametrize("p", [1, 2, 4, 6])
    def test_sorts_uniform(self, p):
        rng = np.random.default_rng(p)
        blocks = [rng.normal(size=50) for _ in range(p)]
        parts = sort_distributed(blocks)
        merged = np.concatenate(parts)
        assert np.array_equal(merged, np.sort(np.concatenate(blocks)))

    def test_sorts_skewed(self):
        rng = np.random.default_rng(0)
        blocks = [
            rng.normal(0, 0.01, 64),
            rng.normal(5, 2.0, 64),
            np.full(64, 3.0),
            rng.uniform(-10, 10, 64),
        ]
        parts = sort_distributed(blocks)
        merged = np.concatenate(parts)
        assert np.array_equal(merged, np.sort(np.concatenate(blocks)))

    def test_bucket_bound_respected(self):
        rng = np.random.default_rng(7)
        p = 4
        blocks = [rng.normal(size=256) for _ in range(p)]
        parts = sort_distributed(blocks)
        bound = max_bucket_bound(p * 256, p)
        assert max(len(x) for x in parts) <= bound

    def test_empty_rank(self):
        blocks = [np.arange(10.0), np.zeros(0), np.arange(-5.0, 0.0)]
        parts = sort_distributed(blocks)
        merged = np.concatenate(parts)
        assert np.array_equal(merged, np.sort(np.concatenate(blocks)))

    def test_with_key_function(self):
        blocks = [
            np.array(["bb", "a", "cccc"], dtype=object),
            np.array(["eeeee", "ddd"], dtype=object),
        ]
        res = run_spmd(
            2,
            lambda comm, local: parallel_sample_sort(comm, local, key=len),
            rank_args=[(b,) for b in blocks],
        )
        merged = [x for part in res.results for x in part]
        assert merged == ["a", "bb", "ddd", "cccc", "eeeee"]

    @given(st.lists(st.integers(-1000, 1000), min_size=0, max_size=120))
    @settings(max_examples=15)
    def test_permutation_property(self, vals):
        p = 3
        arr = np.array(vals, dtype=float)
        blocks = np.array_split(arr, p)
        parts = sort_distributed(list(blocks))
        merged = np.concatenate(parts) if parts else np.zeros(0)
        assert np.array_equal(np.sort(arr), merged)

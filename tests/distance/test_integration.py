"""The distance seam threaded through baselines, engines and serving."""

import numpy as np
import pytest

import repro
from repro.distance import DistanceConfig, KtupleDistance
from repro.engine import AlignRequest
from repro.engine.registry import engine_distance_options
from repro.msa import (
    CenterStar,
    ClustalWLike,
    MafftLike,
    MuscleLike,
    ParallelClustalW,
)
from repro.serve.gateway import AlignmentGateway

BASELINES = [
    lambda **kw: ClustalWLike(**kw),
    lambda **kw: MuscleLike(refine=False, **kw),
    lambda **kw: MafftLike(iterations=0, **kw),
    lambda **kw: CenterStar(**kw),
]


class TestBaselineSeam:
    @pytest.mark.parametrize("make", BASELINES)
    def test_distance_backend_identical_alignment(self, make, tiny_seqs):
        """threads/processes distance stages reproduce the serial result
        byte-for-byte (the acceptance criterion)."""
        serial = make().align(tiny_seqs)
        threads = make(distance_backend="threads",
                       distance_workers=2).align(tiny_seqs)
        assert serial == threads
        assert serial.to_fasta() == threads.to_fasta()

    def test_processes_distance_backend_identical(self, tiny_seqs):
        serial = ClustalWLike().align(tiny_seqs)
        procs = ClustalWLike(
            distance_backend="processes", distance_workers=2
        ).align(tiny_seqs)
        assert serial.to_fasta() == procs.to_fasta()

    def test_parallel_baseline_distance_backend_identical(self, tiny_seqs):
        serial = ParallelClustalW().align(tiny_seqs, n_procs=1)
        par = ParallelClustalW().align(tiny_seqs, n_procs=4)
        assert serial.alignment.to_fasta() == par.alignment.to_fasta()

    def test_clustalw_distance_name_equals_legacy_mode(self, tiny_seqs):
        by_mode = ClustalWLike(distance_mode="full").align(tiny_seqs)
        by_name = ClustalWLike(distance="full-dp").align(tiny_seqs)
        assert by_mode == by_name

    def test_distance_config_value(self, tiny_seqs):
        cfg = DistanceConfig(estimator="ktuple", k=3, backend="threads",
                             workers=2)
        aln = CenterStar(distance=cfg).align(tiny_seqs)
        assert aln == CenterStar(distance=KtupleDistance(k=3)).align(
            tiny_seqs
        )

    def test_distance_dict_value(self, tiny_seqs):
        aln = MuscleLike(
            refine=False, distance={"estimator": "ktuple", "k": 5}
        ).align(tiny_seqs)
        assert aln == MuscleLike(refine=False, kmer_k=5).align(tiny_seqs)

    @pytest.mark.parametrize("make", BASELINES)
    def test_bad_distance_options_fail_fast(self, make):
        with pytest.raises((ValueError, KeyError)):
            make(distance="nope")
        with pytest.raises(ValueError):
            make(distance_backend="gpu")
        with pytest.raises(ValueError):
            make(distance_workers=0)

    def test_parallel_baseline_estimator_choice(self, tiny_seqs):
        """The stage-parallel baseline can now parallelise full-DP."""
        res = ParallelClustalW(distance="full-dp").align(
            tiny_seqs, n_procs=3
        )
        assert res.alignment.n_rows == len(tiny_seqs)
        assert res.ledger.n_messages() > 0

    def test_parallel_baseline_rejects_nested_backend(self):
        with pytest.raises(ValueError, match="nested"):
            ParallelClustalW(
                distance={"estimator": "ktuple", "backend": "threads"}
            )


class TestEngineSeam:
    def test_engine_kwargs_reach_the_aligner(self, tiny_seqs):
        base = repro.align(tiny_seqs, engine="center-star")
        via = repro.align(
            tiny_seqs,
            engine="center-star",
            distance="ktuple",
            distance_backend="threads",
        )
        assert base.alignment == via.alignment

    def test_distance_options_change_the_content_hash(self, tiny_seqs):
        plain = AlignRequest(tuple(tiny_seqs), engine="clustalw")
        opinionated = AlignRequest(
            tuple(tiny_seqs),
            engine="clustalw",
            engine_kwargs={"distance": "full-dp"},
        )
        assert plain.content_hash() != opinionated.content_hash()

    def test_registry_advertises_the_seam(self):
        for name in ("clustalw", "muscle", "mafft-nwnsi", "center-star"):
            assert engine_distance_options(name) == {
                "distance", "distance_backend", "distance_workers",
                "distance_out", "distance_store_dir",
            }
        assert engine_distance_options("parallel-baseline") == {
            "distance", "distance_out", "distance_store_dir"
        }
        assert engine_distance_options("tcoffee") == frozenset()
        assert engine_distance_options("sample-align-d") == frozenset()
        assert engine_distance_options("not-an-engine") == frozenset()

    def test_sample_align_d_local_aligner_distance(self, tiny_seqs):
        """The distance choice reaches the per-bucket local aligners."""
        cfg = repro.SampleAlignDConfig(
            local_aligner="muscle-draft",
            local_aligner_kwargs={"distance": "kmer-fraction"},
        )
        result = repro.align(
            tiny_seqs, engine="sample-align-d", n_procs=2, config=cfg
        )
        assert result.alignment.n_rows == len(tiny_seqs)


class TestGatewaySeam:
    def test_defaults_rewrite_pre_hash(self, tiny_seqs):
        request = AlignRequest(tuple(tiny_seqs), engine="center-star")
        expected = AlignRequest(
            tuple(tiny_seqs),
            engine="center-star",
            engine_kwargs={
                "distance": "ktuple", "distance_backend": "threads"
            },
        )
        with AlignmentGateway(
            n_workers=1,
            default_distance="ktuple",
            default_distance_backend="threads",
        ) as gw:
            ticket = gw.submit(request)
            assert ticket.request_hash == expected.content_hash()
            assert ticket.wait(30).alignment.n_rows == len(tiny_seqs)

    def test_opinionated_request_untouched(self, tiny_seqs):
        request = AlignRequest(
            tuple(tiny_seqs),
            engine="center-star",
            engine_kwargs={"distance": "kmer-fraction"},
        )
        with AlignmentGateway(
            n_workers=1, default_distance="ktuple"
        ) as gw:
            ticket = gw.submit(request)
            assert ticket.request_hash == request.content_hash()

    def test_non_capable_engine_untouched(self, tiny_seqs):
        request = AlignRequest(tuple(tiny_seqs), engine="tcoffee")
        with AlignmentGateway(
            n_workers=1,
            default_distance="full-dp",
            default_distance_backend="threads",
        ) as gw:
            ticket = gw.submit(request)
            assert ticket.request_hash == request.content_hash()

    def test_coalescing_sees_effective_request(self, tiny_seqs):
        """A plain request and a pre-opinionated identical request
        coalesce once the gateway default is folded in."""
        plain = AlignRequest(tuple(tiny_seqs), engine="center-star")
        explicit = AlignRequest(
            tuple(tiny_seqs),
            engine="center-star",
            engine_kwargs={"distance_backend": "threads"},
        )
        with AlignmentGateway(
            n_workers=1, default_distance_backend="threads"
        ) as gw:
            t1 = gw.submit(plain)
            t2 = gw.submit(explicit)
            assert t1.request_hash == t2.request_hash
            t1.wait(30)

    def test_bad_defaults_rejected(self):
        with pytest.raises(ValueError):
            AlignmentGateway(n_workers=1, default_distance="nope")
        with pytest.raises(ValueError):
            AlignmentGateway(n_workers=1, default_distance_backend="gpu")

    def test_metrics_expose_distance_defaults(self):
        with AlignmentGateway(
            n_workers=1,
            default_distance="ktuple",
            default_distance_backend="threads",
        ) as gw:
            m = gw.metrics()
            assert m["default_distance"] == "ktuple"
            assert m["default_distance_backend"] == "threads"

    def test_defaults_case_normalised(self, tiny_seqs):
        """'KTuple' and 'ktuple' defaults must not split cache keys."""
        request = AlignRequest(tuple(tiny_seqs), engine="center-star")
        with AlignmentGateway(
            n_workers=1,
            default_distance="KTuple",
            default_distance_backend="Threads",
        ) as upper, AlignmentGateway(
            n_workers=1,
            default_distance="ktuple",
            default_distance_backend="threads",
        ) as lower:
            assert (
                upper.submit(request).request_hash
                == lower.submit(request).request_hash
            )

"""The external-memory tile store: index math, views, crash tolerance."""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distance import all_pairs
from repro.distance.estimators import DistanceEstimator, get_estimator
from repro.distance.tilestore import (
    CondensedMatrix,
    TileStore,
    condensed_index,
    condensed_row_indices,
    condensed_size,
    condensed_tile_indices,
)
from repro.obs.metrics import registry
from repro.seq.sequence import Sequence


def seqs_from(texts):
    return [Sequence(f"s{i}", t) for i, t in enumerate(texts)]


def random_condensed(n, seed=0):
    rng = np.random.default_rng(seed)
    vec = rng.uniform(0.01, 1.0, size=condensed_size(n))
    dense = np.zeros((n, n))
    ii, jj = np.triu_indices(n, k=1)
    dense[ii, jj] = vec
    dense[jj, ii] = vec
    return vec, dense


class CountingEstimator(DistanceEstimator):
    """ktuple distances that count how many pairs were computed."""

    name = "counting-test"

    def __init__(self):
        self.inner = get_estimator("ktuple")
        self.pairs_computed = 0

    def prepare(self, seqs):
        return self.inner.prepare(seqs)

    def pair_distances(self, seqs, ii, jj, state):
        self.pairs_computed += len(ii)
        return self.inner.pair_distances(seqs, ii, jj, state)

    # The counter is test-local scaffolding; keep it out of the pickle
    # bytes so the store's estimator signature is stable across runs.
    def __getstate__(self):
        return {}

    def __setstate__(self, state):
        self.inner = get_estimator("ktuple")
        self.pairs_computed = 0


class TestIndexMath:
    @given(n=st.integers(2, 60))
    @settings(max_examples=30, deadline=None)
    def test_condensed_index_matches_triu_order(self, n):
        ii, jj = np.triu_indices(n, k=1)
        idx = condensed_index(n, ii, jj)
        assert np.array_equal(idx, np.arange(condensed_size(n)))
        # Symmetric in (i, j).
        assert np.array_equal(condensed_index(n, jj, ii), idx)

    @given(
        n=st.integers(2, 50),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_tile_indices_match_sliced_triu(self, n, data):
        m = condensed_size(n)
        start = data.draw(st.integers(0, m))
        stop = data.draw(st.integers(start, m))
        ii, jj = np.triu_indices(n, k=1)
        ti, tj = condensed_tile_indices(n, start, stop)
        assert np.array_equal(ti, ii[start:stop])
        assert np.array_equal(tj, jj[start:stop])

    def test_tile_indices_out_of_range(self):
        with pytest.raises(ValueError):
            condensed_tile_indices(4, 0, condensed_size(4) + 1)
        with pytest.raises(ValueError):
            condensed_tile_indices(4, -1, 2)

    @given(n=st.integers(2, 40))
    @settings(max_examples=25, deadline=None)
    def test_row_indices_cover_every_offdiagonal(self, n):
        vec = np.arange(condensed_size(n), dtype=np.float64)
        dense = np.zeros((n, n))
        ii, jj = np.triu_indices(n, k=1)
        dense[ii, jj] = vec
        dense[jj, ii] = vec
        for r in range(n):
            idx, cols = condensed_row_indices(n, r)
            assert len(idx) == n - 1 and len(cols) == n - 1
            assert r not in cols
            row = np.zeros(n)
            row[cols] = vec[idx]
            assert np.array_equal(row, dense[r])


class TestCondensedMatrix:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="1-D"):
            CondensedMatrix(np.zeros((3, 3)))
        with pytest.raises(ValueError, match="does not match"):
            CondensedMatrix(np.zeros(4))  # no n with n*(n-1)/2 == 4
        with pytest.raises(ValueError, match="does not match"):
            CondensedMatrix(np.zeros(3), n=4)

    def test_shape_protocol(self):
        m = CondensedMatrix(np.zeros(condensed_size(5)))
        assert m.shape == (5, 5) and len(m) == 5
        assert m.dtype == np.float64

    def test_pair_lookup_matches_dense(self):
        vec, dense = random_condensed(7)
        m = CondensedMatrix(vec)
        for i in range(7):
            for j in range(7):
                assert m[i, j] == dense[i, j]
        # Array indexing broadcasts.
        ii = np.array([0, 3, 6, 2])
        jj = np.array([5, 3, 0, 2])
        assert np.array_equal(m[ii, jj], dense[ii, jj])

    def test_single_index_rejected(self):
        m = CondensedMatrix(np.zeros(condensed_size(4)))
        with pytest.raises(TypeError, match="pair indexing"):
            m[1]
        with pytest.raises(IndexError):
            m[0, 4]

    def test_row_rows_submatrix_to_dense(self):
        vec, dense = random_condensed(9, seed=3)
        m = CondensedMatrix(vec)
        for r in range(9):
            assert np.array_equal(m.row(r), dense[r])
        sel = [7, 0, 4]
        assert np.array_equal(m.rows(sel), dense[sel])
        assert np.array_equal(m.submatrix(sel), dense[np.ix_(sel, sel)])
        assert np.array_equal(m.to_dense(), dense)

    def test_offdiag_stats_streams(self):
        vec, dense = random_condensed(12, seed=1)
        m = CondensedMatrix(vec)
        stats = m.offdiag_stats(chunk=7)  # force multiple chunks
        assert stats["min"] == vec.min()
        assert stats["max"] == vec.max()
        assert stats["mean"] == pytest.approx(vec.mean())


class TestTileStore:
    def test_write_read_roundtrip(self, tmp_path):
        store = TileStore(tmp_path / "s")
        store.prepare({"n": 4, "v": 1})
        vals = np.array([0.5, 0.25, 1.0])
        store.write_tile(0, vals)
        assert np.array_equal(store.read_tile(0, 3), vals)

    def test_missing_tile_is_none(self, tmp_path):
        store = TileStore(tmp_path / "s")
        store.prepare({"n": 4})
        assert store.read_tile(0, 3) is None

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda b: b[: len(b) // 2],  # truncated
            lambda b: b[:-8] + b"\x00" * 8,  # garbled payload, same length
            lambda b: b"XXXXXXXX" + b[8:],  # wrong magic
            lambda b: b"",  # empty file
        ],
    )
    def test_corrupt_tile_reads_as_miss_and_is_dropped(
        self, tmp_path, corrupt
    ):
        store = TileStore(tmp_path / "s")
        store.prepare({"n": 4})
        store.write_tile(0, np.array([0.5, 0.25, 1.0]))
        path = store._tile_path(0)
        path.write_bytes(corrupt(path.read_bytes()))
        before = registry().counter("tilestore.corrupt_dropped").value
        assert store.read_tile(0, 3) is None
        assert not path.exists()  # dropped, so the rerun recomputes it
        after = registry().counter("tilestore.corrupt_dropped").value
        assert after == before + 1

    def test_wrong_offset_or_count_is_a_miss(self, tmp_path):
        store = TileStore(tmp_path / "s")
        store.prepare({"n": 4})
        store.write_tile(8, np.array([0.5]))
        # Right bytes, wrong expected count.
        assert store.read_tile(8, 2) is None

    def test_prepare_resumes_on_matching_header(self, tmp_path):
        store = TileStore(tmp_path / "s")
        header = {"n": 4, "signature": "abc"}
        assert store.prepare(header) is False
        store.write_tile(0, np.array([0.5, 0.25, 1.0]))
        assert store.prepare(header) is True
        assert store.read_tile(0, 3) is not None  # tiles survived

    def test_prepare_wipes_on_header_mismatch(self, tmp_path):
        store = TileStore(tmp_path / "s")
        store.prepare({"n": 4, "signature": "abc"})
        store.write_tile(0, np.array([0.5, 0.25, 1.0]))
        assert store.prepare({"n": 4, "signature": "DIFFERENT"}) is False
        assert store.read_tile(0, 3) is None  # stale tiles gone

    def test_missing_tiles_counts_resumed(self, tmp_path):
        store = TileStore(tmp_path / "s")
        store.prepare({"n": 4})
        bounds = [(0, 2), (2, 4), (4, 6)]
        store.write_tile(2, np.array([0.1, 0.2]))
        before = registry().counter("tilestore.resumed_tiles").value
        assert store.missing_tiles(bounds) == [(0, 2), (4, 6)]
        after = registry().counter("tilestore.resumed_tiles").value
        assert after == before + 1

    def test_consolidate_and_matrix(self, tmp_path):
        n = 5
        vec, dense = random_condensed(n)
        store = TileStore(tmp_path / "s")
        store.prepare({"n": n, "n_pairs": vec.size})
        bounds = [(0, 4), (4, 7), (7, 10)]
        for a, b in bounds:
            store.write_tile(a, vec[a:b])
        store.consolidate(bounds, vec.size)
        assert store.is_complete()
        m = store.matrix(n)
        assert isinstance(m.condensed, np.memmap)
        assert m.condensed.tobytes() == vec.tobytes()
        assert np.array_equal(m.to_dense(), dense)
        # Tiles deleted by default after consolidation.
        assert store.stats()["tiles"] == 0

    def test_consolidate_keep_tiles(self, tmp_path):
        vec, _ = random_condensed(4)
        store = TileStore(tmp_path / "s")
        store.prepare({"n": 4, "n_pairs": vec.size})
        store.write_tile(0, vec)
        store.consolidate([(0, vec.size)], vec.size, keep_tiles=True)
        assert store.stats()["tiles"] == 1

    def test_consolidate_gap_raises(self, tmp_path):
        vec, _ = random_condensed(5)
        store = TileStore(tmp_path / "s")
        store.prepare({"n": 5, "n_pairs": vec.size})
        store.write_tile(0, vec[:4])
        with pytest.raises(RuntimeError, match="vanished|gap"):
            store.consolidate([(0, 4), (4, 10)], vec.size)

    def test_incomplete_without_marker(self, tmp_path):
        store = TileStore(tmp_path / "s")
        store.prepare({"n": 4, "n_pairs": 6})
        assert not store.is_complete()


class TestAllPairsMemmap:
    @pytest.fixture(scope="class")
    def family(self):
        from repro.datagen.rose import generate_family

        fam = generate_family(
            n_sequences=9, mean_length=50, relatedness=300, seed=13,
            track_alignment=False,
        )
        return list(fam.sequences)

    def test_memmap_bytes_identical_to_memory(self, family, tmp_path):
        dense = all_pairs(family, "ktuple")
        m = all_pairs(
            family, "ktuple", out="memmap", store_dir=tmp_path / "s"
        )
        n = len(family)
        ii, jj = np.triu_indices(n, k=1)
        assert m.condensed.tobytes() == dense[ii, jj].tobytes()
        assert np.array_equal(m.to_dense(), dense)

    def test_consolidated_store_short_circuits(self, family, tmp_path):
        est = CountingEstimator()
        first = all_pairs(
            family, est, out="memmap", store_dir=tmp_path / "s"
        )
        assert est.pairs_computed == condensed_size(len(family))
        again = all_pairs(
            family, est, out="memmap", store_dir=tmp_path / "s"
        )
        assert est.pairs_computed == condensed_size(len(family))  # no work
        assert again.condensed.tobytes() == first.condensed.tobytes()

    def test_resume_recomputes_only_damaged_tiles(self, family, tmp_path):
        root = tmp_path / "s"
        est = CountingEstimator()
        expected = all_pairs(
            family, est, out="memmap", store_dir=root,
            tile_pairs=5, keep_store_tiles=True,
        )
        expected_bytes = expected.condensed.tobytes()
        full_work = est.pairs_computed
        # Simulate a crash after a partial run: consolidation undone,
        # one tile truncated, one deleted.
        store = TileStore(root)
        store.complete_path.unlink()
        store.condensed_path.unlink()
        t0 = store._tile_path(0)
        t0.write_bytes(t0.read_bytes()[:10])  # truncated
        store._tile_path(5).unlink()  # missing
        before = registry().counter("tilestore.resumed_tiles").value
        resumed = all_pairs(
            family, est, out="memmap", store_dir=root, tile_pairs=5
        )
        assert resumed.condensed.tobytes() == expected_bytes
        # Exactly the two damaged tiles (5 pairs each) were recomputed.
        assert est.pairs_computed == full_work + 10
        n_tiles = -(-condensed_size(len(family)) // 5)
        resumed_tiles = (
            registry().counter("tilestore.resumed_tiles").value - before
        )
        assert resumed_tiles == n_tiles - 2  # all but the two damaged

    def test_store_dir_requires_memmap(self, family, tmp_path):
        with pytest.raises(ValueError, match="memmap"):
            all_pairs(family, "ktuple", store_dir=tmp_path / "s")

    def test_unknown_out_mode(self, family):
        with pytest.raises(ValueError, match="out mode"):
            all_pairs(family, "ktuple", out="ram")

    def test_header_binds_configuration(self, family, tmp_path):
        root = tmp_path / "s"
        all_pairs(family, "ktuple", out="memmap", store_dir=root, k=3)
        header = json.loads((root / "header.json").read_text())
        assert header["n"] == len(family)
        assert header["estimator"] == "ktuple"
        # A different estimator configuration must not resume this store.
        sig = header["signature"]
        all_pairs(family, "ktuple", out="memmap", store_dir=root, k=4)
        header2 = json.loads((root / "header.json").read_text())
        assert header2["signature"] != sig

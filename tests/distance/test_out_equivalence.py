"""The ``out=`` placement contract: memory, condensed and memmap results
are byte-identical for every estimator on every schedule."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distance import all_pairs, available_estimators
from repro.distance.tilestore import CondensedMatrix
from repro.parcomp.launcher import run_spmd
from repro.seq.sequence import Sequence

AMINO = "ACDEFGHIKLMNPQRSTVWY"


def seqs_from(texts):
    return [Sequence(f"s{i}", t) for i, t in enumerate(texts)]


def condensed_bytes(dense):
    ii, jj = np.triu_indices(dense.shape[0], k=1)
    return dense[ii, jj].tobytes()


@pytest.fixture(scope="module")
def family():
    from repro.datagen.rose import generate_family

    fam = generate_family(
        n_sequences=8, mean_length=40, relatedness=300, seed=21,
        track_alignment=False,
    )
    return list(fam.sequences)


class TestEveryEstimatorEveryPlacement:
    """Serial: all three placements hold the same bytes, per estimator."""

    @pytest.mark.parametrize("name", sorted(available_estimators()))
    def test_placements_byte_identical(self, family, name, tmp_path):
        dense = all_pairs(family, name)
        expected = condensed_bytes(dense)
        cond = all_pairs(family, name, out="condensed")
        assert isinstance(cond, CondensedMatrix)
        assert cond.condensed.tobytes() == expected
        mm = all_pairs(
            family, name, out="memmap", store_dir=tmp_path / name
        )
        assert isinstance(mm.condensed, np.memmap)
        assert mm.condensed.tobytes() == expected
        assert np.array_equal(mm.to_dense(), dense)


class TestEverySchedule:
    """ktuple across serial / threads / processes / pool / SPMD: the
    memmap store holds the same bytes no matter who wrote the tiles."""

    @pytest.fixture(scope="class")
    def expected(self, family):
        return condensed_bytes(all_pairs(family, "ktuple"))

    def test_threads(self, family, expected, tmp_path):
        mm = all_pairs(
            family, "ktuple", backend="threads", workers=3,
            out="memmap", store_dir=tmp_path / "s",
        )
        assert mm.condensed.tobytes() == expected

    def test_processes(self, family, expected, tmp_path):
        mm = all_pairs(
            family, "ktuple", backend="processes", workers=2,
            out="memmap", store_dir=tmp_path / "s",
        )
        assert mm.condensed.tobytes() == expected

    def test_pool(self, family, expected, tmp_path):
        mm = all_pairs(
            family, "ktuple", backend="pool", workers=2,
            out="memmap", store_dir=tmp_path / "s",
        )
        assert mm.condensed.tobytes() == expected

    def test_cooperative_spmd(self, family, expected, tmp_path):
        root = tmp_path / "s"

        def program(comm):
            return all_pairs(
                family, "ktuple", comm=comm, out="memmap", store_dir=root
            )

        spmd = run_spmd(3, program)
        # Every rank returns a view over the same consolidated store.
        for mm in spmd.results:
            assert mm.condensed.tobytes() == expected

    def test_cooperative_condensed(self, family, expected):
        def program(comm):
            return all_pairs(family, "ktuple", comm=comm, out="condensed")

        spmd = run_spmd(2, program)
        for cond in spmd.results:
            assert cond.condensed.tobytes() == expected

    def test_backend_condensed(self, family, expected):
        cond = all_pairs(
            family, "ktuple", backend="threads", workers=3, out="condensed"
        )
        assert cond.condensed.tobytes() == expected

    def test_tiling_never_changes_store_bytes(self, family, expected,
                                              tmp_path):
        for tile in (1, 7, 1 << 20):
            mm = all_pairs(
                family, "ktuple", out="memmap",
                store_dir=tmp_path / f"t{tile}", tile_pairs=tile,
            )
            assert mm.condensed.tobytes() == expected


class TestPropertyEquivalence:
    @given(
        texts=st.lists(
            st.text(alphabet=AMINO, min_size=1, max_size=14),
            min_size=2,
            max_size=6,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_memmap_always_matches_memory(self, texts, tmp_path_factory):
        seqs = seqs_from(texts)
        dense = all_pairs(seqs, "ktuple")
        root = tmp_path_factory.mktemp("store")
        mm = all_pairs(seqs, "ktuple", out="memmap", store_dir=root / "s")
        assert mm.condensed.tobytes() == condensed_bytes(dense)

"""The tiled all-pairs scheduler: validation, backends, cooperation."""

import numpy as np
import pytest

from repro.distance import KtupleDistance, all_pairs, condensed_pair_indices
from repro.parcomp.launcher import run_spmd
from repro.seq.sequence import Sequence


def seqs_from(texts):
    return [Sequence(f"s{i}", t) for i, t in enumerate(texts)]


@pytest.fixture(scope="module")
def family():
    from repro.datagen.rose import generate_family

    fam = generate_family(
        n_sequences=10, mean_length=60, relatedness=300, seed=3,
        track_alignment=False,
    )
    return list(fam.sequences)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no sequences"):
            all_pairs([])

    def test_single_sequence_rejected(self):
        with pytest.raises(ValueError, match="single sequence"):
            all_pairs([Sequence("a", "MKV")])

    def test_zero_length_sequence_rejected(self):
        with pytest.raises(ValueError, match="length-0.*'z'"):
            all_pairs([Sequence("a", "MKV"), Sequence("z", "")])

    def test_legacy_delegates_validate_too(self):
        from repro.msa.distances import (
            full_dp_distance_matrix,
            ktuple_distance_matrix,
        )

        for fn in (ktuple_distance_matrix, full_dp_distance_matrix):
            with pytest.raises(ValueError):
                fn([])
            with pytest.raises(ValueError):
                fn([Sequence("a", "MKV")])

    def test_bad_workers(self, family):
        with pytest.raises(ValueError):
            all_pairs(family, workers=0)

    def test_comm_excludes_backend(self, family):
        def program(comm):
            return all_pairs(family, comm=comm, backend="threads")

        with pytest.raises(RuntimeError, match="cooperative"):
            run_spmd(2, program)

    def test_unknown_backend(self, family):
        with pytest.raises(KeyError):
            all_pairs(family, backend="gpu")


class TestBackendEquivalence:
    """The acceptance contract: serial, threads and processes schedules
    produce byte-identical matrices."""

    @pytest.mark.parametrize(
        "name", ["ktuple", "kmer-fraction", "full-dp", "kband"]
    )
    def test_serial_threads_processes_identical(self, family, name):
        serial = all_pairs(family, name)
        threads = all_pairs(family, name, backend="threads", workers=3)
        procs = all_pairs(family, name, backend="processes", workers=2)
        assert serial.tobytes() == threads.tobytes()
        assert serial.tobytes() == procs.tobytes()

    def test_worker_count_never_changes_bytes(self, family):
        base = all_pairs(family, "ktuple")
        for workers in (1, 2, 5, 16):
            par = all_pairs(
                family, "ktuple", backend="threads", workers=workers
            )
            assert base.tobytes() == par.tobytes()

    def test_tile_size_never_changes_bytes(self, family):
        base = all_pairs(family, "ktuple")
        for tile in (1, 7, 1 << 20):
            assert base.tobytes() == all_pairs(
                family, "ktuple", tile_pairs=tile
            ).tobytes()
        assert base.tobytes() == all_pairs(
            family, "ktuple", backend="threads", workers=4, tile_pairs=2
        ).tobytes()

    def test_workers_capped_at_pair_count(self):
        seqs = seqs_from(["MKVA", "MKVAW"])  # one pair
        d = all_pairs(seqs, "ktuple", backend="threads", workers=64)
        assert d.shape == (2, 2)

    def test_default_backend_with_workers(self, family):
        # workers>1 without backend runs on the default backend.
        base = all_pairs(family, "ktuple")
        assert base.tobytes() == all_pairs(
            family, "ktuple", workers=2
        ).tobytes()


class TestCooperativeMode:
    def test_all_ranks_get_full_matrix(self, family):
        expected = all_pairs(family, "ktuple")

        def program(comm):
            return all_pairs(family, KtupleDistance(), comm=comm)

        spmd = run_spmd(3, program)
        for rank_matrix in spmd.results:
            assert rank_matrix.tobytes() == expected.tobytes()

    def test_cooperation_meters_messages(self, family):
        def program(comm):
            return all_pairs(family, comm=comm)

        spmd = run_spmd(3, program)
        assert spmd.ledger.n_messages() > 0

    def test_single_rank_cooperative(self, family):
        expected = all_pairs(family, "ktuple")

        def program(comm):
            return all_pairs(family, comm=comm)

        spmd = run_spmd(1, program)
        assert spmd.results[0].tobytes() == expected.tobytes()


class TestCondensedIndices:
    def test_cover_upper_triangle_once(self):
        ii, jj = condensed_pair_indices(5)
        assert len(ii) == 10
        assert (ii < jj).all()
        assert len({(int(a), int(b)) for a, b in zip(ii, jj)}) == 10

"""Batched vs per-pair DP distances: byte-identical on every backend.

``REPRO_DP_BATCH_PAIRS=0`` switches the full-DP and k-band estimators
back to the scalar per-pair kernel; the batched default must produce the
same distance matrix to the last bit, whichever backend schedules the
tiles.  (Backend workers may see either setting -- both sides of the
switch are exact, so the bytes cannot differ.)
"""

import numpy as np
import pytest

from repro.distance import all_pairs
from repro.parcomp.launcher import run_spmd


@pytest.fixture(scope="module")
def family():
    from repro.datagen.rose import generate_family

    fam = generate_family(
        n_sequences=10, mean_length=60, relatedness=300, seed=7,
        track_alignment=False,
    )
    return list(fam.sequences)


@pytest.fixture(scope="module")
def per_pair_base(family):
    """Serial distance matrices with batching disabled (scalar kernel)."""
    import os

    out = {}
    old = os.environ.get("REPRO_DP_BATCH_PAIRS")
    os.environ["REPRO_DP_BATCH_PAIRS"] = "0"
    try:
        for name in ("full-dp", "kband"):
            out[name] = all_pairs(family, name)
    finally:
        if old is None:
            del os.environ["REPRO_DP_BATCH_PAIRS"]
        else:
            os.environ["REPRO_DP_BATCH_PAIRS"] = old
    return out


@pytest.mark.parametrize("name", ["full-dp", "kband"])
class TestBatchedMatchesPerPair:
    def test_serial(self, family, per_pair_base, name):
        assert (
            all_pairs(family, name).tobytes()
            == per_pair_base[name].tobytes()
        )

    def test_threads(self, family, per_pair_base, name):
        got = all_pairs(family, name, backend="threads", workers=3)
        assert got.tobytes() == per_pair_base[name].tobytes()

    def test_processes(self, family, per_pair_base, name):
        got = all_pairs(family, name, backend="processes", workers=2)
        assert got.tobytes() == per_pair_base[name].tobytes()

    def test_pool(self, family, per_pair_base, name):
        got = all_pairs(family, name, backend="pool", workers=2)
        assert got.tobytes() == per_pair_base[name].tobytes()

    def test_cooperative_spmd(self, family, per_pair_base, name):
        def program(comm):
            return all_pairs(family, name, comm=comm)

        spmd = run_spmd(2, program)
        for rank_matrix in spmd.results:
            assert rank_matrix.tobytes() == per_pair_base[name].tobytes()

    def test_batch_size_never_changes_bytes(
        self, family, per_pair_base, name, monkeypatch
    ):
        for size in ("2", "7", "64"):
            monkeypatch.setenv("REPRO_DP_BATCH_PAIRS", size)
            got = all_pairs(family, name)
            assert got.tobytes() == per_pair_base[name].tobytes()

"""Property and unit tests for the repro.distance estimators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distance import (
    DistanceConfig,
    FullDpDistance,
    KtupleDistance,
    all_pairs,
    available_estimators,
    estimator_info,
    fractional_identity_estimate,
    get_estimator,
    identity_to_distance,
    kimura_distance,
    register_estimator,
    resolve_distance_stage,
    unregister_estimator,
)
from repro.seq.sequence import Sequence

AMINO = "ACDEFGHIKLMNPQRSTVWY"


def seqs_from(texts):
    return [Sequence(f"s{i}", t) for i, t in enumerate(texts)]


seq_lists = st.lists(
    st.text(alphabet=AMINO, min_size=1, max_size=18),
    min_size=2,
    max_size=5,
)


class TestEveryEstimatorProperties:
    """The registry-wide contract: symmetric, zero-diagonal, finite."""

    @pytest.mark.parametrize("name", sorted(available_estimators()))
    @given(texts=seq_lists)
    @settings(max_examples=15, deadline=None)
    def test_symmetric_zero_diagonal_finite(self, name, texts):
        d = all_pairs(seqs_from(texts), name)
        n = len(texts)
        assert d.shape == (n, n)
        assert np.isfinite(d).all()
        assert (np.diag(d) == 0.0).all()
        # Exactly symmetric (not just allclose): the scheduler writes the
        # same float to both triangles.
        assert (d == d.T).all()
        assert (d >= 0.0).all()

    @pytest.mark.parametrize("name", sorted(available_estimators()))
    @given(texts=seq_lists)
    @settings(max_examples=10, deadline=None)
    def test_tiling_never_changes_values(self, name, texts):
        seqs = seqs_from(texts)
        base = all_pairs(seqs, name)
        tiled = all_pairs(seqs, name, tile_pairs=1)
        assert base.tobytes() == tiled.tobytes()


class TestKtuple:
    def test_matches_legacy_helper(self, tiny_seqs):
        from repro.msa.distances import ktuple_distance_matrix

        seqs = list(tiny_seqs)
        legacy = ktuple_distance_matrix(seqs, k=3)
        new = all_pairs(seqs, "ktuple", k=3)
        assert legacy.tobytes() == new.tobytes()

    def test_identical_sequences_distance_zero(self):
        seqs = seqs_from(["MKVAWDEN", "MKVAWDEN"])
        d = all_pairs(seqs, "ktuple", k=3)
        assert d[0, 1] == 0.0

    def test_too_short_pairs_distance_one(self):
        seqs = seqs_from(["MKV", "MKVAWDENQ"])
        d = all_pairs(seqs, KtupleDistance(k=6))
        assert d[0, 1] == 1.0

    def test_sparse_kmer_space_path(self):
        # k=8 over Dayhoff-6: 6**8 > dense limit, exercises intersect1d.
        seqs = seqs_from(["MKVAWDENAAQ", "MKVAWDQQFFF", "WWWWYYYYGGG"])
        d = all_pairs(seqs, "ktuple", k=8)
        assert (np.diag(d) == 0).all() and np.isfinite(d).all()

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            KtupleDistance(k=0)


class TestFullDpAndKband:
    def test_full_dp_matches_legacy_helper(self, tiny_seqs):
        from repro.msa.distances import full_dp_distance_matrix

        seqs = list(tiny_seqs)[:4]
        legacy = full_dp_distance_matrix(seqs)
        new = all_pairs(seqs, "full-dp")
        assert legacy.tobytes() == new.tobytes()

    def test_kband_agrees_with_full_dp(self, tiny_seqs):
        seqs = list(tiny_seqs)[:4]
        full = all_pairs(seqs, "full-dp")
        band = all_pairs(seqs, "kband")
        assert np.allclose(full, band)

    def test_kimura_transform_monotone(self, tiny_seqs):
        seqs = list(tiny_seqs)[:4]
        linear = all_pairs(seqs, "full-dp")
        kim = all_pairs(seqs, "full-dp", transform="kimura")
        off = ~np.eye(len(seqs), dtype=bool)
        # Kimura stretches distances (d >= D for D in [0, saturation)).
        assert (kim[off] >= linear[off] - 1e-12).all()

    def test_unknown_transform_rejected(self):
        with pytest.raises(ValueError):
            FullDpDistance(transform="sqrt")


class TestTransforms:
    def test_linear_is_one_minus_identity(self):
        ident = np.array([0.0, 0.25, 1.0])
        assert np.array_equal(identity_to_distance(ident), 1.0 - ident)

    def test_kimura_flat_and_matrix_forms(self):
        ident = np.array([[1.0, 0.9], [0.9, 1.0]])
        m = kimura_distance(ident)
        flat = kimura_distance(np.array([0.9]))
        assert m[0, 1] == pytest.approx(flat[0])
        assert m[0, 0] == 0.0

    def test_unknown_transform(self):
        with pytest.raises(ValueError):
            identity_to_distance(np.array([0.5]), "log")

    def test_legacy_delegates_are_shared(self):
        import repro.distance.transforms as t
        from repro.kmer import distance as kd
        from repro.msa import distances as md

        x = np.array([0.1, 0.6])
        assert np.array_equal(
            kd.fractional_identity_estimate(x),
            t.fractional_identity_estimate(x),
        )
        assert md.kimura_distance is t.kimura_distance
        assert md.alignment_identity_matrix is t.alignment_identity_matrix


class TestRegistry:
    def test_builtins_present_with_descriptions(self):
        info = estimator_info()
        assert set(info) >= {"ktuple", "kmer-fraction", "full-dp", "kband"}
        assert all(info.values())

    def test_get_estimator_instance_passthrough(self):
        est = KtupleDistance(k=5)
        assert get_estimator(est) is est
        with pytest.raises(ValueError):
            get_estimator(est, k=3)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_estimator("euclidean")

    def test_bad_factory_kwargs_clean_error(self):
        with pytest.raises(ValueError, match="full-dp"):
            get_estimator("full-dp", k=9)

    def test_register_unregister_roundtrip(self):
        register_estimator("unit-test-est", KtupleDistance, "test only")
        try:
            assert "unit-test-est" in available_estimators()
            with pytest.raises(ValueError):
                register_estimator("unit-test-est", KtupleDistance)
        finally:
            unregister_estimator("unit-test-est")
        assert "unit-test-est" not in available_estimators()
        with pytest.raises(KeyError):
            unregister_estimator("unit-test-est")


class TestDistanceConfig:
    def test_dict_round_trip(self):
        cfg = DistanceConfig(
            estimator="full-dp", transform="kimura",
            backend="threads", workers=2,
        )
        again = DistanceConfig.from_dict(cfg.to_dict())
        assert again == cfg

    def test_validation(self):
        with pytest.raises(ValueError):
            DistanceConfig(estimator="nope")
        with pytest.raises(ValueError):
            DistanceConfig(transform="nope")
        with pytest.raises(ValueError):
            DistanceConfig(backend="gpu")
        with pytest.raises(ValueError):
            DistanceConfig(workers=0)
        with pytest.raises(ValueError):
            DistanceConfig(k=0)
        with pytest.raises(ValueError):
            DistanceConfig.from_dict({"estimator": "ktuple", "tile": 9})

    def test_resolve_from_dict_carries_backend(self):
        est, backend, workers, out, store_dir = resolve_distance_stage(
            {"estimator": "ktuple", "k": 6, "backend": "threads",
             "workers": 3}
        )
        assert est.k == 6 and backend == "threads" and workers == 3
        assert out is None and store_dir is None

    def test_explicit_args_win_over_config(self):
        est, backend, workers, out, store_dir = resolve_distance_stage(
            DistanceConfig(estimator="ktuple", backend="threads", workers=4),
            backend="processes",
            workers=2,
        )
        assert backend == "processes" and workers == 2

    def test_resolve_carries_out_and_store_dir(self):
        est, backend, workers, out, store_dir = resolve_distance_stage(
            DistanceConfig(
                estimator="ktuple", out="memmap", store_dir="/tmp/ts"
            )
        )
        assert out == "memmap" and store_dir == "/tmp/ts"
        _, _, _, out, _ = resolve_distance_stage("ktuple", out="condensed")
        assert out == "condensed"
        with pytest.raises(ValueError):
            resolve_distance_stage("ktuple", out="ram")
        with pytest.raises(ValueError):
            resolve_distance_stage("ktuple", store_dir="/tmp/ts")
        with pytest.raises(ValueError):
            DistanceConfig(out="nope")
        with pytest.raises(ValueError):
            DistanceConfig(store_dir="/tmp/ts")  # needs out="memmap"

    def test_bad_distance_value(self):
        with pytest.raises(ValueError):
            resolve_distance_stage(3.14)

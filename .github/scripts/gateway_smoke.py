"""CI smoke test: boot the HTTP gateway, POST one alignment, check health.

Starts the serving stack on an ephemeral port (exactly what
``python -m repro serve --port 0`` builds), drives it over a real
socket with stdlib urllib, and asserts the three things a deploy
gate cares about: liveness, a correct alignment response, and sane
metrics.  Exits non-zero on any failure.

Run:  PYTHONPATH=src python .github/scripts/gateway_smoke.py
"""

import json
import sys
import urllib.request

from repro.serve import AlignmentGateway, serve_in_thread


def main() -> int:
    gateway = AlignmentGateway(n_workers=2, max_queue=32)
    server, thread = serve_in_thread(gateway)
    base = f"http://127.0.0.1:{server.port}"
    try:
        with urllib.request.urlopen(f"{base}/healthz", timeout=30) as resp:
            assert resp.status == 200, resp.status
            assert json.loads(resp.read()) == {"status": "ok"}
        print(f"healthz ok on {base}")

        body = json.dumps(
            {
                "sequences": [
                    {"id": "a", "residues": "MKTAYIAKQR", "alphabet": "protein"},
                    {"id": "b", "residues": "MKTAYIKQR", "alphabet": "protein"},
                    {"id": "c", "residues": "MKTAYIAKR", "alphabet": "protein"},
                ],
                "engine": "center-star",
            }
        ).encode()
        req = urllib.request.Request(
            f"{base}/align", data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=120) as resp:
            assert resp.status == 200, resp.status
            payload = json.loads(resp.read())
        assert payload["ticket"]["status"] == "done", payload["ticket"]
        assert payload["result"]["n_rows"] == 3, payload["result"]
        print(f"align ok: {payload['result']['n_rows']} rows, "
              f"{payload['result']['n_columns']} columns")

        with urllib.request.urlopen(f"{base}/metrics", timeout=30) as resp:
            metrics = json.loads(resp.read())
        assert metrics["completed"] == 1, metrics
        print("metrics ok:", {k: metrics[k] for k in ("admitted", "completed")})
        return 0
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)
        gateway.close()


if __name__ == "__main__":
    sys.exit(main())

"""Capacity-planning helpers on top of the calibrated model.

Answers the questions a user of the system actually asks before running:
how many processors pay off for my (N, L), where does communication
overtake computation, at what N does Sample-Align-D start beating the
sequential aligner outright -- and, since the calibrated model assumes
ranks run on real cores, what a chosen *execution backend* actually
delivers on this host (:func:`measure_backend_throughput`).
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional, Sequence as TSequence, Tuple

import numpy as np

from repro.parcomp.cost import CostModel
from repro.perfmodel.model import (
    KernelCoefficients,
    predict_sequential_time,
    predict_stage_times,
    predict_total_time,
)

__all__ = [
    "optimal_processors",
    "efficiency_curve",
    "comm_compute_crossover",
    "breakeven_n",
    "measure_backend_throughput",
]


def optimal_processors(
    n_sequences: int,
    mean_length: float,
    coeffs: KernelCoefficients,
    max_procs: int = 64,
    cost_model: CostModel | None = None,
) -> int:
    """The processor count minimising modeled total time for (N, L)."""
    if max_procs < 1:
        raise ValueError("max_procs must be >= 1")
    times = [
        predict_total_time(n_sequences, p, mean_length, coeffs, cost_model)
        for p in range(1, max_procs + 1)
    ]
    return int(np.argmin(times)) + 1


def efficiency_curve(
    n_sequences: int,
    mean_length: float,
    procs: TSequence[int],
    coeffs: KernelCoefficients,
    cost_model: CostModel | None = None,
) -> np.ndarray:
    """Parallel efficiency ``T(1) / (p * T(p))`` over a processor sweep.

    Values above 1 mean superlinear scaling (the paper's regime).
    """
    t1 = predict_total_time(n_sequences, 1, mean_length, coeffs, cost_model)
    return np.array(
        [
            t1
            / (
                p
                * predict_total_time(
                    n_sequences, p, mean_length, coeffs, cost_model
                )
            )
            for p in procs
        ]
    )


def comm_compute_crossover(
    n_sequences: int,
    mean_length: float,
    coeffs: KernelCoefficients,
    max_procs: int = 4096,
    cost_model: CostModel | None = None,
) -> int:
    """Smallest p whose modeled communication exceeds its computation.

    Past this point adding processors is communication-bound (the regime
    the paper's assumption "communication much less than alignment time"
    excludes).  Returns ``max_procs`` when no crossover occurs.
    """
    p = 2
    while p <= max_procs:
        st = predict_stage_times(
            n_sequences, p, mean_length, coeffs, cost_model
        )
        if st.comm > st.compute:
            return p
        p *= 2
    return max_procs


def breakeven_n(
    n_procs: int,
    mean_length: float,
    coeffs: KernelCoefficients,
    cost_model: CostModel | None = None,
    n_max: int = 1 << 20,
) -> int:
    """Smallest N where the p-rank pipeline beats the sequential aligner.

    Binary search over N; returns ``n_max`` if the pipeline never wins
    (e.g. absurd cost models).
    """
    def wins(n: int) -> bool:
        par = predict_total_time(n, n_procs, mean_length, coeffs, cost_model)
        seq = predict_sequential_time(n, mean_length, coeffs)
        return par < seq

    lo, hi = 2, 4
    while hi < n_max and not wins(hi):
        hi *= 2
    if hi >= n_max:
        return n_max
    while lo < hi:
        mid = (lo + hi) // 2
        if wins(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


def measure_backend_throughput(
    seqs: TSequence,
    backend: str,
    procs: Optional[TSequence[int]] = None,
    probe_size: int = 24,
    config=None,
) -> Dict[str, Any]:
    """Measure a backend's real Sample-Align-D throughput on this host.

    The calibrated model predicts *cluster* time assuming every rank has
    its own processor; the ``threads`` backend breaks that assumption
    (the GIL serialises rank compute) while ``processes`` honours it up
    to the host's core count.  This probe aligns an evenly-spaced
    subsample of ``seqs`` (at most ``probe_size`` sequences) at each
    rank count in ``procs`` with the given backend and measures real
    wall time, so a plan can recommend from *measured* backend
    throughput rather than the model alone.

    Returns a JSON-able dict: per-p wall seconds, measured speedups over
    p=1, the best measured rank count, and the host core count that
    bounds what ``processes`` can deliver.
    """
    from repro.core.config import SampleAlignDConfig
    from repro.core.driver import sample_align_d

    seqs = list(seqs)
    if not seqs:
        raise ValueError("no sequences to probe")
    if probe_size < 2:
        raise ValueError("probe_size must be >= 2")
    step = max(len(seqs) // probe_size, 1)
    sample = seqs[::step][:probe_size]
    host_cores = os.cpu_count() or 1
    if procs is None:
        procs = [1, 2, 4]
    procs = sorted({int(p) for p in procs if 1 <= int(p) <= len(sample)})
    if not procs:
        procs = [1]
    base = config or SampleAlignDConfig()
    walls: Dict[int, float] = {}
    for p in procs:
        t0 = time.perf_counter()
        sample_align_d(sample, n_procs=p, config=base, backend=backend)
        walls[p] = time.perf_counter() - t0
    t1 = walls.get(1)
    best = min(walls, key=lambda p: walls[p])
    return {
        "backend": backend,
        "n_probe": len(sample),
        "host_cores": host_cores,
        "wall_s": {str(p): w for p, w in walls.items()},
        "speedup": {
            str(p): (t1 / w if t1 else None) for p, w in walls.items()
        },
        "best_procs": int(best),
    }

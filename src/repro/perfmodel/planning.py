"""Capacity-planning helpers on top of the calibrated model.

Answers the questions a user of the system actually asks before running:
how many processors pay off for my (N, L), where does communication
overtake computation, and at what N does Sample-Align-D start beating
the sequential aligner outright.
"""

from __future__ import annotations

from typing import Sequence as TSequence, Tuple

import numpy as np

from repro.parcomp.cost import CostModel
from repro.perfmodel.model import (
    KernelCoefficients,
    predict_sequential_time,
    predict_stage_times,
    predict_total_time,
)

__all__ = [
    "optimal_processors",
    "efficiency_curve",
    "comm_compute_crossover",
    "breakeven_n",
]


def optimal_processors(
    n_sequences: int,
    mean_length: float,
    coeffs: KernelCoefficients,
    max_procs: int = 64,
    cost_model: CostModel | None = None,
) -> int:
    """The processor count minimising modeled total time for (N, L)."""
    if max_procs < 1:
        raise ValueError("max_procs must be >= 1")
    times = [
        predict_total_time(n_sequences, p, mean_length, coeffs, cost_model)
        for p in range(1, max_procs + 1)
    ]
    return int(np.argmin(times)) + 1


def efficiency_curve(
    n_sequences: int,
    mean_length: float,
    procs: TSequence[int],
    coeffs: KernelCoefficients,
    cost_model: CostModel | None = None,
) -> np.ndarray:
    """Parallel efficiency ``T(1) / (p * T(p))`` over a processor sweep.

    Values above 1 mean superlinear scaling (the paper's regime).
    """
    t1 = predict_total_time(n_sequences, 1, mean_length, coeffs, cost_model)
    return np.array(
        [
            t1
            / (
                p
                * predict_total_time(
                    n_sequences, p, mean_length, coeffs, cost_model
                )
            )
            for p in procs
        ]
    )


def comm_compute_crossover(
    n_sequences: int,
    mean_length: float,
    coeffs: KernelCoefficients,
    max_procs: int = 4096,
    cost_model: CostModel | None = None,
) -> int:
    """Smallest p whose modeled communication exceeds its computation.

    Past this point adding processors is communication-bound (the regime
    the paper's assumption "communication much less than alignment time"
    excludes).  Returns ``max_procs`` when no crossover occurs.
    """
    p = 2
    while p <= max_procs:
        st = predict_stage_times(
            n_sequences, p, mean_length, coeffs, cost_model
        )
        if st.comm > st.compute:
            return p
        p *= 2
    return max_procs


def breakeven_n(
    n_procs: int,
    mean_length: float,
    coeffs: KernelCoefficients,
    cost_model: CostModel | None = None,
    n_max: int = 1 << 20,
) -> int:
    """Smallest N where the p-rank pipeline beats the sequential aligner.

    Binary search over N; returns ``n_max`` if the pipeline never wins
    (e.g. absurd cost models).
    """
    def wins(n: int) -> bool:
        par = predict_total_time(n, n_procs, mean_length, coeffs, cost_model)
        seq = predict_sequential_time(n, mean_length, coeffs)
        return par < seq

    lo, hi = 2, 4
    while hi < n_max and not wins(hi):
        hi *= 2
    if hi >= n_max:
        return n_max
    while lo < hi:
        mid = (lo + hi) // 2
        if wins(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo

"""The analytic model and its kernel calibration.

Cost structure (paper section 3, ``w = N/p`` sequences of length ``L``
per processor after redistribution):

==========================  =============================================
stage                       model term
==========================  =============================================
local k-mer rank            ``a_cnt * w * L + a_pair * w^2``
globalized re-rank          ``a_cnt * w * L + a_pair * w * (k*p)``
local sorts                 ``a_sort * w * log w`` (negligible)
bucket alignment            ``d_dist * w^2 * L + d_prof * w * L^2``
                            (+ ``d_quart * w^4`` in ``paper_mode``, the
                            complexity the paper itself assumes for the
                            sequential aligner)
ancestor alignment (root)   ``d_dist * p^2 * L + d_prof * p * L^2``
ancestor tweak              ``d_tweak * L^2``
communication               alpha-beta on the section-3 message pattern:
                            sample allgather ``O(k p L)``, pivot bcast
                            ``O(p log p)``, redistribution ``O((N/p) L)``,
                            ancestors ``O(p L + L log p)``, final gather
                            ``O((N/p) L)``
==========================  =============================================

Coefficients come from :func:`calibrate_kernels`, which times this very
repository's kernels on a small grid and least-squares fits each stage's
dominant terms -- so the modeled small-N times track measured virtual
cluster runs, and large-N predictions extrapolate the same constants.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Sequence as TSequence

import numpy as np

from repro.parcomp.cost import CostModel

__all__ = [
    "KernelCoefficients",
    "StageTimes",
    "calibrate_kernels",
    "predict_stage_times",
    "predict_total_time",
    "predict_sequential_time",
    "speedup_curve",
]


@dataclass(frozen=True)
class KernelCoefficients:
    """Calibrated per-operation constants (seconds per unit work)."""

    a_cnt: float = 2.0e-7    # k-mer counting, per residue
    a_pair: float = 2.0e-7   # rank pair work, per sequence pair
    d_dist: float = 3.0e-9   # distance stage, per pair-residue
    d_prof: float = 2.0e-8   # profile DP, per cell per merge
    d_tweak: float = 2.0e-8  # tweak DP, per cell
    d_quart: float = 0.0     # the paper's w^4 term (0 unless paper_mode)

    def with_quartic(self, w_ref: float, L_ref: float) -> "KernelCoefficients":
        """A copy whose quartic term equals the quadratic work at a
        reference size (so paper_mode curves stay in a sane range)."""
        quad = self.d_dist * w_ref**2 * L_ref + self.d_prof * w_ref * L_ref**2
        return KernelCoefficients(
            self.a_cnt, self.a_pair, self.d_dist, self.d_prof, self.d_tweak,
            d_quart=quad / max(w_ref**4, 1.0),
        )


@dataclass
class StageTimes:
    """Per-stage modeled seconds of one Sample-Align-D run."""

    stages: Dict[str, float] = field(default_factory=dict)

    @property
    def compute(self) -> float:
        return sum(v for k, v in self.stages.items() if not k.startswith("comm"))

    @property
    def comm(self) -> float:
        return sum(v for k, v in self.stages.items() if k.startswith("comm"))

    @property
    def total(self) -> float:
        return self.compute + self.comm

    def table(self) -> str:
        width = max(len(k) for k in self.stages)
        lines = [f"{k:<{width}}  {v:12.6f} s" for k, v in self.stages.items()]
        lines.append(f"{'TOTAL':<{width}}  {self.total:12.6f} s")
        return "\n".join(lines)


def _fit_through_origin(x: np.ndarray, y: np.ndarray) -> float:
    """Least-squares slope of y ~ c*x (c >= tiny positive)."""
    x = np.asarray(x, float)
    y = np.asarray(y, float)
    denom = float((x * x).sum())
    if denom <= 0:
        return 1e-12
    return max(float((x * y).sum() / denom), 1e-12)


def calibrate_kernels(
    lengths: TSequence[int] = (60, 100),
    widths: TSequence[int] = (8, 16, 32),
    seed: int = 0,
) -> KernelCoefficients:
    """Time this repository's kernels and fit the model coefficients.

    Uses small rose families so calibration itself takes a few seconds.
    """
    from repro.align.dp import affine_align
    from repro.datagen.rose import generate_family
    from repro.kmer.rank import RankConfig, centralized_rank
    from repro.msa.muscle import MuscleLike

    rng = np.random.default_rng(seed)
    rank_cfg = RankConfig()

    # -- rank kernel: t ~ a_cnt*w*L + a_pair*w^2 ------------------------------
    xs_cnt, xs_pair, ts = [], [], []
    for L in lengths:
        for w in widths:
            fam = generate_family(
                n_sequences=w, mean_length=L, relatedness=600,
                seed=int(rng.integers(2**31)), track_alignment=False,
            )
            t0 = time.perf_counter()
            centralized_rank(list(fam.sequences), rank_cfg)
            ts.append(time.perf_counter() - t0)
            xs_cnt.append(w * L)
            xs_pair.append(w * w)
    # Two-term fit via normal equations.
    X = np.column_stack([xs_cnt, xs_pair]).astype(float)
    y = np.asarray(ts)
    coef, *_ = np.linalg.lstsq(X, y, rcond=None)
    a_cnt, a_pair = (max(float(c), 1e-12) for c in coef)

    # -- alignment kernel: t ~ d_dist*w^2*L + d_prof*w*L^2 ----------------------
    aligner = MuscleLike(two_stage=False, refine=False)
    xs_d, xs_p, ts = [], [], []
    for L in lengths:
        for w in widths:
            fam = generate_family(
                n_sequences=w, mean_length=L, relatedness=400,
                seed=int(rng.integers(2**31)), track_alignment=False,
            )
            t0 = time.perf_counter()
            aligner.align(fam.sequences)
            ts.append(time.perf_counter() - t0)
            xs_d.append(w * w * L)
            xs_p.append(w * L * L)
    X = np.column_stack([xs_d, xs_p]).astype(float)
    coef, *_ = np.linalg.lstsq(X, np.asarray(ts), rcond=None)
    d_dist, d_prof = (max(float(c), 1e-12) for c in coef)

    # -- tweak kernel: t ~ d_tweak * L^2 ----------------------------------------
    xs, ts = [], []
    for L in (max(lengths), 2 * max(lengths)):
        S = rng.normal(0, 1, (L, L))
        t0 = time.perf_counter()
        affine_align(S, 10.0, 0.5)
        ts.append(time.perf_counter() - t0)
        xs.append(L * L)
    d_tweak = _fit_through_origin(np.asarray(xs), np.asarray(ts))

    return KernelCoefficients(
        a_cnt=a_cnt, a_pair=a_pair, d_dist=d_dist, d_prof=d_prof,
        d_tweak=d_tweak,
    )


def predict_stage_times(
    n_sequences: int,
    n_procs: int,
    mean_length: float,
    coeffs: KernelCoefficients,
    cost_model: CostModel | None = None,
    samples_per_proc: int | None = None,
    paper_mode: bool = False,
) -> StageTimes:
    """Modeled per-stage times of one run (max-loaded rank's view)."""
    cost = cost_model or CostModel()
    N, p, L = n_sequences, n_procs, float(mean_length)
    w = N / max(p, 1)
    k = samples_per_proc or max(p - 1, 1)
    c = coeffs
    if paper_mode and c.d_quart == 0.0:
        c = c.with_quartic(w_ref=w, L_ref=L)

    st = StageTimes()
    st.stages["local_rank"] = c.a_cnt * w * L + c.a_pair * w * w
    st.stages["global_rank"] = c.a_cnt * w * L + c.a_pair * w * (k * p)
    align = c.d_dist * w * w * L + c.d_prof * w * L * L
    if paper_mode:
        align += c.d_quart * w**4
    st.stages["bucket_align"] = align
    if p > 1:
        st.stages["ancestor_align"] = (
            c.d_dist * p * p * L + c.d_prof * p * L * L
        )
        st.stages["tweak"] = c.d_tweak * L * L

    if p > 1:
        msg = cost.message_cost
        st.stages["comm_samples"] = (p - 1) * msg(k * L) * 2  # gather+bcast
        st.stages["comm_pivots"] = int(np.ceil(np.log2(p))) * msg(8 * p)
        st.stages["comm_redistribute"] = (p - 1) * msg(w * L / p)
        st.stages["comm_ancestors"] = (p - 1) * msg(L) + int(
            np.ceil(np.log2(p))
        ) * msg(L)
        st.stages["comm_glue"] = (p - 1) * msg(w * L)
    return st


def predict_total_time(
    n_sequences: int,
    n_procs: int,
    mean_length: float,
    coeffs: KernelCoefficients,
    cost_model: CostModel | None = None,
    paper_mode: bool = False,
) -> float:
    """Modeled wall time of a Sample-Align-D run."""
    return predict_stage_times(
        n_sequences, n_procs, mean_length, coeffs, cost_model,
        paper_mode=paper_mode,
    ).total


def predict_sequential_time(
    n_sequences: int,
    mean_length: float,
    coeffs: KernelCoefficients,
    paper_mode: bool = False,
) -> float:
    """Modeled time of the *sequential* aligner on the full set (the
    paper's Fig. 6 MUSCLE baseline)."""
    N, L = n_sequences, float(mean_length)
    c = coeffs
    if paper_mode and c.d_quart == 0.0:
        c = c.with_quartic(w_ref=N, L_ref=L)
    t = c.d_dist * N * N * L + c.d_prof * N * L * L
    if paper_mode:
        t += c.d_quart * float(N) ** 4
    return t


def speedup_curve(
    n_sequences: int,
    mean_length: float,
    procs: TSequence[int],
    coeffs: KernelCoefficients,
    cost_model: CostModel | None = None,
    paper_mode: bool = False,
) -> np.ndarray:
    """``T(1) / T(p)`` over a processor sweep (the paper's Fig. 5)."""
    t1 = predict_total_time(
        n_sequences, 1, mean_length, coeffs, cost_model, paper_mode
    )
    return np.array(
        [
            t1
            / predict_total_time(
                n_sequences, p, mean_length, coeffs, cost_model, paper_mode
            )
            for p in procs
        ]
    )

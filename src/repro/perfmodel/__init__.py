"""Calibrated analytic performance model of the cluster run.

Regenerates the paper's cluster-scale timing figures (Figs. 4-6) at the
paper's N (5000/10000/20000 sequences), which pure-Python kernels cannot
execute for real on this host.  The model is the paper's own section-3
cost structure with coefficients *calibrated against the repository's
measured kernels*, so modeled and measured runs agree at small N (the
test suite checks this) and the large-N curves inherit the honest shape.
"""

from repro.perfmodel.model import (
    KernelCoefficients,
    StageTimes,
    calibrate_kernels,
    predict_sequential_time,
    predict_stage_times,
    predict_total_time,
    speedup_curve,
)
from repro.perfmodel.planning import (
    breakeven_n,
    comm_compute_crossover,
    efficiency_curve,
    measure_backend_throughput,
    optimal_processors,
)

__all__ = [
    "KernelCoefficients",
    "StageTimes",
    "breakeven_n",
    "calibrate_kernels",
    "comm_compute_crossover",
    "efficiency_curve",
    "measure_backend_throughput",
    "optimal_processors",
    "predict_sequential_time",
    "predict_stage_times",
    "predict_total_time",
    "speedup_curve",
]

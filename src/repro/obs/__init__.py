"""repro.obs: unified metrics + tracing for every layer of the stack.

Two pillars, both built to cross the execution-backend seam:

- **Metrics** (:mod:`repro.obs.metrics`): a process-wide registry of
  counters, gauges, and log-bucketed histograms.  Snapshots are small
  picklable dataclasses with an associative ``merge()``, so per-worker
  metrics ride back from ``threads``/``processes``/``pool`` ranks the
  same way timing ledgers already do.  Rendered as JSON (``to_dict``)
  or Prometheus text 0.0.4 (:mod:`repro.obs.prom`).
- **Tracing** (:mod:`repro.obs.tracing`): ``with span(name, **attrs):``
  regions with cross-process parenting (:mod:`repro.obs.propagate`),
  exported as Perfetto-loadable Chrome trace JSON and folded into
  per-stage duration breakdowns.  Off by default and free when off.

Quick start::

    from repro.obs import enable_tracing, span, drain_spans, to_chrome_trace
    enable_tracing()
    with span("my.stage", n=3):
        ...
    trace = to_chrome_trace(drain_spans())   # load at ui.perfetto.dev

CLI: ``repro trace input.fasta`` runs an alignment through the serving
gateway with tracing on and writes the trace + a stage table;
``repro loadtest --trace-out trace.json`` does the same for a whole
workload.  HTTP: ``GET /metrics?format=prom`` exposes gateway metrics
in Prometheus text format.
"""

from repro.obs.metrics import (
    Counter,
    CounterSnapshot,
    Gauge,
    GaugeSnapshot,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    percentile,
    registry,
)
from repro.obs.prom import (
    PROM_CONTENT_TYPE,
    escape_label_value,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.propagate import run_traced
from repro.obs.tracing import (
    SpanRecord,
    TraceBuffer,
    TraceContext,
    collect,
    disable_tracing,
    drain_spans,
    enable_tracing,
    record_spans,
    span,
    stage_breakdown,
    to_chrome_trace,
    tracing_enabled,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "CounterSnapshot",
    "Gauge",
    "GaugeSnapshot",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "PROM_CONTENT_TYPE",
    "SpanRecord",
    "TraceBuffer",
    "TraceContext",
    "collect",
    "disable_tracing",
    "drain_spans",
    "enable_tracing",
    "escape_label_value",
    "percentile",
    "record_spans",
    "registry",
    "render_prometheus",
    "run_traced",
    "sanitize_metric_name",
    "span",
    "stage_breakdown",
    "to_chrome_trace",
    "tracing_enabled",
    "write_chrome_trace",
]

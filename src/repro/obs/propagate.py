"""Trace + metrics propagation across the execution-backend seam.

:func:`run_traced` is a drop-in replacement for
``get_backend(b).run(...)`` used by every backend dispatch site
(``run_spmd``, ``all_pairs``, ``progressive_merge``).  With tracing
disabled it *is* that call -- one flag check of overhead.  With tracing
enabled it:

1. opens a ``<stage>.dispatch`` span at the call site,
2. ships a :class:`~repro.obs.tracing.TraceContext` to every rank by
   wrapping the rank function in the picklable :class:`_TracedRankFn`
   (so propagation rides whatever wire the backend already has --
   thread closure, process pickle, or the pool's shm blob),
3. wraps each rank's work in a ``<stage>.rank`` span recorded into a
   rank-local buffer,
4. ships spans *and* a metrics delta back inside :class:`_TracedReturn`
   and unwraps them at the parent: spans are stitched under the
   dispatch span, and the delta is merged into the parent's registry --
   but only for foreign pids (the ``threads`` backend's ranks share the
   parent's registry; absorbing their delta would double-count).

The rank-side buffer never tees into the worker's global buffer for the
same reason: under ``threads`` the "worker" global buffer *is* the
parent's, and the spans will arrive again via the explicit ship-back.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    List,
    Optional,
    Sequence as TSequence,
    Union,
)

from repro.obs.metrics import MetricsSnapshot, registry
from repro.obs.tracing import (
    SpanRecord,
    TraceContext,
    install_context,
    propagation_context,
    record_spans,
    restore_context,
    span,
    tracing_enabled,
)

if TYPE_CHECKING:  # runtime import is deferred: parcomp's launcher
    # imports this module, so a top-level import back would be circular.
    from repro.parcomp.backends import ExecutionBackend, SpmdResult
    from repro.parcomp.cost import CostModel

__all__ = ["run_traced"]


@dataclass
class _TracedReturn:
    """A rank's result plus its observability freight (picklable)."""

    result: Any
    spans: List[SpanRecord] = field(default_factory=list)
    pid: int = 0
    metrics: Optional[MetricsSnapshot] = None


class _TracedRankFn:
    """Picklable wrapper installing the trace context around a rank fn."""

    def __init__(self, ctx: TraceContext, fn: Callable[..., Any], stage: str):
        self.ctx = ctx
        self.fn = fn
        self.stage = stage

    def __call__(self, comm: Any, *args: Any, **kwargs: Any) -> "_TracedReturn":
        buf, token = install_context(self.ctx)
        try:
            before = registry().snapshot()
            with span(f"{self.stage}.rank", rank=comm.rank):
                result = self.fn(comm, *args, **kwargs)
            delta = registry().snapshot().diff(before)
            return _TracedReturn(
                result=result,
                spans=buf.drain(),
                pid=os.getpid(),
                metrics=delta,
            )
        finally:
            restore_context(token)


def run_traced(
    backend: "Union[str, ExecutionBackend, None]",
    n_ranks: int,
    fn: Callable[..., Any],
    *,
    stage: str,
    args: TSequence[Any] = (),
    rank_args: Optional[TSequence[TSequence[Any]]] = None,
    cost_model: "CostModel | None" = None,
    **kwargs: Any,
) -> "SpmdResult":
    """``get_backend(backend).run(...)`` with span/metrics propagation.

    ``stage`` names the dispatch site (``"spmd"``, ``"distance"``,
    ``"tree"``): the parent records ``<stage>.dispatch`` and every rank
    records ``<stage>.rank`` parented under it, with the rank function's
    own spans nested below.
    """
    from repro.parcomp.backends import get_backend

    b = get_backend(backend)
    if not tracing_enabled():
        return b.run(
            n_ranks, fn, args=args, rank_args=rank_args,
            cost_model=cost_model, **kwargs,
        )
    with span(f"{stage}.dispatch", backend=b.name, ranks=n_ranks):
        ctx = propagation_context()
        spmd = b.run(
            n_ranks, _TracedRankFn(ctx, fn, stage), args=args,
            rank_args=rank_args, cost_model=cost_model, **kwargs,
        )
        my_pid = os.getpid()
        reg = registry()
        for i, ret in enumerate(spmd.results):
            if not isinstance(ret, _TracedReturn):
                continue  # e.g. a rank that never reported
            record_spans(ret.spans)
            if ret.metrics is not None and ret.pid != my_pid:
                reg.absorb(ret.metrics)
            spmd.results[i] = ret.result
        return spmd

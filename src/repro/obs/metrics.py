"""Mergeable metrics: counters, gauges, log-bucketed histograms.

The serving stack needs telemetry that survives two hostile conditions:
long uptimes (a latency deque that must be sorted per snapshot gets more
expensive the longer the server lives) and multi-process execution (the
``processes``/``pool`` backends do their work in other address spaces).
Both are solved the same way the parcomp layer already solves timing --
small picklable snapshots with an **associative, commutative**
``merge()``, so per-rank/per-worker metrics ride the existing
ledger-merge idiom back to the parent and any two snapshots of the same
metric can be combined in any order and grouping.

- :class:`Counter` -- a monotone count; merge is addition.
- :class:`Gauge` -- a last-write-wins value; merge keeps the
  ``(stamp, value)``-max observation, which is associative, commutative
  and idempotent (unlike "take the right-hand value").
- :class:`Histogram` -- sparse log-bucketed distribution: bucket ``i``
  holds values in ``[base**i, base**(i+1))``, so a *bounded* number of
  integer counts summarises an unbounded stream with a known relative
  error per quantile.  Merge is bucket-wise addition -- the total bucket
  count is conserved exactly.

:class:`MetricsRegistry` names and owns live metrics;
:func:`registry` is the process-wide default.  :func:`percentile` is the
repo's one exact nearest-rank percentile (the gateway and the loadtest
client both delegate here); histogram quantiles are the bounded-memory
approximation of the same rank definition.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence as TSequence, Union

__all__ = [
    "Counter",
    "CounterSnapshot",
    "Gauge",
    "GaugeSnapshot",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "MetricsSnapshot",
    "percentile",
    "registry",
]

#: Default histogram bucket growth factor: ~7% relative half-width per
#: bucket, ~170 live buckets to span nanoseconds..hours of latency.
DEFAULT_BASE = 1.15


def percentile(sorted_values: TSequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile of an ascending sequence (None if empty).

    The codebase's single exact percentile implementation:
    ``repro.serve.gateway.percentile`` and the loadtest client both
    delegate here, and :meth:`HistogramSnapshot.quantile` approximates
    the same nearest-rank definition from buckets.
    """
    if not sorted_values:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(len(sorted_values) - 1, rank - 1)]


# ---------------------------------------------------------------------------
# Snapshots: small picklable dataclasses with associative merge().


@dataclass(frozen=True)
class CounterSnapshot:
    """A counter's value; ``merge`` is addition."""

    value: int = 0

    def merge(self, other: "CounterSnapshot") -> "CounterSnapshot":
        return CounterSnapshot(self.value + other.value)

    def diff(self, earlier: "CounterSnapshot") -> "CounterSnapshot":
        return CounterSnapshot(max(0, self.value - earlier.value))

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


@dataclass(frozen=True)
class GaugeSnapshot:
    """A gauge observation; ``merge`` keeps the ``(stamp, value)`` max.

    Picking the lexicographic maximum (newest stamp, ties broken by
    value) is associative, commutative and idempotent, so merging the
    same snapshots in any order or grouping yields the same winner.
    """

    value: float = 0.0
    stamp: float = 0.0

    def merge(self, other: "GaugeSnapshot") -> "GaugeSnapshot":
        return self if (self.stamp, self.value) >= (other.stamp, other.value) else other

    def diff(self, earlier: "GaugeSnapshot") -> "GaugeSnapshot":
        return self  # gauges are point-in-time; the later one stands

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value, "stamp": self.stamp}


@dataclass(frozen=True)
class HistogramSnapshot:
    """A log-bucketed distribution; ``merge`` adds buckets pointwise.

    ``buckets[i]`` counts observations in ``[base**i, base**(i+1))``;
    non-positive observations land in ``underflow``.  ``count`` /
    ``total`` / ``vmin`` / ``vmax`` summarise the exact stream, so the
    mean is exact and only the quantiles are bucket-approximate (within
    one bucket's relative width).
    """

    base: float = DEFAULT_BASE
    buckets: Dict[int, int] = field(default_factory=dict)
    underflow: int = 0
    count: int = 0
    total: float = 0.0
    vmin: Optional[float] = None
    vmax: Optional[float] = None

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        if self.base != other.base:
            raise ValueError(
                f"cannot merge histograms with bases {self.base} != {other.base}"
            )
        buckets = dict(self.buckets)
        for idx, n in other.buckets.items():
            buckets[idx] = buckets.get(idx, 0) + n
        mins = [v for v in (self.vmin, other.vmin) if v is not None]
        maxs = [v for v in (self.vmax, other.vmax) if v is not None]
        return HistogramSnapshot(
            base=self.base,
            buckets=buckets,
            underflow=self.underflow + other.underflow,
            count=self.count + other.count,
            total=self.total + other.total,
            vmin=min(mins) if mins else None,
            vmax=max(maxs) if maxs else None,
        )

    def diff(self, earlier: "HistogramSnapshot") -> "HistogramSnapshot":
        """Observations since ``earlier`` (bucket-wise subtraction).

        ``vmin``/``vmax`` cannot be un-merged; the later bounds are kept
        (a conservative superset of the delta's true bounds).
        """
        buckets = {
            idx: n - earlier.buckets.get(idx, 0)
            for idx, n in self.buckets.items()
            if n - earlier.buckets.get(idx, 0) > 0
        }
        return HistogramSnapshot(
            base=self.base,
            buckets=buckets,
            underflow=max(0, self.underflow - earlier.underflow),
            count=max(0, self.count - earlier.count),
            total=self.total - earlier.total,
            vmin=self.vmin,
            vmax=self.vmax,
        )

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile from the buckets (None when empty).

        The returned value is the geometric midpoint of the bucket the
        rank falls in, clamped to the exact observed ``[vmin, vmax]`` --
        so ``quantile(1.0)`` is exactly ``vmax`` and the relative error
        of interior quantiles is bounded by the bucket width.
        """
        if self.count == 0:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        rank = max(1, math.ceil(q * self.count))
        seen = self.underflow
        if rank <= seen:
            return self.vmin if self.vmin is not None else 0.0
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if rank <= seen:
                mid = self.base ** (idx + 0.5)
                if self.vmin is not None:
                    mid = max(mid, self.vmin)
                if self.vmax is not None:
                    mid = min(mid, self.vmax)
                return mid
        return self.vmax

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "base": self.base,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
            "underflow": self.underflow,
            "count": self.count,
            "total": self.total,
            "min": self.vmin,
            "max": self.vmax,
        }


MetricSnapshot = Union[CounterSnapshot, GaugeSnapshot, HistogramSnapshot]


@dataclass(frozen=True)
class MetricsSnapshot:
    """One registry's metrics at a point in time; merge is per-name."""

    metrics: Dict[str, MetricSnapshot] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        merged = dict(self.metrics)
        for name, snap in other.metrics.items():
            mine = merged.get(name)
            if mine is None:
                merged[name] = snap
            elif type(mine) is not type(snap):
                raise ValueError(
                    f"metric {name!r} has conflicting types "
                    f"{type(mine).__name__} / {type(snap).__name__}"
                )
            else:
                merged[name] = mine.merge(snap)
        return MetricsSnapshot(merged)

    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Activity since ``earlier`` (names absent earlier pass through)."""
        out: Dict[str, MetricSnapshot] = {}
        for name, snap in self.metrics.items():
            prev = earlier.metrics.get(name)
            out[name] = snap if prev is None else snap.diff(prev)
        return MetricsSnapshot(out)

    def to_dict(self) -> Dict[str, Any]:
        return {name: snap.to_dict() for name, snap in sorted(self.metrics.items())}


# ---------------------------------------------------------------------------
# Live metrics (thread-safe; snapshots are the serialisation surface).


class Counter:
    """A thread-safe monotone counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> CounterSnapshot:
        return CounterSnapshot(self._value)

    def absorb(self, snap: CounterSnapshot) -> None:
        self.inc(snap.value)


class Gauge:
    """A thread-safe last-write-wins value."""

    __slots__ = ("_lock", "_value", "_stamp")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._stamp = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            self._stamp = time.time()

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> GaugeSnapshot:
        with self._lock:
            return GaugeSnapshot(self._value, self._stamp)

    def absorb(self, snap: GaugeSnapshot) -> None:
        with self._lock:
            if (snap.stamp, snap.value) > (self._stamp, self._value):
                self._value, self._stamp = snap.value, snap.stamp


class Histogram:
    """A thread-safe sparse log-bucketed histogram.

    ``observe()`` is O(1): one ``log`` and one dict increment -- the
    bounded-cost replacement for "append to a deque and sort the whole
    window at every metrics snapshot".
    """

    __slots__ = ("base", "_log_base", "_lock", "_buckets", "_underflow",
                 "_count", "_total", "_vmin", "_vmax")

    def __init__(self, base: float = DEFAULT_BASE) -> None:
        if not base > 1.0:
            raise ValueError("histogram base must be > 1")
        self.base = float(base)
        self._log_base = math.log(self.base)
        self._lock = threading.Lock()
        self._buckets: Dict[int, int] = {}
        self._underflow = 0
        self._count = 0
        self._total = 0.0
        self._vmin: Optional[float] = None
        self._vmax: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        idx = None if value <= 0.0 else int(math.floor(math.log(value) / self._log_base))
        with self._lock:
            if idx is None:
                self._underflow += 1
            else:
                self._buckets[idx] = self._buckets.get(idx, 0) + 1
            self._count += 1
            self._total += value
            if self._vmin is None or value < self._vmin:
                self._vmin = value
            if self._vmax is None or value > self._vmax:
                self._vmax = value

    @property
    def count(self) -> int:
        return self._count

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            return HistogramSnapshot(
                base=self.base,
                buckets=dict(self._buckets),
                underflow=self._underflow,
                count=self._count,
                total=self._total,
                vmin=self._vmin,
                vmax=self._vmax,
            )

    def absorb(self, snap: HistogramSnapshot) -> None:
        if snap.base != self.base:
            raise ValueError(
                f"cannot absorb a base-{snap.base} snapshot into a "
                f"base-{self.base} histogram"
            )
        with self._lock:
            for idx, n in snap.buckets.items():
                self._buckets[idx] = self._buckets.get(idx, 0) + n
            self._underflow += snap.underflow
            self._count += snap.count
            self._total += snap.total
            if snap.vmin is not None and (self._vmin is None or snap.vmin < self._vmin):
                self._vmin = snap.vmin
            if snap.vmax is not None and (self._vmax is None or snap.vmax > self._vmax):
                self._vmax = snap.vmax


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}
_SNAP_KINDS = {
    CounterSnapshot: Counter,
    GaugeSnapshot: Gauge,
    HistogramSnapshot: Histogram,
}


class MetricsRegistry:
    """Named live metrics with one picklable, mergeable snapshot.

    Accessors are create-or-fetch: ``registry.counter("dp.calls")``
    returns the same :class:`Counter` on every call, and asking for an
    existing name with a different kind raises.  :meth:`absorb` merges a
    foreign :class:`MetricsSnapshot` (e.g. shipped back from a pool
    worker) into the live metrics.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(**kwargs)
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, base: float = DEFAULT_BASE) -> Histogram:
        return self._get(name, Histogram, base=base)

    def names(self) -> list:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            metrics = dict(self._metrics)
        return MetricsSnapshot(
            {name: m.snapshot() for name, m in metrics.items()}
        )

    def absorb(self, snapshot: MetricsSnapshot) -> None:
        for name, snap in snapshot.metrics.items():
            cls = _SNAP_KINDS[type(snap)]
            kwargs = {"base": snap.base} if cls is Histogram else {}
            self._get(name, cls, **kwargs).absorb(snap)


#: The process-wide default registry (what the built-in instrumentation
#: writes to and what worker deltas merge back into).
_default_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _default_registry

"""Prometheus text exposition (format 0.0.4) for obs snapshots.

Renders a :class:`~repro.obs.metrics.MetricsSnapshot` -- plus the
gateway's existing nested ``metrics()`` dict -- as the plain-text
format Prometheus scrapes.  The two sharp edges the spec actually
enforces are handled here and covered by tests:

- metric names must match ``[a-zA-Z_:][a-zA-Z0-9_:]*``; anything else
  (dots in our internal names, dashes in engine names) is mapped to
  ``_``;
- label *values* may contain anything but must escape backslash,
  double-quote, and newline as ``\\\\``, ``\\"``, ``\\n``.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.metrics import (
    CounterSnapshot,
    GaugeSnapshot,
    HistogramSnapshot,
    MetricsSnapshot,
)

__all__ = [
    "PROM_CONTENT_TYPE",
    "escape_label_value",
    "render_prometheus",
    "sanitize_metric_name",
]

#: The content type Prometheus expects for text format 0.0.4.
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_NAME_BAD_CHAR = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Coerce an internal metric name into a legal Prometheus name."""
    if _NAME_OK.match(name):
        return name
    out = _NAME_BAD_CHAR.sub("_", name)
    if not out or not re.match(r"[a-zA-Z_:]", out[0]):
        out = "_" + out
    return out


def escape_label_value(value: str) -> str:
    """Escape a label value per the text-format rules."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_value(value: Any) -> str:
    v = float(value)
    if math.isnan(v):
        return "NaN"
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    return repr(v) if not v.is_integer() else str(int(v))


def _line(name: str, labels: Mapping[str, str], value: Any) -> str:
    if labels:
        body = ",".join(
            f'{sanitize_metric_name(k)}="{escape_label_value(str(v))}"'
            for k, v in sorted(labels.items())
        )
        return f"{name}{{{body}}} {_fmt_value(value)}"
    return f"{name} {_fmt_value(value)}"


_QUANTILES = (0.5, 0.9, 0.95, 0.99)


def _render_one(
    name: str, snap: Any, labels: Mapping[str, str], lines: List[str]
) -> None:
    pname = sanitize_metric_name(name)
    if isinstance(snap, CounterSnapshot):
        lines.append(f"# TYPE {pname} counter")
        lines.append(_line(pname, labels, snap.value))
    elif isinstance(snap, GaugeSnapshot):
        lines.append(f"# TYPE {pname} gauge")
        lines.append(_line(pname, labels, snap.value))
    elif isinstance(snap, HistogramSnapshot):
        lines.append(f"# TYPE {pname} summary")
        for q in _QUANTILES:
            val = snap.quantile(q)
            if val is not None:
                lines.append(_line(pname, {**labels, "quantile": str(q)}, val))
        lines.append(_line(f"{pname}_sum", labels, snap.total))
        lines.append(_line(f"{pname}_count", labels, snap.count))
    else:
        raise TypeError(f"cannot render {type(snap).__name__} for {name!r}")


def _render_plain(
    prefix: str, value: Any, labels: Mapping[str, str], lines: List[str]
) -> None:
    """Flatten a nested stats dict (the gateway ``metrics()`` shape).

    Numbers become gauges; booleans become 0/1 gauges; strings become an
    info-style line ``<name>_info{<leaf>="<value>"} 1`` (which is what
    exercises label-value escaping); nested dicts recurse with the key
    joined by ``_``; lists are skipped.
    """
    if isinstance(value, bool):
        lines.append(f"# TYPE {prefix} gauge")
        lines.append(_line(prefix, labels, int(value)))
    elif isinstance(value, (int, float)):
        lines.append(f"# TYPE {prefix} gauge")
        lines.append(_line(prefix, labels, value))
    elif isinstance(value, str):
        leaf = prefix.rsplit("_", 1)[-1] or "value"
        lines.append(_line(f"{prefix}_info", {**labels, leaf: value}, 1))
    elif isinstance(value, Mapping):
        for key in sorted(value, key=str):
            _render_plain(
                sanitize_metric_name(f"{prefix}_{key}"), value[key], labels, lines
            )
    # lists/None/other: no stable exposition -- skip.


def render_prometheus(
    snapshot: Optional[MetricsSnapshot] = None,
    *,
    extra: Optional[Mapping[str, Any]] = None,
    prefix: str = "repro",
    labels: Optional[Mapping[str, str]] = None,
) -> str:
    """Render a snapshot (and/or a nested plain-stats dict) as text 0.0.4.

    ``extra`` takes a nested dict like the gateway's ``metrics()`` and
    flattens it; ``snapshot`` renders typed obs metrics with proper
    TYPE headers and quantile series.  Returns a string ending in a
    newline, ready to serve with :data:`PROM_CONTENT_TYPE`.
    """
    labels = dict(labels or {})
    lines: List[str] = []
    if snapshot is not None:
        for name, snap in sorted(snapshot.metrics.items()):
            _render_one(sanitize_metric_name(f"{prefix}_{name}"), snap, labels, lines)
    if extra:
        for key in sorted(extra, key=str):
            _render_plain(
                sanitize_metric_name(f"{prefix}_{key}"), extra[key], labels, lines
            )
    return "\n".join(lines) + "\n" if lines else ""

"""Spans: where did this request's time go?

A :func:`span` is a context manager that records one timed region --
name, wall-clock start, duration, free-form attributes, and its parent
span -- into the current thread's trace sink.  The API is built around
three constraints:

1. **Disabled must cost nothing.**  When tracing is off (the default),
   ``span(...)`` is one global-flag check returning a shared no-op
   singleton -- no allocation, no clock read.  The hot paths this
   instruments (DP cells, distance tiles) cannot afford more.
2. **Spans cross process boundaries.**  The ``processes`` and ``pool``
   backends run ranks in other address spaces.  A small picklable
   :class:`TraceContext` carries (trace id, parent span id) to the
   worker; the worker's spans come back as picklable
   :class:`SpanRecord` lists and are stitched under the dispatching
   span.  Start timestamps use ``time.time()`` (comparable across
   processes); durations use a ``perf_counter`` delta (monotonic).
3. **Per-job views without losing the global one.**  :func:`collect`
   installs a fresh per-job buffer for the current thread that *tees*
   into whatever sink was active -- so a service job can attach its own
   stage breakdown to the result while the process-wide buffer (capped,
   drained by ``repro trace`` / ``loadtest --trace-out``) still sees
   everything.

Exports: :func:`to_chrome_trace` renders records as Chrome trace-event
JSON (load at ``ui.perfetto.dev`` or ``chrome://tracing``);
:func:`stage_breakdown` folds them into a nested per-stage duration
tree keyed by span name.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "SpanRecord",
    "TraceBuffer",
    "TraceContext",
    "collect",
    "disable_tracing",
    "drain_spans",
    "enable_tracing",
    "global_records",
    "install_context",
    "propagation_context",
    "record_spans",
    "restore_context",
    "span",
    "stage_breakdown",
    "to_chrome_trace",
    "tracing_enabled",
]

#: Cap on the process-wide buffer: old spans fall off rather than
#: growing memory without bound under a long-lived server.
GLOBAL_BUFFER_CAP = 100_000

_enabled = False
_id_counter = itertools.count(1)
_tls = threading.local()


@dataclass(frozen=True)
class SpanRecord:
    """One finished span; picklable, merge-free (just concatenate lists)."""

    name: str
    span_id: str
    parent_id: Optional[str]
    trace_id: str
    pid: int
    tid: int
    t0: float  # wall-clock start (time.time(); cross-process comparable)
    dur: float  # seconds (perf_counter delta; monotonic)
    attrs: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class TraceContext:
    """What a worker needs to parent its spans under the dispatch site."""

    trace_id: str
    parent_id: Optional[str]


class TraceBuffer:
    """An append-only span sink, optionally teeing into another sink."""

    def __init__(self, tee: Optional["TraceBuffer"] = None, maxlen: Optional[int] = None):
        self._records: deque = deque(maxlen=maxlen)
        self._tee = tee
        self._lock = threading.Lock()

    def add(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)
        if self._tee is not None:
            self._tee.add(record)

    def extend(self, records: Iterable[SpanRecord]) -> None:
        for r in records:
            self.add(r)

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._records)

    def drain(self) -> List[SpanRecord]:
        with self._lock:
            out = list(self._records)
            self._records.clear()
        return out


#: Process-wide default sink (bounded; spans land here unless a
#: per-thread sink is installed via :func:`collect` / worker install).
_global_buffer = TraceBuffer(maxlen=GLOBAL_BUFFER_CAP)


def enable_tracing() -> None:
    """Turn span recording on process-wide."""
    global _enabled
    _enabled = True


def disable_tracing() -> None:
    """Turn span recording off (``span()`` returns the no-op again)."""
    global _enabled
    _enabled = False


def tracing_enabled() -> bool:
    return _enabled


def _sink() -> TraceBuffer:
    # Explicit None test: an empty TraceBuffer is falsy (len 0), so
    # ``sink or _global_buffer`` would skip a freshly installed buffer.
    sink = getattr(_tls, "sink", None)
    return _global_buffer if sink is None else sink


def _stack() -> List[str]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def _trace_id() -> str:
    tid = getattr(_tls, "trace_id", None)
    if tid is None:
        tid = _tls.trace_id = f"{os.getpid():x}-{next(_id_counter):x}"
    return tid


class _NoopSpan:
    """The disabled-path singleton: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("name", "attrs", "span_id", "parent_id", "_t0", "_perf0")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.span_id = f"{os.getpid():x}-{next(_id_counter):x}"
        self.parent_id: Optional[str] = None
        self._t0 = 0.0
        self._perf0 = 0.0

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        stack = _stack()
        self.parent_id = stack[-1] if stack else getattr(_tls, "base_parent", None)
        stack.append(self.span_id)
        self._t0 = time.time()
        self._perf0 = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        dur = time.perf_counter() - self._perf0
        stack = _stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        _sink().add(
            SpanRecord(
                name=self.name,
                span_id=self.span_id,
                parent_id=self.parent_id,
                trace_id=_trace_id(),
                pid=os.getpid(),
                tid=threading.get_ident(),
                t0=self._t0,
                dur=dur,
                attrs=self.attrs,
            )
        )


def span(name: str, **attrs: Any):
    """A timed region.  One flag check and a shared no-op when disabled."""
    if not _enabled:
        return _NOOP
    return _Span(name, attrs)


# ---------------------------------------------------------------------------
# Per-job collection and cross-process propagation.


@contextmanager
def collect(tee: bool = True):
    """Install a fresh per-thread buffer; yields it; restores on exit.

    With ``tee=True`` (the default) every span still reaches the sink
    that was active before -- the per-job view is a copy, not a theft.
    """
    prev = getattr(_tls, "sink", None)
    tee_target = (prev if prev is not None else _global_buffer) if tee else None
    buf = TraceBuffer(tee=tee_target)
    _tls.sink = buf
    try:
        yield buf
    finally:
        _tls.sink = prev


def drain_spans() -> List[SpanRecord]:
    """Drain the process-wide buffer."""
    return _global_buffer.drain()


def global_records() -> List[SpanRecord]:
    """Copy the process-wide buffer without draining it.

    For observers (the loadtest report) that want a view of what other
    threads recorded while leaving the spans for whoever exports the
    full trace.
    """
    return _global_buffer.records()


def record_spans(records: Iterable[SpanRecord]) -> None:
    """Feed foreign spans (e.g. shipped back from a worker) into the
    current thread's sink, so they tee exactly like local spans."""
    _sink().extend(records)


def propagation_context() -> TraceContext:
    """Capture (trace id, innermost open span) for shipping to a worker."""
    stack = getattr(_tls, "stack", None)
    parent = stack[-1] if stack else getattr(_tls, "base_parent", None)
    return TraceContext(trace_id=_trace_id(), parent_id=parent)


def install_context(ctx: TraceContext):
    """Adopt a parent's trace context in a worker thread/process.

    Installs a fresh NON-teeing buffer as this thread's sink (the
    worker's spans are shipped back explicitly, and must not also land
    in this process's global buffer -- under the ``threads`` backend
    that would double-record them), force-enables tracing (a context is
    only ever shipped when the parent had tracing on; spawn-start
    workers don't inherit the flag), and returns an opaque token for
    :func:`restore_context`.
    """
    global _enabled
    token = (
        getattr(_tls, "sink", None),
        getattr(_tls, "stack", None),
        getattr(_tls, "trace_id", None),
        getattr(_tls, "base_parent", None),
        _enabled,
    )
    buf = TraceBuffer()
    _tls.sink = buf
    _tls.stack = []
    _tls.trace_id = ctx.trace_id
    _tls.base_parent = ctx.parent_id
    _enabled = True
    return buf, token


def restore_context(token) -> None:
    """Undo :func:`install_context` (pass its returned token)."""
    global _enabled
    sink, stack, trace_id, base_parent, enabled = token
    _tls.sink = sink
    _tls.stack = stack if stack is not None else []
    _tls.trace_id = trace_id
    _tls.base_parent = base_parent
    _enabled = enabled


# ---------------------------------------------------------------------------
# Exports.


def to_chrome_trace(records: Sequence[SpanRecord]) -> Dict[str, Any]:
    """Chrome trace-event JSON (complete "X" events; Perfetto-loadable).

    Timestamps are microseconds of wall-clock ``time.time()``, so spans
    recorded in different processes line up on one timeline.
    """
    events = []
    for r in records:
        events.append(
            {
                "name": r.name,
                "ph": "X",
                "ts": r.t0 * 1e6,
                "dur": r.dur * 1e6,
                "pid": r.pid,
                "tid": r.tid,
                "args": {
                    "span_id": r.span_id,
                    "parent_id": r.parent_id,
                    "trace_id": r.trace_id,
                    **r.attrs,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, records: Sequence[SpanRecord]) -> None:
    """Serialise :func:`to_chrome_trace` to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(records), fh, indent=1)


def stage_breakdown(records: Sequence[SpanRecord]) -> List[Dict[str, Any]]:
    """Fold span records into a nested per-stage duration tree.

    Children are grouped under their parent *by span name* and
    aggregated (count, total seconds); roots are spans whose parent is
    not among ``records``.  Siblings sort by total duration descending,
    so the first child of any stage is where the time went.
    """
    by_parent: Dict[Optional[str], List[SpanRecord]] = {}
    ids = {r.span_id for r in records}
    for r in records:
        key = r.parent_id if r.parent_id in ids else None
        by_parent.setdefault(key, []).append(r)

    def fold(children: List[SpanRecord]) -> List[Dict[str, Any]]:
        groups: Dict[str, Dict[str, Any]] = {}
        for r in sorted(children, key=lambda r: r.t0):
            node = groups.get(r.name)
            if node is None:
                node = groups[r.name] = {
                    "stage": r.name,
                    "count": 0,
                    "total_s": 0.0,
                    "_members": [],
                }
            node["count"] += 1
            node["total_s"] += r.dur
            node["_members"].append(r.span_id)
        out = []
        for node in groups.values():
            sub: List[SpanRecord] = []
            for sid in node.pop("_members"):
                sub.extend(by_parent.get(sid, ()))
            node["total_s"] = round(node["total_s"], 6)
            kids = fold(sub)
            if kids:
                node["children"] = kids
            out.append(node)
        out.sort(key=lambda n: -n["total_s"])
        return out

    return fold(by_parent.get(None, []))

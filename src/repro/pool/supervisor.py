"""Lifecycle supervision for :class:`~repro.pool.workers.WorkerPool`.

A persistent pool needs what a per-call backend gets for free: someone
has to notice when a long-lived worker dies *between* runs, restart it,
shrink the pool when it has been idle, and make worker shutdown
terminate→kill-escalate the same way PR 3 hardened the per-call
backends.  That someone is :class:`PoolSupervisor`, a daemon thread with
three duties per tick:

- **crash respawn** -- a desired slot whose process is gone is recycled
  (queues drained of stale wires, fresh process on the same queues);
- **hang detection** -- a worker whose heartbeat has gone stale for ~10
  intervals while the pool is idle is force-recycled (its beat thread is
  a daemon that survives any amount of compute, so a stale beat means
  the process is truly wedged, not busy);
- **idle shrink** -- above ``min_workers``, workers idle longer than
  ``idle_timeout`` are stopped; the next dispatch restarts them.

The supervisor only acts when it can take the dispatch lock without
blocking: mid-run crash handling belongs to the dispatcher (which sees
the death first through its report-collection loop), and a supervisor
that waited on the lock could stall behind a long run and pile up work.
"""

from __future__ import annotations

import time
from threading import Event, Thread
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pool.workers import WorkerPool

__all__ = ["PoolSupervisor", "escalate"]

#: Missed heartbeat intervals before an idle worker counts as hung.
_HUNG_BEATS = 10.0

#: Floor on the hang threshold: never call a worker hung in under 5 s.
_HUNG_FLOOR_S = 5.0


def escalate(proc, join_timeout: float = 1.0) -> None:
    """terminate → kill a worker process, bounded (PR 3 semantics)."""
    if proc is None or not proc.is_alive():
        return
    proc.terminate()
    proc.join(join_timeout)
    if proc.is_alive():  # pragma: no cover - SIGTERM almost always lands
        proc.kill()
        proc.join(join_timeout)


class PoolSupervisor:
    """Daemon thread running the pool's periodic health checks."""

    def __init__(self, pool: "WorkerPool") -> None:
        self._pool = pool
        self._stop = Event()
        self._thread = Thread(
            target=self._loop, name=f"{pool.name}-supervisor", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout)

    # -- the tick ------------------------------------------------------------

    def _loop(self) -> None:
        interval = self._pool.heartbeat_interval
        while not self._stop.wait(interval):
            try:
                self._tick()
            except Exception:  # pragma: no cover - supervision never raises
                pass

    def _tick(self) -> None:
        pool = self._pool
        if pool.closed:
            return
        # Never contend with a dispatch in flight: the dispatcher owns
        # mid-run failure handling.
        if not pool._dispatch_lock.acquire(blocking=False):
            return
        try:
            if pool.closed:
                return
            self._respawn_dead()
            self._recycle_hung()
            pool._shrink_idle()
        finally:
            pool._dispatch_lock.release()

    def _respawn_dead(self) -> None:
        pool = self._pool
        with pool._state_lock:
            reap = [
                s.index for s in pool._slots
                if not s.desired and s.proc is not None and not s.alive
            ]
            crashed = any(
                s.desired and s.proc is not None and not s.alive
                for s in pool._slots
            )
        for index in reap:  # clean exits (idle shrink): just fold away
            pool._reap_slot(index)
        if crashed:
            # A signal death may have poisoned shared queue locks, so
            # recovery is always the pool-wide reset.
            pool._reset_workers()

    def _recycle_hung(self) -> None:
        pool = self._pool
        threshold = max(
            _HUNG_BEATS * pool.heartbeat_interval, _HUNG_FLOOR_S
        )
        now = time.time()
        with pool._state_lock:
            hung = any(
                s.desired and s.alive
                and pool._heartbeats[s.index] > 0.0
                and now - pool._heartbeats[s.index] > threshold
                for s in pool._slots
            )
        if hung:
            pool._reset_workers()

"""The ``"pool"`` execution backend and the process-default pool.

:class:`PoolBackend` is the registry face of :mod:`repro.pool`: it
satisfies the :class:`~repro.parcomp.backends.ExecutionBackend` contract
(same program semantics, same abort semantics, byte-identical results)
while executing ranks on a warm :class:`~repro.pool.workers.WorkerPool`
instead of freshly spawned processes.  Two behaviours are layered on top
of the raw pool:

- **crash retry** -- a :class:`~repro.pool.workers.WorkerCrashError`
  means a worker *process* died, not that the program failed.  The rank
  programs this repo runs (distance tiles, merge DAG ranks,
  Sample-Align-D) are deterministic and side-effect-free, so the whole
  run is retried on the respawned workers -- the caller still gets the
  byte-identical result or, after ``max_retries`` consecutive crashes,
  a ``RuntimeError``.  Program exceptions are never retried.
- **capacity fallback** -- a pool has a fixed slot count; a run asking
  for more ranks than that overflows to a cold
  :class:`~repro.parcomp.backends.ProcessBackend` call (counted in
  ``pool.stats()["fallback_runs"]``) rather than failing.

Most callers never construct a pool: ``backend="pool"`` anywhere in the
stack resolves to :func:`get_default_pool`, one process-wide pool created
on first use and closed at interpreter exit.  Long-lived owners (the
serving gateway) install their own pool with :func:`set_default_pool` so
every layer underneath them dispatches onto it.
"""

from __future__ import annotations

import atexit
import os
import threading
from typing import Any, Callable, Optional, Sequence

from repro.obs.tracing import span, tracing_enabled
from repro.parcomp.backends import ExecutionBackend, ProcessBackend, SpmdResult
from repro.parcomp.cost import CostModel
from repro.pool.workers import WorkerCrashError, WorkerPool

__all__ = [
    "PoolBackend",
    "close_default_pool",
    "get_default_pool",
    "set_default_pool",
]


class PoolBackend(ExecutionBackend):
    """Run SPMD programs on a persistent, supervised worker pool.

    Parameters
    ----------
    pool:
        The :class:`WorkerPool` to dispatch onto.  ``None`` (the common
        case -- every ``backend="pool"`` string resolves here) means the
        process-default pool from :func:`get_default_pool`, re-resolved
        per run so a gateway-installed pool takes effect immediately.
    max_retries:
        Whole-run retries after worker *crashes* (program errors are
        never retried).  Sound because the repo's rank programs are
        deterministic and side-effect-free.
    """

    name = "pool"

    def __init__(
        self, pool: Optional[WorkerPool] = None, max_retries: int = 2
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self._pool = pool
        self.max_retries = max_retries

    @property
    def pool(self) -> WorkerPool:
        return self._pool if self._pool is not None else get_default_pool()

    def run(
        self,
        n_ranks: int,
        fn: Callable[..., Any],
        args: Sequence[Any] = (),
        rank_args: Optional[Sequence[Sequence[Any]]] = None,
        cost_model: CostModel | None = None,
        **kwargs: Any,
    ) -> SpmdResult:
        self._validate(n_ranks, rank_args)
        pool = self.pool
        if n_ranks > pool.max_workers:
            # Fixed slot count: overflow runs cold rather than failing.
            pool.note_fallback()
            res = ProcessBackend(start_method=pool.start_method).run(
                n_ranks, fn, args, rank_args, cost_model, **kwargs
            )
            return SpmdResult(res.results, res.ledger, backend=self.name)
        last_crash: Optional[WorkerCrashError] = None
        for _attempt in range(self.max_retries + 1):
            try:
                with span(
                    "pool.dispatch", ranks=n_ranks, attempt=_attempt
                ) as dispatch_span:
                    result = pool.run_spmd(
                        n_ranks, fn, args, rank_args, cost_model, **kwargs
                    )
                    if tracing_enabled():
                        # stats() scans /dev/shm -- only pay for it when
                        # someone is looking at the trace.
                        transport = pool.stats().get("transport", {})
                        dispatch_span.set(
                            shm_msgs=transport.get("shm_msgs"),
                            shm_bytes=transport.get("shm_bytes"),
                            pickle_msgs=transport.get("pickle_msgs"),
                            pickle_bytes=transport.get("pickle_bytes"),
                        )
                    return result
            except WorkerCrashError as exc:
                last_crash = exc
        raise RuntimeError(
            f"pool run failed after {self.max_retries + 1} attempts "
            f"(workers kept dying): {last_crash!r}"
        ) from last_crash


# ---------------------------------------------------------------------------
# The process-default pool.

_default_pool: Optional[WorkerPool] = None
_default_lock = threading.Lock()


def get_default_pool() -> WorkerPool:
    """The process-wide pool, created on first use.

    Sized by ``REPRO_POOL_WORKERS`` (default: host cores, min 2) and
    closed automatically at interpreter exit.  Refuses to run inside a
    pool worker: a rank program that asked for ``backend="pool"`` again
    would fork a pool per worker, recursively.
    """
    if os.environ.get("REPRO_POOL_IN_WORKER"):
        raise RuntimeError(
            "backend='pool' is not available inside a pool worker; "
            "nested runs should use backend='threads'"
        )
    global _default_pool
    with _default_lock:
        if _default_pool is None or _default_pool.closed:
            _default_pool = WorkerPool()
        return _default_pool


def set_default_pool(pool: Optional[WorkerPool]) -> Optional[WorkerPool]:
    """Install ``pool`` as the process default; returns the previous one.

    The previous pool is *not* closed -- the caller decides (the gateway
    restores it on shutdown).  Passing ``None`` just clears the slot so
    the next :func:`get_default_pool` creates a fresh pool.
    """
    global _default_pool
    with _default_lock:
        previous, _default_pool = _default_pool, pool
        return previous


def close_default_pool() -> None:
    """Close and clear the process-default pool (idempotent; atexit)."""
    global _default_pool
    with _default_lock:
        pool, _default_pool = _default_pool, None
    if pool is not None:
        pool.close()


atexit.register(close_default_pool)

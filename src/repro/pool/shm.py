"""Zero-copy payload transport over :mod:`multiprocessing.shared_memory`.

The pool's wire problem: the ``processes`` backend pickles every payload
into a queue, so a 10 MB profile block is serialised, copied into a pipe
buffer kernel-side, and copied out again.  This module gives the pool a
second lane: payloads above a size threshold ride a *named shared-memory
segment* and only a tiny :class:`ShmRef` descriptor crosses the queue.

Encoding uses pickle protocol 5 with out-of-band buffers: numpy arrays
(sequence code batches, condensed distance tiles, profile frequency
blocks) are written straight from their source memoryview into the
segment -- one copy in, and on the borrowing decode path zero copies out
(the consumer's arrays are views into the segment until it releases
them).

Segment lifecycle is explicit because the stdlib resource tracker cannot
express "created here, consumed there":

- every segment carries a compact header (magic, version, buffer table)
  so a stale or foreign segment is rejected instead of misread;
- each process keeps a :class:`SegmentRegistry` of segments it is
  responsible for; the **consumer unlinks** (every payload has exactly
  one consumer -- a task, a rank message, or a report);
- senders ``forget`` a segment once its descriptor is queued
  (responsibility travels with the message), and queue *drains* on
  abort/close unlink any descriptors still in flight
  (:func:`unlink_wire`);
- both sides unregister from the stdlib resource tracker, so our
  registry is the single source of truth and interpreter exit never
  double-unlinks or warns.

``encode_payload`` falls back to an inline pickled wire for payloads
below ``threshold`` -- a queue hop is cheaper than a segment for small
messages (barrier clocks, tile offsets, status reports).
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import uuid
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_SHM_THRESHOLD",
    "SegmentRegistry",
    "ShmRef",
    "TransportStats",
    "decode_payload",
    "encode_payload",
    "unlink_segment",
    "unlink_wire",
]

#: Payloads at or above this many serialised bytes ride shared memory;
#: smaller ones stay inline on the queue.  Overridable per pool and via
#: ``REPRO_POOL_SHM_THRESHOLD``.
DEFAULT_SHM_THRESHOLD = 64 * 1024

#: Segment header: magic, version, n_buffers, main-blob length.
_MAGIC = b"RPSM"
_VERSION = 1
_HEADER = struct.Struct("<4sHHQ")


def _align8(n: int) -> int:
    return (n + 7) & ~7


@dataclass(frozen=True)
class ShmRef:
    """Queue-sized descriptor of one shared-memory payload."""

    name: str
    nbytes: int  #: serialised payload bytes inside the segment


@dataclass
class TransportStats:
    """Byte accounting of one endpoint's encodes (shm lane vs pickle lane)."""

    shm_msgs: int = 0
    shm_bytes: int = 0
    pickle_msgs: int = 0
    pickle_bytes: int = 0

    def absorb(self, other: "TransportStats" | Dict[str, int]) -> None:
        if isinstance(other, TransportStats):
            other = other.to_dict()
        self.shm_msgs += int(other.get("shm_msgs", 0))
        self.shm_bytes += int(other.get("shm_bytes", 0))
        self.pickle_msgs += int(other.get("pickle_msgs", 0))
        self.pickle_bytes += int(other.get("pickle_bytes", 0))

    def to_dict(self) -> Dict[str, int]:
        return {
            "shm_msgs": self.shm_msgs,
            "shm_bytes": self.shm_bytes,
            "pickle_msgs": self.pickle_msgs,
            "pickle_bytes": self.pickle_bytes,
        }


_tracker_lock = threading.Lock()


def _open_shm(
    name: Optional[str] = None, create: bool = False, size: int = 0
) -> shared_memory.SharedMemory:
    """Open a segment without registering it with the resource tracker.

    On this interpreter (pre-3.13, no ``track=False``) *both* creating
    and attaching register with the tracker (bpo-39959).  The tracker's
    cache is a set shared by the whole fork tree, so creator/consumer
    register+unregister pairs interleaving across processes corrupt it
    (KeyError spam in the tracker, or a double unlink at exit).  The
    pool manages segment lifecycle itself -- :class:`SegmentRegistry`
    plus the close-time name-prefix sweep -- so registration is
    suppressed at the source by patching ``register`` out for the
    duration of the constructor.
    """
    with _tracker_lock:
        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(
                name=name, create=create, size=size
            )
        finally:
            resource_tracker.register = original


def _unlink_handle(seg: shared_memory.SharedMemory) -> bool:
    """``seg.unlink()`` without the tracker unregister it would emit.

    The stdlib's ``unlink`` unconditionally unregisters -- but nothing
    was registered (:func:`_open_shm`), and an unmatched unregister
    corrupts the tracker cache shared across the fork tree.
    """
    with _tracker_lock:
        original = resource_tracker.unregister
        resource_tracker.unregister = lambda *a, **k: None
        try:
            seg.unlink()
        except FileNotFoundError:  # raced with another cleaner
            return False
        finally:
            resource_tracker.unregister = original
    return True


def unlink_segment(name: str) -> bool:
    """Unlink segment ``name`` if it still exists; True when it did."""
    try:
        seg = _open_shm(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    return _unlink_handle(seg)


def unlink_wire(wire: Any) -> bool:
    """Unlink the segment behind a wire tuple, if it has one.

    Queue drains call this on every in-flight message after an abort or
    at close, so a payload nobody will ever consume cannot leak its
    segment.
    """
    if isinstance(wire, tuple) and len(wire) == 2 and wire[0] in ("s", "S"):
        return unlink_segment(wire[1].name)
    return False


class SegmentRegistry:
    """The segments one process is currently responsible for.

    Two responsibility classes share the table:

    - ``created``: segments this process created and has not yet handed
      off (``forget``) to a queued message;
    - ``borrowed``: segments this process attached to for a zero-copy
      decode and must unlink once the borrowing scope ends
      (:meth:`release`/:meth:`release_all`).

    ``close_all`` unlinks everything still owned -- the crash/exit
    backstop that keeps ``/dev/shm`` clean no matter how a run ended.
    """

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self._lock = threading.Lock()
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._seq = 0
        self.stats = TransportStats()
        self.created_total = 0
        self.unlinked_total = 0

    # -- creation / hand-off -------------------------------------------------

    def create(self, size: int) -> shared_memory.SharedMemory:
        """Create (and own) a fresh named segment of at least ``size``."""
        with self._lock:
            self._seq += 1
            name = f"{self.prefix}-{self._seq}-{uuid.uuid4().hex[:8]}"
        seg = _open_shm(name=name, create=True, size=max(size, 1))
        with self._lock:
            self._segments[seg.name] = seg
            self.created_total += 1
        return seg

    def forget(self, name: str) -> None:
        """Hand responsibility off (the descriptor is on a queue now)."""
        with self._lock:
            seg = self._segments.pop(name, None)
        if seg is not None:
            seg.close()

    # -- borrowing (zero-copy decode) ---------------------------------------

    def adopt(self, seg: shared_memory.SharedMemory) -> None:
        """Own an attached segment until :meth:`release` (borrow decode)."""
        with self._lock:
            self._segments[seg.name] = seg

    def release(self, name: str) -> None:
        """End a borrow (or abandon a created segment): close + unlink."""
        with self._lock:
            seg = self._segments.pop(name, None)
        if seg is None:
            return
        try:
            seg.close()
        except BufferError:
            # A borrower still holds views into the mapping; unlinking
            # the name is what matters -- the mapping itself dies with
            # the last view (or the process).
            pass
        if _unlink_handle(seg):
            with self._lock:
                self.unlinked_total += 1

    def release_all(self) -> None:
        with self._lock:
            names = list(self._segments)
        for name in names:
            self.release(name)

    close_all = release_all

    # -- introspection -------------------------------------------------------

    def names(self) -> List[str]:
        with self._lock:
            return list(self._segments)

    @property
    def live_segments(self) -> int:
        with self._lock:
            return len(self._segments)

    @property
    def live_bytes(self) -> int:
        with self._lock:
            return sum(s.size for s in self._segments.values())


def encode_payload(
    obj: Any,
    registry: Optional[SegmentRegistry] = None,
    threshold: int = DEFAULT_SHM_THRESHOLD,
    *,
    shared: bool = False,
) -> Tuple[str, Any]:
    """Serialise ``obj`` into a queue-ready wire tuple.

    Returns ``("i", main, buffers)`` (inline pickle, protocol-5
    out-of-band buffers as bytes) for small payloads, or ``("s", ShmRef)``
    with the bytes parked in a fresh segment from ``registry``.  The
    registry owns the segment until the caller ``forget``\\ s it (after
    the descriptor is safely on a queue).

    ``shared=True`` produces a multi-consumer wire (kind ``"S"``): every
    decoder copies out without unlinking, and the *encoder's* registry
    keeps the segment alive until it ``release``\\ s it.  This is how one
    sequence batch fans out to every rank of an SPMD run through a single
    segment instead of ``n_ranks`` pickled copies.
    """
    buffers: List[pickle.PickleBuffer] = []
    main = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    views = [b.raw() for b in buffers]
    total = len(main) + sum(v.nbytes for v in views)
    if registry is None or total < threshold:
        wire = ("i", main, tuple(bytes(v) for v in views))
        if registry is not None:
            registry.stats.pickle_msgs += 1
            registry.stats.pickle_bytes += total
        for b in buffers:
            b.release()
        return wire

    # Segment layout: header | u64 buffer lengths | main | 8-aligned buffers.
    table = struct.pack(f"<{len(views)}Q", *(v.nbytes for v in views))
    offset = _align8(_HEADER.size + len(table) + len(main))
    size = offset
    for v in views:
        size = _align8(size + v.nbytes)
    seg = registry.create(size)
    buf = seg.buf
    _HEADER.pack_into(buf, 0, _MAGIC, _VERSION, len(views), len(main))
    buf[_HEADER.size : _HEADER.size + len(table)] = table
    start = _HEADER.size + len(table)
    buf[start : start + len(main)] = main
    pos = offset
    for v in views:
        # PickleBuffer.raw() already yields a flat uint8 view.
        buf[pos : pos + v.nbytes] = v
        pos = _align8(pos + v.nbytes)
    for b in buffers:
        b.release()
    registry.stats.shm_msgs += 1
    registry.stats.shm_bytes += total
    return ("s" if not shared else "S", ShmRef(name=seg.name, nbytes=total))


def _parse_segment(seg: shared_memory.SharedMemory):
    try:
        magic, version, n_buffers, main_len = _HEADER.unpack_from(seg.buf, 0)
    except struct.error:
        raise ValueError(
            f"shared-memory segment {seg.name!r} is too small for a "
            "pool payload header"
        ) from None
    if magic != _MAGIC or version != _VERSION:
        raise ValueError(
            f"shared-memory segment {seg.name!r} does not carry a "
            f"version-{_VERSION} pool payload (magic {magic!r})"
        )
    table = struct.unpack_from(f"<{n_buffers}Q", seg.buf, _HEADER.size)
    start = _HEADER.size + 8 * n_buffers
    main = bytes(seg.buf[start : start + main_len])
    pos = _align8(start + main_len)
    views = []
    for nbytes in table:
        views.append(seg.buf[pos : pos + nbytes])
        pos = _align8(pos + nbytes)
    return main, views


def decode_payload(
    wire: Tuple[str, Any],
    registry: Optional[SegmentRegistry] = None,
    *,
    borrow: bool = False,
) -> Any:
    """Reconstruct the object behind a wire tuple.

    ``borrow=True`` (shm wires only; requires ``registry``) rebuilds
    buffer-backed objects as views *into the segment* -- zero copies --
    and parks the segment in ``registry``; the caller must
    ``registry.release(ref.name)`` (or ``release_all``) once the object's
    scope ends.  Default mode copies the buffers out and unlinks the
    segment immediately, so the result owns its memory (the consumer
    unlinks -- every payload has exactly one).
    """
    kind = wire[0]
    if kind == "i":
        _, main, views = wire
        return pickle.loads(main, buffers=views)
    if kind not in ("s", "S"):
        raise ValueError(f"unknown pool wire kind {kind!r}")
    ref: ShmRef = wire[1]
    seg = _open_shm(name=ref.name)
    try:
        main, views = _parse_segment(seg)
    except ValueError:
        try:
            seg.close()
        except BufferError:  # pragma: no cover - traceback holds views
            pass
        raise
    if borrow:
        if registry is None:
            raise ValueError("borrow decode needs a SegmentRegistry")
        if kind == "S":
            raise ValueError("shared wires cannot be borrow-decoded")
        obj = pickle.loads(main, buffers=views)
        registry.adopt(seg)
        return obj
    # bytearray copies keep reconstructed arrays writable, matching a
    # plain pickle round-trip on the other backends.
    obj = pickle.loads(main, buffers=[bytearray(v) for v in views])
    for v in views:  # drop the exports so the mapping can close
        v.release()
    seg.close()
    if kind == "S":  # multi-consumer: the encoder's registry unlinks
        return obj
    _unlink_handle(seg)
    return obj


def shm_dir_segments(prefix: str) -> List[str]:
    """Names of live segments under ``prefix`` (Linux ``/dev/shm`` scan).

    Best-effort: returns ``[]`` on platforms without a ``/dev/shm``.
    Used by crash cleanup and by the leak-check tests.
    """
    base = "/dev/shm"
    if not os.path.isdir(base):  # pragma: no cover - non-Linux
        return []
    return sorted(
        name for name in os.listdir(base) if name.startswith(prefix)
    )

"""repro.pool: persistent worker pool with shared-memory transport.

The third execution backend.  Where ``threads`` shares one core behind
the GIL and ``processes`` pays a fork per rank per call, ``"pool"`` keeps
a supervised set of long-lived worker processes warm and reuses them for
every SPMD run, all-pairs distance schedule and progressive merge --
repeated short jobs pay a queue round-trip instead of a process start,
and large payloads ride zero-copy shared-memory segments instead of
pickled pipes.

Layout:

- :mod:`repro.pool.shm` -- the payload wire: inline pickle below a size
  threshold, named shared-memory segments (single-consumer or fan-out)
  above it, with registry-tracked guaranteed unlink.
- :mod:`repro.pool.workers` -- :class:`WorkerPool`: slots, queues,
  dispatch, the rank-side transport, drain/close.
- :mod:`repro.pool.supervisor` -- heartbeat liveness, crash respawn,
  idle shrink, terminate→kill escalation.
- :mod:`repro.pool.backend` -- :class:`PoolBackend` (the registered
  ``"pool"`` backend) and the process-default pool.

Select it like any other backend -- ``backend="pool"`` in
``run_spmd``/``all_pairs``/``progressive_merge``/``sample_align_d``,
``--backend pool`` on the CLI -- or hand a configured
:class:`WorkerPool` to :class:`PoolBackend` / ``set_default_pool``.
"""

from repro.pool.backend import (
    PoolBackend,
    close_default_pool,
    get_default_pool,
    set_default_pool,
)
from repro.pool.shm import (
    DEFAULT_SHM_THRESHOLD,
    SegmentRegistry,
    ShmRef,
    TransportStats,
    decode_payload,
    encode_payload,
)
from repro.pool.supervisor import PoolSupervisor
from repro.pool.workers import WorkerCrashError, WorkerPool

__all__ = [
    "DEFAULT_SHM_THRESHOLD",
    "PoolBackend",
    "PoolSupervisor",
    "SegmentRegistry",
    "ShmRef",
    "TransportStats",
    "WorkerCrashError",
    "WorkerPool",
    "close_default_pool",
    "decode_payload",
    "encode_payload",
    "get_default_pool",
    "set_default_pool",
]

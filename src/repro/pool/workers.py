"""The persistent worker pool: long-lived rank processes, reused forever.

The ``processes`` backend pays one ``fork``/``spawn`` per rank per call --
fine for one long SPMD run, ruinous for the short repeated jobs the
serving stack issues (`benchmarks/reports/backend_scaling.json` shows the
startup cost swamping the work).  :class:`WorkerPool` moves that cost to
construction time: ``max_workers`` slot processes are created once
(lazily, or eagerly via :meth:`warm_up`) and every subsequent
:meth:`run_spmd`, ``distance.all_pairs`` or ``tree.progressive_merge``
dispatch reuses them, paying only a queue round-trip.

Topology (fixed at construction, because :mod:`multiprocessing` queues
can only be shared with a child at creation time):

- one *task queue* per slot (dispatch + stop control),
- one *message queue* per slot (SPMD point-to-point; rank ``r`` runs on
  slot ``r``, so peers address ``msg_qs[dst]`` directly),
- one shared *result queue* (task results, rank reports, ready/bye),
- a shared failure :class:`~multiprocessing.Event` and a heartbeat array.

Runs are serialised under a dispatch lock -- the pool is a reusable
*substrate*, not a concurrent scheduler -- and every in-flight message is
tagged with a ``run_id`` so leftovers from an aborted or crashed run are
recognised, drained and their shared-memory segments unlinked instead of
being misread by the next run.

Payloads ride :mod:`repro.pool.shm`: the per-run program/arguments blob
(sequence batches, estimator state) is encoded **once** into a shared
segment that every rank decodes from (kind ``"S"``), and large rank
messages/results travel as single-consumer segments (kind ``"s"``);
everything small stays inline on the queue.

Crash semantics: a worker that dies mid-run (signal, OOM) surfaces as
:class:`WorkerCrashError` after the dead slot is respawned --
infrastructure failure, distinct from a *program* exception (which raises
``RuntimeError("rank r failed: ...")`` exactly like the other backends).
The rank programs this repo runs are deterministic and side-effect-free,
so :class:`~repro.pool.backend.PoolBackend` retries the whole run on
crash and still returns byte-identical results.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.parcomp.backends import SpmdResult
from repro.parcomp.comm import SpmdAbort, Transport, VirtualComm
from repro.parcomp.cost import CommEvent, CostModel, TimingLedger
from repro.pool.shm import (
    DEFAULT_SHM_THRESHOLD,
    SegmentRegistry,
    TransportStats,
    decode_payload,
    encode_payload,
    shm_dir_segments,
    unlink_segment,
    unlink_wire,
)

__all__ = ["WorkerCrashError", "WorkerPool"]

#: Reserved non-int tag for barrier control traffic (matches the
#: processes backend; VirtualComm rejects string tags from programs).
_CTRL_TAG = "__ctrl__"

#: How often blocked loops re-check queues / the failure flag.
_POLL_S = 0.05

#: How long a worker gets to come up before warm-up gives up on it.
_READY_TIMEOUT_S = 15.0


class WorkerCrashError(RuntimeError):
    """A pool worker process died mid-run (infrastructure, not program).

    The dead slot has already been respawned when this reaches the
    caller; :class:`~repro.pool.backend.PoolBackend` retries the run.
    """


def _encode_and_forget(
    obj: Any, registry: SegmentRegistry, threshold: int
) -> Tuple[str, Any]:
    """Encode for a queue and hand segment ownership to the consumer."""
    wire = encode_payload(obj, registry, threshold)
    if wire[0] == "s":
        registry.forget(wire[1].name)
    return wire


def _drain_queue(q: Any) -> int:
    """Empty a queue, unlinking any shm wires riding its items."""
    drained = 0
    while True:
        try:
            item = q.get_nowait()
        except (queue_mod.Empty, OSError, ValueError):
            return drained
        drained += 1
        if isinstance(item, tuple):
            for part in item:
                unlink_wire(part)


# ---------------------------------------------------------------------------
# Worker side (runs in the slot process).


class _PoolRankTransport(Transport):
    """Queue transport for one SPMD rank hosted on a pool slot.

    Same wire semantics as the processes backend's transport -- per-rank
    inbox, local ``(src, tag)`` buffer, linear barrier on the control
    tag -- plus two pool twists: payloads are shm/pickle wires, and every
    message carries the ``run_id`` so stale traffic from a previous
    aborted run is unlinked and dropped instead of delivered.
    """

    def __init__(
        self,
        rank: int,
        n_ranks: int,
        cost_model: Optional[CostModel],
        msg_qs: List[Any],
        fail_event: Any,
        run_id: int,
        registry: SegmentRegistry,
        threshold: int,
    ) -> None:
        self.rank = rank
        self.n_ranks = n_ranks
        self.cost_model = cost_model or CostModel()
        self.ledger = TimingLedger(n_ranks, self.cost_model)
        self._msg_qs = msg_qs
        self._fail_event = fail_event
        self._run_id = run_id
        self._registry = registry
        self._threshold = threshold
        self._buffer: Dict[Tuple[int, Any], deque] = {}

    # -- failure propagation ------------------------------------------------

    def fail(self, exc: BaseException) -> None:
        self._fail_event.set()

    def check_failed(self) -> None:
        if self._fail_event.is_set():
            raise SpmdAbort("another rank failed")

    # -- point-to-point -----------------------------------------------------

    def post(self, src: int, dst: int, tag: int, payload: Any,
             ready_time: float, nbytes: int, kind: str) -> None:
        self.ledger.events.append(
            CommEvent(kind, src, dst, nbytes, tag, send_clock=ready_time)
        )
        wire = _encode_and_forget(payload, self._registry, self._threshold)
        self._msg_qs[dst].put(("p2p", self._run_id, src, tag, wire, ready_time))

    def collect(self, dst: int, src: int, tag: int) -> Tuple[Any, float]:
        key = (src, tag)
        inbox = self._msg_qs[dst]
        while True:
            box = self._buffer.get(key)
            if box:
                wire, ready = box.popleft()
                return decode_payload(wire), ready
            self.check_failed()
            try:
                item = inbox.get(timeout=_POLL_S)
            except queue_mod.Empty:
                continue
            _, m_run, m_src, m_tag, wire, ready = item
            if m_run != self._run_id:  # leftover from an aborted run
                unlink_wire(wire)
                continue
            self._buffer.setdefault((m_src, m_tag), deque()).append(
                (wire, ready)
            )

    def drain_undelivered(self) -> None:
        """Unlink wires buffered but never collected (abort path)."""
        for box in self._buffer.values():
            for wire, _ready in box:
                unlink_wire(wire)
        self._buffer.clear()

    # -- barrier ------------------------------------------------------------

    def barrier(self, clock: float) -> float:
        """Linear clock-max fan-in/out on the control tag (unmetered)."""
        if self.n_ranks == 1:
            return clock
        if self.rank == 0:
            mx = clock
            for src in range(1, self.n_ranks):
                other, _ = self.collect(0, src, _CTRL_TAG)
                mx = max(mx, other)
            for dst in range(1, self.n_ranks):
                self._msg_qs[dst].put(
                    ("p2p", self._run_id, 0, _CTRL_TAG,
                     encode_payload(mx), 0.0)
                )
            return mx
        self._msg_qs[0].put(
            ("p2p", self._run_id, self.rank, _CTRL_TAG,
             encode_payload(clock), 0.0)
        )
        result, _ = self.collect(self.rank, 0, _CTRL_TAG)
        return float(result)


def _report_wire(
    report: Dict[str, Any], registry: SegmentRegistry, threshold: int
) -> Tuple[str, Any]:
    """Encode a report, downgrading unpicklable payloads to an error.

    Same rationale as the processes backend: pickling happens on the
    queue feeder thread where a failure is silent, so serialise here and
    surface the problem as the rank's error instead of a hang.
    """
    try:
        return _encode_and_forget(report, registry, threshold)
    except Exception:
        what = "result" if report["status"] == "ok" else "exception"
        bad = report["result"] if report["status"] == "ok" else report["error"]
        report = dict(
            report,
            result=None,
            status="error",
            error=RuntimeError(
                f"rank {report['rank']} produced an unpicklable "
                f"{what}: {bad!r}"
            ),
        )
        return _encode_and_forget(report, registry, threshold)


def _run_one_rank(
    slot: int,
    item: tuple,
    msg_qs: List[Any],
    result_q: Any,
    fail_event: Any,
    registry: SegmentRegistry,
    threshold: int,
) -> None:
    _, run_id, rank, n_ranks, extra_wire, shared_wire = item
    transport = _PoolRankTransport(
        rank, n_ranks, None, msg_qs, fail_event, run_id, registry, threshold
    )
    comm: Optional[VirtualComm] = None
    status, result, error = "ok", None, None
    try:
        extra = decode_payload(extra_wire)
        fn, args, kwargs, cost_model = decode_payload(shared_wire)
        transport.cost_model = cost_model or CostModel()
        transport.ledger = TimingLedger(n_ranks, transport.cost_model)
        comm = VirtualComm(transport, rank)
        result = fn(comm, *extra, *args, **kwargs)
    except SpmdAbort:
        status = "abort"
    except BaseException as exc:  # noqa: BLE001 - shipped to the pool
        status, error = "error", exc
        transport.fail(exc)
    finally:
        if comm is not None:
            comm.finalize()
        transport.drain_undelivered()
        report = {
            "rank": rank,
            "status": status,
            "result": result,
            "error": error,
            "compute": float(transport.ledger.compute[rank]),
            "clock": float(transport.ledger.clock[rank]),
            "events": list(transport.ledger.events),
            "tstats": registry.stats.to_dict(),
        }
        wire = _report_wire(report, registry, threshold)
        if report["status"] == "error" and status == "ok":
            fail_event.set()  # unpicklable result fails the run
        result_q.put(("rank-report", slot, run_id, rank, wire))


def _run_one_task(
    slot: int,
    item: tuple,
    result_q: Any,
    registry: SegmentRegistry,
    threshold: int,
) -> None:
    _, task_id, wire = item
    status, payload = "ok", None
    try:
        fn, args, kwargs = decode_payload(wire, registry)
        payload = fn(*args, **kwargs)
    except BaseException as exc:  # noqa: BLE001 - shipped to the pool
        status, payload = "error", exc
    try:
        out = _encode_and_forget(payload, registry, threshold)
    except Exception:
        status = "error"
        out = _encode_and_forget(
            RuntimeError(f"task produced an unpicklable payload: {payload!r}"),
            registry, threshold,
        )
    result_q.put(
        ("result", slot, task_id, status, out, registry.stats.to_dict())
    )


def _worker_main(
    slot: int,
    pool_name: str,
    task_q: Any,
    msg_qs: List[Any],
    result_q: Any,
    fail_event: Any,
    heartbeats: Any,
    hb_interval: float,
    threshold: int,
) -> None:
    """Slot process entry point (module-level: picklable for spawn)."""
    # A rank program must not open *another* pool inside a worker --
    # get_default_pool() refuses when this marker is set.
    os.environ["REPRO_POOL_IN_WORKER"] = "1"
    registry = SegmentRegistry(f"{pool_name}-w{slot}")

    stop_beat = threading.Event()

    def beat() -> None:
        while not stop_beat.is_set():
            heartbeats[slot] = time.time()
            stop_beat.wait(hb_interval)

    beat_thread = threading.Thread(
        target=beat, name=f"{pool_name}-w{slot}-beat", daemon=True
    )
    beat_thread.start()

    result_q.put(("ready", slot, os.getpid()))
    try:
        while True:
            try:
                item = task_q.get(timeout=1.0)
            except queue_mod.Empty:
                continue
            kind = item[0]
            if kind == "stop":
                break
            try:
                if kind == "rank":
                    _run_one_rank(
                        slot, item, msg_qs, result_q, fail_event,
                        registry, threshold,
                    )
                elif kind == "task":
                    _run_one_task(slot, item, result_q, registry, threshold)
            finally:
                # Anything created but never handed off (error paths) and
                # any borrow still open is released before the next job.
                registry.release_all()
    finally:
        stop_beat.set()
        registry.close_all()
        result_q.put(("bye", slot))
        # Peers that aborted may never drain our sends; don't let queue
        # feeder threads block this process's exit.
        for q in msg_qs:
            q.cancel_join_thread()
        task_q.cancel_join_thread()


# ---------------------------------------------------------------------------
# Pool side.


@dataclass
class _Slot:
    """Parent-side bookkeeping for one worker slot."""

    index: int
    proc: Optional[Any] = None
    desired: bool = False  #: should be running (False after idle shrink)
    last_used: float = field(default_factory=time.monotonic)
    transport: Dict[str, int] = field(default_factory=dict)

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()


class WorkerPool:
    """A fixed set of long-lived worker processes, reused across runs.

    Parameters
    ----------
    max_workers:
        Slot count, fixed for the pool's lifetime (queues must exist
        before workers are born).  Runs needing more ranks than this do
        not fit -- :class:`~repro.pool.backend.PoolBackend` falls back to
        the cold ``processes`` backend for those.
    min_workers:
        Idle shrink floor: the supervisor stops idle workers above this
        count after ``idle_timeout`` seconds without work.  They restart
        transparently on the next dispatch that needs them.
    start_method:
        :mod:`multiprocessing` start method; default is
        ``REPRO_POOL_START_METHOD``, else ``REPRO_SPMD_START_METHOD``,
        else ``fork`` where available.  Unlike the processes backend,
        programs/arguments are *always* pickled (dispatch rides queues),
        so module-level functions are required on every start method.
    shm_threshold:
        Payload size (serialised bytes) at which transport switches from
        inline pickle to shared memory (``REPRO_POOL_SHM_THRESHOLD``
        overrides the default).
    idle_timeout:
        Seconds of pool-wide idleness before the supervisor shrinks
        towards ``min_workers``.
    heartbeat_interval:
        Worker heartbeat period; the supervisor treats a worker as hung
        after ~10 missed beats.
    respawn:
        Automatically restart dead workers (the supervisor while idle,
        the dispatcher mid-run).
    abort_join_timeout:
        Grace period for surviving ranks to report after a failure
        before they are terminated (mirrors the other backends).
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        *,
        min_workers: int = 1,
        start_method: Optional[str] = None,
        shm_threshold: Optional[int] = None,
        idle_timeout: float = 30.0,
        heartbeat_interval: float = 0.5,
        respawn: bool = True,
        abort_join_timeout: float = 10.0,
        name: Optional[str] = None,
    ) -> None:
        if max_workers is None:
            max_workers = default_worker_count()
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if not 1 <= min_workers <= max_workers:
            raise ValueError("need 1 <= min_workers <= max_workers")
        if shm_threshold is None:
            shm_threshold = int(
                os.environ.get("REPRO_POOL_SHM_THRESHOLD", 0)
            ) or DEFAULT_SHM_THRESHOLD
        if shm_threshold < 1:
            raise ValueError("shm_threshold must be >= 1")
        if idle_timeout <= 0 or heartbeat_interval <= 0:
            raise ValueError("timeouts must be > 0")
        if abort_join_timeout <= 0:
            raise ValueError("abort_join_timeout must be > 0")
        if start_method is None:
            start_method = (
                os.environ.get("REPRO_POOL_START_METHOD")
                or os.environ.get("REPRO_SPMD_START_METHOD")
                or None
            )
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else None
            )
        elif start_method not in mp.get_all_start_methods():
            raise ValueError(
                f"unknown start method {start_method!r}; available: "
                f"{mp.get_all_start_methods()}"
            )

        self.max_workers = max_workers
        self.min_workers = min_workers
        self.start_method = start_method
        self.shm_threshold = shm_threshold
        self.idle_timeout = idle_timeout
        self.heartbeat_interval = heartbeat_interval
        self.respawn = respawn
        self.abort_join_timeout = abort_join_timeout
        self.name = name or f"rpool-{os.getpid()}-{uuid.uuid4().hex[:6]}"

        ctx = mp.get_context(self.start_method)
        self._ctx = ctx
        self._task_qs = [ctx.Queue() for _ in range(max_workers)]
        self._msg_qs = [ctx.Queue() for _ in range(max_workers)]
        self._result_q = ctx.Queue()
        self._fail_event = ctx.Event()
        self._heartbeats = ctx.Array("d", max_workers)
        self._slots = [_Slot(i) for i in range(max_workers)]
        self._registry = SegmentRegistry(f"{self.name}-m")

        #: Serialises runs: the pool is a substrate, not a scheduler.
        self._dispatch_lock = threading.RLock()
        #: Guards slot/counter state (always acquired after the
        #: dispatch lock, never the other way around).
        self._state_lock = threading.RLock()

        self._run_seq = 0
        self._closed = False
        self.respawns = 0
        self.runs = 0
        self.tasks_served = 0
        self.fallback_runs = 0
        self._retired_transport = TransportStats()

        from repro.pool.supervisor import PoolSupervisor

        self._supervisor = PoolSupervisor(self)
        self._supervisor.start()

    # -- lifecycle -----------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def warm_up(self, n_workers: Optional[int] = None) -> None:
        """Start (and wait for) ``n_workers`` slots ahead of the first run."""
        n = self.max_workers if n_workers is None else n_workers
        if not 1 <= n <= self.max_workers:
            raise ValueError(f"n_workers must be in [1, {self.max_workers}]")
        with self._dispatch_lock:
            self._require_open()
            self._ensure_workers(n)

    def close(self, timeout: Optional[float] = None) -> None:
        """Graceful drain: in-flight work finishes, workers stop, shm dies.

        Idempotent.  Acquiring the dispatch lock means any run in flight
        completes first; queued stop tokens then wind the workers down,
        with terminate→kill escalation for any that overstay ``timeout``
        (default: ``abort_join_timeout``).  Every queue is drained and
        every leftover segment with this pool's name prefix is unlinked.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        self._supervisor.stop()
        from repro.pool.supervisor import escalate

        timeout = self.abort_join_timeout if timeout is None else timeout
        with self._dispatch_lock, self._state_lock:
            for slot in self._slots:
                if slot.alive:
                    self._task_qs[slot.index].put(("stop",))
            deadline = time.monotonic() + timeout
            for slot in self._slots:
                if slot.proc is not None:
                    slot.proc.join(max(deadline - time.monotonic(), 0.0))
            for slot in self._slots:
                if slot.alive:
                    escalate(slot.proc)
                self._absorb_transport(slot)
                slot.proc = None
                slot.desired = False
            for q in [*self._task_qs, *self._msg_qs, self._result_q]:
                _drain_queue(q)
                q.cancel_join_thread()
                q.close()
            self._registry.release_all()
            # Backstop: a worker killed outside Python cannot clean its
            # own registry; everything it left carries our name prefix.
            for seg in shm_dir_segments(self.name):
                unlink_segment(seg)

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"worker pool {self.name!r} is closed")

    # -- worker management ---------------------------------------------------

    def _start_slot(self, index: int) -> None:
        slot = self._slots[index]
        self._heartbeats[index] = 0.0
        proc = self._ctx.Process(
            target=_worker_main,
            args=(index, self.name, self._task_qs[index], self._msg_qs,
                  self._result_q, self._fail_event, self._heartbeats,
                  self.heartbeat_interval, self.shm_threshold),
            name=f"{self.name}-w{index}",
            daemon=True,
        )
        proc.start()
        slot.proc = proc
        slot.desired = True
        slot.last_used = time.monotonic()

    def _ensure_workers(self, n: int) -> None:
        """Slots ``0..n-1`` running and heart-beating (rank r = slot r)."""
        with self._state_lock:
            crashed = any(
                s.proc is not None and not s.alive and s.proc.exitcode != 0
                for s in self._slots
            )
        if crashed:
            # A dispatch can reach a signal death before the supervisor
            # does.  The dead worker may hold queue locks (an idle
            # ``get`` holds the task queue's reader lock), so starting a
            # replacement on the old queues would block forever -- any
            # non-clean exit forces the pool-wide reset.
            self._reset_workers()
        started = []
        with self._state_lock:
            for i in range(n):
                slot = self._slots[i]
                slot.desired = True
                slot.last_used = time.monotonic()
                if not slot.alive:
                    self._absorb_transport(slot)
                    self._start_slot(i)
                    started.append(i)
        deadline = time.monotonic() + _READY_TIMEOUT_S
        for i in started:
            while self._heartbeats[i] == 0.0:
                if not self._slots[i].alive or time.monotonic() > deadline:
                    raise WorkerCrashError(
                        f"worker {i} of pool {self.name!r} failed to start"
                    )
                time.sleep(0.005)

    def _reap_slot(self, index: int) -> None:
        """Fold away a slot whose worker exited *cleanly* (idle shrink)."""
        with self._state_lock:
            slot = self._slots[index]
            if slot.proc is not None and not slot.alive:
                slot.proc.join(0)
                self._absorb_transport(slot)
                slot.proc = None

    def _reset_workers(self) -> None:
        """Crash recovery: rebuild the whole substrate, then re-warm.

        A worker that died by signal (or was force-terminated while
        hung) may have been holding a :mod:`multiprocessing` queue lock
        at the moment of death -- its slot queue's read lock, a peer
        inbox's write lock, the shared result queue's write lock.  Those
        locks never release, so surgically respawning one slot onto the
        old queues can deadlock the survivors.  Recovery is therefore
        pool-wide: escalate every worker, drain what is drainable
        (unlinking shm wires), recreate every queue/event/heartbeat,
        sweep orphaned segments by name prefix, and restart the desired
        slots.  Expensive, but crashes are the rare path and the result
        is a provably clean substrate.
        """
        from repro.pool.supervisor import escalate

        with self._state_lock:
            restarted = 0
            for slot in self._slots:
                if slot.alive:
                    escalate(slot.proc)
                if slot.proc is not None:
                    slot.proc.join(0)
                    self._absorb_transport(slot)
                    slot.proc = None
            for q in [*self._task_qs, *self._msg_qs, self._result_q]:
                _drain_queue(q)
                q.cancel_join_thread()
                q.close()
            ctx = self._ctx
            self._task_qs = [ctx.Queue() for _ in range(self.max_workers)]
            self._msg_qs = [ctx.Queue() for _ in range(self.max_workers)]
            self._result_q = ctx.Queue()
            self._fail_event = ctx.Event()
            self._heartbeats = ctx.Array("d", self.max_workers)
            self._sweep_orphans()
            if self.respawn and not self._closed:
                for slot in self._slots:
                    if slot.desired:
                        self._start_slot(slot.index)
                        restarted += 1
            self.respawns += restarted

    def _sweep_orphans(self) -> None:
        """Unlink pool-prefixed segments no live registry accounts for."""
        owned = set(self._registry.names())
        for seg in shm_dir_segments(self.name):
            if seg not in owned:
                unlink_segment(seg)

    def _shrink_idle(self) -> None:
        """Stop idle workers above ``min_workers`` (supervisor-called)."""
        with self._state_lock:
            alive = [s for s in self._slots if s.alive]
            now = time.monotonic()
            for slot in reversed(alive):
                if len(alive) <= self.min_workers:
                    break
                if now - slot.last_used < self.idle_timeout:
                    continue
                self._task_qs[slot.index].put(("stop",))
                slot.desired = False
                alive.remove(slot)

    def _absorb_transport(self, slot: _Slot) -> None:
        """Fold a dead/stopping worker's last-seen byte counts into history."""
        if slot.transport:
            self._retired_transport.absorb(slot.transport)
            slot.transport = {}

    # -- SPMD dispatch -------------------------------------------------------

    def run_spmd(
        self,
        n_ranks: int,
        fn: Callable[..., Any],
        args: Sequence[Any] = (),
        rank_args: Optional[Sequence[Sequence[Any]]] = None,
        cost_model: Optional[CostModel] = None,
        **kwargs: Any,
    ) -> SpmdResult:
        """Execute an SPMD program on warm workers (rank ``r`` on slot ``r``).

        Semantics are identical to the other backends: program errors
        raise ``RuntimeError("rank r failed: ...")``, infrastructure
        deaths raise :class:`WorkerCrashError` (after the dead slots are
        respawned) so the caller may retry on fresh workers.
        """
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if rank_args is not None and len(rank_args) != n_ranks:
            raise ValueError("rank_args must provide one tuple per rank")
        if n_ranks > self.max_workers:
            raise ValueError(
                f"n_ranks={n_ranks} exceeds pool capacity "
                f"{self.max_workers} (use PoolBackend for cold fallback)"
            )
        cost_model = cost_model or CostModel()
        with self._dispatch_lock:
            self._require_open()
            self._ensure_workers(n_ranks)
            self._fail_event.clear()
            with self._state_lock:
                self._run_seq += 1
                run_id = self._run_seq
            # One shared segment fans the program + its arguments (the
            # sequence batches, estimator state, profiles) out to every
            # rank; the pool owns it until all reports are in.
            shared_wire = encode_payload(
                (fn, tuple(args), dict(kwargs), cost_model),
                self._registry, self.shm_threshold, shared=True,
            )
            try:
                for r in range(n_ranks):
                    extra = tuple(rank_args[r]) if rank_args is not None else ()
                    extra_wire = _encode_and_forget(
                        extra, self._registry, self.shm_threshold
                    )
                    self._task_qs[r].put(
                        ("rank", run_id, r, n_ranks, extra_wire, shared_wire)
                    )
                reports, crashed = self._collect_reports(run_id, n_ranks)
            finally:
                if shared_wire[0] == "S":
                    self._registry.release(shared_wire[1].name)
            return self._assemble(n_ranks, cost_model, reports, crashed)

    def _collect_reports(
        self, run_id: int, n_ranks: int
    ) -> Tuple[Dict[int, Dict[str, Any]], Dict[int, BaseException]]:
        reports: Dict[int, Dict[str, Any]] = {}
        crashed: Dict[int, BaseException] = {}
        abort_deadline: Optional[float] = None
        while len(reports.keys() | crashed.keys()) < n_ranks:
            if abort_deadline is None and (
                crashed or self._fail_event.is_set()
            ):
                abort_deadline = time.monotonic() + self.abort_join_timeout
            if (abort_deadline is not None
                    and time.monotonic() >= abort_deadline):
                break
            try:
                entry = self._result_q.get(timeout=0.2)
            except queue_mod.Empty:
                # A worker killed outside Python never reports: detect
                # the death, fail the survivors out of their waits.
                for r in range(n_ranks):
                    slot = self._slots[r]
                    if (not slot.alive and r not in reports
                            and r not in crashed):
                        code = (
                            slot.proc.exitcode if slot.proc is not None
                            else None
                        )
                        crashed[r] = WorkerCrashError(
                            f"worker {r} of pool {self.name!r} died "
                            f"mid-run (exitcode {code})"
                        )
                        self._fail_event.set()
                continue
            kind = entry[0]
            if kind == "rank-report":
                _, slot_idx, rid, rank, wire = entry
                if rid != run_id:  # straggler from an aborted run
                    unlink_wire(wire)
                    continue
                report = decode_payload(wire)
                reports[rank] = report
                with self._state_lock:
                    self._slots[slot_idx].transport = report.get("tstats", {})
                    self._slots[slot_idx].last_used = time.monotonic()
            elif kind == "result":  # stale generic-task result
                unlink_wire(entry[4])
            # "ready"/"bye" control entries need no action.
        return reports, crashed

    def _assemble(
        self,
        n_ranks: int,
        cost_model: CostModel,
        reports: Dict[int, Dict[str, Any]],
        crashed: Dict[int, BaseException],
    ) -> SpmdResult:
        stuck = [
            r for r in range(n_ranks)
            if r not in reports and r not in crashed
        ]
        # Any slot that did not come back clean -- crashed (already
        # dead) or stuck (never observed the abort; deep in compute) --
        # may have poisoned shared queue locks, so recovery rebuilds
        # the whole substrate.
        if crashed or stuck:
            self._reset_workers()

        with self._state_lock:
            self.runs += 1
            self.tasks_served += n_ranks

        reported_errors = {
            r: rep["error"] for r, rep in reports.items()
            if rep["status"] == "error"
        }
        if reported_errors:
            rank = min(reported_errors)
            exc = reported_errors[rank]
            note = (
                f" ({len(stuck)} rank worker(s) terminated while "
                f"unwinding: {', '.join(f'rank-{r}' for r in stuck)})"
                if stuck else ""
            )
            raise RuntimeError(f"rank {rank} failed: {exc!r}{note}") from exc
        if crashed:
            rank = min(crashed)
            raise crashed[rank]
        if stuck:
            raise RuntimeError(
                f"rank(s) {', '.join(str(r) for r in stuck)} never "
                "reported and the pool was recycled"
            )

        ledger = TimingLedger(n_ranks, cost_model)
        results: List[Any] = [None] * n_ranks
        for r in range(n_ranks):
            rep = reports[r]
            results[r] = rep["result"]
            ledger.compute[r] = rep["compute"]
            ledger.clock[r] = rep["clock"]
        for r in sorted(reports):  # rank-major merge: identical ledgers
            ledger.events.extend(reports[r]["events"])
        return SpmdResult(results, ledger, backend="pool")

    # -- generic task dispatch ----------------------------------------------

    def map_tasks(
        self,
        fn: Callable[..., Any],
        items: Sequence[Any],
        *,
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> List[Any]:
        """``[fn(item) for item in items]`` on warm workers, in order.

        The non-SPMD dispatch lane (benchmarks, embarrassingly parallel
        helpers).  Tasks are round-robined over the slots; if a worker
        dies, its unfinished tasks -- queued *and* in-flight -- are
        re-dispatched to the respawned worker, so ``fn`` must be pure
        (every ``fn`` this repo dispatches is).  A task exception raises
        ``RuntimeError`` immediately; remaining results are discarded by
        the next dispatch's staleness filter.
        """
        if not items:
            return []
        kwargs = kwargs or {}
        with self._dispatch_lock:
            self._require_open()
            n = min(self.max_workers, len(items))
            self._ensure_workers(n)
            self._fail_event.clear()
            with self._state_lock:
                self._run_seq += 1
                run_id = self._run_seq

            assigned: Dict[int, int] = {}  # task index -> slot
            results: List[Any] = [None] * len(items)
            done: set = set()

            def dispatch(tid: int, slot_idx: int) -> None:
                wire = _encode_and_forget(
                    (fn, (items[tid],), kwargs),
                    self._registry, self.shm_threshold,
                )
                assigned[tid] = slot_idx
                self._task_qs[slot_idx].put(("task", (run_id, tid), wire))

            for tid in range(len(items)):
                dispatch(tid, tid % n)

            while len(done) < len(items):
                try:
                    entry = self._result_q.get(timeout=0.2)
                except queue_mod.Empty:
                    if all(self._slots[i].alive for i in range(n)):
                        continue
                    # Drain semantics: a dead worker's unfinished tasks
                    # -- queued and in-flight -- are re-dispatched onto
                    # the rebuilt pool (fn is pure, so a task that was
                    # mid-execution re-runs safely).
                    self._reset_workers()
                    self._ensure_workers(n)
                    if not any(self._slots[i].alive for i in range(n)):
                        raise WorkerCrashError(
                            f"pool {self.name!r} lost every worker"
                        )
                    for tid in range(len(items)):
                        if tid not in done:
                            dispatch(tid, tid % n)
                    continue
                kind = entry[0]
                if kind == "result":
                    _, slot_idx, task_id, status, wire, tstats = entry
                    rid, tid = task_id
                    if rid != run_id or tid in done:
                        unlink_wire(wire)
                        continue
                    with self._state_lock:
                        self._slots[slot_idx].transport = tstats
                        self._slots[slot_idx].last_used = time.monotonic()
                    payload = decode_payload(wire)
                    if status == "error":
                        raise RuntimeError(
                            f"pool task {tid} failed: {payload!r}"
                        ) from payload
                    results[tid] = payload
                    done.add(tid)
                elif kind == "rank-report":  # straggler from an aborted run
                    unlink_wire(entry[4])

            with self._state_lock:
                self.runs += 1
                self.tasks_served += len(items)
            return results

    # -- introspection -------------------------------------------------------

    def note_fallback(self) -> None:
        """Record one run that overflowed to the cold processes backend."""
        with self._state_lock:
            self.fallback_runs += 1

    def stats(self) -> Dict[str, Any]:
        """Live pool counters (the gateway surfaces these at ``/metrics``)."""
        with self._state_lock:
            transport = TransportStats()
            transport.absorb(self._retired_transport)
            for slot in self._slots:
                if slot.transport:
                    transport.absorb(slot.transport)
            transport.absorb(self._registry.stats)
            return {
                "name": self.name,
                "start_method": self.start_method,
                "max_workers": self.max_workers,
                "min_workers": self.min_workers,
                "workers_alive": sum(1 for s in self._slots if s.alive),
                "worker_pids": [
                    s.proc.pid for s in self._slots if s.alive
                ],
                "respawns": self.respawns,
                "runs": self.runs,
                "tasks_served": self.tasks_served,
                "fallback_runs": self.fallback_runs,
                "transport": transport.to_dict(),
                "shm_live_segments": len(shm_dir_segments(self.name)),
                "shm_bytes_in_flight": self._registry.live_bytes,
                "closed": self._closed,
            }


def default_worker_count() -> int:
    """Pool size when the caller does not choose: env override, else
    every host core (min 2, so the pool parallelises even tiny hosts)."""
    env = int(os.environ.get("REPRO_POOL_WORKERS", 0) or 0)
    if env > 0:
        return env
    return max(os.cpu_count() or 1, 2)

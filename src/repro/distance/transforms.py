"""Identity/distance post-transforms shared by every estimator.

These are the *single* home of the identity-to-distance math that used
to be duplicated between :mod:`repro.msa.distances` (Kimura) and
:mod:`repro.kmer.distance` (the calibrated fractional-identity map);
both legacy modules now delegate here.

Two transforms are registered:

- ``"linear"`` -- ``d = 1 - id`` (CLUSTALW's fractional-identity
  distance; the default everywhere).
- ``"kimura"`` -- Kimura's (1983) correction ``d = -ln(1 - D - D^2/5)``
  with ``D = 1 - id`` (MUSCLE stage 2), saturated for very divergent
  pairs exactly as MUSCLE does.
"""

from __future__ import annotations

import numpy as np

from repro.seq.alignment import Alignment

__all__ = [
    "TRANSFORMS",
    "alignment_identity_matrix",
    "fractional_identity_estimate",
    "identity_to_distance",
    "kimura_distance",
]

#: Registered identity-to-distance transform names.
TRANSFORMS = ("linear", "kimura")


def kimura_distance(identity: np.ndarray) -> np.ndarray:
    """Kimura's (1983) correction of fractional identity to an additive
    evolutionary distance: ``d = -ln(1 - D - D^2/5)`` with ``D = 1 - id``.

    Saturates (clamps) for very divergent pairs exactly as MUSCLE does.
    Accepts matrices (diagonal re-zeroed) or flat per-pair arrays.
    """
    D = 1.0 - np.asarray(identity, dtype=np.float64)
    arg = 1.0 - D - D * D / 5.0
    arg = np.maximum(arg, 0.05)  # clamp: d <= ~3.0 for near-random pairs
    d = -np.log(arg)
    np.fill_diagonal(d, 0.0) if d.ndim == 2 else None
    return d


def fractional_identity_estimate(match_fraction: np.ndarray) -> np.ndarray:
    """Estimate fractional identity from the k-mer match fraction.

    Edgar (NAR 2004) showed the k-mer match fraction over compressed
    alphabets correlates linearly with fractional identity over the useful
    range; we use the simple calibrated affine map ``id ~= 0.02 + 0.95 * F``
    clipped to ``[0, 1]``.  Only the monotone relationship matters for tree
    building and rank-based bucketing.
    """
    return np.clip(0.02 + 0.95 * np.asarray(match_fraction), 0.0, 1.0)


def identity_to_distance(
    identity: np.ndarray, transform: str = "linear"
) -> np.ndarray:
    """Convert fractional identities to distances via a named transform."""
    if transform == "linear":
        return 1.0 - np.asarray(identity, dtype=np.float64)
    if transform == "kimura":
        return kimura_distance(identity)
    raise ValueError(
        f"unknown identity transform {transform!r}; one of {list(TRANSFORMS)}"
    )


def alignment_identity_matrix(aln: Alignment) -> np.ndarray:
    """Pairwise fractional identity induced by an existing MSA.

    Identity of rows (i, j) = identical residue pairs / columns where both
    rows are non-gap (0 when they never overlap).  Fully vectorised in
    blocks: O(N^2 L) numpy work.  This is MUSCLE's stage-2 re-estimate;
    feed the result to :func:`kimura_distance` (or
    :func:`identity_to_distance` with ``transform="kimura"``) for the
    stage-2 tree distances.
    """
    n, L = aln.matrix.shape
    if n == 0:
        return np.zeros((0, 0))
    gap = aln.alphabet.gap_code
    codes = aln.matrix
    nongap = codes != gap
    ident = np.eye(n)
    block = max(1, (1 << 24) // max(L * n, 1))
    for i0 in range(0, n, block):
        a = codes[i0 : i0 + block]  # (b, L)
        an = nongap[i0 : i0 + block]
        both = an[:, None, :] & nongap[None, :, :]  # (b, n, L)
        same = (a[:, None, :] == codes[None, :, :]) & both
        overlap = both.sum(axis=2)
        matches = same.sum(axis=2)
        with np.errstate(invalid="ignore"):
            frac = np.where(overlap > 0, matches / np.maximum(overlap, 1), 0.0)
        ident[i0 : i0 + block] = frac
    np.fill_diagonal(ident, 1.0)
    return ident

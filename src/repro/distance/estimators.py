"""Pluggable pairwise-distance estimators behind one registry.

The all-pairs distance stage is the scalability wall of guide-tree MSA
(it is *why* Sample-Align-D exists), and before this module every
aligner hard-wired its own copy of the math.  Now each estimator is a
small frozen dataclass with one job -- distances for an arbitrary array
of sequence pairs -- which is exactly the unit the tiled
:func:`repro.distance.all_pairs` scheduler parallelises over the
execution backends.

Registered estimators (speed/accuracy trade-offs):

``ktuple``
    Edgar's k-mer distance ``1 - r_ij`` over a compressed alphabet.
    Alignment-free, O(L) per sequence to prepare and a handful of
    vectorised integer ops per pair -- the fast default (MUSCLE stage 1,
    MAFFT, CLUSTALW "quick" mode).
``kmer-fraction``
    The calibrated fractional-identity estimate from the k-mer match
    fraction (``id ~= 0.02 + 0.95 F``), optionally Kimura-corrected.
    Same cost as ``ktuple``; distances live on an identity scale, so
    they compose with the ``kimura`` post-transform.
``full-dp``
    ``1 - fractional identity`` of the optimal global (Gotoh) alignment.
    O(L^2) per pair -- the expensive, accurate distance stage of
    CLUSTALW; the one worth parallelising over real cores.
``kband``
    Identity from the adaptive banded alignment with certified band
    doubling: near full-DP accuracy at O(k*L) per pair for similar
    sequences (MUSCLE's pairwise trick).

Every identity-based estimator (``full-dp``, ``kband``,
``kmer-fraction``) accepts ``transform="linear"|"kimura"`` -- the shared
post-transform of :mod:`repro.distance.transforms`.  Plug-ins enter via
:func:`register_estimator`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence as TSequence, Union

import numpy as np

from repro.distance.transforms import TRANSFORMS, identity_to_distance
from repro.kmer.counting import KmerCounter
from repro.seq.alphabet import Alphabet, DAYHOFF6
from repro.seq.matrices import BLOSUM62, GapPenalties, SubstitutionMatrix
from repro.seq.sequence import Sequence

__all__ = [
    "DistanceEstimator",
    "FullDpDistance",
    "KbandDistance",
    "KmerFractionDistance",
    "KtupleDistance",
    "available_estimators",
    "estimator_info",
    "get_estimator",
    "register_estimator",
    "unregister_estimator",
    "DEFAULT_ESTIMATOR",
]

#: The estimator used when a caller does not choose one.
DEFAULT_ESTIMATOR = "ktuple"


class DistanceEstimator(ABC):
    """Distances for arbitrary pair-index arrays of a sequence list.

    The contract that makes the tiled scheduler deterministic: the value
    of pair ``(i, j)`` depends only on ``seqs[i]`` and ``seqs[j]`` (plus
    the estimator's own configuration), never on which other pairs share
    the call -- so any tiling of the upper triangle, on any execution
    backend, merges into the byte-identical matrix.

    Instances are small frozen dataclasses: hashable, picklable (they
    cross the process-backend boundary), and stateless -- per-run
    precomputation lives in the ``state`` object returned by
    :meth:`prepare`.
    """

    #: Registry name of the estimator.
    name: str = "abstract"

    def prepare(self, seqs: TSequence[Sequence]) -> Any:
        """Per-run shared precomputation (e.g. k-mer count matrices).

        Called once per rank, not once per tile; the returned state is
        passed back to every :meth:`pair_distances` call.
        """
        return None

    @abstractmethod
    def pair_distances(
        self,
        seqs: TSequence[Sequence],
        ii: np.ndarray,
        jj: np.ndarray,
        state: Any = None,
    ) -> np.ndarray:
        """``float64`` distances of pairs ``(ii[t], jj[t])``."""

    def matrix(self, seqs: TSequence[Sequence]) -> np.ndarray:
        """Full symmetric distance matrix (serial convenience)."""
        from repro.distance.allpairs import all_pairs

        return all_pairs(seqs, self)


def _check_transform(transform: str) -> None:
    if transform not in TRANSFORMS:
        raise ValueError(
            f"unknown identity transform {transform!r}; "
            f"one of {list(TRANSFORMS)}"
        )


@dataclass(frozen=True)
class KtupleDistance(DistanceEstimator):
    """Edgar's alignment-free k-mer distance ``1 - r_ij``.

    ``r_ij`` is the fraction of the shorter sequence's k-mers shared with
    the longer one, counting multiplicity (paper section 2); pairs where
    either sequence is shorter than ``k`` get distance 1.
    """

    k: int = 4
    alphabet: Alphabet = field(default=DAYHOFF6, repr=False)

    name = "ktuple"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")

    def counter(self) -> KmerCounter:
        return KmerCounter(k=self.k, alphabet=self.alphabet)

    def prepare(self, seqs: TSequence[Sequence]) -> Any:
        counter = self.counter()
        n_kmers = np.array(
            [counter.n_kmers(s) for s in seqs], dtype=np.float64
        )
        if counter.dense_ok:
            return ("dense", counter.count_matrix(seqs), n_kmers)
        return (
            "sparse",
            [counter.decorated_kmers(s) for s in seqs],
            n_kmers,
        )

    def _shared_counts(
        self, state: Any, ii: np.ndarray, jj: np.ndarray
    ) -> np.ndarray:
        kind, data, _ = state
        shared = np.empty(len(ii), dtype=np.int64)
        if kind == "dense":
            # The min-sum over a (unique-rows x unique-cols) rectangle
            # runs through the BLAS layer decomposition of
            # _min_sum_dense -- for the contiguous condensed-triangle
            # tiles the scheduler produces, the rectangle is barely
            # larger than the pair list, and both paths yield the same
            # exact integer counts (so schedules stay byte-identical).
            from repro.kmer.distance import _min_sum_dense

            ui, inv_i = np.unique(ii, return_inverse=True)
            uj, inv_j = np.unique(jj, return_inverse=True)
            if ui.size * uj.size <= max(4 * len(ii), 1 << 12):
                rect = _min_sum_dense(data[ui], data[uj])
                shared[:] = rect[inv_i, inv_j]
                return shared
            # Degenerate scattered pair lists: blocked per-pair gather
            # bounds the (pairs, A**k) scratch instead.
            block = max(1, (1 << 22) // max(data.shape[1], 1))
            for t0 in range(0, len(ii), block):
                a = data[ii[t0 : t0 + block]]
                b = data[jj[t0 : t0 + block]]
                shared[t0 : t0 + block] = np.minimum(a, b).sum(
                    axis=1, dtype=np.int64
                )
        else:
            for t in range(len(ii)):
                shared[t] = np.intersect1d(
                    data[int(ii[t])], data[int(jj[t])], assume_unique=True
                ).size
        return shared

    def match_fractions(
        self,
        seqs: TSequence[Sequence],
        ii: np.ndarray,
        jj: np.ndarray,
        state: Any = None,
    ) -> np.ndarray:
        """The paper's ``r_ij`` for pairs ``(ii[t], jj[t])`` in [0, 1]."""
        state = self.prepare(seqs) if state is None else state
        n_kmers = state[2]
        shared = self._shared_counts(state, ii, jj)
        denom = np.minimum(n_kmers[ii], n_kmers[jj])
        with np.errstate(divide="ignore", invalid="ignore"):
            frac = np.where(denom > 0, shared / denom, 0.0)
        return np.clip(frac, 0.0, 1.0)

    def pair_distances(
        self,
        seqs: TSequence[Sequence],
        ii: np.ndarray,
        jj: np.ndarray,
        state: Any = None,
    ) -> np.ndarray:
        return 1.0 - self.match_fractions(seqs, ii, jj, state)


@dataclass(frozen=True)
class KmerFractionDistance(DistanceEstimator):
    """Calibrated fractional identity from the k-mer match fraction.

    Same alignment-free cost as :class:`KtupleDistance`, but the match
    fraction is mapped onto an identity scale first
    (:func:`~repro.distance.transforms.fractional_identity_estimate`),
    so the ``kimura`` post-transform applies.
    """

    k: int = 4
    alphabet: Alphabet = field(default=DAYHOFF6, repr=False)
    transform: str = "linear"

    name = "kmer-fraction"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        _check_transform(self.transform)

    def _base(self) -> KtupleDistance:
        return KtupleDistance(k=self.k, alphabet=self.alphabet)

    def prepare(self, seqs: TSequence[Sequence]) -> Any:
        return self._base().prepare(seqs)

    def pair_identities(
        self,
        seqs: TSequence[Sequence],
        ii: np.ndarray,
        jj: np.ndarray,
        state: Any = None,
    ) -> np.ndarray:
        from repro.distance.transforms import fractional_identity_estimate

        frac = self._base().match_fractions(seqs, ii, jj, state)
        return fractional_identity_estimate(frac)

    def pair_distances(
        self,
        seqs: TSequence[Sequence],
        ii: np.ndarray,
        jj: np.ndarray,
        state: Any = None,
    ) -> np.ndarray:
        return identity_to_distance(
            self.pair_identities(seqs, ii, jj, state), self.transform
        )


@dataclass(frozen=True)
class FullDpDistance(DistanceEstimator):
    """``1 - fractional identity`` from optimal global pairwise alignments.

    O(L^2) per pair -- the expensive, accurate distance stage of
    CLUSTALW.  This is the estimator the tiled scheduler exists for:
    its per-pair DPs parallelise embarrassingly over the ``processes``
    backend.
    """

    matrix: SubstitutionMatrix = field(default=BLOSUM62, repr=False)
    gaps: GapPenalties = field(default_factory=GapPenalties, repr=False)
    transform: str = "linear"

    name = "full-dp"

    def __post_init__(self) -> None:
        _check_transform(self.transform)

    def pair_identities(
        self,
        seqs: TSequence[Sequence],
        ii: np.ndarray,
        jj: np.ndarray,
        state: Any = None,
    ) -> np.ndarray:
        from repro.align.batchdp import dp_batch_pairs
        from repro.align.pairwise import global_align, global_align_batch

        out = np.empty(len(ii), dtype=np.float64)
        chunk = dp_batch_pairs()
        if chunk > 1:
            # Batched kernel: identical values (the batched DP is
            # byte-identical to the per-pair one), K-fold less numpy
            # dispatch.  Chunking bounds working memory per tile.
            for t0 in range(0, len(ii), chunk):
                pairs = [
                    (seqs[int(a)], seqs[int(b)])
                    for a, b in zip(ii[t0 : t0 + chunk], jj[t0 : t0 + chunk])
                ]
                res = global_align_batch(pairs, self.matrix, self.gaps)
                for t, r in enumerate(res):
                    out[t0 + t] = r.identity()
            return out
        for t in range(len(ii)):
            out[t] = global_align(
                seqs[int(ii[t])], seqs[int(jj[t])], self.matrix, self.gaps
            ).identity()
        return out

    def pair_distances(
        self,
        seqs: TSequence[Sequence],
        ii: np.ndarray,
        jj: np.ndarray,
        state: Any = None,
    ) -> np.ndarray:
        return identity_to_distance(
            self.pair_identities(seqs, ii, jj, state), self.transform
        )


@dataclass(frozen=True)
class KbandDistance(DistanceEstimator):
    """Identity from the adaptive banded (k-band) global alignment.

    Band doubling certifies the banded optimum equals the full-DP
    optimum, so identities typically match ``full-dp`` at a fraction of
    the DP area for similar sequences (MUSCLE's pairwise trick).

    When the batched kernels are enabled both halves of the work run
    fused across each chunk's pairs: band certification through
    :func:`repro.align.kband._certified_band_batch` (bit-identical
    scores and doubling decisions; ``REPRO_KBAND_BATCH=0`` restores the
    per-pair loop) and the masked traceback DPs through
    :func:`repro.align.batchdp.affine_align_batch`.
    """

    matrix: SubstitutionMatrix = field(default=BLOSUM62, repr=False)
    gaps: GapPenalties = field(default_factory=GapPenalties, repr=False)
    initial_band: int = 16
    transform: str = "linear"

    name = "kband"

    def __post_init__(self) -> None:
        if self.initial_band < 1:
            raise ValueError("initial_band must be >= 1")
        _check_transform(self.transform)

    def pair_identities(
        self,
        seqs: TSequence[Sequence],
        ii: np.ndarray,
        jj: np.ndarray,
        state: Any = None,
    ) -> np.ndarray:
        from repro.align.batchdp import dp_batch_pairs
        from repro.align.kband import banded_align, banded_align_batch

        out = np.empty(len(ii), dtype=np.float64)
        chunk = dp_batch_pairs()
        if chunk > 1:
            # Both the band certification (fused adaptive doubling,
            # see kband._certified_band_batch) and the masked traceback
            # DPs run batched over the chunk -- identical values,
            # K-fold less dispatch on both halves.
            for t0 in range(0, len(ii), chunk):
                pairs = [
                    (seqs[int(a)], seqs[int(b)])
                    for a, b in zip(ii[t0 : t0 + chunk], jj[t0 : t0 + chunk])
                ]
                res = banded_align_batch(
                    pairs, self.matrix, self.gaps, initial_k=self.initial_band
                )
                for t, r in enumerate(res):
                    out[t0 + t] = r.identity()
            return out
        for t in range(len(ii)):
            out[t] = banded_align(
                seqs[int(ii[t])],
                seqs[int(jj[t])],
                self.matrix,
                self.gaps,
                initial_k=self.initial_band,
            ).identity()
        return out

    def pair_distances(
        self,
        seqs: TSequence[Sequence],
        ii: np.ndarray,
        jj: np.ndarray,
        state: Any = None,
    ) -> np.ndarray:
        return identity_to_distance(
            self.pair_identities(seqs, ii, jj, state), self.transform
        )


# ---------------------------------------------------------------------------
# Registry.


@dataclass(frozen=True)
class _EstimatorEntry:
    name: str
    factory: Callable[..., DistanceEstimator]
    description: str


_ESTIMATORS: Dict[str, _EstimatorEntry] = {}


def register_estimator(
    name: str,
    factory: Callable[..., DistanceEstimator],
    description: str = "",
    overwrite: bool = False,
) -> None:
    """Register a distance-estimator factory under ``name``.

    ``factory(**kwargs)`` must return a :class:`DistanceEstimator`.
    Names are case-insensitive and shared by every layer's ``distance=``
    option (baseline configs, ``engine_kwargs``, the gateway defaults,
    the CLI's ``--distance``).
    """
    key = name.lower()
    if key in _ESTIMATORS and not overwrite:
        raise ValueError(
            f"distance estimator {name!r} already registered "
            "(pass overwrite=True to replace)"
        )
    _ESTIMATORS[key] = _EstimatorEntry(key, factory, description)


def unregister_estimator(name: str) -> None:
    """Remove an estimator from the registry."""
    try:
        del _ESTIMATORS[name.lower()]
    except KeyError:
        raise KeyError(
            f"distance estimator {name!r} is not registered"
        ) from None


def available_estimators() -> List[str]:
    """Sorted names of the registered distance estimators."""
    return sorted(_ESTIMATORS)


def estimator_info() -> Dict[str, str]:
    """``{name: one-line speed/accuracy description}``, name-sorted."""
    return {
        name: _ESTIMATORS[name].description for name in sorted(_ESTIMATORS)
    }


def get_estimator(
    estimator: Union[str, DistanceEstimator, None] = None, **kwargs: Any
) -> DistanceEstimator:
    """Resolve an estimator selection to an instance.

    ``None`` means :data:`DEFAULT_ESTIMATOR`; a string resolves through
    the registry (``kwargs`` feed the factory); a
    :class:`DistanceEstimator` instance passes through (``kwargs`` must
    then be empty).
    """
    if isinstance(estimator, DistanceEstimator):
        if kwargs:
            raise ValueError(
                "cannot combine an estimator instance with constructor "
                f"kwargs {sorted(kwargs)}"
            )
        return estimator
    if estimator is None:
        estimator = DEFAULT_ESTIMATOR
    try:
        entry = _ESTIMATORS[str(estimator).lower()]
    except KeyError:
        raise KeyError(
            f"unknown distance estimator {estimator!r}; "
            f"available: {available_estimators()}"
        ) from None
    try:
        return entry.factory(**kwargs)
    except TypeError as exc:
        raise ValueError(
            f"bad options for distance estimator {entry.name!r}: {exc}"
        ) from None


register_estimator(
    "ktuple",
    KtupleDistance,
    "Edgar k-mer distance 1 - r_ij over a compressed alphabet; "
    "alignment-free, fastest (MUSCLE stage 1 / MAFFT / CLUSTALW quick)",
)
register_estimator(
    "kmer-fraction",
    KmerFractionDistance,
    "calibrated fractional-identity estimate from the k-mer match "
    "fraction (id ~= 0.02 + 0.95 F); alignment-free, kimura-composable",
)
register_estimator(
    "full-dp",
    FullDpDistance,
    "1 - identity of the optimal global (Gotoh) alignment; O(L^2) per "
    "pair, most accurate (CLUSTALW accurate mode) -- parallelise it",
)
register_estimator(
    "kband",
    KbandDistance,
    "identity from adaptive banded alignment with certified band "
    "doubling; near full-DP accuracy at O(k*L) per pair (MUSCLE trick)",
)

"""Serializable configuration of a distance stage.

:class:`DistanceConfig` is the dict-round-trippable form of "which
estimator, with which knobs, executed where" -- the shape that travels
through ``engine_kwargs`` (it is JSON-able, so request content hashes
and the serving layer's coalescing keys see the effective choice) and
through baseline dataclass fields.

Baselines accept the full spectrum of ``distance=`` values and funnel
them through :func:`resolve_distance_stage`:

- ``None`` -- the baseline's historical default estimator;
- a registry name (``"full-dp"``) -- constructed with the baseline's
  scoring defaults;
- a dict -- ``DistanceConfig.from_dict`` (the JSON/engine_kwargs form);
- a :class:`DistanceConfig`;
- a ready :class:`~repro.distance.estimators.DistanceEstimator` instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

from repro.distance.estimators import (
    DistanceEstimator,
    available_estimators,
    get_estimator,
)
from repro.distance.transforms import TRANSFORMS

__all__ = [
    "DistanceConfig",
    "resolve_distance_stage",
    "scoring_estimator_defaults",
    "validate_backend_name",
]


def scoring_estimator_defaults(
    matrix: Any, gaps: Any, k: int
) -> Dict[str, Dict[str, Any]]:
    """Per-estimator constructor defaults derived from a baseline's knobs.

    The by-name path of :func:`resolve_distance_stage` uses these so
    ``distance="full-dp"`` picks up the aligner's own scoring
    matrix/gaps and ``distance="ktuple"`` its ``kmer_k``.
    """
    return {
        "full-dp": {"matrix": matrix, "gaps": gaps},
        "kband": {"matrix": matrix, "gaps": gaps},
        "ktuple": {"k": k},
        "kmer-fraction": {"k": k},
    }


def validate_backend_name(backend: Optional[str], what: str = "backend") -> None:
    """Raise ``ValueError`` unless ``backend`` is None or registered."""
    if backend is None:
        return
    from repro.parcomp.backends import available_backends

    if str(backend).lower() not in available_backends():
        raise ValueError(
            f"{what} {backend!r} is not a registered execution backend; "
            f"available: {available_backends()}"
        )


@dataclass(frozen=True)
class DistanceConfig:
    """One distance stage, described completely (validated, JSON-able).

    Attributes
    ----------
    estimator:
        Registry name (``"ktuple"``, ``"kmer-fraction"``, ``"full-dp"``,
        ``"kband"``; see :func:`repro.distance.available_estimators`).
    k:
        k-mer length for the alignment-free estimators (``None`` = the
        estimator's/baseline's default; rejected by estimators without a
        ``k``).
    transform:
        Identity post-transform (``"linear"`` or ``"kimura"``; ``None``
        = estimator default).  Rejected by ``ktuple`` (its distance is
        not on an identity scale).
    backend:
        Execution backend of the tiled all-pairs scheduler
        (``"threads"``/``"processes"``/``"pool"``; ``None`` = compute serially).
    workers:
        Rank count for the scheduler (``None`` = host core count).
    out:
        Result placement (see :data:`repro.distance.OUT_MODES`):
        ``"memory"`` (dense, the historical default), ``"condensed"``
        (the flat upper triangle, half the RAM), or ``"memmap"``
        (disk-backed tile store; O(tile) working memory).
    store_dir:
        Tile-store directory for ``out="memmap"`` (``None`` = a fresh
        temporary store; pass a path to make the run resumable).
    """

    estimator: str = "ktuple"
    k: Optional[int] = None
    transform: Optional[str] = None
    backend: Optional[str] = None
    workers: Optional[int] = None
    out: Optional[str] = None
    store_dir: Optional[str] = None

    def __post_init__(self) -> None:
        from repro.distance.allpairs import OUT_MODES

        if self.out is not None and str(self.out).lower() not in OUT_MODES:
            raise ValueError(
                f"unknown distance out mode {self.out!r}; one of {OUT_MODES}"
            )
        if self.store_dir is not None and str(self.out).lower() != "memmap":
            raise ValueError("store_dir requires out='memmap'")
        if str(self.estimator).lower() not in available_estimators():
            raise ValueError(
                f"unknown distance estimator {self.estimator!r}; "
                f"available: {available_estimators()}"
            )
        if self.k is not None and self.k < 1:
            raise ValueError("k must be >= 1 (or None)")
        if self.transform is not None and self.transform not in TRANSFORMS:
            raise ValueError(
                f"unknown identity transform {self.transform!r}; "
                f"one of {list(TRANSFORMS)}"
            )
        validate_backend_name(self.backend, "distance backend")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 (or None)")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form; inverse of :meth:`from_dict`."""
        return {
            "estimator": self.estimator,
            "k": self.k,
            "transform": self.transform,
            "backend": self.backend,
            "workers": self.workers,
            "out": self.out,
            "store_dir": self.store_dir,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DistanceConfig":
        unknown = set(data) - {
            "estimator", "k", "transform", "backend", "workers",
            "out", "store_dir",
        }
        if unknown:
            raise ValueError(
                f"unknown DistanceConfig keys {sorted(unknown)}"
            )
        return cls(**dict(data))

    def make_estimator(
        self, defaults: Optional[Mapping[str, Any]] = None
    ) -> DistanceEstimator:
        """Build the estimator; explicit fields win over ``defaults``."""
        kwargs: Dict[str, Any] = dict(defaults or {})
        if self.k is not None:
            kwargs["k"] = self.k
        if self.transform is not None:
            kwargs["transform"] = self.transform
        return get_estimator(self.estimator, **kwargs)


def resolve_distance_stage(
    distance: Union[
        str, dict, DistanceConfig, DistanceEstimator, None
    ] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    *,
    out: Optional[str] = None,
    store_dir: Optional[str] = None,
    default: Optional[Callable[[], DistanceEstimator]] = None,
    estimator_defaults: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> Tuple[
    DistanceEstimator, Optional[str], Optional[int],
    Optional[str], Optional[str],
]:
    """Normalise a baseline's distance options to ``(estimator, backend,
    workers, out, store_dir)``.

    ``default`` builds the baseline's historical estimator when
    ``distance`` is None.  ``estimator_defaults`` maps registry names to
    constructor defaults (e.g. the baseline's scoring matrix for
    ``"full-dp"``), applied when the estimator is selected *by name*;
    explicit :class:`DistanceConfig` fields win over them.  Explicit
    ``backend``/``workers``/``out``/``store_dir`` arguments win over the
    config's.  ``out`` stays ``None`` (caller's choice of default) when
    neither names a placement.
    """
    estimator_defaults = estimator_defaults or {}
    config: Optional[DistanceConfig] = None
    if isinstance(distance, Mapping):
        distance = DistanceConfig.from_dict(distance)
    if isinstance(distance, DistanceConfig):
        config = distance
        est = config.make_estimator(
            estimator_defaults.get(str(config.estimator).lower())
        )
    elif isinstance(distance, DistanceEstimator):
        est = distance
    elif isinstance(distance, str):
        key = distance.lower()
        try:
            est = get_estimator(key, **dict(estimator_defaults.get(key, {})))
        except KeyError as exc:
            raise ValueError(exc.args[0] if exc.args else str(exc)) from None
    elif distance is None:
        est = default() if default is not None else get_estimator(None)
    else:
        raise ValueError(
            "distance must be an estimator name, a DistanceConfig (or its "
            f"dict form), a DistanceEstimator, or None -- got {distance!r}"
        )
    if backend is None and config is not None:
        backend = config.backend
    if workers is None and config is not None:
        workers = config.workers
    if out is None and config is not None:
        out = config.out
    if store_dir is None and config is not None:
        store_dir = config.store_dir
    validate_backend_name(backend, "distance backend")
    if workers is not None and workers < 1:
        raise ValueError("distance workers must be >= 1 (or None)")
    if out is not None:
        from repro.distance.allpairs import OUT_MODES

        out = str(out).lower()
        if out not in OUT_MODES:
            raise ValueError(
                f"unknown distance out mode {out!r}; one of {OUT_MODES}"
            )
    if store_dir is not None and out != "memmap":
        raise ValueError("distance store_dir requires out='memmap'")
    return est, backend, workers, out, store_dir

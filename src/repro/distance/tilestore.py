"""External-memory distance storage: condensed vectors on disk.

The all-pairs stage used to materialize the full dense ``(n, n)``
float64 matrix in RAM, capping N at a few thousand.  This module turns
that hard RAM wall into a disk-bandwidth curve:

- :func:`condensed_index` / :func:`condensed_tile_indices` -- closed-form
  arithmetic over the condensed upper triangle, so neither the driver
  nor any worker ever materializes the full ``np.triu_indices`` arrays
  (two int64 vectors of ``n*(n-1)/2`` each -- 3.2 GB at N=20,000);
- :class:`CondensedMatrix` -- a matrix *view* over the 1-D condensed
  vector (in RAM or an ``np.memmap``): scalar/fancy ``[i, j]`` lookups,
  ``row(i)`` / ``rows(idx)`` / ``submatrix(idx)`` gathers, all with
  O(gather) working memory;
- :class:`TileStore` -- the crash-safe unit of the external-memory
  ``all_pairs``: per-tile files written atomically (temp + ``os.replace``
  in the style of :class:`repro.serve.store.ResultStore`), a header
  binding the store to ``(n, estimator content-hash, tiling)``,
  corruption-tolerant reads (a truncated or garbled tile is a miss, so
  the rerun recomputes exactly that tile), and a completion marker that
  short-circuits fully-computed stores.

Tile wire format (one file per tile, ``tiles/<start>.tile``)::

    bytes  0..7   magic  b"RPTILE01"
    bytes  8..15  start  (uint64 LE, condensed offset of the tile)
    bytes 16..23  count  (uint64 LE, number of pairs)
    bytes 24..27  crc32  (uint32 LE, of the payload)
    bytes 28..31  zero padding
    bytes 32..    payload: ``count`` little-endian float64 values

The crc catches same-length garbling that a size check alone would miss;
both failure modes degrade to recomputation, never to wrong values.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs.metrics import registry
from repro.obs.tracing import span

__all__ = [
    "CondensedMatrix",
    "TileStore",
    "condensed_index",
    "condensed_row_indices",
    "condensed_size",
    "condensed_tile_indices",
]

_MAGIC = b"RPTILE01"
_HEADER_STRUCT = struct.Struct("<8sQQI4x")
_TILE_SUFFIX = ".tile"


def condensed_size(n: int) -> int:
    """Number of condensed upper-triangle pairs of an ``n x n`` matrix."""
    return n * (n - 1) // 2


def condensed_index(
    n: int, i: Union[int, np.ndarray], j: Union[int, np.ndarray]
) -> Union[int, np.ndarray]:
    """Condensed offset of pair ``(i, j)`` with ``i < j`` (vectorized).

    Matches the ordering of ``np.triu_indices(n, k=1)`` (row-major over
    the upper triangle), which is the order every tile scheduler in
    :mod:`repro.distance` walks.
    """
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    lo = np.minimum(i, j)
    hi = np.maximum(i, j)
    idx = lo * (2 * n - lo - 1) // 2 + (hi - lo - 1)
    return idx if idx.ndim else int(idx)


def _row_starts(n: int, rows: np.ndarray) -> np.ndarray:
    """Condensed offset of pair ``(r, r+1)`` for each row ``r``."""
    rows = np.asarray(rows, dtype=np.int64)
    return rows * (2 * n - rows - 1) // 2


def condensed_tile_indices(
    n: int, start: int, stop: int
) -> Tuple[np.ndarray, np.ndarray]:
    """``(ii, jj)`` of condensed positions ``[start, stop)`` -- O(stop-start).

    Byte-identical to ``np.triu_indices(n, k=1)`` sliced at
    ``[start:stop]``, but never materializes the full index arrays, so
    workers at genome scale stay at O(tile) memory.
    """
    if not 0 <= start <= stop <= condensed_size(n):
        raise ValueError(
            f"tile [{start}, {stop}) out of range for n={n} "
            f"({condensed_size(n)} pairs)"
        )
    if start == stop:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    k = np.arange(start, stop, dtype=np.int64)
    # Invert start(i) = i*(2n - i - 1)/2 <= k via the quadratic formula,
    # then fix the float-precision boundary cases exactly in integers.
    ii = ((2 * n - 1) - np.sqrt((2 * n - 1) ** 2 - 8.0 * k)) // 2
    ii = ii.astype(np.int64)
    ii = np.clip(ii, 0, n - 2)
    # start(ii) must be <= k < start(ii + 1); nudge where floats rounded.
    ii -= _row_starts(n, ii) > k
    ii += _row_starts(n, ii + 1) <= k
    jj = k - _row_starts(n, ii) + ii + 1
    return ii, jj


def condensed_row_indices(n: int, r: int) -> Tuple[np.ndarray, np.ndarray]:
    """``(idx, cols)``: condensed offsets of row ``r``'s off-diagonal
    entries and the matching column positions (length ``n - 1`` each).

    The below-diagonal part (``j < r``) is a strided gather, the
    above-diagonal part (``j > r``) is one contiguous slice -- which is
    what makes row reads over a memmap stream-friendly.
    """
    below = np.arange(r, dtype=np.int64)
    idx_below = _row_starts(n, below) + (r - below - 1)
    first_above = int(_row_starts(n, np.asarray(r))) if r < n - 1 else 0
    idx_above = np.arange(
        first_above, first_above + (n - r - 1), dtype=np.int64
    )
    cols = np.concatenate(
        (below, np.arange(r + 1, n, dtype=np.int64))
    )
    return np.concatenate((idx_below, idx_above)), cols


class CondensedMatrix:
    """A symmetric zero-diagonal distance matrix stored condensed.

    Wraps the 1-D condensed upper-triangle vector (an in-RAM array or an
    ``np.memmap`` over a :class:`TileStore`'s consolidated file) and
    serves matrix-shaped reads with O(gather) working memory: the guide
    -tree builders read rows and submatrices without ever densifying.

    Not an ``ndarray`` subclass on purpose -- accidental ``np.asarray``
    densification is exactly the failure mode this type exists to
    prevent, so conversion is the explicit :meth:`to_dense`.
    """

    def __init__(
        self,
        condensed: np.ndarray,
        n: Optional[int] = None,
        store: Optional["TileStore"] = None,
    ) -> None:
        condensed = (
            condensed
            if isinstance(condensed, np.memmap)
            else np.asarray(condensed, dtype=np.float64)
        )
        if condensed.ndim != 1:
            raise ValueError("condensed vector must be 1-D")
        if n is None:
            # Invert m = n*(n-1)/2; reject non-triangular sizes.
            n = int((1 + np.sqrt(1 + 8 * condensed.size)) // 2)
        if condensed_size(n) != condensed.size:
            raise ValueError(
                f"condensed vector of size {condensed.size} does not match "
                f"n={n} ({condensed_size(n)} pairs expected)"
            )
        self._vec = condensed
        self.n = int(n)
        #: The owning TileStore (when memmap-backed); kept for cleanup /
        #: introspection, never required for reads.
        self.store = store

    # -- shape protocol ----------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.n, self.n)

    @property
    def dtype(self) -> np.dtype:
        return self._vec.dtype

    @property
    def condensed(self) -> np.ndarray:
        """The underlying 1-D condensed vector (zero-copy)."""
        return self._vec

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "memmap" if isinstance(self._vec, np.memmap) else "array"
        return f"CondensedMatrix(n={self.n}, backing={kind})"

    # -- reads -------------------------------------------------------------

    def __getitem__(self, key: Any) -> Any:
        """``m[i, j]`` pair lookup (scalars or broadcastable arrays)."""
        if not (isinstance(key, tuple) and len(key) == 2):
            raise TypeError(
                "CondensedMatrix supports pair indexing m[i, j]; use "
                ".row(i) / .submatrix(idx) / .to_dense() for larger reads"
            )
        i, j = (np.asarray(k, dtype=np.int64) for k in key)
        scalar = i.ndim == 0 and j.ndim == 0
        i, j = np.broadcast_arrays(i, j)
        if i.size and (
            (i < 0).any() or (j < 0).any()
            or (i >= self.n).any() or (j >= self.n).any()
        ):
            raise IndexError(f"pair index out of range for n={self.n}")
        vals = np.zeros(i.shape, dtype=np.float64)
        off = i != j
        if off.any():
            vals[off] = self._vec[condensed_index(self.n, i[off], j[off])]
        return float(vals[()]) if scalar else vals

    def row(self, r: int) -> np.ndarray:
        """Dense row ``r`` (length ``n``, zero diagonal)."""
        if not 0 <= r < self.n:
            raise IndexError(f"row {r} out of range for n={self.n}")
        out = np.zeros(self.n, dtype=np.float64)
        idx, cols = condensed_row_indices(self.n, int(r))
        out[cols] = self._vec[idx]
        return out

    def rows(self, idx: Sequence[int]) -> np.ndarray:
        """Dense rows ``idx`` as a ``(len(idx), n)`` array."""
        idx = np.asarray(idx, dtype=np.int64)
        out = np.empty((idx.size, self.n), dtype=np.float64)
        for t, r in enumerate(idx):
            out[t] = self.row(int(r))
        return out

    def submatrix(self, idx: Sequence[int]) -> np.ndarray:
        """Dense ``(k, k)`` submatrix over rows/columns ``idx``."""
        idx = np.asarray(idx, dtype=np.int64)
        k = idx.size
        out = np.zeros((k, k), dtype=np.float64)
        if k < 2:
            return out
        a, b = np.triu_indices(k, k=1)
        vals = self._vec[condensed_index(self.n, idx[a], idx[b])]
        out[a, b] = vals
        out[b, a] = vals
        return out

    def to_dense(self) -> np.ndarray:
        """The full ``(n, n)`` symmetric matrix (O(n^2) RAM -- explicit)."""
        out = np.zeros((self.n, self.n), dtype=np.float64)
        # Tile the scatter so a memmap backing streams instead of
        # fancy-indexing the whole file at once.
        tile = 1 << 20
        for start in range(0, self._vec.size, tile):
            stop = min(start + tile, self._vec.size)
            ii, jj = condensed_tile_indices(self.n, start, stop)
            vals = np.asarray(self._vec[start:stop])
            out[ii, jj] = vals
            out[jj, ii] = vals
        return out

    # -- reductions (chunked: O(chunk) RAM even over a memmap) -------------

    def offdiag_stats(self, chunk: int = 1 << 22) -> Dict[str, float]:
        """``min/mean/max`` of the off-diagonal distances, streamed."""
        vec = self._vec
        lo, hi, total = np.inf, -np.inf, 0.0
        for start in range(0, vec.size, chunk):
            part = np.asarray(vec[start : start + chunk])
            lo = min(lo, float(part.min()))
            hi = max(hi, float(part.max()))
            total += float(part.sum())
        return {
            "min": lo,
            "mean": total / max(vec.size, 1),
            "max": hi,
        }


class TileStore:
    """Disk-backed store of condensed distance tiles.

    One store holds the tiles of one ``all_pairs`` run: the header binds
    it to ``(n, estimator signature, tile size)`` so a re-run with the
    same configuration resumes (present, valid tiles are skipped) while
    any configuration change wipes the stale tiles first.  Workers on
    any backend write tiles directly (atomic temp + ``os.replace``
    publishes, so a SIGKILLed worker can never leave a half-written
    tile behind) and return tile *ids* to the driver -- O(1) transport
    per tile instead of shipping payloads home.

    Layout::

        <root>/header.json     # {"n": ..., "signature": ..., ...}
        <root>/tiles/<start>.tile
        <root>/condensed.f64   # consolidated vector (after finalize)
        <root>/complete.json   # completion marker (atomic, last)
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        self.tiles_dir = self.root / "tiles"
        self.header_path = self.root / "header.json"
        self.condensed_path = self.root / "condensed.f64"
        self.complete_path = self.root / "complete.json"
        self._lock = threading.Lock()

    # -- header ------------------------------------------------------------

    def read_header(self) -> Optional[Dict[str, Any]]:
        """The current header, or None when absent/corrupt."""
        try:
            header = json.loads(self.header_path.read_text("utf-8"))
        except (OSError, ValueError):
            return None
        return header if isinstance(header, dict) else None

    def prepare(self, header: Dict[str, Any]) -> bool:
        """Bind the store to ``header``; returns True when resuming.

        A matching existing header keeps every present tile (resume);
        a mismatch (different n, estimator signature, or tiling) wipes
        tiles, consolidated vector and markers before re-binding.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        existing = self.read_header()
        resuming = existing == header
        if not resuming:
            self._wipe()
        self.tiles_dir.mkdir(parents=True, exist_ok=True)
        if not resuming:
            self._write_atomic(
                self.header_path,
                json.dumps(header, sort_keys=True).encode("utf-8"),
            )
        return resuming

    def _wipe(self) -> None:
        self.complete_path.unlink(missing_ok=True)
        self.condensed_path.unlink(missing_ok=True)
        self.header_path.unlink(missing_ok=True)
        if self.tiles_dir.is_dir():
            for path in self.tiles_dir.iterdir():
                if path.suffix in (_TILE_SUFFIX, ".tmp"):
                    path.unlink(missing_ok=True)

    # -- tile I/O ----------------------------------------------------------

    def _tile_path(self, start: int) -> Path:
        return self.tiles_dir / f"{start:016d}{_TILE_SUFFIX}"

    def _write_atomic(self, path: Path, payload: bytes) -> None:
        tmp = path.parent / (
            f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    def write_tile(self, start: int, values: np.ndarray) -> None:
        """Atomically publish the tile at condensed offset ``start``."""
        values = np.ascontiguousarray(values, dtype="<f8")
        payload = values.tobytes()
        head = _HEADER_STRUCT.pack(
            _MAGIC, start, values.size, zlib.crc32(payload) & 0xFFFFFFFF
        )
        with span("distance.tile_write", start=int(start), pairs=values.size):
            self._write_atomic(self._tile_path(start), head + payload)
        registry().counter("tilestore.tiles_written").inc()
        registry().counter("tilestore.bytes").inc(len(payload))

    def read_tile(self, start: int, count: int) -> Optional[np.ndarray]:
        """The tile's values, or None when missing/corrupt.

        Corruption tolerance in the :class:`~repro.serve.store
        .ResultStore` style: wrong magic, wrong offset, wrong length or
        a crc mismatch deletes the file and reads as a miss -- the
        scheduler then recomputes exactly this tile.
        """
        path = self._tile_path(start)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        ok = len(blob) >= _HEADER_STRUCT.size
        if ok:
            magic, t_start, t_count, crc = _HEADER_STRUCT.unpack_from(blob)
            payload = blob[_HEADER_STRUCT.size :]
            ok = (
                magic == _MAGIC
                and t_start == start
                and t_count == count
                and len(payload) == count * 8
                and (zlib.crc32(payload) & 0xFFFFFFFF) == crc
            )
        if not ok:
            path.unlink(missing_ok=True)
            registry().counter("tilestore.corrupt_dropped").inc()
            return None
        return np.frombuffer(payload, dtype="<f8").astype(
            np.float64, copy=False
        )

    def missing_tiles(
        self, bounds: Iterable[Tuple[int, int]]
    ) -> List[Tuple[int, int]]:
        """The subset of ``bounds`` whose tiles are absent or corrupt.

        Each present tile is fully read and crc-checked here, so a tile
        that survives this filter is guaranteed readable at
        consolidation time; the valid ones are counted as resumed.
        """
        missing = []
        resumed = 0
        for start, stop in bounds:
            if self.read_tile(start, stop - start) is None:
                missing.append((start, stop))
            else:
                resumed += 1
        if resumed:
            registry().counter("tilestore.resumed_tiles").inc(resumed)
        return missing

    # -- consolidation -----------------------------------------------------

    def is_complete(self) -> bool:
        """Whether a prior run consolidated this store successfully."""
        header = self.read_header()
        if header is None or not self.complete_path.exists():
            return False
        try:
            n_pairs = int(header["n_pairs"])
            return self.condensed_path.stat().st_size == n_pairs * 8
        except (OSError, KeyError, TypeError, ValueError):
            return False

    def consolidate(
        self,
        bounds: Iterable[Tuple[int, int]],
        n_pairs: int,
        keep_tiles: bool = False,
    ) -> None:
        """Assemble ``condensed.f64`` from the tiles and mark complete.

        Sequential buffered writes (not a writable memmap) keep the
        driver's resident set at O(tile) -- dirty memmap pages would
        count against RSS until writeback.  A missing/corrupt tile here
        raises: the caller schedules tiles before consolidating, so this
        only fires when the disk mutates mid-run.
        """
        bounds = sorted(bounds)
        with span("distance.consolidate", n_pairs=n_pairs):
            tmp = self.root / f".condensed.{os.getpid()}.tmp"
            try:
                with open(tmp, "wb") as fh:
                    expect = 0
                    for start, stop in bounds:
                        if start != expect:
                            raise RuntimeError(
                                f"tile gap at condensed offset {expect}"
                            )
                        vals = self.read_tile(start, stop - start)
                        if vals is None:
                            raise RuntimeError(
                                f"tile at offset {start} vanished or went "
                                "corrupt before consolidation"
                            )
                        fh.write(vals.astype("<f8", copy=False).tobytes())
                        expect = stop
                    if expect != n_pairs:
                        raise RuntimeError(
                            f"tiles cover {expect} of {n_pairs} pairs"
                        )
                os.replace(tmp, self.condensed_path)
            finally:
                tmp.unlink(missing_ok=True)
            self._write_atomic(
                self.complete_path,
                json.dumps({"n_pairs": n_pairs}).encode("utf-8"),
            )
        if not keep_tiles:
            for start, stop in bounds:
                self._tile_path(start).unlink(missing_ok=True)

    def matrix(self, n: int) -> CondensedMatrix:
        """The consolidated matrix as a read-only memmap view."""
        vec = np.memmap(self.condensed_path, dtype="<f8", mode="r")
        return CondensedMatrix(vec, n, store=self)

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        tiles = (
            sorted(self.tiles_dir.glob(f"*{_TILE_SUFFIX}"))
            if self.tiles_dir.is_dir()
            else []
        )
        return {
            "root": str(self.root),
            "tiles": len(tiles),
            "tile_bytes": sum(p.stat().st_size for p in tiles),
            "complete": self.is_complete(),
            "condensed_bytes": (
                self.condensed_path.stat().st_size
                if self.condensed_path.exists()
                else 0
            ),
        }

"""The tiled all-pairs scheduler: one distance stage, any backend.

``all_pairs(seqs, estimator)`` computes the full symmetric distance
matrix by tiling the condensed upper triangle (the ``n*(n-1)/2`` pairs)
into chunks and executing the chunks

- **serially** (``backend=None``, the default -- no scheduler overhead),
- **on an execution backend** (``backend="threads"|"processes"|"pool"``,
  ``workers=N`` -- the PR 3 registry; ``processes`` puts the per-pair
  DPs on real cores), or
- **cooperatively inside an existing SPMD program** (``comm=...`` --
  ranks split the tiles cyclically and allgather, which is how the
  stage-parallel CLUSTALW baseline runs its distance stage through this
  same subsystem).

Determinism contract: a pair's value depends only on the two sequences
and the estimator (see :class:`~repro.distance.estimators
.DistanceEstimator`), and every pair is computed and written exactly
once -- so serial, threads, processes and pool schedules produce
**byte-identical** matrices for any tiling.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional, Sequence as TSequence, Tuple, Union

import numpy as np

from repro.distance.estimators import DistanceEstimator, get_estimator
from repro.obs.tracing import span
from repro.seq.sequence import Sequence

__all__ = ["DEFAULT_TILE_PAIRS", "all_pairs", "condensed_pair_indices"]

#: Default pairs per tile; small enough to balance, large enough to
#: amortise per-tile numpy dispatch.
DEFAULT_TILE_PAIRS = 4096


def _validate_seqs(seqs: TSequence[Sequence]) -> List[Sequence]:
    seqs = list(seqs)
    if len(seqs) == 0:
        raise ValueError(
            "distance stage: no sequences (need at least 2 for pairwise "
            "distances)"
        )
    if len(seqs) == 1:
        raise ValueError(
            "distance stage: a single sequence has no pairwise distances "
            "(need at least 2)"
        )
    empty = [s.id for s in seqs if len(s) == 0]
    if empty:
        raise ValueError(
            f"distance stage: length-0 sequence(s) {empty[:5]!r} have no "
            "distances; drop them before aligning"
        )
    return seqs


def condensed_pair_indices(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Row/column indices of the condensed upper triangle (``k=1``)."""
    return np.triu_indices(n, k=1)


def _tile_bounds(
    n_pairs: int, tile_pairs: int, workers: int
) -> List[Tuple[int, int]]:
    """``[start, stop)`` tile bounds over the condensed pair index.

    With multiple workers the tile size shrinks so every rank gets
    several tiles (cyclic assignment then load-balances uneven per-pair
    costs); tiling never changes values, only scheduling.
    """
    tile = max(1, int(tile_pairs))
    if workers > 1:
        tile = max(1, min(tile, -(-n_pairs // (4 * workers))))
    return [(s, min(s + tile, n_pairs)) for s in range(0, n_pairs, tile)]


def _compute_tiles(
    seqs: List[Sequence],
    estimator: DistanceEstimator,
    bounds: TSequence[Tuple[int, int]],
    ii: np.ndarray,
    jj: np.ndarray,
    state: Any,
) -> List[Tuple[int, np.ndarray]]:
    out = []
    for a, b in bounds:
        with span("distance.tile", start=a, pairs=b - a):
            out.append((a, estimator.pair_distances(seqs, ii[a:b], jj[a:b], state)))
    return out


def _merge(
    n: int,
    ii: np.ndarray,
    jj: np.ndarray,
    parts: TSequence[Tuple[int, np.ndarray]],
) -> np.ndarray:
    """Scatter per-tile values into the symmetric matrix (zero diagonal).

    Every pair is written exactly once, so the merge is deterministic
    regardless of which rank computed which tile.
    """
    d = np.zeros((n, n), dtype=np.float64)
    for start, vals in parts:
        sl = slice(start, start + len(vals))
        d[ii[sl], jj[sl]] = vals
        d[jj[sl], ii[sl]] = vals
    return d


def _all_pairs_rank(comm, seqs, estimator, tile_pairs):
    """Rank program of the backend-scheduled mode (module-level so the
    ``processes`` backend can pickle it under spawn/forkserver)."""
    n = len(seqs)
    ii, jj = condensed_pair_indices(n)
    bounds = _tile_bounds(len(ii), tile_pairs, comm.size)
    state = estimator.prepare(seqs)
    return _compute_tiles(
        seqs, estimator, bounds[comm.rank :: comm.size], ii, jj, state
    )


def all_pairs(
    seqs: TSequence[Sequence],
    estimator: Union[str, DistanceEstimator, None] = None,
    *,
    backend: Optional[Any] = None,
    workers: Optional[int] = None,
    comm: Optional[Any] = None,
    tile_pairs: int = DEFAULT_TILE_PAIRS,
    cost_model: Optional[Any] = None,
    **estimator_kwargs: Any,
) -> np.ndarray:
    """All-pairs distance matrix of ``seqs`` under ``estimator``.

    Parameters
    ----------
    seqs:
        At least two sequences, none of length 0 (clean ``ValueError``
        otherwise -- the old per-aligner paths crashed deep in numpy).
    estimator:
        Registry name (default ``"ktuple"``) or a
        :class:`~repro.distance.estimators.DistanceEstimator` instance;
        ``estimator_kwargs`` feed the registry factory.
    backend:
        ``None`` computes serially in-process; a registered execution
        backend name (or instance) schedules the tiles SPMD over
        ``workers`` ranks (``"processes"`` for real cores).
    workers:
        Rank count for the backend mode (default: host core count,
        capped at the pair count).  ``workers>1`` with ``backend=None``
        uses the default backend.
    comm:
        Cooperative mode: an existing
        :class:`~repro.parcomp.comm.VirtualComm`.  All ranks must call
        with identical arguments; tiles split cyclically by rank, the
        merged matrix is allgathered and returned on every rank.
        Mutually exclusive with ``backend``/``workers``.
    tile_pairs:
        Pairs per tile (scheduling granularity; never affects values).
    cost_model:
        Alpha-beta model forwarded to the backend's timing ledger.

    Returns
    -------
    ``(n, n)`` float64 symmetric matrix, zero diagonal, byte-identical
    across serial/threads/processes/pool schedules.
    """
    seqs = _validate_seqs(seqs)
    est = get_estimator(estimator, **estimator_kwargs)
    n = len(seqs)
    ii, jj = condensed_pair_indices(n)
    n_pairs = len(ii)
    est_name = getattr(est, "name", type(est).__name__)

    if comm is not None:
        if backend is not None or workers not in (None, 1):
            raise ValueError(
                "cooperative mode (comm=...) excludes backend=/workers="
            )
        with span(
            "distance.all_pairs", n=n, estimator=est_name, mode="cooperative"
        ):
            bounds = _tile_bounds(n_pairs, tile_pairs, comm.size)
            state = est.prepare(seqs)
            mine = _compute_tiles(
                seqs, est, bounds[comm.rank :: comm.size], ii, jj, state
            )
            parts = [part for rank_parts in comm.allgather(mine)
                     for part in rank_parts]
            return _merge(n, ii, jj, parts)

    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    if backend is None and workers in (None, 1):
        with span(
            "distance.all_pairs", n=n, estimator=est_name, mode="serial"
        ):
            state = est.prepare(seqs)
            bounds = _tile_bounds(n_pairs, tile_pairs, 1)
            return _merge(
                n, ii, jj, _compute_tiles(seqs, est, bounds, ii, jj, state)
            )

    from repro.obs.propagate import run_traced

    n_workers = workers if workers is not None else (os.cpu_count() or 1)
    n_workers = max(1, min(n_workers, n_pairs))
    with span(
        "distance.all_pairs", n=n, estimator=est_name, mode="backend"
    ):
        spmd = run_traced(
            backend,
            n_workers,
            _all_pairs_rank,
            stage="distance",
            args=(seqs, est, tile_pairs),
            cost_model=cost_model,
        )
        parts = [part for rank_parts in spmd.results for part in rank_parts]
        return _merge(n, ii, jj, parts)

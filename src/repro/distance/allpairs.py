"""The tiled all-pairs scheduler: one distance stage, any backend.

``all_pairs(seqs, estimator)`` computes the full symmetric distance
matrix by tiling the condensed upper triangle (the ``n*(n-1)/2`` pairs)
into chunks and executing the chunks

- **serially** (``backend=None``, the default -- no scheduler overhead),
- **on an execution backend** (``backend="threads"|"processes"|"pool"``,
  ``workers=N`` -- the PR 3 registry; ``processes`` puts the per-pair
  DPs on real cores), or
- **cooperatively inside an existing SPMD program** (``comm=...`` --
  ranks split the tiles cyclically and allgather, which is how the
  stage-parallel CLUSTALW baseline runs its distance stage through this
  same subsystem).

The **output placement** is independent of the schedule (``out=``):

- ``"memory"`` -- the historical dense ``(n, n)`` ndarray;
- ``"condensed"`` -- a :class:`~repro.distance.tilestore.CondensedMatrix`
  over the in-RAM condensed vector (half the dense footprint; the tree
  builders consume it natively);
- ``"memmap"`` -- the external-memory path: workers write tiles into a
  :class:`~repro.distance.tilestore.TileStore` under ``store_dir`` and
  return tile *ids* instead of payloads (O(1) transport per tile), the
  driver consolidates them into a disk-backed condensed vector, and the
  result is a memmap-backed ``CondensedMatrix`` with O(tile) resident
  memory end to end.  Already-present valid tiles are skipped on re-run
  (crash/resume), and a fully consolidated store returns immediately.

Determinism contract: a pair's value depends only on the two sequences
and the estimator (see :class:`~repro.distance.estimators
.DistanceEstimator`), and every pair is computed and written exactly
once -- so serial, threads, processes and pool schedules produce
**byte-identical** values for any tiling, and the ``memmap`` condensed
vector is byte-identical to the in-RAM one by construction.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from typing import Any, List, Optional, Sequence as TSequence, Tuple, Union

import numpy as np

from repro.distance.estimators import DistanceEstimator, get_estimator
from repro.distance.tilestore import (
    CondensedMatrix,
    TileStore,
    condensed_size,
    condensed_tile_indices,
)
from repro.obs.tracing import span
from repro.seq.sequence import Sequence

__all__ = [
    "DEFAULT_TILE_PAIRS",
    "OUT_MODES",
    "all_pairs",
    "condensed_pair_indices",
]

#: Default pairs per tile; small enough to balance, large enough to
#: amortise per-tile numpy dispatch.
DEFAULT_TILE_PAIRS = 4096

#: Valid ``out=`` placements of the result matrix.
OUT_MODES = ("memory", "condensed", "memmap")


def _validate_seqs(seqs: TSequence[Sequence]) -> List[Sequence]:
    seqs = list(seqs)
    if len(seqs) == 0:
        raise ValueError(
            "distance stage: no sequences (need at least 2 for pairwise "
            "distances)"
        )
    if len(seqs) == 1:
        raise ValueError(
            "distance stage: a single sequence has no pairwise distances "
            "(need at least 2)"
        )
    empty = [s.id for s in seqs if len(s) == 0]
    if empty:
        raise ValueError(
            f"distance stage: length-0 sequence(s) {empty[:5]!r} have no "
            "distances; drop them before aligning"
        )
    return seqs


def condensed_pair_indices(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Row/column indices of the condensed upper triangle (``k=1``)."""
    return np.triu_indices(n, k=1)


def _tile_bounds(
    n_pairs: int, tile_pairs: int, workers: int
) -> List[Tuple[int, int]]:
    """``[start, stop)`` tile bounds over the condensed pair index.

    With multiple workers the tile size shrinks so every rank gets
    several tiles (cyclic assignment then load-balances uneven per-pair
    costs); tiling never changes values, only scheduling.
    """
    tile = _effective_tile(n_pairs, tile_pairs, workers)
    return [(s, min(s + tile, n_pairs)) for s in range(0, n_pairs, tile)]


def _effective_tile(n_pairs: int, tile_pairs: int, workers: int) -> int:
    tile = max(1, int(tile_pairs))
    if workers > 1:
        tile = max(1, min(tile, -(-n_pairs // (4 * workers))))
    return tile


def _compute_tiles(
    seqs: List[Sequence],
    estimator: DistanceEstimator,
    bounds: TSequence[Tuple[int, int]],
    n: int,
    state: Any,
) -> List[Tuple[int, np.ndarray]]:
    """Compute tile values; per-tile indices are derived arithmetically
    so no caller ever materializes the full ``np.triu_indices`` arrays
    (3.2 GB of int64 at N=20,000)."""
    out = []
    for a, b in bounds:
        with span("distance.tile", start=a, pairs=b - a):
            ii, jj = condensed_tile_indices(n, a, b)
            out.append((a, estimator.pair_distances(seqs, ii, jj, state)))
    return out


def _write_tiles(
    seqs: List[Sequence],
    estimator: DistanceEstimator,
    bounds: TSequence[Tuple[int, int]],
    n: int,
    state: Any,
    store: TileStore,
) -> List[Tuple[int, int]]:
    """Compute tiles and publish them to ``store``; return their ids.

    The external-memory analogue of :func:`_compute_tiles`: payloads go
    to disk where they were computed, only ``(start, stop)`` ids travel
    back to the driver.
    """
    ids = []
    for a, b in bounds:
        with span("distance.tile", start=a, pairs=b - a):
            ii, jj = condensed_tile_indices(n, a, b)
            store.write_tile(a, estimator.pair_distances(seqs, ii, jj, state))
        ids.append((a, b))
    return ids


def _merge_dense(
    n: int, parts: TSequence[Tuple[int, np.ndarray]]
) -> np.ndarray:
    """Scatter per-tile values into the symmetric matrix (zero diagonal).

    Every pair is written exactly once, so the merge is deterministic
    regardless of which rank computed which tile.
    """
    d = np.zeros((n, n), dtype=np.float64)
    for start, vals in parts:
        ii, jj = condensed_tile_indices(n, start, start + len(vals))
        d[ii, jj] = vals
        d[jj, ii] = vals
    return d


def _merge_condensed(
    n: int, parts: TSequence[Tuple[int, np.ndarray]]
) -> CondensedMatrix:
    """Place per-tile values into the in-RAM condensed vector."""
    vec = np.zeros(condensed_size(n), dtype=np.float64)
    for start, vals in parts:
        vec[start : start + len(vals)] = vals
    return CondensedMatrix(vec, n)


def _merge_out(n: int, parts, out: str):
    if out == "condensed":
        return _merge_condensed(n, parts)
    return _merge_dense(n, parts)


def _all_pairs_rank(comm, seqs, estimator, tile_pairs):
    """Rank program of the backend-scheduled mode (module-level so the
    ``processes`` backend can pickle it under spawn/forkserver)."""
    n = len(seqs)
    n_pairs = condensed_size(n)
    bounds = _tile_bounds(n_pairs, tile_pairs, comm.size)
    state = estimator.prepare(seqs)
    return _compute_tiles(
        seqs, estimator, bounds[comm.rank :: comm.size], n, state
    )


def _all_pairs_rank_store(comm, seqs, estimator, missing, store_dir):
    """Rank program of the backend-scheduled external-memory mode: write
    this rank's share of the missing tiles into the store, return ids."""
    state = estimator.prepare(seqs)
    store = TileStore(store_dir)
    return _write_tiles(
        seqs, estimator, missing[comm.rank :: comm.size],
        len(seqs), state, store,
    )


def _estimator_signature(estimator: DistanceEstimator) -> str:
    """A content hash binding a store to its estimator configuration.

    Estimators are small frozen dataclasses, so their pickle bytes are a
    stable function of their configuration (including substitution
    matrices); unpicklable plug-ins fall back to ``repr``.
    """
    try:
        blob = pickle.dumps(estimator, protocol=4)
    except Exception:
        blob = repr(estimator).encode("utf-8", "replace")
    return hashlib.sha256(blob).hexdigest()


def _store_header(
    n: int, est: DistanceEstimator, tile: int
) -> dict:
    return {
        "version": 1,
        "n": n,
        "n_pairs": condensed_size(n),
        "tile_pairs": tile,
        "estimator": getattr(est, "name", type(est).__name__),
        "signature": _estimator_signature(est),
    }


def all_pairs(
    seqs: TSequence[Sequence],
    estimator: Union[str, DistanceEstimator, None] = None,
    *,
    backend: Optional[Any] = None,
    workers: Optional[int] = None,
    comm: Optional[Any] = None,
    tile_pairs: int = DEFAULT_TILE_PAIRS,
    cost_model: Optional[Any] = None,
    out: str = "memory",
    store_dir: Optional[Union[str, os.PathLike]] = None,
    keep_store_tiles: bool = False,
    **estimator_kwargs: Any,
) -> Union[np.ndarray, CondensedMatrix]:
    """All-pairs distance matrix of ``seqs`` under ``estimator``.

    Parameters
    ----------
    seqs:
        At least two sequences, none of length 0 (clean ``ValueError``
        otherwise -- the old per-aligner paths crashed deep in numpy).
    estimator:
        Registry name (default ``"ktuple"``) or a
        :class:`~repro.distance.estimators.DistanceEstimator` instance;
        ``estimator_kwargs`` feed the registry factory.
    backend:
        ``None`` computes serially in-process; a registered execution
        backend name (or instance) schedules the tiles SPMD over
        ``workers`` ranks (``"processes"`` for real cores).
    workers:
        Rank count for the backend mode (default: host core count,
        capped at the pair count).  ``workers>1`` with ``backend=None``
        uses the default backend.
    comm:
        Cooperative mode: an existing
        :class:`~repro.parcomp.comm.VirtualComm`.  All ranks must call
        with identical arguments; tiles split cyclically by rank, the
        merged matrix is allgathered and returned on every rank.
        Mutually exclusive with ``backend``/``workers``.
    tile_pairs:
        Pairs per tile (scheduling granularity; never affects values).
    cost_model:
        Alpha-beta model forwarded to the backend's timing ledger.
    out:
        Result placement: ``"memory"`` (dense ndarray, the default),
        ``"condensed"`` (in-RAM :class:`CondensedMatrix`, half the dense
        footprint) or ``"memmap"`` (disk-backed ``CondensedMatrix`` via
        a resumable :class:`TileStore`; O(tile) resident memory).
    store_dir:
        Directory of the tile store (``out="memmap"`` only; a fresh
        temporary directory when omitted).  Re-running with the same
        sequences/estimator/tiling resumes: valid tiles are skipped,
        and a consolidated store returns without computing anything.
    keep_store_tiles:
        Keep the per-tile files after consolidation (they are deleted
        by default to halve the store's disk footprint).

    Returns
    -------
    ``out="memory"``: ``(n, n)`` float64 symmetric matrix, zero
    diagonal.  Otherwise: a :class:`CondensedMatrix` over the condensed
    upper triangle.  Values are byte-identical across serial / threads /
    processes / pool schedules and across every ``out`` placement.
    """
    seqs = _validate_seqs(seqs)
    est = get_estimator(estimator, **estimator_kwargs)
    n = len(seqs)
    n_pairs = condensed_size(n)
    est_name = getattr(est, "name", type(est).__name__)
    if out not in OUT_MODES:
        raise ValueError(
            f"unknown out mode {out!r}; one of {list(OUT_MODES)}"
        )
    if store_dir is not None and out != "memmap":
        raise ValueError("store_dir= requires out='memmap'")

    if comm is not None:
        if backend is not None or workers not in (None, 1):
            raise ValueError(
                "cooperative mode (comm=...) excludes backend=/workers="
            )
        with span(
            "distance.all_pairs", n=n, estimator=est_name,
            mode="cooperative", out=out,
        ):
            bounds = _tile_bounds(n_pairs, tile_pairs, comm.size)
            if out == "memmap":
                return _all_pairs_cooperative_store(
                    comm, seqs, est, bounds, n, tile_pairs, store_dir,
                    keep_store_tiles,
                )
            state = est.prepare(seqs)
            mine = _compute_tiles(
                seqs, est, bounds[comm.rank :: comm.size], n, state
            )
            parts = [part for rank_parts in comm.allgather(mine)
                     for part in rank_parts]
            return _merge_out(n, parts, out)

    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    if backend is None and workers in (None, 1):
        with span(
            "distance.all_pairs", n=n, estimator=est_name,
            mode="serial", out=out,
        ):
            bounds = _tile_bounds(n_pairs, tile_pairs, 1)
            if out == "memmap":
                store, missing, bounds = _open_store(
                    est, n, bounds,
                    _effective_tile(n_pairs, tile_pairs, 1), store_dir,
                )
                if missing is None:  # already consolidated
                    return store.matrix(n)
                if missing:
                    state = est.prepare(seqs)
                    _write_tiles(seqs, est, missing, n, state, store)
                store.consolidate(bounds, n_pairs, keep_store_tiles)
                return store.matrix(n)
            state = est.prepare(seqs)
            return _merge_out(
                n, _compute_tiles(seqs, est, bounds, n, state), out
            )

    from repro.obs.propagate import run_traced

    n_workers = workers if workers is not None else (os.cpu_count() or 1)
    n_workers = max(1, min(n_workers, n_pairs))
    with span(
        "distance.all_pairs", n=n, estimator=est_name,
        mode="backend", out=out,
    ):
        bounds = _tile_bounds(n_pairs, tile_pairs, n_workers)
        if out == "memmap":
            store, missing, bounds = _open_store(
                est, n, bounds,
                _effective_tile(n_pairs, tile_pairs, n_workers), store_dir,
            )
            if missing is None:
                return store.matrix(n)
            if missing:
                run_traced(
                    backend,
                    min(n_workers, len(missing)),
                    _all_pairs_rank_store,
                    stage="distance",
                    args=(seqs, est, missing, str(store.root)),
                    cost_model=cost_model,
                )
            store.consolidate(bounds, n_pairs, keep_store_tiles)
            return store.matrix(n)
        spmd = run_traced(
            backend,
            n_workers,
            _all_pairs_rank,
            stage="distance",
            args=(seqs, est, tile_pairs),
            cost_model=cost_model,
        )
        parts = [part for rank_parts in spmd.results for part in rank_parts]
        return _merge_out(n, parts, out)


def _open_store(
    est: DistanceEstimator,
    n: int,
    bounds: List[Tuple[int, int]],
    tile: int,
    store_dir: Optional[Union[str, os.PathLike]],
) -> Tuple[TileStore, Optional[List[Tuple[int, int]]], List[Tuple[int, int]]]:
    """Bind (or create) the tile store for this run.

    Returns ``(store, missing, bounds)`` where ``missing`` is the list
    of tiles still to compute -- empty when all tiles are present but
    unconsolidated, ``None`` when the store is already consolidated for
    this exact configuration (the caller returns immediately).
    """
    if store_dir is None:
        store_dir = tempfile.mkdtemp(prefix="repro-tilestore-")
    store = TileStore(store_dir)
    resuming = store.prepare(_store_header(n, est, tile))
    if resuming and store.is_complete():
        return store, None, bounds
    missing = store.missing_tiles(bounds) if resuming else list(bounds)
    return store, missing, bounds


def _all_pairs_cooperative_store(
    comm,
    seqs: List[Sequence],
    est: DistanceEstimator,
    bounds: List[Tuple[int, int]],
    n: int,
    tile_pairs: int,
    store_dir: Optional[Union[str, os.PathLike]],
    keep_store_tiles: bool,
) -> CondensedMatrix:
    """Cooperative (in-SPMD) external-memory mode.

    Rank 0 owns store setup and consolidation; the plan (store root,
    completion, missing tiles) is shared through an allgather so every
    rank computes a disjoint share, and two more allgathers act as the
    barriers around consolidation.  Every rank returns a view over the
    same consolidated file.
    """
    n_pairs = condensed_size(n)
    tile = _effective_tile(n_pairs, tile_pairs, comm.size)
    if comm.rank == 0:
        root = (
            tempfile.mkdtemp(prefix="repro-tilestore-")
            if store_dir is None
            else store_dir
        )
        store = TileStore(root)
        resuming = store.prepare(_store_header(n, est, tile))
        complete = resuming and store.is_complete()
        missing = (
            []
            if complete
            else store.missing_tiles(bounds) if resuming else list(bounds)
        )
        plan = (str(store.root), complete, missing)
    else:
        plan = None
    root, complete, missing = comm.allgather(plan)[0]
    store = TileStore(root)
    if not complete:
        if missing:
            state = est.prepare(seqs)
            _write_tiles(
                seqs, est, missing[comm.rank :: comm.size], n, state, store
            )
        comm.allgather(None)  # barrier: every rank's tiles are published
        if comm.rank == 0:
            store.consolidate(bounds, n_pairs, keep_store_tiles)
        comm.allgather(None)  # barrier: consolidation is visible
    return store.matrix(n)

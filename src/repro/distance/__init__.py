"""One distance subsystem for every aligner.

The all-pairs distance stage is the scalability wall of guide-tree MSA
-- the very problem the source paper attacks -- yet it used to be
computed serially through three overlapping code paths
(:mod:`repro.msa.distances`, :mod:`repro.kmer.distance`,
``pairwise_identity``).  This package unifies them:

- :mod:`~repro.distance.estimators` -- the
  :class:`DistanceEstimator` protocol and registry (``ktuple``,
  ``kmer-fraction``, ``full-dp``, ``kband``), each a small picklable
  dataclass computing distances for arbitrary pair-index arrays.
- :mod:`~repro.distance.transforms` -- the shared identity
  post-transforms (``linear``, ``kimura``) plus the alignment-derived
  identity matrix (MUSCLE stage 2).
- :mod:`~repro.distance.allpairs` -- :func:`all_pairs`, the tiled
  scheduler that runs the condensed upper triangle serially, on the
  execution backends (``backend="threads"|"processes"|"pool"``, ``workers=N``),
  or cooperatively inside an existing SPMD program (``comm=``) --
  always producing byte-identical matrices, placed in RAM (dense or
  condensed) or on disk (``out="memmap"``).
- :mod:`~repro.distance.tilestore` -- the external-memory layer:
  :class:`TileStore` (atomic, resumable, corruption-tolerant per-tile
  files) and :class:`CondensedMatrix` (matrix reads over the condensed
  vector -- in RAM or memmap -- with O(gather) working memory).
- :mod:`~repro.distance.config` -- :class:`DistanceConfig`, the
  validated, dict-round-trippable form that travels through
  ``engine_kwargs`` and baseline configs.

Every guide-tree baseline (ClustalW-like, MUSCLE-like, MAFFT-like,
center-star, the stage-parallel CLUSTALW) routes its distance stage
through here via ``distance=`` / ``distance_backend=`` options, so one
``--distance-backend processes`` flag puts the distance stage of any of
them on real cores.
"""

from repro.distance.allpairs import (
    DEFAULT_TILE_PAIRS,
    OUT_MODES,
    all_pairs,
    condensed_pair_indices,
)
from repro.distance.config import (
    DistanceConfig,
    resolve_distance_stage,
    scoring_estimator_defaults,
    validate_backend_name,
)
from repro.distance.estimators import (
    DEFAULT_ESTIMATOR,
    DistanceEstimator,
    FullDpDistance,
    KbandDistance,
    KmerFractionDistance,
    KtupleDistance,
    available_estimators,
    estimator_info,
    get_estimator,
    register_estimator,
    unregister_estimator,
)
from repro.distance.tilestore import (
    CondensedMatrix,
    TileStore,
    condensed_index,
    condensed_size,
    condensed_tile_indices,
)
from repro.distance.transforms import (
    TRANSFORMS,
    alignment_identity_matrix,
    fractional_identity_estimate,
    identity_to_distance,
    kimura_distance,
)

__all__ = [
    "DEFAULT_ESTIMATOR",
    "DEFAULT_TILE_PAIRS",
    "CondensedMatrix",
    "DistanceConfig",
    "DistanceEstimator",
    "FullDpDistance",
    "KbandDistance",
    "KmerFractionDistance",
    "KtupleDistance",
    "OUT_MODES",
    "TRANSFORMS",
    "TileStore",
    "alignment_identity_matrix",
    "all_pairs",
    "available_estimators",
    "condensed_index",
    "condensed_pair_indices",
    "condensed_size",
    "condensed_tile_indices",
    "estimator_info",
    "fractional_identity_estimate",
    "get_estimator",
    "identity_to_distance",
    "kimura_distance",
    "register_estimator",
    "resolve_distance_stage",
    "scoring_estimator_defaults",
    "unregister_estimator",
    "validate_backend_name",
]

"""High-level driver: the public ``sample_align_d`` entry point.

Splits the input over ``n_procs`` virtual ranks (block distribution, like
the paper's pre-placed node files), launches the SPMD program on the
virtual cluster, and packages the glued alignment together with the run's
measured and modeled timing, bucket occupancy and rank diagnostics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence as TSequence

import numpy as np

from repro.align.scoring import sp_score
from repro.core.algorithm import RankDiagnostics, sample_align_d_spmd
from repro.core.config import SampleAlignDConfig
from repro.parcomp.cost import CostModel, TimingLedger
from repro.parcomp.launcher import run_spmd
from repro.seq.alignment import Alignment
from repro.seq.sequence import Sequence, SequenceSet

__all__ = ["MsaResult", "sample_align_d"]


@dataclass
class MsaResult:
    """Everything a Sample-Align-D run produced.

    Attributes
    ----------
    alignment:
        The final MSA, rows in the original input order.
    sp:
        Linear sum-of-pairs score of the alignment (the paper's reported
        objective after gluing).
    n_procs:
        Virtual cluster size used.
    wall_time:
        Real elapsed seconds of the run on this host.
    ledger:
        Byte/clock ledger of the virtual cluster (modeled cluster time =
        ``ledger.modeled_time()``).
    diagnostics:
        Per-rank facts (bucket sizes, tweak scores, rank tables).
    global_ancestor:
        The ancestor template used for fine tuning (None for 1 rank).
    config:
        The configuration the run used.
    backend:
        Name of the execution backend that ran the SPMD ranks
        (``"threads"`` or ``"processes"``).
    """

    alignment: Alignment
    sp: float
    n_procs: int
    wall_time: float
    ledger: TimingLedger
    diagnostics: List[RankDiagnostics]
    global_ancestor: Optional[Sequence]
    config: SampleAlignDConfig
    backend: str = "threads"

    @property
    def modeled_time(self) -> float:
        return self.ledger.modeled_time()

    @property
    def bucket_sizes(self) -> np.ndarray:
        return np.array([d.n_bucket for d in self.diagnostics], dtype=np.int64)

    @property
    def pivots(self) -> np.ndarray:
        return self.diagnostics[0].pivots

    def ranks_by_id(self) -> Dict[str, float]:
        """Globalized k-mer rank of every sequence (merged over ranks)."""
        out: Dict[str, float] = {}
        for d in self.diagnostics:
            out.update(d.globalized_ranks)
        return out

    def summary(self) -> str:
        bs = self.bucket_sizes
        return (
            f"Sample-Align-D: N={self.alignment.n_rows} p={self.n_procs} "
            f"cols={self.alignment.n_columns} SP={self.sp:.1f} "
            f"backend={self.backend}\n"
            f"wall={self.wall_time:.2f}s modeled={self.modeled_time:.3f}s "
            f"comm={self.ledger.total_bytes()}B/{self.ledger.n_messages()}msg\n"
            f"buckets min/mean/max = {bs.min()}/{bs.mean():.1f}/{bs.max()} "
            f"(2N/p bound = {2 * int(np.ceil(self.alignment.n_rows / self.n_procs))})"
        )


def sample_align_d(
    seqs: TSequence[Sequence],
    n_procs: int = 4,
    config: SampleAlignDConfig | None = None,
    cost_model: CostModel | None = None,
    seed: int | None = None,
    backend: str | None = None,
) -> MsaResult:
    """Align ``seqs`` with Sample-Align-D on a virtual ``n_procs`` cluster.

    Parameters
    ----------
    seqs:
        The sequences (a :class:`SequenceSet` or any sequence of
        :class:`Sequence`); ids must be unique.
    n_procs:
        Virtual processor count ``p``.
    config:
        Pipeline configuration (default: :class:`SampleAlignDConfig`).
    cost_model:
        Alpha-beta communication model for the modeled cluster time.
    seed:
        When given, the initial block distribution is a seeded shuffle
        instead of input order (models "randomly selected sequences
        placed on the nodes"); the *output* row order always follows the
        input regardless.
    backend:
        Execution backend name (``"threads"``/``"processes"``/``"pool"``; see
        :mod:`repro.parcomp.backends`).  An explicit argument wins over
        ``config.backend``; both ``None`` means the launcher default
        (``"threads"``).  The alignment is byte-identical either way.
    """
    sset = seqs if isinstance(seqs, SequenceSet) else SequenceSet(seqs)
    if len(sset) == 0:
        raise ValueError("no sequences to align")
    if n_procs < 1:
        raise ValueError("n_procs must be >= 1")
    config = config or SampleAlignDConfig()
    backend = backend if backend is not None else config.backend

    placed = sset
    if seed is not None:
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(sset))
        placed = SequenceSet([sset[int(i)] for i in order])
    parts = placed.split(n_procs)

    t0 = time.perf_counter()
    spmd = run_spmd(
        n_procs,
        sample_align_d_spmd,
        rank_args=[(list(part),) for part in parts],
        args=(config,),
        cost_model=cost_model,
        backend=backend,
    )
    wall = time.perf_counter() - t0

    root = spmd.results[0]
    aln: Alignment = root["alignment"]
    if aln is None:
        raise RuntimeError("root produced no alignment")
    aln = aln.select_rows(sset.ids)
    return MsaResult(
        alignment=aln,
        sp=sp_score(aln, config.scoring.matrix),
        n_procs=n_procs,
        wall_time=wall,
        ledger=spmd.ledger,
        diagnostics=[res["diagnostics"] for res in spmd.results],
        global_ancestor=root.get("global_ancestor"),
        config=config,
        backend=spmd.backend,
    )

"""Constrained realignment of a bucket against the global ancestor.

Step 9 of the pipeline ("each of the profiles of aligned sequences are
tweaked using the ancestor profile, with constraints"): the bucket's
alignment is treated as a frozen profile -- its internal columns are never
torn apart -- and profile-profile aligned against the global-ancestor
profile.  The result anchors every bucket column either to an ancestor
position ("match") or to an insertion slot between two ancestor positions,
which is exactly the coordinate system the root needs to glue the buckets
(:mod:`repro.core.glue`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.align.profile import Profile
from repro.align.profile_align import ProfileAlignConfig, profile_score_matrix
from repro.align.dp import affine_align
from repro.seq.alignment import Alignment
from repro.seq.sequence import Sequence

__all__ = ["TweakedBlock", "tweak_against_ancestor"]


@dataclass
class TweakedBlock:
    """A bucket alignment expressed in global-ancestor coordinates.

    Attributes
    ----------
    ids:
        Row ids of the block.
    matrix:
        The block's (unchanged) column matrix, ``(n_rows, n_cols)`` uint8.
    anchor_slot:
        Per block column: the ancestor *insertion slot* it belongs to.
        Slot ``s`` means "between ancestor positions ``s-1`` and ``s``";
        a column matched to ancestor position ``g`` records slot ``g``
        with ``anchor_match=True``.
    anchor_match:
        Per block column: True when anchored to the ancestor position
        ``anchor_slot`` itself, False for an insertion in front of it.
    anchor_ordinal:
        For insertion columns, the 0-based index within their run.
    ancestor_length:
        Number of positions of the global ancestor.
    score:
        Profile-profile score of the tweak alignment.
    """

    ids: List[str]
    matrix: np.ndarray
    anchor_slot: np.ndarray
    anchor_match: np.ndarray
    anchor_ordinal: np.ndarray
    ancestor_length: int
    score: float

    @property
    def n_rows(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_columns(self) -> int:
        return self.matrix.shape[1]

    def insert_counts(self) -> np.ndarray:
        """Number of insertion columns per slot, shape (ancestor_len+1,)."""
        counts = np.zeros(self.ancestor_length + 1, dtype=np.int64)
        ins = ~self.anchor_match
        if ins.any():
            np.add.at(counts, self.anchor_slot[ins], 1)
        return counts


def tweak_against_ancestor(
    local_aln: Alignment,
    ancestor: Sequence,
    scoring: ProfileAlignConfig | None = None,
) -> TweakedBlock:
    """Anchor a bucket alignment to the global ancestor.

    The bucket's columns are preserved verbatim (the constraint); only
    their placement relative to the ancestor is optimised, by one
    profile-profile DP of the bucket profile against the single-sequence
    ancestor profile.
    """
    scoring = scoring or ProfileAlignConfig()
    if local_aln.n_rows == 0:
        raise ValueError("cannot tweak an empty block")
    px = Profile(local_aln)
    py = Profile.from_sequence(ancestor)
    S = profile_score_matrix(px, py, scoring)
    open_x, ext_x = scoring.gap_vectors(px)
    open_y, ext_y = scoring.gap_vectors(py)
    res = affine_align(
        S,
        open_x,
        ext_x,
        gap_open_y=open_y,
        gap_extend_y=ext_y,
        terminal_factor=scoring.gaps.terminal_factor,
    )

    n_cols = local_aln.n_columns
    slot = np.empty(n_cols, dtype=np.int64)
    match = np.zeros(n_cols, dtype=bool)
    ordinal = np.zeros(n_cols, dtype=np.int64)
    next_ancestor = 0  # ancestor positions consumed so far
    run = 0
    for x, y in zip(res.x_map, res.y_map):
        if x >= 0 and y >= 0:
            slot[x] = y
            match[x] = True
            next_ancestor = y + 1
            run = 0
        elif x >= 0:
            slot[x] = next_ancestor
            match[x] = False
            ordinal[x] = run
            run += 1
        else:  # ancestor position unmatched by this block
            next_ancestor = y + 1
            run = 0
    return TweakedBlock(
        ids=list(local_aln.ids),
        matrix=local_aln.matrix,
        anchor_slot=slot,
        anchor_match=match,
        anchor_ordinal=ordinal,
        ancestor_length=len(ancestor),
        score=res.score,
    )

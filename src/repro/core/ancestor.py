"""Local and global ancestors.

The paper's fine-tuning constraint (sections 2.3.3 and Fig. 2): every
processor extracts the *local ancestor* -- the consensus of its bucket's
alignment -- and the root aligns those ancestors with a sequential MSA
program; the consensus of that alignment is the *global ancestor*, the
template every bucket is then tweaked against.
"""

from __future__ import annotations

from typing import List, Optional, Sequence as TSequence

from repro.align.consensus import consensus_sequence
from repro.msa.base import SequentialMsaAligner
from repro.seq.alignment import Alignment
from repro.seq.sequence import Sequence

__all__ = ["local_ancestor", "global_ancestor", "merge_ancestors"]


def local_ancestor(
    aln: Optional[Alignment], rank: int, min_occupancy: float = 0.5
) -> Optional[Sequence]:
    """Consensus of a bucket alignment, or None for an empty bucket."""
    if aln is None or aln.n_rows == 0 or aln.n_columns == 0:
        return None
    return consensus_sequence(
        aln, id=f"ancestor_r{rank}", min_occupancy=min_occupancy
    )


def global_ancestor(
    ancestors: TSequence[Optional[Sequence]],
    aligner: SequentialMsaAligner,
    min_occupancy: float = 0.5,
) -> Sequence:
    """Align the local ancestors and take their consensus.

    ``ancestors`` is the root's gather (one entry per rank, None for empty
    buckets).  With a single non-empty ancestor it is returned directly.
    """
    present: List[Sequence] = [a for a in ancestors if a is not None]
    if not present:
        raise ValueError("no non-empty buckets: cannot build a global ancestor")
    if len(present) == 1:
        return present[0].with_id("global_ancestor")
    aln = aligner.align(present)
    return consensus_sequence(
        aln, id="global_ancestor", min_occupancy=min_occupancy
    )


def merge_ancestors(
    a: Optional[Sequence],
    b: Optional[Sequence],
    min_occupancy: float = 0.5,
) -> Optional[Sequence]:
    """Fold two ancestors into one: profile-align, take the consensus.

    The binary operator of the ``"tree"`` ancestor reduction
    (:class:`~repro.core.config.SampleAlignDConfig`): folding up a
    binomial tree replaces the root's O(p^2 L) ancestor alignment with
    ``log2(p)`` pairwise profile alignments of O(L^2) each.  The fold is
    heuristic (not exactly associative), like every progressive
    alignment; any fold order yields a valid ancestor template.
    """
    if a is None:
        return b
    if b is None:
        return a
    from repro.align.profile import Profile
    from repro.align.profile_align import align_profiles

    merged, _res = align_profiles(
        Profile.from_sequence(a), Profile.from_sequence(b.with_id(a.id + "+"))
    )
    return consensus_sequence(
        merged.alignment, id=a.id, min_occupancy=min_occupancy
    )

"""The Sample-Align-D algorithm (the paper's contribution).

The pipeline per rank (paper section 2's numbered algorithm):

1.  local k-mer ranks over the rank's own ``N/p`` sequences, local sort;
2.  ``k`` samples per rank, allgathered (``k*p`` global sample);
3.  *globalized* re-rank of every sequence against the global sample;
4.  regular sampling of ``p-1`` rank values per rank, pivot selection at
    the root, broadcast;
5.  all-to-all redistribution -- bucket ``i``'s sequences accumulate at
    rank ``i`` (regular sampling bounds occupancy by ``2N/p``);
6.  local sequential MSA of the bucket (pluggable aligner);
7.  local ancestor (consensus) extraction, gathered at the root;
8.  root aligns the ancestors, extracts the *global ancestor*, broadcasts;
9.  each rank tweaks its local alignment against the global ancestor via
    constrained profile-profile alignment;
10. root glues the tweaked blocks onto the union column space.

Public entry point: :func:`repro.core.driver.sample_align_d` (re-exported
as :func:`repro.sample_align_d`).
"""

from repro.core.config import SampleAlignDConfig
from repro.core.driver import MsaResult, sample_align_d
from repro.core.algorithm import RankDiagnostics, sample_align_d_spmd

__all__ = [
    "MsaResult",
    "RankDiagnostics",
    "SampleAlignDConfig",
    "sample_align_d",
    "sample_align_d_spmd",
]

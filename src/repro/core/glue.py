"""Gluing tweaked bucket alignments into the final MSA.

Step 10: the root receives one :class:`~repro.core.tweak.TweakedBlock`
per non-empty bucket, all expressed in global-ancestor coordinates.  The
union column space is: for each ancestor insertion slot, the *maximum*
insertion-run length over all blocks, then the ancestor position itself.
Each block scatters its columns into that layout (insertions
left-aligned within their slot); rows of other blocks are gaps there.

This is lossless -- every bucket keeps its local alignment verbatim --
and the result is a single equal-length alignment over all N sequences,
ready for sum-of-pairs scoring ("the tweaked sequences are just 'joined'
together and SP score is obtained").
"""

from __future__ import annotations

from typing import List, Sequence as TSequence

import numpy as np

from repro.core.tweak import TweakedBlock
from repro.seq.alignment import Alignment
from repro.seq.alphabet import Alphabet

__all__ = ["glue_blocks", "glue_blocks_diagonal"]


def glue_blocks(
    blocks: TSequence[TweakedBlock], alphabet: Alphabet
) -> Alignment:
    """Merge tweaked blocks into one alignment over the union column space."""
    blocks = [b for b in blocks if b.n_rows > 0]
    if not blocks:
        raise ValueError("no blocks to glue")
    ga_len = blocks[0].ancestor_length
    if any(b.ancestor_length != ga_len for b in blocks):
        raise ValueError("blocks disagree on the ancestor length")

    # Union insertion-run lengths per slot (slots 0..ga_len).
    max_ins = np.zeros(ga_len + 1, dtype=np.int64)
    for b in blocks:
        np.maximum(max_ins, b.insert_counts(), out=max_ins)

    # Final layout: [ins slot 0][anc 0][ins slot 1][anc 1]...[ins slot L].
    prefix_ins = np.concatenate(([0], np.cumsum(max_ins)))  # len ga_len+2
    n_final = int(prefix_ins[-1]) + ga_len

    def final_index(b: TweakedBlock) -> np.ndarray:
        """Final column index of each of the block's columns."""
        s = b.anchor_slot
        # Match column at ancestor position g: after all inserts of slots
        # <= g and the g preceding ancestor columns.
        idx = np.where(
            b.anchor_match,
            prefix_ins[s + 1] + s,
            prefix_ins[s] + s + b.anchor_ordinal,
        )
        return idx.astype(np.int64)

    ids: List[str] = []
    rows: List[np.ndarray] = []
    gap = alphabet.gap_code
    for b in blocks:
        out = np.full((b.n_rows, n_final), gap, dtype=np.uint8)
        if b.n_columns:
            out[:, final_index(b)] = b.matrix
        ids.extend(b.ids)
        rows.append(out)

    glued = Alignment(ids, np.vstack(rows), alphabet)
    # Slots no block used are all-gap; drop them.
    return glued.drop_all_gap_columns()


def glue_blocks_diagonal(
    blocks: TSequence[TweakedBlock], alphabet: Alphabet
) -> Alignment:
    """Block-diagonal concatenation (the *no-tweak* ablation).

    Without the global-ancestor constraint the buckets share no column
    semantics, so the only safe join is diagonal: each block occupies its
    own column range and is all-gap elsewhere.  Quality metrics on this
    output quantify exactly what the paper's fine-tuning step buys.
    """
    blocks = [b for b in blocks if b.n_rows > 0]
    if not blocks:
        raise ValueError("no blocks to glue")
    n_final = int(sum(b.n_columns for b in blocks))
    gap = alphabet.gap_code
    ids: List[str] = []
    rows: List[np.ndarray] = []
    offset = 0
    for b in blocks:
        out = np.full((b.n_rows, n_final), gap, dtype=np.uint8)
        out[:, offset : offset + b.n_columns] = b.matrix
        offset += b.n_columns
        ids.extend(b.ids)
        rows.append(out)
    return Alignment(ids, np.vstack(rows), alphabet)

"""Post-glue refinement (the paper's section-5 future work).

The paper closes by noting that *"there might always be a need to refine
the 'global' multiple sequence alignment for some of the most divergent
families"* and sketches sequential refinement heuristics to be
parallelised later.  This module implements that extension:

- :func:`refine_buckets_spmd` -- each rank runs tree-dependent iterative
  refinement on its *own bucket alignment* before the tweak step
  (embarrassingly parallel, zero extra communication);
- :func:`bucket_level_refine` -- after the glue, the root realigns each
  bucket's row block as one frozen profile against the rest of the MSA,
  accepting sum-of-pairs improvements.  This is restricted partitioning
  at bucket granularity: cheap (p partitions, not N) yet able to fix
  exactly the cross-bucket seams that domain decomposition can misplace.

Both are wired into :class:`~repro.core.config.SampleAlignDConfig` via
``refine_local_rounds`` and ``post_refine_rounds``.
"""

from __future__ import annotations

from typing import List, Sequence as TSequence

import numpy as np

from repro.align.guide_tree import upgma
from repro.align.profile import Profile
from repro.align.profile_align import ProfileAlignConfig, align_profiles
from repro.align.refine import refine_alignment
from repro.align.scoring import sp_score
from repro.msa.distances import ktuple_distance_matrix
from repro.seq.alignment import Alignment

__all__ = ["refine_bucket_alignment", "bucket_level_refine"]


def refine_bucket_alignment(
    aln: Alignment,
    scoring: ProfileAlignConfig,
    rounds: int,
    seed: int | None = 0,
) -> Alignment:
    """Tree-dependent refinement of one bucket's alignment (rank-local).

    Builds a fresh k-mer guide tree over the bucket members and sweeps
    its partitions ``rounds`` times; a no-op for trivial alignments.
    """
    if rounds <= 0 or aln.n_rows < 3:
        return aln
    seqs = list(aln.ungapped())
    tree = upgma(ktuple_distance_matrix(seqs), [s.id for s in seqs])
    rng = None if seed is None else np.random.default_rng(seed)
    return refine_alignment(
        aln, tree, scoring, max_rounds=rounds, rng=rng
    ).alignment


def bucket_level_refine(
    glued: Alignment,
    bucket_ids: TSequence[List[str]],
    scoring: ProfileAlignConfig,
    rounds: int = 1,
    gap_penalty: float = 1.0,
) -> Alignment:
    """Root-side restricted partitioning over bucket row-blocks.

    For every bucket (in order, ``rounds`` sweeps): pull its rows out of
    the glued alignment, strip both sides' all-gap columns, realign block
    vs rest as profiles, keep the result when the linear sum-of-pairs
    score strictly improves.
    """
    if rounds <= 0:
        return glued
    current = glued
    current_score = sp_score(current, scoring.matrix, gap_penalty)
    all_ids = set(current.ids)
    for _ in range(rounds):
        improved = False
        for ids in bucket_ids:
            ids = [i for i in ids if i in all_ids]
            if not ids or len(ids) == current.n_rows:
                continue
            rest = [i for i in current.ids if i not in set(ids)]
            block = current.select_rows(ids).drop_all_gap_columns()
            other = current.select_rows(rest).drop_all_gap_columns()
            merged, _res = align_profiles(
                Profile(block), Profile(other), scoring
            )
            candidate = merged.alignment.select_rows(current.ids)
            score = sp_score(candidate, scoring.matrix, gap_penalty)
            if score > current_score + 1e-9:
                current, current_score = candidate, score
                improved = True
        if not improved:
            break
    return current

"""The Sample-Align-D SPMD program (one function, run on every rank).

A direct transcription of the paper's section-2 algorithm onto the
virtual cluster's mpi4py-style API; see :mod:`repro.core` for the step
list.  All collective phases are deterministic, so a run is reproducible
regardless of thread scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence as TSequence

import numpy as np

from repro.core.ancestor import global_ancestor, local_ancestor, merge_ancestors
from repro.core.config import SampleAlignDConfig
from repro.core.glue import glue_blocks, glue_blocks_diagonal
from repro.core.tweak import TweakedBlock, tweak_against_ancestor
from repro.kmer.rank import centralized_rank, globalized_rank
from repro.parcomp.comm import VirtualComm
from repro.samplesort.regular_sampling import (
    bucket_assignments,
    choose_pivots,
    regular_sample,
)
from repro.seq.alignment import Alignment
from repro.seq.sequence import Sequence

__all__ = ["RankDiagnostics", "sample_align_d_spmd"]


@dataclass
class RankDiagnostics:
    """Per-rank facts the driver aggregates after a run."""

    rank: int
    n_initial: int
    n_bucket: int
    local_columns: int
    tweak_score: float
    globalized_ranks: Dict[str, float] = field(default_factory=dict)
    pivots: np.ndarray = field(default_factory=lambda: np.zeros(0))


def _pick_samples(
    seqs: List[Sequence], k: int
) -> List[Sequence]:
    """k evenly spaced sequences from a rank-locally *sorted* list."""
    if not seqs or k <= 0:
        return []
    idx = regular_sample(np.arange(len(seqs)), k)
    return [seqs[int(i)] for i in idx]


def _sorted_by_rank(
    seqs: List[Sequence], ranks: np.ndarray, by_id: bool
) -> tuple:
    if not seqs:
        return seqs, ranks
    if by_id:
        order = sorted(range(len(seqs)), key=lambda i: (ranks[i], seqs[i].id))
    else:
        order = list(np.argsort(ranks, kind="stable"))
    return [seqs[i] for i in order], ranks[np.asarray(order, dtype=np.int64)]


def sample_align_d_spmd(
    comm: VirtualComm,
    local_seqs: TSequence[Sequence],
    config: SampleAlignDConfig,
) -> Dict[str, Any]:
    """Run Sample-Align-D on this rank's share of the sequences.

    Returns a dict with ``"diagnostics"`` on every rank and, on rank 0,
    the glued ``"alignment"`` plus the ``"global_ancestor"``.
    """
    p, r = comm.size, comm.rank
    rank_cfg = config.rank_config
    seqs: List[Sequence] = list(local_seqs)
    n_initial = len(seqs)

    # -- step 1: local k-mer rank + local sort ------------------------------
    local_ranks = (
        centralized_rank(seqs, rank_cfg) if seqs else np.zeros(0)
    )
    seqs, local_ranks = _sorted_by_rank(
        seqs, local_ranks, config.sort_stable_by_id
    )

    # -- step 2: k samples per rank, shared with everyone -------------------
    k = config.samples_per_proc or max(p - 1, 1)
    sample_lists = comm.allgather(_pick_samples(seqs, k))
    global_sample: List[Sequence] = [s for part in sample_lists for s in part]

    # -- step 3: globalized rank against the k*p sample ---------------------
    if not config.globalize_rank:
        g_ranks = local_ranks  # ablation: keep the local-only estimate
    elif seqs and global_sample:
        g_ranks = globalized_rank(seqs, global_sample, rank_cfg)
    else:
        g_ranks = np.zeros(len(seqs))
    seqs, g_ranks = _sorted_by_rank(seqs, g_ranks, config.sort_stable_by_id)

    # -- step 4: regular sampling of rank values, pivots at the root --------
    if config.sampling == "regular":
        my_samples = regular_sample(g_ranks, p - 1)
    else:  # "random": Huang-&-Chow style, no occupancy guarantee
        rng = np.random.default_rng(config.sampling_seed * (p + 1) + r)
        take = min(p - 1, len(g_ranks))
        my_samples = (
            rng.choice(g_ranks, size=take, replace=False)
            if take
            else g_ranks[:0]
        )
    gathered = comm.gather(my_samples, root=0)
    pivots: Optional[np.ndarray] = None
    if r == 0:
        pivots = choose_pivots(
            np.concatenate(gathered) if gathered else np.zeros(0), p
        )
    pivots = comm.bcast(pivots, root=0)

    # -- step 5: redistribution (bucket i accumulates at rank i) ------------
    buckets = bucket_assignments(g_ranks, pivots)
    outgoing: List[List[tuple]] = [[] for _ in range(p)]
    for s, g, b in zip(seqs, g_ranks, buckets):
        outgoing[int(b)].append((s, float(g)))
    incoming = comm.alltoall(outgoing)
    bucket_items = [item for part in incoming for item in part]
    bucket_items.sort(key=lambda t: (t[1], t[0].id))
    bucket_seqs = [s for s, _g in bucket_items]
    rank_table = {s.id: g for s, g in bucket_items}

    # -- step 6: local sequential MSA ----------------------------------------
    aligner = config.make_local_aligner()
    if not bucket_seqs:
        aln: Optional[Alignment] = None
    elif len(bucket_seqs) == 1:
        aln = Alignment.from_single(bucket_seqs[0])
    else:
        aln = aligner.align(bucket_seqs)
        if config.refine_local_rounds > 0:
            from repro.core.postrefine import refine_bucket_alignment

            aln = refine_bucket_alignment(
                aln, config.scoring, config.refine_local_rounds
            )

    diagnostics = RankDiagnostics(
        rank=r,
        n_initial=n_initial,
        n_bucket=len(bucket_seqs),
        local_columns=aln.n_columns if aln is not None else 0,
        tweak_score=float("nan"),
        globalized_ranks=rank_table,
        pivots=np.asarray(pivots),
    )

    # Degenerate single-rank run: the bucket alignment IS the answer.
    if p == 1:
        return {
            "diagnostics": diagnostics,
            "alignment": aln,
            "global_ancestor": None,
        }

    # -- steps 7+8: local ancestors -> global ancestor ----------------------
    anc = local_ancestor(aln, r, config.ancestor_min_occupancy)
    ga: Optional[Sequence] = None
    if config.ancestor_reduction == "tree":
        # Scalability extension: fold pairwise up a binomial tree.
        folded = comm.reduce(
            anc,
            op=lambda a, b: merge_ancestors(
                a, b, config.ancestor_min_occupancy
            ),
            root=0,
        )
        if r == 0:
            if folded is None:
                raise ValueError(
                    "no non-empty buckets: cannot build a global ancestor"
                )
            ga = folded.with_id("global_ancestor")
    else:
        ancestors = comm.gather(anc, root=0)
        if r == 0:
            ga = global_ancestor(
                ancestors,
                config.make_root_aligner(),
                config.ancestor_min_occupancy,
            )
    ga = comm.bcast(ga, root=0)

    # -- step 9: constrained tweak against the global ancestor --------------
    block: Optional[TweakedBlock] = None
    if aln is not None:
        if config.tweak:
            block = tweak_against_ancestor(aln, ga, config.scoring)
            diagnostics.tweak_score = block.score
        else:
            # Ablation path: ship the untweaked block; the root will glue
            # diagonally (no cross-bucket column sharing).
            block = TweakedBlock(
                ids=list(aln.ids),
                matrix=aln.matrix,
                anchor_slot=np.zeros(aln.n_columns, dtype=np.int64),
                anchor_match=np.zeros(aln.n_columns, dtype=bool),
                anchor_ordinal=np.arange(aln.n_columns, dtype=np.int64),
                ancestor_length=len(ga),
                score=float("nan"),
            )

    # -- step 10: glue at the root -------------------------------------------
    blocks = comm.gather(block, root=0)
    result: Dict[str, Any] = {"diagnostics": diagnostics}
    if r == 0:
        present = [b for b in blocks if b is not None and b.n_rows > 0]
        glue = glue_blocks if config.tweak else glue_blocks_diagonal
        glued = glue(present, alphabet=ga.alphabet)
        if config.post_refine_rounds > 0 and config.tweak:
            from repro.core.postrefine import bucket_level_refine

            glued = bucket_level_refine(
                glued,
                [b.ids for b in present],
                config.scoring,
                rounds=config.post_refine_rounds,
            )
        result["alignment"] = glued
        result["global_ancestor"] = ga
    return result

"""Configuration of a Sample-Align-D run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.align.profile_align import ProfileAlignConfig
from repro.kmer.rank import RankConfig

__all__ = ["SampleAlignDConfig"]


@dataclass(frozen=True)
class SampleAlignDConfig:
    """Knobs of the distributed pipeline.

    Attributes
    ----------
    rank_config:
        k-mer rank estimator parameters (k, alphabet, transform).
    samples_per_proc:
        ``k`` of the algorithm -- sample sequences contributed by each
        rank to the global sample.  ``None`` uses ``p - 1`` (the paper's
        default choice, tying the sample size to the processor count).
    local_aligner:
        Registry name of the sequential MSA system run on each bucket
        (paper: "any sequential multiple alignment system"; MUSCLE there).
    local_aligner_kwargs:
        Extra keyword arguments for the local aligner factory.
    root_aligner:
        Aligner used at the root on the ``p`` local ancestors (defaults to
        the local aligner).
    scoring:
        Profile-profile scoring used by the ancestor tweak step.
    ancestor_min_occupancy:
        Occupancy threshold of consensus (ancestor) extraction.
    tweak:
        Run the global-ancestor constrained realignment (step 9).  Off
        switches the pipeline to pure independent bucket alignments
        (the ablation the paper's Fig. 2 motivates against).
    sampling:
        Pivot sampling strategy: ``"regular"`` (the paper's choice, with
        the 2N/p occupancy guarantee) or ``"random"`` (the Huang-&-Chow
        style alternative the paper argues against; ablation only).
    globalize_rank:
        Re-rank against the gathered k*p sample (section 2.3.1).  Off
        keeps the purely local rank estimate -- the paper's earlier
        Sample-Align [34], which misbuckets diverse inputs (ablation).
    sampling_seed:
        Seed of the ``"random"`` sampling strategy.
    ancestor_reduction:
        How the global ancestor is computed from the local ones:
        ``"root"`` gathers all p ancestors and aligns them at the root
        with the sequential MSA system (the paper's step 8, O(p^2 L) at
        the root), ``"tree"`` folds them pairwise up a binomial reduction
        tree (profile-align two ancestors, take the consensus; O(log p)
        rounds, root cost O(L^2) -- a scalability extension).
    refine_local_rounds:
        Rounds of rank-local iterative refinement of each bucket
        alignment before the tweak (the parallelised half of the paper's
        section-5 future work; 0 = off).
    post_refine_rounds:
        Rounds of root-side bucket-level restricted partitioning after
        the glue (the other half; 0 = off).
    sort_stable_by_id:
        Break rank ties by sequence id so runs are order-independent.
    backend:
        Execution backend running the SPMD ranks: ``"threads"`` (the
        default virtual cluster; best modeled-time fidelity, GIL-bound),
        ``"processes"`` (one OS process per rank; real parallel
        compute on multi-core hosts), or ``"pool"`` (persistent warm
        workers with shared-memory transport; process parallelism
        without per-run spawn cost).  ``None`` defers to the caller /
        launcher default.  Backends produce byte-identical alignments.
    """

    rank_config: RankConfig = field(default_factory=RankConfig)
    samples_per_proc: Optional[int] = None
    local_aligner: str = "muscle-p"
    local_aligner_kwargs: Dict[str, Any] = field(default_factory=dict)
    root_aligner: Optional[str] = None
    root_aligner_kwargs: Dict[str, Any] = field(default_factory=dict)
    scoring: ProfileAlignConfig = field(default_factory=ProfileAlignConfig)
    ancestor_min_occupancy: float = 0.5
    tweak: bool = True
    sampling: str = "regular"
    globalize_rank: bool = True
    sampling_seed: int = 0
    ancestor_reduction: str = "root"
    refine_local_rounds: int = 0
    post_refine_rounds: int = 0
    sort_stable_by_id: bool = True
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.backend is not None:
            from repro.parcomp.backends import available_backends

            if self.backend.lower() not in available_backends():
                raise ValueError(
                    f"backend {self.backend!r} is not a registered "
                    f"execution backend; available: {available_backends()}"
                )
        if self.samples_per_proc is not None and self.samples_per_proc < 1:
            raise ValueError("samples_per_proc must be >= 1 (or None)")
        if not 0.0 <= self.ancestor_min_occupancy <= 1.0:
            raise ValueError("ancestor_min_occupancy must lie in [0, 1]")
        if self.sampling not in ("regular", "random"):
            raise ValueError("sampling must be 'regular' or 'random'")
        if self.refine_local_rounds < 0 or self.post_refine_rounds < 0:
            raise ValueError("refinement rounds must be non-negative")
        if self.ancestor_reduction not in ("root", "tree"):
            raise ValueError("ancestor_reduction must be 'root' or 'tree'")
        # Fail fast on a bad aligner name here, not deep inside the SPMD run.
        from repro.msa.registry import available_aligners

        names = available_aligners()
        for role, name in (
            ("local_aligner", self.local_aligner),
            ("root_aligner", self.root_aligner),
        ):
            if name is not None and name.lower() not in names:
                raise ValueError(
                    f"{role} {name!r} is not a registered sequential "
                    f"aligner; available: {names}"
                )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form; inverse of :meth:`from_dict`.

        Nested configs serialize through their own ``to_dict`` (alphabets
        and matrices by registry name), so the round-trip is exact for any
        bundled alphabet/matrix.
        """
        return {
            "rank_config": self.rank_config.to_dict(),
            "samples_per_proc": self.samples_per_proc,
            "local_aligner": self.local_aligner,
            "local_aligner_kwargs": dict(self.local_aligner_kwargs),
            "root_aligner": self.root_aligner,
            "root_aligner_kwargs": dict(self.root_aligner_kwargs),
            "scoring": self.scoring.to_dict(),
            "ancestor_min_occupancy": self.ancestor_min_occupancy,
            "tweak": self.tweak,
            "sampling": self.sampling,
            "globalize_rank": self.globalize_rank,
            "sampling_seed": self.sampling_seed,
            "ancestor_reduction": self.ancestor_reduction,
            "refine_local_rounds": self.refine_local_rounds,
            "post_refine_rounds": self.post_refine_rounds,
            "sort_stable_by_id": self.sort_stable_by_id,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SampleAlignDConfig":
        from repro.align.profile_align import ProfileAlignConfig as PAC
        from repro.kmer.rank import RankConfig as RC

        kwargs = dict(data)
        if "rank_config" in kwargs:
            kwargs["rank_config"] = RC.from_dict(kwargs["rank_config"])
        if "scoring" in kwargs:
            kwargs["scoring"] = PAC.from_dict(kwargs["scoring"])
        return cls(**kwargs)

    def make_local_aligner(self):
        from repro.msa.registry import get_aligner

        return get_aligner(self.local_aligner, **self.local_aligner_kwargs)

    def make_root_aligner(self):
        from repro.msa.registry import get_aligner

        name = self.root_aligner or self.local_aligner
        kwargs = (
            self.root_aligner_kwargs
            if self.root_aligner is not None
            else self.local_aligner_kwargs
        )
        return get_aligner(name, **kwargs)

"""Adapters that put every backend behind the :class:`Aligner` protocol.

Three engine families exist today:

- :class:`SequentialEngine` wraps any
  :class:`repro.msa.base.SequentialMsaAligner` (the Table-2 systems and
  user plug-ins);
- :class:`SampleAlignDEngine` wraps the paper's distributed pipeline;
- :class:`ParallelBaselineEngine` wraps the stage-parallel CLUSTALW
  baseline the paper argues against.

All of them turn an :class:`AlignRequest` into an :class:`AlignResult`
with uniform SP/timing fields plus engine-specific ``diagnostics``; the
rich native result object is preserved in ``result.details``.
"""

from __future__ import annotations

import time
from typing import Any, Dict

from repro.engine.api import AlignRequest, AlignResult

__all__ = [
    "SequentialEngine",
    "SampleAlignDEngine",
    "ParallelBaselineEngine",
]


def _sp(alignment, request: AlignRequest) -> float:
    """SP score under the request's scoring matrix (BLOSUM62 default)."""
    from repro.align.scoring import sp_score

    matrix = None
    if request.config is not None:
        matrix = request.config.scoring.matrix
    return sp_score(alignment, matrix) if matrix is not None else sp_score(alignment)


class SequentialEngine:
    """A sequential MSA system seen through the unified protocol."""

    kind = "sequential"

    def __init__(self, name: str, aligner) -> None:
        self.name = name
        self.aligner = aligner

    def __repr__(self) -> str:
        return f"SequentialEngine({self.name!r})"

    def run(self, request: AlignRequest) -> AlignResult:
        t0 = time.perf_counter()
        alignment = self.aligner.align(request.sequence_set())
        wall = time.perf_counter() - t0
        return AlignResult(
            alignment=alignment,
            engine=self.name,
            sp=_sp(alignment, request),
            wall_time=wall,
            n_procs=1,
            request_hash=request.content_hash(),
            diagnostics={"aligner": type(self.aligner).__name__},
            details=None,
        )


class SampleAlignDEngine:
    """The paper's distributed pipeline behind the unified protocol."""

    name = "sample-align-d"
    kind = "distributed"

    def __init__(self, cost_model=None) -> None:
        self.cost_model = cost_model

    def __repr__(self) -> str:
        return "SampleAlignDEngine()"

    def run(self, request: AlignRequest) -> AlignResult:
        from repro.core.driver import sample_align_d

        result = sample_align_d(
            request.sequence_set(),
            n_procs=request.n_procs,
            config=request.config,
            cost_model=self.cost_model,
            seed=request.seed,
        )
        diagnostics: Dict[str, Any] = {
            "modeled_time": result.modeled_time,
            "comm_bytes": int(result.ledger.total_bytes()),
            "n_messages": int(result.ledger.n_messages()),
            "bucket_sizes": [int(b) for b in result.bucket_sizes],
            "local_aligner": result.config.local_aligner,
        }
        return AlignResult(
            alignment=result.alignment,
            engine=self.name,
            sp=result.sp,
            wall_time=result.wall_time,
            n_procs=result.n_procs,
            request_hash=request.content_hash(),
            diagnostics=diagnostics,
            details=result,
        )


class ParallelBaselineEngine:
    """Stage-parallel CLUSTALW (distances parallel, alignment sequential)."""

    name = "parallel-baseline"
    kind = "distributed"

    def __init__(self, cost_model=None, **kwargs) -> None:
        from repro.msa.parallel_baseline import ParallelClustalW

        self.cost_model = cost_model
        self.baseline = ParallelClustalW(**kwargs)

    def __repr__(self) -> str:
        return "ParallelBaselineEngine()"

    def run(self, request: AlignRequest) -> AlignResult:
        t0 = time.perf_counter()
        result = self.baseline.align(
            request.sequence_set(),
            n_procs=request.n_procs,
            cost_model=self.cost_model,
        )
        wall = time.perf_counter() - t0
        return AlignResult(
            alignment=result.alignment,
            engine=self.name,
            sp=_sp(result.alignment, request),
            wall_time=wall,
            n_procs=result.n_procs,
            request_hash=request.content_hash(),
            diagnostics={
                "modeled_time": result.modeled_time,
                "comm_bytes": int(result.ledger.total_bytes()),
                "n_messages": int(result.ledger.n_messages()),
            },
            details=result,
        )

"""Adapters that put every backend behind the :class:`Aligner` protocol.

Three engine families exist today:

- :class:`SequentialEngine` wraps any
  :class:`repro.msa.base.SequentialMsaAligner` (the Table-2 systems and
  user plug-ins);
- :class:`SampleAlignDEngine` wraps the paper's distributed pipeline;
- :class:`ParallelBaselineEngine` wraps the stage-parallel CLUSTALW
  baseline the paper argues against.

All of them turn an :class:`AlignRequest` into an :class:`AlignResult`
with uniform SP/timing fields plus engine-specific ``diagnostics``; the
rich native result object is preserved in ``result.details``.
"""

from __future__ import annotations

import time
from typing import Any, Dict

from repro.engine.api import AlignRequest, AlignResult
from repro.obs.tracing import span

__all__ = [
    "SequentialEngine",
    "SampleAlignDEngine",
    "ParallelBaselineEngine",
]


def _sp(alignment, request: AlignRequest) -> float:
    """SP score under the request's scoring matrix (BLOSUM62 default)."""
    from repro.align.scoring import sp_score

    matrix = None
    if request.config is not None:
        matrix = request.config.scoring.matrix
    return sp_score(alignment, matrix) if matrix is not None else sp_score(alignment)


class SequentialEngine:
    """A sequential MSA system seen through the unified protocol."""

    kind = "sequential"

    def __init__(self, name: str, aligner) -> None:
        self.name = name
        self.aligner = aligner

    def __repr__(self) -> str:
        return f"SequentialEngine({self.name!r})"

    def run(self, request: AlignRequest) -> AlignResult:
        t0 = time.perf_counter()
        with span("engine.align", engine=self.name):
            alignment = self.aligner.align(request.sequence_set())
        wall = time.perf_counter() - t0
        with span("engine.score", engine=self.name):
            sp = _sp(alignment, request)
        return AlignResult(
            alignment=alignment,
            engine=self.name,
            sp=sp,
            wall_time=wall,
            n_procs=1,
            request_hash=request.content_hash(),
            diagnostics={"aligner": type(self.aligner).__name__},
            details=None,
        )


class SampleAlignDEngine:
    """The paper's distributed pipeline behind the unified protocol.

    Parameters
    ----------
    cost_model:
        Alpha-beta communication model for the modeled cluster time.
    backend:
        Default execution backend for runs through this engine instance
        (``"threads"``/``"processes"``/``"pool"``).  A request whose config sets
        ``backend`` wins over this default; requests can also select it
        per-request via ``engine_kwargs={"backend": ...}`` (which builds
        the engine with that default).
    """

    name = "sample-align-d"
    kind = "distributed"

    def __init__(self, cost_model=None, backend=None) -> None:
        if backend is not None:
            from repro.parcomp.backends import available_backends

            if str(backend).lower() not in available_backends():
                raise ValueError(
                    f"backend {backend!r} is not a registered execution "
                    f"backend; available: {available_backends()}"
                )
        self.cost_model = cost_model
        self.backend = backend

    def __repr__(self) -> str:
        if self.backend is not None:
            return f"SampleAlignDEngine(backend={self.backend!r})"
        return "SampleAlignDEngine()"

    def run(self, request: AlignRequest) -> AlignResult:
        from repro.core.driver import sample_align_d

        # Per-request config wins over the engine-instance default.
        backend = self.backend
        if request.config is not None and request.config.backend is not None:
            backend = request.config.backend
        with span("engine.align", engine=self.name, backend=str(backend)):
            result = sample_align_d(
                request.sequence_set(),
                n_procs=request.n_procs,
                config=request.config,
                cost_model=self.cost_model,
                seed=request.seed,
                backend=backend,
            )
        diagnostics: Dict[str, Any] = {
            "modeled_time": result.modeled_time,
            "comm_bytes": int(result.ledger.total_bytes()),
            "n_messages": int(result.ledger.n_messages()),
            "bucket_sizes": [int(b) for b in result.bucket_sizes],
            "local_aligner": result.config.local_aligner,
            "backend": result.backend,
        }
        return AlignResult(
            alignment=result.alignment,
            engine=self.name,
            sp=result.sp,
            wall_time=result.wall_time,
            n_procs=result.n_procs,
            request_hash=request.content_hash(),
            diagnostics=diagnostics,
            details=result,
        )


class ParallelBaselineEngine:
    """Stage-parallel CLUSTALW (distances parallel, alignment sequential)."""

    name = "parallel-baseline"
    kind = "distributed"

    def __init__(self, cost_model=None, **kwargs) -> None:
        from repro.msa.parallel_baseline import ParallelClustalW

        self.cost_model = cost_model
        self.baseline = ParallelClustalW(**kwargs)

    def __repr__(self) -> str:
        return "ParallelBaselineEngine()"

    def run(self, request: AlignRequest) -> AlignResult:
        t0 = time.perf_counter()
        with span("engine.align", engine=self.name):
            result = self.baseline.align(
                request.sequence_set(),
                n_procs=request.n_procs,
                cost_model=self.cost_model,
            )
        wall = time.perf_counter() - t0
        with span("engine.score", engine=self.name):
            sp = _sp(result.alignment, request)
        return AlignResult(
            alignment=result.alignment,
            engine=self.name,
            sp=sp,
            wall_time=wall,
            n_procs=result.n_procs,
            request_hash=request.content_hash(),
            diagnostics={
                "modeled_time": result.modeled_time,
                "comm_bytes": int(result.ledger.total_bytes()),
                "n_messages": int(result.ledger.n_messages()),
            },
            details=result,
        )

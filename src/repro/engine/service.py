"""Job-based alignment execution with deduplication and an LRU cache.

:class:`AlignmentService` is the serving layer of the unified API: it
accepts single or batched :class:`~repro.engine.api.AlignRequest`\\ s,
executes them on a thread pool, and deduplicates identical requests --
both across time (an LRU result cache keyed by the request's content
hash, i.e. sequence set + engine + config) and within a batch (a second
submission of an in-flight request attaches to the running job instead
of recomputing).  Every submission returns an :class:`AlignJob` whose
metadata records whether the result was computed or served from cache,
and how long it took.

The engines themselves are deterministic for a fixed request (the
:class:`~repro.engine.api.Aligner` contract), which is what makes result
reuse sound.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence as TSequence

from repro.engine.api import AlignRequest, AlignResult
from repro.engine.registry import get_engine

__all__ = ["AlignJob", "AlignmentService"]


@dataclass
class AlignJob:
    """Handle plus metadata for one submitted request.

    Attributes
    ----------
    job_id:
        Monotonically increasing id within the service.
    request:
        The submitted request.
    cache_hit:
        True when the result was served from the LRU cache or attached
        to an identical in-flight job (the alignment ran at most once).
    wall_time:
        Seconds from submission to completion for this job (near zero
        for cache hits).
    """

    job_id: int
    request: AlignRequest
    cache_hit: bool = False
    error: Optional[BaseException] = None
    wall_time: Optional[float] = None
    _result: Optional[AlignResult] = field(default=None, repr=False)
    _future: Optional[Future] = field(default=None, repr=False)
    _submitted: float = field(default=0.0, repr=False)

    @property
    def done(self) -> bool:
        return self._future is None or self._future.done()

    @property
    def status(self) -> str:
        if not self.done:
            return "running"
        return "failed" if self.error is not None else "done"

    @property
    def result(self) -> Optional[AlignResult]:
        """The result if already available (non-blocking); else None."""
        if self._result is None and self.done:
            try:
                self.wait()
            except Exception:
                return None
        return self._result

    def wait(self, timeout: Optional[float] = None) -> AlignResult:
        """Block until the job finishes; re-raises the engine's error.

        A ``TimeoutError`` from ``timeout`` expiring is re-raised but not
        recorded: the job is still running, not failed.
        """
        if self._future is not None:
            try:
                self._result = self._future.result(timeout)
            except FuturesTimeoutError:
                raise
            except Exception as exc:
                self.error = exc
                if self.wall_time is None:
                    self.wall_time = time.perf_counter() - self._submitted
                raise
        if self.wall_time is None:
            self.wall_time = time.perf_counter() - self._submitted
        assert self._result is not None
        return self._result

    def metadata(self) -> Dict[str, Any]:
        """JSON-able per-job record (id, status, cache hit, timing)."""
        out: Dict[str, Any] = {
            "job_id": self.job_id,
            "engine": self.request.engine,
            "request_hash": self.request.content_hash(),
            "status": self.status,
            "cache_hit": self.cache_hit,
            "wall_time": self.wall_time,
        }
        if self.error is not None:
            out["error"] = repr(self.error)
        return out


class AlignmentService:
    """Thread-pooled, cache-deduplicated execution of alignment jobs.

    Parameters
    ----------
    max_workers:
        Thread-pool width (default: a small pool; alignment kernels are
        numpy-bound so they release the GIL poorly -- the pool's value
        is overlap of independent jobs, not intra-job speedup).
    cache_size:
        Capacity of the LRU result cache (0 disables caching).

    Usage::

        with AlignmentService(max_workers=4) as svc:
            jobs = svc.run_batch([req1, req2, req1])   # req1 runs once
            results = [j.wait() for j in jobs]
    """

    def __init__(self, max_workers: Optional[int] = None, cache_size: int = 128) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers or 4, thread_name_prefix="align-engine"
        )
        self._cache: "OrderedDict[str, AlignResult]" = OrderedDict()
        self._cache_size = cache_size
        self._inflight: Dict[str, Future] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._hits = 0
        self._misses = 0
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the pool down (outstanding jobs finish first)."""
        self._closed = True
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "AlignmentService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission --------------------------------------------------------

    def submit(self, request: AlignRequest) -> AlignJob:
        """Enqueue one request; returns immediately with a job handle."""
        if self._closed:
            raise RuntimeError("service is closed")
        key = request.content_hash()
        job = AlignJob(job_id=next(self._ids), request=request)
        job._submitted = time.perf_counter()
        with self._lock:
            cached = self._cache.get(key) if self._cache_size else None
            if cached is not None:
                self._cache.move_to_end(key)
                self._hits += 1
                job.cache_hit = True
                job._result = cached
                job.wall_time = time.perf_counter() - job._submitted
                return job
            inflight = self._inflight.get(key)
            if inflight is not None:
                self._hits += 1
                job.cache_hit = True
                job._future = inflight
                return job
            self._misses += 1
            future = self._executor.submit(self._execute, request, key)
            self._inflight[key] = future
            job._future = future
        return job

    def run(self, request: AlignRequest) -> AlignResult:
        """Execute one request synchronously (through the cache)."""
        return self.submit(request).wait()

    def run_batch(self, requests: TSequence[AlignRequest]) -> List[AlignJob]:
        """Submit a batch and wait for all of it.

        Returns one completed job per request, **in input order**;
        duplicate requests share a single execution (every job after the
        first carries ``cache_hit=True``).  Failed jobs carry ``error``
        instead of a result and do not abort the rest of the batch.
        """
        jobs = [self.submit(r) for r in requests]
        for job in jobs:
            try:
                job.wait()
            except Exception:
                pass  # recorded on job.error; batch continues
        return jobs

    def results(self, requests: TSequence[AlignRequest]) -> List[AlignResult]:
        """Batch-run and return results in input order (raises on failure)."""
        out: List[AlignResult] = []
        for job in self.run_batch(requests):
            if job.error is not None:
                raise job.error
            assert job._result is not None
            out.append(job._result)
        return out

    # -- internals ---------------------------------------------------------

    def _execute(self, request: AlignRequest, key: str) -> AlignResult:
        try:
            engine = get_engine(request.engine, **request.engine_kwargs)
            result = engine.run(request)
            with self._lock:
                if self._cache_size:
                    self._cache[key] = result
                    self._cache.move_to_end(key)
                    while len(self._cache) > self._cache_size:
                        self._cache.popitem(last=False)
            return result
        finally:
            with self._lock:
                self._inflight.pop(key, None)

    # -- introspection -----------------------------------------------------

    @property
    def stats(self) -> Dict[str, int]:
        """Hit/miss counters and current cache/in-flight occupancy."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "cached": len(self._cache),
                "inflight": len(self._inflight),
            }

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

"""Job-based alignment execution with deduplication and a pluggable cache.

:class:`AlignmentService` is the serving layer of the unified API: it
accepts single or batched :class:`~repro.engine.api.AlignRequest`\\ s,
executes them on a thread pool, and deduplicates identical requests --
both across time (a result cache keyed by the request's content hash,
i.e. sequence set + engine + config) and within a batch (a second
submission of an in-flight request attaches to the running job instead
of recomputing).  Every submission returns an :class:`AlignJob` whose
metadata records whether the result was computed or served from cache,
and how long it took.

The result cache is a pluggable :class:`CacheBackend`: the default is
the process-local :class:`MemoryResultCache` (an LRU bounded by entry
count), and :class:`repro.serve.store.ResultStore` drops in a disk-backed
content-addressed store so results survive process restarts.

The engines themselves are deterministic for a fixed request (the
:class:`~repro.engine.api.Aligner` contract), which is what makes result
reuse sound.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence as TSequence,
    runtime_checkable,
)

from repro.engine.api import AlignRequest, AlignResult
from repro.engine.registry import get_engine
from repro.obs.tracing import collect, span, stage_breakdown, tracing_enabled

__all__ = [
    "AlignJob",
    "AlignmentService",
    "CacheBackend",
    "MemoryResultCache",
    "TieredResultCache",
]


@runtime_checkable
class CacheBackend(Protocol):
    """What :class:`AlignmentService` needs from a result cache.

    Keys are :meth:`AlignRequest.content_hash` digests, so any two
    processes agree on what a key means -- which is what makes shared
    backends (e.g. a disk store) sound.  Implementations must be
    thread-safe; ``get`` returns ``None`` on a miss and is expected to
    refresh the entry's recency when the backend evicts.
    """

    def get(self, key: str) -> Optional[AlignResult]:
        """Return the cached result for ``key``, or ``None``."""
        ...

    def put(self, key: str, result: AlignResult) -> None:
        """Store ``result`` under ``key`` (evicting as needed)."""
        ...

    def clear(self) -> None:
        """Drop every entry."""
        ...

    def __len__(self) -> int:
        """Number of currently cached entries."""
        ...

    def stats(self) -> Dict[str, Any]:
        """JSON-able backend counters (entries, evictions, ...)."""
        ...


class MemoryResultCache:
    """The default backend: a thread-safe in-process LRU, bounded by count."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._data: "OrderedDict[str, AlignResult]" = OrderedDict()
        self._lock = threading.Lock()
        self._evictions = 0

    def get(self, key: str) -> Optional[AlignResult]:
        with self._lock:
            result = self._data.get(key)
            if result is not None:
                self._data.move_to_end(key)
            return result

    def put(self, key: str, result: AlignResult) -> None:
        with self._lock:
            self._data[key] = result
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "backend": "memory",
                "entries": len(self._data),
                "capacity": self.capacity,
                "evictions": self._evictions,
            }


class TieredResultCache:
    """Two-level backend: a fast front over a durable back.

    Typical composition: a small :class:`MemoryResultCache` in front of
    a disk-backed :class:`repro.serve.store.ResultStore`, so repeat hits
    on hot keys skip the disk read/parse entirely while results still
    survive restarts.  Gets fall through to the back and promote the hit
    into the front; puts write through to both.
    """

    def __init__(self, front: CacheBackend, back: CacheBackend) -> None:
        self.front = front
        self.back = back

    def get(self, key: str) -> Optional[AlignResult]:
        result = self.front.get(key)
        if result is not None:
            return result
        result = self.back.get(key)
        if result is not None:
            self.front.put(key, result)  # promote the hot key
        return result

    def put(self, key: str, result: AlignResult) -> None:
        self.front.put(key, result)
        self.back.put(key, result)

    def clear(self) -> None:
        self.front.clear()
        self.back.clear()

    def __len__(self) -> int:
        # The durable tier is the authority; the front is a subset.
        return len(self.back)

    def stats(self) -> Dict[str, Any]:
        front, back = self.front.stats(), self.back.stats()
        return {
            "backend": "tiered",
            "entries": len(self.back),
            "evictions": back.get("evictions", 0),
            "front": front,
            "back": back,
        }


@dataclass
class AlignJob:
    """Handle plus metadata for one submitted request.

    Attributes
    ----------
    job_id:
        Monotonically increasing id within the service.
    request:
        The submitted request.
    cache_hit:
        True when the result was served from the LRU cache or attached
        to an identical in-flight job (the alignment ran at most once).
    wall_time:
        Seconds from submission to completion for this job (near zero
        for cache hits).
    """

    job_id: int
    request: AlignRequest
    cache_hit: bool = False
    error: Optional[BaseException] = None
    wall_time: Optional[float] = None
    _result: Optional[AlignResult] = field(default=None, repr=False)
    _future: Optional[Future] = field(default=None, repr=False)
    _submitted: float = field(default=0.0, repr=False)

    @property
    def done(self) -> bool:
        return self._future is None or self._future.done()

    @property
    def status(self) -> str:
        if not self.done:
            return "running"
        return "failed" if self.error is not None else "done"

    @property
    def result(self) -> Optional[AlignResult]:
        """The result if already available (non-blocking); else None."""
        if self._result is None and self.done:
            try:
                self.wait()
            except Exception:
                return None
        return self._result

    def wait(self, timeout: Optional[float] = None) -> AlignResult:
        """Block until the job finishes; re-raises the engine's error.

        A ``TimeoutError`` from ``timeout`` expiring is re-raised but not
        recorded: the job is still running, not failed.
        """
        if self._future is not None:
            try:
                self._result = self._future.result(timeout)
            except FuturesTimeoutError:
                raise
            except Exception as exc:
                self.error = exc
                if self.wall_time is None:
                    self.wall_time = time.perf_counter() - self._submitted
                raise
        if self.wall_time is None:
            self.wall_time = time.perf_counter() - self._submitted
        assert self._result is not None
        return self._result

    def metadata(self) -> Dict[str, Any]:
        """JSON-able per-job record (id, status, cache hit, timing)."""
        out: Dict[str, Any] = {
            "job_id": self.job_id,
            "engine": self.request.engine,
            "request_hash": self.request.content_hash(),
            "status": self.status,
            "cache_hit": self.cache_hit,
            "wall_time": self.wall_time,
        }
        if self.error is not None:
            out["error"] = repr(self.error)
        return out


class AlignmentService:
    """Thread-pooled, cache-deduplicated execution of alignment jobs.

    Parameters
    ----------
    max_workers:
        Thread-pool width (default: a small pool; alignment kernels are
        numpy-bound so they release the GIL poorly -- the pool's value
        is overlap of independent jobs, not intra-job speedup).
    cache_size:
        Capacity of the default in-memory LRU cache (0 disables
        caching).  Ignored when ``cache`` is given.
    cache:
        An explicit :class:`CacheBackend` (e.g. a disk-backed
        :class:`repro.serve.store.ResultStore`), replacing the default
        :class:`MemoryResultCache`.

    Usage::

        with AlignmentService(max_workers=4) as svc:
            jobs = svc.run_batch([req1, req2, req1])   # req1 runs once
            results = [j.wait() for j in jobs]
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache_size: int = 128,
        cache: Optional[CacheBackend] = None,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers or 4, thread_name_prefix="align-engine"
        )
        if cache is not None:
            self._cache: Optional[CacheBackend] = cache
        elif cache_size:
            self._cache = MemoryResultCache(cache_size)
        else:
            self._cache = None
        self._inflight: Dict[str, Future] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._hits = 0
        self._misses = 0
        self._computed = 0
        self._cache_put_failures = 0
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the pool down (outstanding jobs finish first)."""
        self._closed = True
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "AlignmentService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- submission --------------------------------------------------------

    def submit(self, request: AlignRequest) -> AlignJob:
        """Enqueue one request; returns immediately with a job handle."""
        if self._closed:
            raise RuntimeError("service is closed")
        key = request.content_hash()
        job = AlignJob(job_id=next(self._ids), request=request)
        job._submitted = time.perf_counter()
        # Backend lookup happens outside the service lock: backends are
        # thread-safe and a disk-backed get must not serialize every
        # submission.  The cost is a benign race -- a request finishing
        # between this get and the in-flight check below is recomputed.
        cached = self._cache.get(key) if self._cache is not None else None
        with self._lock:
            if cached is not None:
                self._hits += 1
                job.cache_hit = True
                job._result = cached
                job.wall_time = time.perf_counter() - job._submitted
                return job
            inflight = self._inflight.get(key)
            if inflight is not None:
                self._hits += 1
                job.cache_hit = True
                job._future = inflight
                return job
            self._misses += 1
            future = self._executor.submit(self._execute, request, key)
            self._inflight[key] = future
            job._future = future
        return job

    def run(self, request: AlignRequest) -> AlignResult:
        """Execute one request synchronously (through the cache)."""
        return self.submit(request).wait()

    def run_batch(self, requests: TSequence[AlignRequest]) -> List[AlignJob]:
        """Submit a batch and wait for all of it.

        Returns one completed job per request, **in input order**;
        duplicate requests share a single execution (every job after the
        first carries ``cache_hit=True``).  Failed jobs carry ``error``
        instead of a result and do not abort the rest of the batch.
        """
        jobs = [self.submit(r) for r in requests]
        for job in jobs:
            try:
                job.wait()
            except Exception:
                pass  # recorded on job.error; batch continues
        return jobs

    def results(self, requests: TSequence[AlignRequest]) -> List[AlignResult]:
        """Batch-run and return results in input order (raises on failure)."""
        out: List[AlignResult] = []
        for job in self.run_batch(requests):
            if job.error is not None:
                raise job.error
            assert job._result is not None
            out.append(job._result)
        return out

    # -- internals ---------------------------------------------------------

    def _execute(self, request: AlignRequest, key: str) -> AlignResult:
        try:
            engine = get_engine(request.engine, **request.engine_kwargs)
            if tracing_enabled():
                # Collect this job's spans in a per-thread buffer (teeing
                # into the process-wide one) and attach the folded
                # per-stage breakdown to the result -- it is a property
                # of the computation, so it is cached with it.
                with collect() as trace_buf, span(
                    "service.execute",
                    engine=request.engine,
                    n_seqs=len(request.sequences),
                    request_hash=key[:12],
                ):
                    result = engine.run(request)
                result.diagnostics = {
                    **result.diagnostics,
                    "stage_breakdown": stage_breakdown(trace_buf.records()),
                }
            else:
                result = engine.run(request)
            if self._cache is not None:
                # Outside the lock (thread-safe backend, possibly disk
                # I/O) and never fatal: a cache that cannot store costs
                # a future recomputation, not this job's result.
                try:
                    self._cache.put(key, result)
                except Exception:
                    with self._lock:
                        self._cache_put_failures += 1
            with self._lock:
                self._computed += 1
            return result
        finally:
            with self._lock:
                self._inflight.pop(key, None)

    # -- introspection -----------------------------------------------------

    @property
    def stats(self) -> Dict[str, Any]:
        """Counters for the user-facing metrics surface.

        ``hits``/``misses`` are cache-lookup outcomes (an in-flight
        attach counts as a hit), ``served`` is an alias of ``hits``,
        ``computed`` counts engine runs that completed, ``evictions``
        comes from the backend, and ``cached``/``inflight`` are current
        occupancies.  ``cache_backend`` carries the backend's own
        counters (``None`` when caching is disabled).
        """
        backend_stats: Optional[Dict[str, Any]] = None
        if self._cache is not None:
            backend_stats = self._cache.stats()
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "served": self._hits,
                "computed": self._computed,
                "evictions": (backend_stats or {}).get("evictions", 0),
                "cached": len(self._cache) if self._cache is not None else 0,
                "inflight": len(self._inflight),
                "cache_put_failures": self._cache_put_failures,
                "cache_backend": backend_stats,
            }

    def clear_cache(self) -> None:
        if self._cache is not None:
            self._cache.clear()

"""The unified engine registry.

One name space spans every alignment backend: the sequential MSA systems
(``"muscle"``, ``"clustalw"``, ``"tcoffee"``, ...), the stage-parallel
``"parallel-baseline"``, and ``"sample-align-d"`` itself.  Everything --
the :func:`repro.align` facade, the CLI's ``--engine`` flag,
:class:`~repro.engine.service.AlignmentService`, benchmarks -- resolves
engines through :func:`get_engine`; plug-ins enter through
:func:`register_engine` (or :func:`register_sequential_aligner` for bare
:class:`~repro.msa.base.SequentialMsaAligner` factories).

The legacy :mod:`repro.msa.registry` is a thin delegate over the
sequential section of this table, so ``repro.msa.get_aligner`` and
``repro.engine.get_engine`` can never disagree about what a name means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional

from repro.engine.api import Aligner

__all__ = [
    "EngineEntry",
    "available_engines",
    "available_sequential_aligners",
    "engine_distance_options",
    "engine_tree_options",
    "get_engine",
    "get_sequential_aligner",
    "register_engine",
    "register_sequential_aligner",
    "unregister_engine",
    "unregister_sequential_aligner",
]

#: The distance-seam kwargs a guide-tree engine can accept (see
#: :mod:`repro.distance`); registry entries advertise the subset they
#: support so the serving gateway and the CLI can thread defaults
#: through ``engine_kwargs`` without guessing.
DISTANCE_OPTION_NAMES = (
    "distance",
    "distance_backend",
    "distance_workers",
    "distance_out",
    "distance_store_dir",
)

#: The tree-seam kwargs a guide-tree engine can accept (see
#: :mod:`repro.tree`); advertised the same way as the distance seam.
TREE_OPTION_NAMES = ("tree", "tree_backend", "tree_workers")


@dataclass(frozen=True)
class EngineEntry:
    """One registry row: how to build an engine, and of which kind."""

    name: str
    kind: str  # "sequential" | "distributed"
    factory: Callable[..., Aligner]
    #: For sequential entries, the raw SequentialMsaAligner factory that
    #: the legacy ``repro.msa.get_aligner`` path returns directly.
    seq_factory: Optional[Callable] = None
    #: Which distance-seam kwargs (subset of DISTANCE_OPTION_NAMES) the
    #: engine factory accepts.  Empty for engines without a pluggable
    #: guide-tree distance stage (T-Coffee, ProbCons, Sample-Align-D --
    #: the latter takes them via ``local_aligner_kwargs`` instead).
    distance_options: FrozenSet[str] = frozenset()
    #: Which tree-seam kwargs (subset of TREE_OPTION_NAMES) the engine
    #: factory accepts; same conventions as ``distance_options``.
    tree_options: FrozenSet[str] = frozenset()


_ENGINES: Dict[str, EngineEntry] = {}


def _register(entry: EngineEntry, overwrite: bool) -> None:
    existing = _ENGINES.get(entry.name)
    if existing is not None:
        if not overwrite:
            raise ValueError(
                f"engine {entry.name!r} already registered "
                "(pass overwrite=True to replace)"
            )
        if existing.kind != entry.kind:
            raise ValueError(
                f"cannot overwrite {existing.kind} engine "
                f"{entry.name!r} with a {entry.kind} one; "
                "unregister it first"
            )
    _ENGINES[entry.name] = entry


def _option_set(
    options: Iterable[str], names: tuple, what: str
) -> FrozenSet[str]:
    opts = frozenset(options)
    unknown = opts - set(names)
    if unknown:
        raise ValueError(
            f"unknown {what} options {sorted(unknown)}; "
            f"subset of {list(names)}"
        )
    return opts


def register_engine(
    name: str,
    factory: Callable[..., Aligner],
    kind: str = "distributed",
    overwrite: bool = False,
    distance_options: Iterable[str] = (),
    tree_options: Iterable[str] = (),
) -> None:
    """Register an engine factory under a unified-registry name.

    ``factory(**kwargs)`` must return an :class:`Aligner`.  Use
    :func:`register_sequential_aligner` instead when all you have is a
    :class:`~repro.msa.base.SequentialMsaAligner` factory -- that keeps
    the name visible to the legacy ``repro.msa`` paths too.
    ``distance_options`` / ``tree_options`` advertise which of the
    :mod:`repro.distance` / :mod:`repro.tree` seam kwargs the factory
    accepts (see :func:`engine_distance_options` /
    :func:`engine_tree_options`).
    """
    if kind not in ("sequential", "distributed"):
        raise ValueError("kind must be 'sequential' or 'distributed'")
    _register(
        EngineEntry(
            name.lower(),
            kind,
            factory,
            distance_options=_option_set(
                distance_options, DISTANCE_OPTION_NAMES, "distance"
            ),
            tree_options=_option_set(
                tree_options, TREE_OPTION_NAMES, "tree"
            ),
        ),
        overwrite,
    )


def register_sequential_aligner(
    name: str,
    seq_factory: Callable,
    overwrite: bool = False,
    distance_options: Iterable[str] = (),
    tree_options: Iterable[str] = (),
) -> None:
    """Register a sequential MSA factory in the unified name space.

    The name becomes usable both as an engine (``get_engine(name)``, the
    ``align`` facade, the service) and through the legacy
    ``repro.msa.get_aligner`` path.  Pass ``distance_options`` /
    ``tree_options`` when the factory accepts the
    :mod:`repro.distance` / :mod:`repro.tree` seam kwargs
    (``distance``/``distance_backend``/``distance_workers`` and
    ``tree``/``tree_backend``/``tree_workers``).
    """
    key = name.lower()

    def engine_factory(**kwargs) -> Aligner:
        from repro.engine.engines import SequentialEngine

        return SequentialEngine(key, seq_factory(**kwargs))

    _register(
        EngineEntry(
            key,
            "sequential",
            engine_factory,
            seq_factory,
            distance_options=_option_set(
                distance_options, DISTANCE_OPTION_NAMES, "distance"
            ),
            tree_options=_option_set(
                tree_options, TREE_OPTION_NAMES, "tree"
            ),
        ),
        overwrite,
    )


def unregister_engine(name: str) -> None:
    """Remove an engine (any kind) from the registry."""
    try:
        del _ENGINES[name.lower()]
    except KeyError:
        raise KeyError(f"engine {name!r} is not registered") from None


def unregister_sequential_aligner(name: str) -> None:
    """Remove a sequential aligner; refuses to touch distributed engines.

    This is the kind-checked removal the legacy ``repro.msa`` facade
    delegates to.
    """
    entry = _ENGINES.get(name.lower())
    if entry is None or entry.kind != "sequential":
        raise KeyError(
            f"unknown aligner {name!r}; available: "
            f"{available_sequential_aligners()}"
        )
    del _ENGINES[name.lower()]


def available_engines() -> Dict[str, str]:
    """``{name: kind}`` over the whole unified registry, name-sorted."""
    return {name: _ENGINES[name].kind for name in sorted(_ENGINES)}


def available_sequential_aligners() -> List[str]:
    """Sorted names of the sequential section (the legacy registry view)."""
    return sorted(n for n, e in _ENGINES.items() if e.kind == "sequential")


def engine_distance_options(name: str) -> FrozenSet[str]:
    """Which :mod:`repro.distance` seam kwargs the engine accepts.

    Empty set for unknown names (callers treat those as "not
    distance-capable" rather than erroring -- the registry is open).
    """
    entry = _ENGINES.get(name.lower())
    return entry.distance_options if entry is not None else frozenset()


def engine_tree_options(name: str) -> FrozenSet[str]:
    """Which :mod:`repro.tree` seam kwargs the engine accepts.

    Empty set for unknown names, mirroring
    :func:`engine_distance_options`.
    """
    entry = _ENGINES.get(name.lower())
    return entry.tree_options if entry is not None else frozenset()


def get_engine(name: str, **kwargs) -> Aligner:
    """Instantiate any registered engine by unified-registry name."""
    try:
        entry = _ENGINES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown engine {name!r}; available: {sorted(_ENGINES)}"
        ) from None
    return entry.factory(**kwargs)


def get_sequential_aligner(name: str, **kwargs):
    """Instantiate the raw sequential aligner behind a registry name.

    This is the legacy ``repro.msa.get_aligner`` behaviour: it only
    resolves sequential entries and returns the bare
    :class:`~repro.msa.base.SequentialMsaAligner` (no protocol wrapper).
    """
    entry = _ENGINES.get(name.lower())
    if entry is None or entry.seq_factory is None:
        raise KeyError(
            f"unknown aligner {name!r}; available: "
            f"{available_sequential_aligners()}"
        ) from None
    return entry.seq_factory(**kwargs)


# ---------------------------------------------------------------------------
# Built-in engines.  Sequential factories defer their imports so that
# `import repro.engine` stays cheap (PEP 562 spirit); the heavy stacks
# (pair-HMM, FFT anchoring) load only when the engine is requested.


def _seq(module: str, cls: str, **preset):
    def factory(**kw):
        import importlib

        aligner_cls = getattr(importlib.import_module(module), cls)
        return aligner_cls(**{**preset, **kw})

    return factory


#: The guide-tree systems whose distance stage routes through
#: :func:`repro.distance.all_pairs` and whose tree stage routes through
#: :mod:`repro.tree` (they accept both full seams).
_GUIDE_TREE_DISTANCE_OPTIONS = frozenset(DISTANCE_OPTION_NAMES)
_GUIDE_TREE_TREE_OPTIONS = frozenset(TREE_OPTION_NAMES)

_BUILTIN_SEQUENTIAL = {
    # MUSCLE family (paper Table 2: MUSCLE and MUSCLE-p).
    "muscle": _seq("repro.msa.muscle", "MuscleLike"),
    "muscle-p": _seq("repro.msa.muscle", "MuscleLike", refine=False),
    "muscle-draft": _seq(
        "repro.msa.muscle", "MuscleLike", two_stage=False, refine=False
    ),
    # CLUSTALW.
    "clustalw": _seq("repro.msa.clustalw", "ClustalWLike"),
    "clustalw-full": _seq(
        "repro.msa.clustalw", "ClustalWLike", distance_mode="full"
    ),
    # MAFFT scripts cited by the paper.
    "mafft-nwnsi": _seq("repro.msa.mafft", "MafftLike", mode="nwnsi"),
    "mafft-fftnsi": _seq("repro.msa.mafft", "MafftLike", mode="fftnsi"),
    # Cheap baseline.
    "center-star": _seq("repro.msa.centerstar", "CenterStar"),
}

for _name, _factory in _BUILTIN_SEQUENTIAL.items():
    register_sequential_aligner(
        _name,
        _factory,
        distance_options=_GUIDE_TREE_DISTANCE_OPTIONS,
        tree_options=_GUIDE_TREE_TREE_OPTIONS,
    )

# Consistency-based systems: no guide-tree distance or tree stage.
register_sequential_aligner(
    "tcoffee", _seq("repro.msa.tcoffee", "TCoffeeLike")
)
register_sequential_aligner(
    "probcons", _seq("repro.msa.probcons", "ProbConsLike")
)


def _sample_align_d_factory(**kwargs) -> Aligner:
    from repro.engine.engines import SampleAlignDEngine

    return SampleAlignDEngine(**kwargs)


def _parallel_baseline_factory(**kwargs) -> Aligner:
    from repro.engine.engines import ParallelBaselineEngine

    return ParallelBaselineEngine(**kwargs)


register_engine("sample-align-d", _sample_align_d_factory)
# The stage-parallel baseline parallelises its distance and merge
# stages inside its own SPMD program, so it takes estimator/builder
# choices but no nested backend/workers.
register_engine(
    "parallel-baseline",
    _parallel_baseline_factory,
    distance_options=("distance", "distance_out", "distance_store_dir"),
    tree_options=("tree",),
)

"""The unified alignment API: one protocol, one request, one result.

The paper's claim is that Sample-Align-D wraps *any* sequential multiple
alignment system.  This module makes that claim an interface: every
engine -- the sequential systems of :mod:`repro.msa`, the stage-parallel
baseline, Sample-Align-D itself, and any future backend -- sits behind
the same three types:

- :class:`Aligner` -- the engine protocol (``name`` + ``run(request)``).
- :class:`AlignRequest` -- an immutable, content-hashable description of
  one alignment job (sequences + engine + knobs).  Serializable via
  ``to_dict``/``from_dict``, so requests can travel over job queues and
  key result caches (:meth:`AlignRequest.content_hash`).
- :class:`AlignResult` -- the uniform response: the alignment plus SP
  score, timing and engine-specific diagnostics.  The rich legacy result
  object (e.g. :class:`repro.core.driver.MsaResult`) rides along in
  ``details`` for callers that need the full ledger.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.core.config import SampleAlignDConfig
from repro.seq.alignment import Alignment
from repro.seq.alphabet import get_alphabet
from repro.seq.sequence import Sequence, SequenceSet

__all__ = ["Aligner", "AlignRequest", "AlignResult"]


@runtime_checkable
class Aligner(Protocol):
    """What every alignment engine looks like to the rest of the system.

    Implementations must be deterministic for a fixed request (that is
    what makes :class:`repro.engine.service.AlignmentService`'s result
    cache sound) and must return rows in the request's input order.
    """

    #: Registry name of the engine.
    name: str
    #: ``"sequential"`` or ``"distributed"`` (informational).
    kind: str

    def run(self, request: "AlignRequest") -> "AlignResult":
        """Execute one alignment job."""
        ...


def _sequences_tuple(seqs: Any) -> Tuple[Sequence, ...]:
    if isinstance(seqs, Sequence):
        raise TypeError("pass an iterable of Sequence, not a single Sequence")
    return tuple(seqs)


@dataclass(frozen=True)
class AlignRequest:
    """One alignment job, described completely and immutably.

    Attributes
    ----------
    sequences:
        The ungapped input sequences (any iterable of
        :class:`~repro.seq.sequence.Sequence`; stored as a tuple).  Ids
        must be unique.
    engine:
        Unified registry name (see :mod:`repro.engine.registry`):
        ``"sample-align-d"``, ``"parallel-baseline"``, or any sequential
        aligner name such as ``"muscle"`` or ``"center-star"``.
    n_procs:
        Virtual processor count for distributed engines (ignored by
        sequential ones).
    seed:
        Seeded initial block distribution for Sample-Align-D (``None`` =
        input order; ignored by engines without a randomized placement).
    config:
        Optional :class:`~repro.core.config.SampleAlignDConfig` for the
        distributed pipeline; sequential engines use only its scoring
        matrix (for the SP score) when present.
    engine_kwargs:
        Extra keyword arguments for the engine factory (e.g.
        ``refine_rounds=5`` for ``"muscle"``).  Values must be JSON-able
        for the content hash to be stable.
    """

    sequences: Tuple[Sequence, ...]
    engine: str = "sample-align-d"
    n_procs: int = 4
    seed: Optional[int] = None
    config: Optional[SampleAlignDConfig] = None
    engine_kwargs: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "sequences", _sequences_tuple(self.sequences)
        )
        if not self.sequences:
            raise ValueError("request has no sequences")
        ids = [s.id for s in self.sequences]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate sequence ids in request")
        if not self.engine:
            raise ValueError("engine name must be non-empty")
        if self.n_procs < 1:
            raise ValueError("n_procs must be >= 1")
        try:
            json.dumps(self.engine_kwargs, sort_keys=True)
        except TypeError as exc:
            raise TypeError(
                "engine_kwargs values must be JSON-able (they feed the "
                f"request's content hash and serialization): {exc}"
            ) from None

    # -- content identity --------------------------------------------------

    def canonical(self) -> Dict[str, Any]:
        """Fully-determined JSON-able form of this request.

        Two requests with equal ``canonical()`` dicts describe the same
        job; the service's cache key (:meth:`content_hash`) is derived
        from it.
        """
        return {
            "engine": self.engine.lower(),
            "n_procs": self.n_procs,
            "seed": self.seed,
            "config": None if self.config is None else self.config.to_dict(),
            "engine_kwargs": dict(sorted(self.engine_kwargs.items())),
            "sequences": [
                {
                    "id": s.id,
                    "residues": s.residues,
                    "alphabet": s.alphabet.name,
                }
                for s in self.sequences
            ],
        }

    def content_hash(self) -> str:
        """SHA-256 over the canonical form (sequence set + engine + config).

        Matrices and alphabets serialize by *name*, but names are
        free-form -- so the hash additionally folds in their actual
        content (score bytes, symbol strings), making it safe as a cache
        key even for custom objects reusing a bundled name.
        """
        cached = self.__dict__.get("_content_hash")
        if cached is not None:
            return cached
        h = hashlib.sha256(
            json.dumps(self.canonical(), sort_keys=True).encode("utf-8")
        )
        alphabets = {s.alphabet for s in self.sequences}
        for alphabet in sorted(alphabets, key=lambda a: (a.name, a.symbols)):
            h.update(alphabet.name.encode())
            h.update(alphabet.symbols.encode())
        if self.config is not None:
            h.update(self.config.scoring.matrix.matrix.tobytes())
            h.update(self.config.rank_config.alphabet.symbols.encode())
        digest = h.hexdigest()
        object.__setattr__(self, "_content_hash", digest)
        return digest

    def __hash__(self) -> int:
        return hash(self.content_hash())

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form; inverse of :meth:`from_dict`."""
        return self.canonical()

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AlignRequest":
        seqs = tuple(
            Sequence(d["id"], d["residues"], get_alphabet(d["alphabet"]))
            for d in data["sequences"]
        )
        config = data.get("config")
        return cls(
            sequences=seqs,
            engine=data.get("engine", "sample-align-d"),
            n_procs=data.get("n_procs", 4),
            seed=data.get("seed"),
            config=None if config is None else SampleAlignDConfig.from_dict(config),
            engine_kwargs=dict(data.get("engine_kwargs", {})),
        )

    # -- convenience -------------------------------------------------------

    def sequence_set(self) -> SequenceSet:
        """The input as a :class:`~repro.seq.sequence.SequenceSet`."""
        return SequenceSet(self.sequences)


@dataclass
class AlignResult:
    """Uniform engine response.

    Attributes
    ----------
    alignment:
        The final MSA, rows in the request's input order.
    engine:
        Name of the engine that produced it.
    sp:
        Linear sum-of-pairs score of the alignment.
    wall_time:
        Elapsed seconds of the engine run on this host.
    n_procs:
        Virtual processors used (1 for sequential engines).
    request_hash:
        :meth:`AlignRequest.content_hash` of the originating request.
    diagnostics:
        JSON-able engine-specific facts (modeled time, communication
        bytes, bucket sizes...).
    details:
        The engine's rich native result (:class:`MsaResult`,
        :class:`ParallelBaselineResult`, ...); not serialized.
    """

    alignment: Alignment
    engine: str
    sp: float
    wall_time: float
    n_procs: int = 1
    request_hash: Optional[str] = None
    diagnostics: Dict[str, Any] = field(default_factory=dict)
    details: Any = field(default=None, repr=False, compare=False)

    def summary(self) -> str:
        """One-paragraph human-readable run summary."""
        if self.details is not None and hasattr(self.details, "summary"):
            return self.details.summary()
        return (
            f"{self.engine}: N={self.alignment.n_rows} "
            f"cols={self.alignment.n_columns} SP={self.sp:.1f} "
            f"wall={self.wall_time:.2f}s"
        )

    def report(self) -> Dict[str, Any]:
        """Machine-readable run summary (JSON-able)."""
        return {
            "engine": self.engine,
            "n_rows": self.alignment.n_rows,
            "n_columns": self.alignment.n_columns,
            "sp": self.sp,
            "wall_time": self.wall_time,
            "n_procs": self.n_procs,
            "request_hash": self.request_hash,
            "diagnostics": self.diagnostics,
        }

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (drops ``details``); inverse of :meth:`from_dict`."""
        out = self.report()
        out["alignment"] = self.alignment.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AlignResult":
        return cls(
            alignment=Alignment.from_dict(data["alignment"]),
            engine=data["engine"],
            sp=data["sp"],
            wall_time=data["wall_time"],
            n_procs=data.get("n_procs", 1),
            request_hash=data.get("request_hash"),
            diagnostics=dict(data.get("diagnostics", {})),
        )

"""Unified engine API: one protocol, one registry, one service.

Every alignment backend -- the sequential Table-2 systems, the
stage-parallel baseline, Sample-Align-D -- sits behind the
:class:`Aligner` protocol and resolves through one registry, so callers
write::

    from repro.engine import align

    result = align(seqs, engine="sample-align-d", n_procs=4, seed=0)
    result = align(seqs, engine="muscle")
    result = align(seqs, engine="parallel-baseline", n_procs=8)

and always get back an :class:`AlignResult`.  For request/response
serving (batching, deduplication, caching) use
:class:`AlignmentService`; to add a backend use :func:`register_engine`
or :func:`~repro.engine.registry.register_sequential_aligner`.  The
service's result cache is a pluggable :class:`CacheBackend`
(:class:`MemoryResultCache` by default; see
:class:`repro.serve.store.ResultStore` for the disk-backed one).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.engine.api import Aligner, AlignRequest, AlignResult
from repro.engine.registry import (
    available_engines,
    get_engine,
    register_engine,
    register_sequential_aligner,
    unregister_engine,
)
from repro.engine.service import (
    AlignJob,
    AlignmentService,
    CacheBackend,
    MemoryResultCache,
    TieredResultCache,
)

__all__ = [
    "Aligner",
    "AlignJob",
    "AlignRequest",
    "AlignResult",
    "AlignmentService",
    "CacheBackend",
    "MemoryResultCache",
    "TieredResultCache",
    "align",
    "available_engines",
    "get_engine",
    "register_engine",
    "register_sequential_aligner",
    "run_request",
    "unregister_engine",
]


def run_request(request: AlignRequest) -> AlignResult:
    """Resolve the request's engine through the registry and execute it."""
    engine = get_engine(request.engine, **request.engine_kwargs)
    return engine.run(request)


def align(
    seqs,
    engine: str = "sample-align-d",
    *,
    n_procs: int = 4,
    seed: Optional[int] = None,
    config=None,
    **engine_kwargs: Any,
) -> AlignResult:
    """Align ``seqs`` with any registered engine (the one-call facade).

    Parameters
    ----------
    seqs:
        The ungapped sequences (a :class:`~repro.seq.sequence.SequenceSet`
        or any iterable of :class:`~repro.seq.sequence.Sequence`).
    engine:
        Unified registry name: ``"sample-align-d"`` (default),
        ``"parallel-baseline"``, or any sequential aligner name
        (``"muscle"``, ``"clustalw"``, ``"center-star"``, ...).
    n_procs:
        Virtual cluster size for distributed engines.
    seed:
        Seeded initial block distribution (Sample-Align-D only).
    config:
        Optional :class:`~repro.core.config.SampleAlignDConfig`.
    engine_kwargs:
        Extra keyword arguments for the engine factory.
    """
    request = AlignRequest(
        sequences=tuple(seqs),
        engine=engine,
        n_procs=n_procs,
        seed=seed,
        config=config,
        engine_kwargs=engine_kwargs,
    )
    return run_request(request)

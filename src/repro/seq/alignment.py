"""Multiple sequence alignments.

An :class:`Alignment` is an ordered set of equal-length gapped rows over a
shared alphabet.  Rows are stored as a dense ``(n_rows, n_cols)`` uint8 code
matrix (gap = ``alphabet.gap_code``), which makes column statistics, profile
extraction and scoring single numpy expressions.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence as TSequence, Tuple

import numpy as np

from repro.seq.alphabet import Alphabet, GAP_CHAR, PROTEIN
from repro.seq.sequence import Sequence, SequenceSet

__all__ = ["Alignment"]


class Alignment:
    """A gapped, equal-length multiple sequence alignment.

    Parameters
    ----------
    ids:
        Row identifiers, unique, in row order.
    matrix:
        ``(n_rows, n_cols)`` uint8 code matrix (``alphabet.gap_code`` = gap).
    alphabet:
        Shared residue alphabet.
    """

    def __init__(
        self,
        ids: TSequence[str],
        matrix: np.ndarray,
        alphabet: Alphabet = PROTEIN,
    ) -> None:
        matrix = np.asarray(matrix, dtype=np.uint8)
        if matrix.ndim != 2:
            raise ValueError("alignment matrix must be 2-D")
        if len(ids) != matrix.shape[0]:
            raise ValueError("ids/matrix row count mismatch")
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate row ids in alignment")
        if matrix.size and int(matrix.max()) > alphabet.gap_code:
            raise ValueError("alignment matrix contains out-of-range codes")
        self.ids = list(ids)
        self.matrix = matrix
        self.alphabet = alphabet
        self._row_index = {rid: i for i, rid in enumerate(self.ids)}

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        ids: TSequence[str],
        rows: TSequence[str],
        alphabet: Alphabet = PROTEIN,
    ) -> "Alignment":
        """Build from gapped row strings (all must have equal length)."""
        if not rows:
            return cls(list(ids), np.zeros((0, 0), dtype=np.uint8), alphabet)
        lengths = {len(r) for r in rows}
        if len(lengths) != 1:
            raise ValueError(f"rows have differing lengths: {sorted(lengths)}")
        mat = np.vstack([alphabet.encode(r) for r in rows]) if rows[0] else (
            np.zeros((len(rows), 0), dtype=np.uint8)
        )
        return cls(list(ids), mat, alphabet)

    @classmethod
    def from_single(cls, seq: Sequence) -> "Alignment":
        """The trivial alignment of one ungapped sequence."""
        return cls([seq.id], seq.codes[None, :].copy(), seq.alphabet)

    @classmethod
    def concatenate_rows(cls, blocks: TSequence["Alignment"]) -> "Alignment":
        """Stack alignments that share an identical column space."""
        if not blocks:
            raise ValueError("no blocks to concatenate")
        ncols = {b.n_columns for b in blocks}
        if len(ncols) != 1:
            raise ValueError(f"blocks have differing column counts: {sorted(ncols)}")
        ids: List[str] = []
        for b in blocks:
            ids.extend(b.ids)
        mat = np.vstack([b.matrix for b in blocks])
        return cls(ids, mat, blocks[0].alphabet)

    # -- basic protocol --------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_columns(self) -> int:
        return self.matrix.shape[1]

    def __len__(self) -> int:
        return self.n_rows

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        for i, rid in enumerate(self.ids):
            yield rid, self.row_text(i)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Alignment)
            and self.ids == other.ids
            and self.matrix.shape == other.matrix.shape
            and bool(np.array_equal(self.matrix, other.matrix))
        )

    def __repr__(self) -> str:
        return f"Alignment(rows={self.n_rows}, cols={self.n_columns})"

    # -- row/column access ------------------------------------------------------

    def row(self, key) -> np.ndarray:
        """Code row by index or id (view, do not mutate)."""
        i = self._row_index[key] if isinstance(key, str) else int(key)
        return self.matrix[i]

    def row_text(self, key) -> str:
        return self.alphabet.decode(self.row(key))

    def column(self, j: int) -> np.ndarray:
        return self.matrix[:, j]

    def gap_mask(self) -> np.ndarray:
        """Boolean (n_rows, n_cols) matrix, True where gap."""
        return self.matrix == self.alphabet.gap_code

    def column_counts(self, include_gap: bool = True) -> np.ndarray:
        """Per-column residue counts.

        Returns ``(n_cols, A+1)`` (or ``(n_cols, A)`` without the gap row),
        where ``A`` is the alphabet size.  Vectorised via one ``bincount``
        over a fused (column, code) key.
        """
        a1 = self.alphabet.gap_code + 1
        if self.n_columns == 0:
            return np.zeros((0, a1 if include_gap else a1 - 1), dtype=np.int64)
        cols = np.arange(self.n_columns, dtype=np.int64)
        key = cols[None, :] * a1 + self.matrix.astype(np.int64)
        counts = np.bincount(key.ravel(), minlength=self.n_columns * a1)
        counts = counts.reshape(self.n_columns, a1)
        return counts if include_gap else counts[:, : a1 - 1]

    def occupancy(self) -> np.ndarray:
        """Fraction of non-gap residues per column, shape (n_cols,)."""
        if self.n_rows == 0:
            return np.zeros(self.n_columns)
        return 1.0 - self.gap_mask().mean(axis=0)

    # -- transformations ---------------------------------------------------------

    def ungapped(self) -> SequenceSet:
        """The original ungapped sequences, in row order."""
        out = []
        gap = self.alphabet.gap_code
        for i, rid in enumerate(self.ids):
            row = self.matrix[i]
            out.append(
                Sequence(rid, self.alphabet.decode(row[row != gap]), self.alphabet)
            )
        return SequenceSet(out)

    def select_rows(self, keys: Iterable) -> "Alignment":
        """Sub-alignment of the given rows (ids or indices), columns intact."""
        idx = [
            self._row_index[k] if isinstance(k, str) else int(k) for k in keys
        ]
        return Alignment(
            [self.ids[i] for i in idx], self.matrix[idx], self.alphabet
        )

    def drop_all_gap_columns(self) -> "Alignment":
        """Remove columns that are gaps in every row."""
        if self.n_rows == 0:
            return self
        keep = ~self.gap_mask().all(axis=0)
        return Alignment(self.ids, self.matrix[:, keep], self.alphabet)

    def insert_gap_columns(self, positions: np.ndarray) -> "Alignment":
        """New alignment with gap columns inserted *before* each position.

        ``positions`` is a sorted array of column indices in the *current*
        coordinate system (may repeat; ``n_columns`` means append).  Used by
        the glue step to expand blocks onto the union column space.
        """
        positions = np.asarray(positions, dtype=np.int64)
        n_new = self.n_columns + len(positions)
        out = np.full((self.n_rows, n_new), self.alphabet.gap_code, dtype=np.uint8)
        # Target indices of the original columns after insertion.
        shift = np.searchsorted(positions, np.arange(self.n_columns), side="right")
        tgt = np.arange(self.n_columns) + shift
        out[:, tgt] = self.matrix
        return Alignment(self.ids, out, self.alphabet)

    def residue_to_column(self) -> List[np.ndarray]:
        """Per row, the alignment column of each ungapped residue.

        ``maps[r][k]`` is the column index of residue ``k`` of row ``r``.
        This is the primitive the Q-score metric builds on.
        """
        gap = self.alphabet.gap_code
        return [np.flatnonzero(self.matrix[i] != gap) for i in range(self.n_rows)]

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-able form (row strings + alphabet name); inverse of
        :meth:`from_dict`."""
        return {
            "ids": list(self.ids),
            "rows": [self.row_text(i) for i in range(self.n_rows)],
            "alphabet": self.alphabet.name,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Alignment":
        from repro.seq.alphabet import get_alphabet

        return cls.from_rows(
            data["ids"], data["rows"], get_alphabet(data["alphabet"])
        )

    # -- rendering -----------------------------------------------------------------

    def to_fasta(self, width: int = 60) -> str:
        """FASTA text of the gapped rows."""
        parts = []
        for rid, text in self:
            parts.append(f">{rid}")
            parts.extend(text[i : i + width] for i in range(0, len(text), width))
        return "\n".join(parts) + ("\n" if parts else "")

    def pretty(self, block: int = 60, max_rows: int | None = None) -> str:
        """Human-readable block view (the paper's Fig. 7 style snapshot)."""
        rows = self.ids if max_rows is None else self.ids[:max_rows]
        width = max((len(r) for r in rows), default=0) + 2
        lines: List[str] = []
        for start in range(0, self.n_columns, block):
            for rid in rows:
                text = self.row_text(rid)[start : start + block]
                lines.append(f"{rid:<{width}}{text}")
            lines.append("")
        return "\n".join(lines)

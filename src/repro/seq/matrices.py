"""Substitution matrices and affine gap penalties.

The DP kernels score residue pairs through a :class:`SubstitutionMatrix`
bound to an alphabet; profile kernels consume the dense ``matrix`` array
directly (one matmul per profile pair).  BLOSUM62 (the MUSCLE/PSI-BLAST
default) and PAM250 (the CLUSTALW classic) are bundled with standard
integer scores; identity and simple-DNA matrices support tests and the
nucleotide paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence as TSequence

import numpy as np

from repro.seq.alphabet import Alphabet, DNA, PROTEIN

__all__ = [
    "SubstitutionMatrix",
    "GapPenalties",
    "BLOSUM62",
    "PAM250",
    "IDENTITY",
    "DNA_SIMPLE",
    "get_matrix",
]


@dataclass(frozen=True)
class GapPenalties:
    """Affine gap model: a gap of length ``g`` costs ``open + g * extend``.

    Both values are positive costs in matrix score units (they are
    *subtracted* during DP).  ``terminal_factor`` scales penalties applied
    to leading/trailing gaps (1.0 = fully penalised ends, 0.0 = free ends).
    """

    open: float = 10.0
    extend: float = 0.5
    terminal_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.open < 0 or self.extend < 0:
            raise ValueError("gap penalties must be non-negative costs")
        if self.extend > self.open:
            raise ValueError(
                "gap extend must not exceed gap open (required for the "
                "vectorised lazy-F DP to be exact)"
            )
        if not 0.0 <= self.terminal_factor <= 1.0:
            raise ValueError("terminal_factor must be in [0, 1]")

    def cost(self, length: int, terminal: bool = False) -> float:
        """Total cost of a gap run of ``length`` residues."""
        if length <= 0:
            return 0.0
        c = self.open + length * self.extend
        return c * (self.terminal_factor if terminal else 1.0)

    def to_dict(self) -> Dict[str, float]:
        """JSON-able form; inverse of :meth:`from_dict`."""
        return {
            "open": self.open,
            "extend": self.extend,
            "terminal_factor": self.terminal_factor,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "GapPenalties":
        return cls(**data)


class SubstitutionMatrix:
    """A symmetric residue-pair score matrix bound to an alphabet.

    The dense array has shape ``(A+1, A+1)`` where ``A = alphabet.size``:
    the extra row/column is the gap code, kept at 0 so profile code paths
    can index with raw code arrays (gap scoring is the gap model's job,
    never the matrix's).
    """

    def __init__(self, name: str, alphabet: Alphabet, scores: np.ndarray) -> None:
        scores = np.asarray(scores, dtype=np.float64)
        if scores.shape != (alphabet.size, alphabet.size):
            raise ValueError(
                f"score matrix shape {scores.shape} does not match alphabet "
                f"size {alphabet.size}"
            )
        if not np.allclose(scores, scores.T):
            raise ValueError("substitution matrix must be symmetric")
        self.name = name
        self.alphabet = alphabet
        full = np.zeros((alphabet.size + 1, alphabet.size + 1))
        full[: alphabet.size, : alphabet.size] = scores
        full.setflags(write=False)
        self.matrix = full

    def __repr__(self) -> str:
        return f"SubstitutionMatrix({self.name!r}, alphabet={self.alphabet.name!r})"

    def score(self, a: str, b: str) -> float:
        """Score of a single residue pair given as characters."""
        return float(self.matrix[self.alphabet.index(a), self.alphabet.index(b)])

    def pair_scores(self, x_codes: np.ndarray, y_codes: np.ndarray) -> np.ndarray:
        """Dense ``(len(x), len(y))`` score matrix for two code arrays.

        Chained row-then-column gather: same cells as ``np.ix_`` fancy
        indexing but ~4x faster, and this is the hot setup path of the
        all-pairs distance stage.
        """
        return self.matrix[x_codes][:, y_codes]

    @property
    def residue_part(self) -> np.ndarray:
        """The ``(A, A)`` residue-only block (no gap row/column)."""
        return self.matrix[: self.alphabet.size, : self.alphabet.size]

    def expected_score(self, background: np.ndarray | None = None) -> float:
        """Expected pair score under a background distribution."""
        bg = self.alphabet.background_frequencies() if background is None else background
        return float(bg @ self.residue_part @ bg)


def _parse_rows(symbols: str, rows: TSequence[str]) -> np.ndarray:
    """Parse whitespace-separated integer rows into a square matrix."""
    mat = np.array([[int(v) for v in row.split()] for row in rows], dtype=float)
    if mat.shape != (len(symbols), len(symbols)):
        raise ValueError("bad matrix literal")
    return mat


# Standard NCBI BLOSUM62, rows/cols in ARNDCQEGHILKMFPSTWYV order.
_BLOSUM62_20 = _parse_rows(
    "ARNDCQEGHILKMFPSTWYV",
    [
        " 4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0",
        "-1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3",
        "-2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3",
        "-2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3",
        " 0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1",
        "-1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2",
        "-1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2",
        " 0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3",
        "-2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3",
        "-1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3",
        "-1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1",
        "-1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2",
        "-1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1",
        "-2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1",
        "-1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2",
        " 1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2",
        " 0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0",
        "-3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3",
        "-2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1",
        " 0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4",
    ],
)

# Classic Dayhoff PAM250, same residue order.
_PAM250_20 = _parse_rows(
    "ARNDCQEGHILKMFPSTWYV",
    [
        " 2 -2  0  0 -2  0  0  1 -1 -1 -2 -1 -1 -3  1  1  1 -6 -3  0",
        "-2  6  0 -1 -4  1 -1 -3  2 -2 -3  3  0 -4  0  0 -1  2 -4 -2",
        " 0  0  2  2 -4  1  1  0  2 -2 -3  1 -2 -3  0  1  0 -4 -2 -2",
        " 0 -1  2  4 -5  2  3  1  1 -2 -4  0 -3 -6 -1  0  0 -7 -4 -2",
        "-2 -4 -4 -5 12 -5 -5 -3 -3 -2 -6 -5 -5 -4 -3  0 -2 -8  0 -2",
        " 0  1  1  2 -5  4  2 -1  3 -2 -2  1 -1 -5  0 -1 -1 -5 -4 -2",
        " 0 -1  1  3 -5  2  4  0  1 -2 -3  0 -2 -5 -1  0  0 -7 -4 -2",
        " 1 -3  0  1 -3 -1  0  5 -2 -3 -4 -2 -3 -5  0  1  0 -7 -5 -1",
        "-1  2  2  1 -3  3  1 -2  6 -2 -2  0 -2 -2  0 -1 -1 -3  0 -2",
        "-1 -2 -2 -2 -2 -2 -2 -3 -2  5  2 -2  2  1 -2 -1  0 -5 -1  4",
        "-2 -3 -3 -4 -6 -2 -3 -4 -2  2  6 -3  4  2 -3 -3 -2 -2 -1  2",
        "-1  3  1  0 -5  1  0 -2  0 -2 -3  5  0 -5 -1  0  0 -3 -4 -2",
        "-1  0 -2 -3 -5 -1 -2 -3 -2  2  4  0  6  0 -2 -2 -1 -4 -2  2",
        "-3 -4 -3 -6 -4 -5 -5 -5 -2  1  2 -5  0  9 -5 -3 -3  0  7 -1",
        " 1  0  0 -1 -3  0 -1  0  0 -2 -3 -1 -2 -5  6  1  0 -6 -5 -1",
        " 1  0  1  0  0 -1  0  1 -1 -1 -3  0 -2 -3  1  2  1 -2 -3 -1",
        " 1 -1  0  0 -2 -1  0  0 -1  0 -2  0 -1 -3  0  1  3 -5 -3  0",
        "-6  2 -4 -7 -8 -5 -7 -7 -3 -5 -2 -3 -4  0 -6 -2 -5 17  0 -6",
        "-3 -4 -2 -4  0 -4 -4 -5  0 -1 -1 -4 -2  7 -5 -3 -3  0 10 -2",
        " 0 -2 -2 -2 -2 -2 -2 -1 -2  4  2 -2  2 -1 -1 -1  0 -6 -2  4",
    ],
)


def _with_wildcard(core20: np.ndarray, x_score: float = -1.0) -> np.ndarray:
    """Extend a 20x20 matrix with the X wildcard row/column."""
    full = np.full((21, 21), x_score)
    full[:20, :20] = core20
    return full


#: BLOSUM62 over :data:`repro.seq.alphabet.PROTEIN` (X scores -1 vs all).
BLOSUM62 = SubstitutionMatrix("blosum62", PROTEIN, _with_wildcard(_BLOSUM62_20))

#: PAM250 over :data:`repro.seq.alphabet.PROTEIN` (X scores -1 vs all).
PAM250 = SubstitutionMatrix("pam250", PROTEIN, _with_wildcard(_PAM250_20))

#: Match/mismatch identity matrix for the protein alphabet (testing aid).
IDENTITY = SubstitutionMatrix(
    "identity",
    PROTEIN,
    np.where(np.eye(PROTEIN.size, dtype=bool), 1.0, -1.0),
)

#: NUC44-style simple nucleotide matrix (match 5, mismatch -4, N neutral 0).
_dna = np.full((DNA.size, DNA.size), -4.0)
np.fill_diagonal(_dna, 5.0)
_dna[DNA.index("N"), :] = 0.0
_dna[:, DNA.index("N")] = 0.0
DNA_SIMPLE = SubstitutionMatrix("dna_simple", DNA, _dna)

_REGISTRY: Dict[str, SubstitutionMatrix] = {
    m.name: m for m in (BLOSUM62, PAM250, IDENTITY, DNA_SIMPLE)
}


def get_matrix(name: str) -> SubstitutionMatrix:
    """Look up a bundled substitution matrix by name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown matrix {name!r}; available: {sorted(_REGISTRY)}"
        ) from None

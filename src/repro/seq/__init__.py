"""Sequence substrate: alphabets, sequences, alignments, FASTA, matrices.

This subpackage provides everything the alignment layers need to represent
biological sequences efficiently:

- :mod:`repro.seq.alphabet` -- residue alphabets, including the compressed
  amino-acid alphabets of Edgar (2004) used by the k-mer rank machinery.
- :mod:`repro.seq.sequence` -- :class:`Sequence` and :class:`SequenceSet`.
- :mod:`repro.seq.alignment` -- :class:`Alignment` (a gapped, equal-length
  set of sequences) plus column utilities.
- :mod:`repro.seq.fasta` -- FASTA parsing and serialisation.
- :mod:`repro.seq.matrices` -- substitution matrices (BLOSUM62, PAM250, ...)
  and affine gap-penalty models.
"""

from repro.seq.alphabet import (
    Alphabet,
    CompressedAlphabet,
    DAYHOFF6,
    DNA,
    MURPHY10,
    PROTEIN,
    SE_B14,
    compressed_alphabets,
)
from repro.seq.sequence import Sequence, SequenceSet
from repro.seq.alignment import Alignment
from repro.seq.fasta import parse_fasta, read_fasta, write_fasta, to_fasta
from repro.seq.matrices import (
    BLOSUM62,
    DNA_SIMPLE,
    GapPenalties,
    IDENTITY,
    PAM250,
    SubstitutionMatrix,
    get_matrix,
)

__all__ = [
    "Alphabet",
    "Alignment",
    "BLOSUM62",
    "CompressedAlphabet",
    "DAYHOFF6",
    "DNA",
    "DNA_SIMPLE",
    "GapPenalties",
    "IDENTITY",
    "MURPHY10",
    "PAM250",
    "PROTEIN",
    "SE_B14",
    "Sequence",
    "SequenceSet",
    "SubstitutionMatrix",
    "compressed_alphabets",
    "get_matrix",
    "parse_fasta",
    "read_fasta",
    "to_fasta",
    "write_fasta",
]

"""Residue alphabets and compressed amino-acid alphabets.

An :class:`Alphabet` maps residue characters to small integer codes so that
all downstream kernels (k-mer counting, DP alignment, profiles) operate on
dense ``numpy`` integer arrays instead of Python strings.

Compressed alphabets group amino acids into physico-chemical classes.  Edgar
(*Local homology recognition and distance measures in linear time using
compressed amino acid alphabets*, NAR 2004) showed that k-mer counting over
such alphabets correlates well with fractional identity; Sample-Align-D's
k-mer rank (paper section 2) builds directly on that result.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence as TSequence

import numpy as np

__all__ = [
    "Alphabet",
    "CompressedAlphabet",
    "PROTEIN",
    "DNA",
    "DAYHOFF6",
    "MURPHY10",
    "SE_B14",
    "compressed_alphabets",
    "get_alphabet",
]

GAP_CHAR = "-"


class Alphabet:
    """An ordered residue alphabet with fast char<->code translation.

    Parameters
    ----------
    name:
        Human-readable identifier (``"protein"``, ``"dna"``...).
    symbols:
        The canonical residue characters, in code order.  Code ``i`` is
        ``symbols[i]``.
    wildcard:
        Character standing for "unknown residue".  Any input character that
        is not a symbol, not the gap and not translatable via ``aliases``
        encodes to the wildcard's code.
    aliases:
        Extra character -> canonical character translations applied during
        encoding (e.g. ``B -> D`` for proteins).

    Notes
    -----
    The **gap** is not part of the alphabet: it always encodes to
    :attr:`gap_code`, which equals ``len(symbols)`` (one past the last
    residue code).  Profiles allocate ``size + 1`` rows so the gap count can
    live in the same array.
    """

    def __init__(
        self,
        name: str,
        symbols: str,
        wildcard: str | None = None,
        aliases: Mapping[str, str] | None = None,
    ) -> None:
        if len(set(symbols)) != len(symbols):
            raise ValueError(f"duplicate symbols in alphabet {name!r}")
        if GAP_CHAR in symbols:
            raise ValueError("the gap character may not be an alphabet symbol")
        self.name = name
        self.symbols = symbols
        self.wildcard = wildcard
        self._index: Dict[str, int] = {c: i for i, c in enumerate(symbols)}
        if wildcard is not None and wildcard not in self._index:
            raise ValueError("wildcard must be one of the alphabet symbols")
        self.aliases = dict(aliases or {})

        # Dense uint8 lookup table over the 256 byte values: unknown bytes
        # map to the wildcard (or raise at encode time when there is none).
        lut = np.full(256, 255, dtype=np.uint8)
        for ch, code in self._index.items():
            lut[ord(ch)] = code
            lut[ord(ch.lower())] = code
        for src, dst in self.aliases.items():
            lut[ord(src)] = self._index[dst]
            lut[ord(src.lower())] = self._index[dst]
        lut[ord(GAP_CHAR)] = self.gap_code
        lut[ord(".")] = self.gap_code  # some MSA formats use '.' for gaps
        self._lut = lut

    # -- basic protocol ----------------------------------------------------

    @property
    def size(self) -> int:
        """Number of residue symbols (gap excluded)."""
        return len(self.symbols)

    @property
    def gap_code(self) -> int:
        """Integer code reserved for the gap character."""
        return len(self.symbols)

    def __len__(self) -> int:
        return len(self.symbols)

    def __contains__(self, ch: str) -> bool:
        return ch in self._index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Alphabet({self.name!r}, size={self.size})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Alphabet)
            and self.name == other.name
            and self.symbols == other.symbols
        )

    def __hash__(self) -> int:
        return hash((self.name, self.symbols))

    def index(self, ch: str) -> int:
        """Code of a single residue character (aliases honoured)."""
        ch2 = self.aliases.get(ch, ch)
        return self._index[ch2]

    # -- vectorised encode / decode ----------------------------------------

    def encode(self, text: str, allow_gaps: bool = True) -> np.ndarray:
        """Encode ``text`` to a ``uint8`` code array.

        Unknown characters map to the wildcard when one is defined, and
        raise :class:`ValueError` otherwise.  Gaps are allowed only when
        ``allow_gaps`` is true.
        """
        raw = np.frombuffer(text.encode("ascii"), dtype=np.uint8)
        codes = self._lut[raw]
        bad = codes == 255
        if bad.any():
            if self.wildcard is None:
                pos = int(np.argmax(bad))
                raise ValueError(
                    f"character {text[pos]!r} at position {pos} is not in "
                    f"alphabet {self.name!r}"
                )
            codes = np.where(bad, np.uint8(self._index[self.wildcard]), codes)
        if not allow_gaps and (codes == self.gap_code).any():
            raise ValueError("gap characters are not allowed here")
        return codes

    def decode(self, codes: np.ndarray) -> str:
        """Inverse of :meth:`encode`; gap codes decode to ``'-'``."""
        table = np.frombuffer(
            (self.symbols + GAP_CHAR).encode("ascii"), dtype=np.uint8
        )
        codes = np.asarray(codes)
        if codes.size and int(codes.max(initial=0)) > self.gap_code:
            raise ValueError("code out of range for alphabet")
        return table[codes].tobytes().decode("ascii")

    def background_frequencies(self) -> np.ndarray:
        """Uniform background distribution over the residue symbols."""
        return np.full(self.size, 1.0 / self.size)


class CompressedAlphabet(Alphabet):
    """An alphabet whose symbols are *classes* of a parent alphabet.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"dayhoff6"``.
    parent:
        The uncompressed alphabet (normally :data:`PROTEIN`).
    groups:
        Residue-class strings, e.g. ``["AGPST", "C", ...]``.  Every parent
        symbol must appear in exactly one group.

    The class keeps a vectorised ``parent code -> class code`` projection so
    sequences already encoded in the parent alphabet compress with a single
    fancy-indexing operation (:meth:`project`).
    """

    def __init__(self, name: str, parent: Alphabet, groups: TSequence[str]) -> None:
        seen: Dict[str, int] = {}
        for gi, group in enumerate(groups):
            for ch in group:
                if ch in seen:
                    raise ValueError(f"residue {ch!r} appears in two groups")
                if ch not in parent:
                    raise ValueError(f"residue {ch!r} not in parent alphabet")
                seen[ch] = gi
        missing = [c for c in parent.symbols if c not in seen]
        if missing:
            raise ValueError(f"residues {missing} not covered by any group")
        symbols = "".join(group[0] for group in groups)
        aliases = {
            ch: group[0]
            for group in groups
            for ch in group[1:]
        }
        # Parent aliases (e.g. B->D) must survive compression as well.
        for src, dst in parent.aliases.items():
            aliases.setdefault(src, groups[seen[dst]][0])
        wildcard = symbols[seen[parent.wildcard]] if parent.wildcard else None
        super().__init__(name, symbols, wildcard=wildcard, aliases=aliases)
        self.parent = parent
        self.groups = list(groups)

        proj = np.empty(parent.size + 1, dtype=np.uint8)
        for ch, gi in seen.items():
            proj[parent.index(ch)] = gi
        proj[parent.gap_code] = self.gap_code
        self._projection = proj

    def project(self, parent_codes: np.ndarray) -> np.ndarray:
        """Map parent-alphabet codes to compressed class codes."""
        return self._projection[parent_codes]


#: Canonical 20-letter amino-acid alphabet with ``X`` wildcard.  The
#: ambiguity codes B/Z/U/O/J are aliased to their most common resolution.
PROTEIN = Alphabet(
    "protein",
    "ARNDCQEGHILKMFPSTWYVX",
    wildcard="X",
    aliases={"B": "D", "Z": "E", "U": "C", "O": "K", "J": "L", "*": "X"},
)

#: Nucleotide alphabet with ``N`` wildcard.
DNA = Alphabet(
    "dna",
    "ACGTN",
    wildcard="N",
    aliases={"U": "T"},
)

#: Dayhoff's six physico-chemical classes; the default compressed alphabet
#: for k-mer counting (6 classes keep the k-mer space small enough for dense
#: count vectors at k = 4..6).
DAYHOFF6 = CompressedAlphabet(
    "dayhoff6",
    PROTEIN,
    ["AGPST", "C", "DENQ", "FWY", "HKR", "ILMV", "X"],
)

#: Murphy et al. (2000) ten-class reduction.
MURPHY10 = CompressedAlphabet(
    "murphy10",
    PROTEIN,
    ["LVIM", "C", "A", "G", "ST", "P", "FYW", "EDNQ", "KR", "H", "X"],
)

#: Edgar (2004) SE-B(14) alphabet.
SE_B14 = CompressedAlphabet(
    "se_b14",
    PROTEIN,
    [
        "A", "C", "D", "EQ", "FY", "G", "H", "IV", "KR", "LM", "N", "P",
        "ST", "W", "X",
    ],
)


def compressed_alphabets() -> Dict[str, CompressedAlphabet]:
    """Registry of the bundled compressed alphabets, keyed by name."""
    return {a.name: a for a in (DAYHOFF6, MURPHY10, SE_B14)}


def get_alphabet(name: str) -> Alphabet:
    """Look up a bundled alphabet (plain or compressed) by name.

    The inverse of ``alphabet.name``; serialization paths round-trip
    alphabets through this lookup.
    """
    registry: Dict[str, Alphabet] = {"protein": PROTEIN, "dna": DNA}
    registry.update(compressed_alphabets())
    try:
        return registry[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown alphabet {name!r}; available: {sorted(registry)}"
        ) from None

"""Additional alignment interchange formats: CLUSTAL and PHYLIP.

The tools the paper builds on emit more than FASTA: CLUSTALW writes
``.aln`` (CLUSTAL) files and most phylogeny software consumes PHYLIP.
Both are implemented for interoperability of the reproduction's outputs.
"""

from __future__ import annotations

import os
from typing import List, Union

import numpy as np

from repro.seq.alignment import Alignment
from repro.seq.alphabet import Alphabet, PROTEIN

__all__ = [
    "to_clustal",
    "parse_clustal",
    "write_clustal",
    "read_clustal",
    "to_phylip",
    "parse_phylip",
]

_CLUSTAL_HEADER = "CLUSTAL W (repro) multiple sequence alignment"


def _conservation_line(aln: Alignment, start: int, stop: int) -> str:
    """CLUSTAL's consensus symbols: '*' identical, ':' strong, '.' weak."""
    # Strong/weak groups from CLUSTALX.
    strong = ["STA", "NEQK", "NHQK", "NDEQ", "QHRK", "MILV", "MILF",
              "HY", "FYW"]
    weak = ["CSA", "ATV", "SAG", "STNK", "STPA", "SGND", "SNDEQK",
            "NDEQHK", "NEQHRK", "FVLIM", "HFY"]
    gap = aln.alphabet.gap_code
    out = []
    for j in range(start, stop):
        col = aln.matrix[:, j]
        if (col == gap).any():
            out.append(" ")
            continue
        chars = {aln.alphabet.symbols[c] for c in col}
        if len(chars) == 1:
            out.append("*")
        elif any(chars <= set(g) for g in strong):
            out.append(":")
        elif any(chars <= set(g) for g in weak):
            out.append(".")
        else:
            out.append(" ")
    return "".join(out)


def to_clustal(aln: Alignment, width: int = 60) -> str:
    """Serialise an alignment in CLUSTAL (.aln) format."""
    name_w = max((len(i) for i in aln.ids), default=4) + 3
    lines = [_CLUSTAL_HEADER, "", ""]
    for start in range(0, aln.n_columns, width):
        stop = min(start + width, aln.n_columns)
        for rid in aln.ids:
            lines.append(f"{rid:<{name_w}}{aln.row_text(rid)[start:stop]}")
        lines.append(" " * name_w + _conservation_line(aln, start, stop))
        lines.append("")
    return "\n".join(lines) + "\n"


def parse_clustal(text: str, alphabet: Alphabet = PROTEIN) -> Alignment:
    """Parse CLUSTAL format text into an :class:`Alignment`."""
    lines = text.splitlines()
    if not lines or not lines[0].upper().startswith("CLUSTAL"):
        raise ValueError("not a CLUSTAL file (missing header)")
    chunks: dict[str, List[str]] = {}
    order: List[str] = []
    for line in lines[1:]:
        if not line.strip():
            continue
        # Conservation lines start with whitespace.
        if line[0] in " \t":
            continue
        parts = line.split()
        if len(parts) < 2:
            continue
        name, seq = parts[0], parts[1]
        if name not in chunks:
            chunks[name] = []
            order.append(name)
        chunks[name].append(seq)
    if not order:
        raise ValueError("CLUSTAL file contains no sequences")
    rows = ["".join(chunks[name]) for name in order]
    return Alignment.from_rows(order, rows, alphabet)


def write_clustal(path: Union[str, os.PathLike], aln: Alignment) -> None:
    with open(path, "w", encoding="ascii") as fh:
        fh.write(to_clustal(aln))


def read_clustal(
    path: Union[str, os.PathLike], alphabet: Alphabet = PROTEIN
) -> Alignment:
    with open(path, "r", encoding="ascii") as fh:
        return parse_clustal(fh.read(), alphabet)


def to_phylip(aln: Alignment) -> str:
    """Sequential PHYLIP format (names truncated/padded to 10 chars)."""
    if aln.n_rows == 0:
        raise ValueError("cannot serialise an empty alignment")
    names = []
    seen = set()
    for rid in aln.ids:
        name = rid[:10]
        if name in seen:  # disambiguate truncation collisions
            for suffix in range(100):
                cand = (name[:8] + f"{suffix:02d}")[:10]
                if cand not in seen:
                    name = cand
                    break
        seen.add(name)
        names.append(name)
    lines = [f" {aln.n_rows} {aln.n_columns}"]
    for name, rid in zip(names, aln.ids):
        lines.append(f"{name:<10}{aln.row_text(rid)}")
    return "\n".join(lines) + "\n"


def parse_phylip(text: str, alphabet: Alphabet = PROTEIN) -> Alignment:
    """Parse sequential PHYLIP text."""
    lines = [l for l in text.splitlines() if l.strip()]
    if not lines:
        raise ValueError("empty PHYLIP text")
    try:
        n, cols = (int(v) for v in lines[0].split())
    except ValueError:
        raise ValueError("bad PHYLIP header") from None
    if len(lines) - 1 < n:
        raise ValueError("PHYLIP body shorter than the declared row count")
    ids, rows = [], []
    for line in lines[1 : n + 1]:
        ids.append(line[:10].strip())
        rows.append(line[10:].replace(" ", ""))
    aln = Alignment.from_rows(ids, rows, alphabet)
    if aln.n_columns != cols:
        raise ValueError(
            f"PHYLIP header declares {cols} columns, found {aln.n_columns}"
        )
    return aln

"""FASTA parsing and serialisation.

Plain-text FASTA is the interchange format of every tool the paper builds
on (MUSCLE, CLUSTALW, the rose generator), so the reproduction speaks it
too.  Both ungapped sequence files and gapped alignment files are handled.
"""

from __future__ import annotations

import io
import os
from typing import Iterable, Iterator, List, Tuple, Union

from repro.seq.alphabet import Alphabet, GAP_CHAR, PROTEIN
from repro.seq.alignment import Alignment
from repro.seq.sequence import Sequence, SequenceSet

__all__ = ["parse_fasta", "read_fasta", "write_fasta", "to_fasta", "parse_fasta_alignment"]


def _iter_records(text: str) -> Iterator[Tuple[str, str, str]]:
    """Yield ``(id, description, residue_text)`` triples from FASTA text."""
    header: str | None = None
    desc = ""
    chunks: List[str] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            if header is not None:
                yield header, desc, "".join(chunks)
            body = line[1:].strip()
            header, _, desc = body.partition(" ")
            if not header:
                raise ValueError("FASTA record with empty header")
            chunks = []
        else:
            if header is None:
                raise ValueError("FASTA text does not start with a '>' header")
            chunks.append(line)
    if header is not None:
        yield header, desc, "".join(chunks)


def parse_fasta(text: str, alphabet: Alphabet = PROTEIN) -> SequenceSet:
    """Parse FASTA text into ungapped sequences (gaps are stripped)."""
    return SequenceSet(
        Sequence(rid, body, alphabet, description=desc)
        for rid, desc, body in _iter_records(text)
    )


def parse_fasta_alignment(text: str, alphabet: Alphabet = PROTEIN) -> Alignment:
    """Parse gapped FASTA text into an :class:`Alignment`."""
    ids: List[str] = []
    rows: List[str] = []
    for rid, _desc, body in _iter_records(text):
        ids.append(rid)
        rows.append(body.upper())
    return Alignment.from_rows(ids, rows, alphabet)


def read_fasta(path: Union[str, os.PathLike], alphabet: Alphabet = PROTEIN) -> SequenceSet:
    """Read a FASTA file of ungapped sequences."""
    with open(path, "r", encoding="ascii") as fh:
        return parse_fasta(fh.read(), alphabet)


def to_fasta(seqs: Iterable[Sequence], width: int = 60) -> str:
    """Serialise sequences to FASTA text."""
    buf = io.StringIO()
    for s in seqs:
        header = f">{s.id}" + (f" {s.description}" if s.description else "")
        buf.write(header + "\n")
        for i in range(0, len(s.residues), width):
            buf.write(s.residues[i : i + width] + "\n")
    return buf.getvalue()


def write_fasta(
    path: Union[str, os.PathLike], seqs: Iterable[Sequence], width: int = 60
) -> None:
    """Write sequences to a FASTA file."""
    with open(path, "w", encoding="ascii") as fh:
        fh.write(to_fasta(seqs, width))

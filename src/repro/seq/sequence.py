"""Sequence containers.

:class:`Sequence` is an immutable named residue string with a cached numpy
encoding; :class:`SequenceSet` is an ordered collection with bulk utilities
(the unit the Sample-Align-D pipeline scatters, redistributes and aligns).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Sequence as TSequence

import numpy as np

from repro.seq.alphabet import Alphabet, GAP_CHAR, PROTEIN

__all__ = ["Sequence", "SequenceSet"]


class Sequence:
    """A named biological sequence.

    Parameters
    ----------
    id:
        Unique identifier (FASTA header word).
    residues:
        Residue characters; gaps are stripped on construction so a
        ``Sequence`` is always ungapped (use :class:`repro.seq.Alignment`
        for gapped rows).
    alphabet:
        Defaults to the protein alphabet.
    description:
        Optional free-text annotation (rest of the FASTA header).
    """

    __slots__ = ("id", "residues", "alphabet", "description", "_codes")

    def __init__(
        self,
        id: str,
        residues: str,
        alphabet: Alphabet = PROTEIN,
        description: str = "",
    ) -> None:
        if not id:
            raise ValueError("sequence id must be non-empty")
        self.id = id
        self.residues = residues.replace(GAP_CHAR, "").replace(".", "").upper()
        self.alphabet = alphabet
        self.description = description
        self._codes: np.ndarray | None = None

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.residues)

    def __iter__(self) -> Iterator[str]:
        return iter(self.residues)

    def __getitem__(self, idx):
        return self.residues[idx]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Sequence)
            and self.id == other.id
            and self.residues == other.residues
        )

    def __hash__(self) -> int:
        return hash((self.id, self.residues))

    def __repr__(self) -> str:
        head = self.residues[:24] + ("..." if len(self.residues) > 24 else "")
        return f"Sequence({self.id!r}, {head!r}, len={len(self)})"

    # -- encoding ----------------------------------------------------------

    @property
    def codes(self) -> np.ndarray:
        """Residue codes in this sequence's alphabet (cached, read-only)."""
        if self._codes is None:
            codes = self.alphabet.encode(self.residues, allow_gaps=False)
            codes.setflags(write=False)
            self._codes = codes
        return self._codes

    def encoded(self, alphabet: Alphabet) -> np.ndarray:
        """Residue codes in an arbitrary alphabet (no caching)."""
        if alphabet == self.alphabet:
            return self.codes
        return alphabet.encode(self.residues, allow_gaps=False)

    def with_id(self, new_id: str) -> "Sequence":
        """A copy of this sequence under a different identifier."""
        return Sequence(new_id, self.residues, self.alphabet, self.description)


class SequenceSet:
    """An ordered collection of :class:`Sequence` objects.

    Supports list-style indexing and iteration plus bulk helpers used across
    the pipeline (id lookup, length statistics, deterministic sub-sampling).
    Identifiers must be unique.
    """

    def __init__(self, sequences: Iterable[Sequence] = ()) -> None:
        self._seqs: List[Sequence] = list(sequences)
        ids = [s.id for s in self._seqs]
        if len(set(ids)) != len(ids):
            dup = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(f"duplicate sequence ids: {dup[:5]}")
        self._by_id = {s.id: s for s in self._seqs}

    # -- container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._seqs)

    def __iter__(self) -> Iterator[Sequence]:
        return iter(self._seqs)

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return SequenceSet(self._seqs[idx])
        if isinstance(idx, str):
            return self._by_id[idx]
        if isinstance(idx, (list, np.ndarray)):
            return SequenceSet([self._seqs[int(i)] for i in idx])
        return self._seqs[idx]

    def __contains__(self, id: str) -> bool:
        return id in self._by_id

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SequenceSet) and self._seqs == other._seqs

    def __repr__(self) -> str:
        return f"SequenceSet(n={len(self)}, mean_len={self.mean_length():.1f})"

    # -- utilities -----------------------------------------------------------

    @property
    def ids(self) -> List[str]:
        return [s.id for s in self._seqs]

    def lengths(self) -> np.ndarray:
        return np.array([len(s) for s in self._seqs], dtype=np.int64)

    def mean_length(self) -> float:
        return float(self.lengths().mean()) if self._seqs else 0.0

    def max_length(self) -> int:
        return int(self.lengths().max()) if self._seqs else 0

    def add(self, seq: Sequence) -> None:
        if seq.id in self._by_id:
            raise ValueError(f"duplicate sequence id: {seq.id!r}")
        self._seqs.append(seq)
        self._by_id[seq.id] = seq

    def extend(self, seqs: Iterable[Sequence]) -> None:
        for s in seqs:
            self.add(s)

    def subset(self, predicate: Callable[[Sequence], bool]) -> "SequenceSet":
        return SequenceSet([s for s in self._seqs if predicate(s)])

    def sample(self, n: int, rng: np.random.Generator) -> "SequenceSet":
        """``n`` sequences drawn without replacement (deterministic given rng)."""
        if n > len(self._seqs):
            raise ValueError(f"cannot sample {n} from {len(self._seqs)} sequences")
        idx = rng.choice(len(self._seqs), size=n, replace=False)
        return SequenceSet([self._seqs[int(i)] for i in sorted(idx)])

    def split(self, n_parts: int) -> List["SequenceSet"]:
        """Split into ``n_parts`` contiguous, near-equal parts (block
        distribution: the initial data placement of the paper's cluster
        nodes)."""
        if n_parts <= 0:
            raise ValueError("n_parts must be positive")
        bounds = np.linspace(0, len(self._seqs), n_parts + 1).astype(int)
        return [
            SequenceSet(self._seqs[bounds[i] : bounds[i + 1]])
            for i in range(n_parts)
        ]

    def reordered(self, ids: TSequence[str]) -> "SequenceSet":
        """This set re-ordered to match ``ids`` exactly."""
        if set(ids) != set(self._by_id) or len(ids) != len(self._seqs):
            raise ValueError("ids must be a permutation of the set's ids")
        return SequenceSet([self._by_id[i] for i in ids])

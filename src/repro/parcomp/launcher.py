"""Threaded SPMD launcher for the virtual cluster.

``run_spmd(n_ranks, fn, ...)`` runs ``fn(comm, *args, **kwargs)`` once per
rank, each rank on its own thread with its own :class:`VirtualComm`.  The
first rank failure aborts the whole job (surviving ranks raise
:class:`SpmdAbort` out of their next blocking wait) and the original
exception is re-raised to the caller with the failing rank attached.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence as TSequence

from repro.parcomp.comm import Fabric, SpmdAbort, VirtualComm
from repro.parcomp.cost import CostModel, TimingLedger

__all__ = ["SpmdResult", "run_spmd"]


@dataclass
class SpmdResult:
    """Per-rank return values plus the run's timing ledger."""

    results: List[Any]
    ledger: TimingLedger

    @property
    def n_ranks(self) -> int:
        return self.ledger.n_ranks

    def modeled_time(self) -> float:
        return self.ledger.modeled_time()


def run_spmd(
    n_ranks: int,
    fn: Callable[..., Any],
    args: TSequence[Any] = (),
    rank_args: Optional[TSequence[TSequence[Any]]] = None,
    cost_model: CostModel | None = None,
    **kwargs: Any,
) -> SpmdResult:
    """Execute ``fn`` as an SPMD program over ``n_ranks`` virtual ranks.

    Parameters
    ----------
    n_ranks:
        Number of ranks (the paper's ``p``).
    fn:
        ``fn(comm, *args, **kwargs)`` -- called once per rank.  With
        ``rank_args`` given, rank ``r`` receives ``fn(comm, *rank_args[r],
        *args, **kwargs)`` (per-rank inputs first, like data pre-placed on
        each cluster node's disk).
    cost_model:
        Alpha-beta model for the logical clocks (default: gigabit cluster).

    Returns
    -------
    :class:`SpmdResult` with per-rank return values (rank order) and the
    byte/clock ledger.
    """
    if rank_args is not None and len(rank_args) != n_ranks:
        raise ValueError("rank_args must provide one tuple per rank")
    fabric = Fabric(n_ranks, cost_model)
    results: List[Any] = [None] * n_ranks
    errors: List[tuple] = []

    def runner(rank: int) -> None:
        comm = VirtualComm(fabric, rank)
        try:
            extra = tuple(rank_args[rank]) if rank_args is not None else ()
            results[rank] = fn(comm, *extra, *args, **kwargs)
        except SpmdAbort:
            pass  # somebody else failed first; stay quiet
        except BaseException as exc:  # noqa: BLE001 - propagated to caller
            errors.append((rank, exc))
            fabric.fail(exc)
        finally:
            comm.finalize()

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"rank-{r}", daemon=True)
        for r in range(n_ranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if errors:
        rank, exc = errors[0]
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    return SpmdResult(results, fabric.ledger)

"""SPMD launcher over the pluggable execution backends.

``run_spmd(n_ranks, fn, ...)`` runs ``fn(comm, *args, **kwargs)`` once per
rank, each rank with its own :class:`~repro.parcomp.comm.VirtualComm`.
*Where* the ranks execute is a backend choice (see
:mod:`repro.parcomp.backends`): ``backend="threads"`` (default) keeps the
original in-process virtual cluster, ``backend="processes"`` gives every
rank its own OS process so the program runs on real cores.  Either way the
first rank failure aborts the whole job (surviving ranks raise
:class:`~repro.parcomp.comm.SpmdAbort` out of their next blocking wait)
and the original exception is re-raised to the caller with the failing
rank attached.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence as TSequence, Union

from repro.obs.propagate import run_traced
from repro.parcomp.backends import ExecutionBackend, SpmdResult
from repro.parcomp.cost import CostModel

__all__ = ["SpmdResult", "run_spmd"]


def run_spmd(
    n_ranks: int,
    fn: Callable[..., Any],
    args: TSequence[Any] = (),
    rank_args: Optional[TSequence[TSequence[Any]]] = None,
    cost_model: CostModel | None = None,
    backend: Union[str, ExecutionBackend, None] = None,
    **kwargs: Any,
) -> SpmdResult:
    """Execute ``fn`` as an SPMD program over ``n_ranks`` virtual ranks.

    Parameters
    ----------
    n_ranks:
        Number of ranks (the paper's ``p``).
    fn:
        ``fn(comm, *args, **kwargs)`` -- called once per rank.  With
        ``rank_args`` given, rank ``r`` receives ``fn(comm, *rank_args[r],
        *args, **kwargs)`` (per-rank inputs first, like data pre-placed on
        each cluster node's disk).
    cost_model:
        Alpha-beta model for the logical clocks (default: gigabit cluster).
    backend:
        Execution backend: a registered name (``"threads"``,
        ``"processes"``), an :class:`ExecutionBackend` instance, or None
        for the default (``"threads"``).

    Returns
    -------
    :class:`SpmdResult` with per-rank return values (rank order) and the
    byte/clock ledger; ``result.backend`` names the backend that ran it.
    """
    # run_traced is get_backend(backend).run(...) plus span/metrics
    # propagation when tracing is on (one flag check when it is off).
    return run_traced(
        backend,
        n_ranks,
        fn,
        stage="spmd",
        args=args,
        rank_args=rank_args,
        cost_model=cost_model,
        **kwargs,
    )

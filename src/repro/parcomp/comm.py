"""The message transports and the mpi4py-style :class:`VirtualComm`.

Point-to-point semantics: ``send`` is buffered (never blocks); ``recv``
blocks until the matching ``(source, tag)`` message arrives.  Collectives
are built *on top of* point-to-point with deterministic schedules
(binomial trees for bcast/reduce, linear fan-in/out at the root for
scatter/gather, pairwise exchange for alltoall), so the byte meter and the
logical clocks see the true message pattern a real MPI implementation
would produce, message by message.

Logical clocks: each rank's clock advances by its measured thread CPU
time between communication calls (``time.thread_time`` -- unaffected by
the other rank threads sharing the host core), by ``alpha + beta*nbytes``
per sent message, and synchronises with the sender's clock on receive.
The final clocks give the modeled cluster time of the run.

:class:`Transport` is the seam between :class:`VirtualComm` (the rank-side
API and clock bookkeeping, shared by every execution backend) and how
bytes actually move.  :class:`Fabric` is the in-process implementation
(one shared mailbox, rank threads); the ``processes`` backend in
:mod:`repro.parcomp.backends` provides a pipe/queue implementation with
one OS process per rank.
"""

from __future__ import annotations

import abc
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.parcomp.cost import CommEvent, CostModel, TimingLedger, estimate_nbytes

__all__ = ["Fabric", "Transport", "VirtualComm", "SpmdAbort"]


class SpmdAbort(RuntimeError):
    """Raised in surviving ranks when another rank failed."""


class Transport(abc.ABC):
    """What :class:`VirtualComm` needs from a message-moving substrate.

    One instance is visible to each rank (the threads backend shares a
    single :class:`Fabric` across rank threads; the processes backend
    gives every rank process its own per-rank proxy).  Implementations
    own a :class:`~repro.parcomp.cost.TimingLedger` that the rank's
    :meth:`VirtualComm.finalize` writes its totals into.
    """

    n_ranks: int
    cost_model: CostModel
    ledger: TimingLedger

    @abc.abstractmethod
    def post(self, src: int, dst: int, tag: int, payload: Any,
             ready_time: float, nbytes: int, kind: str) -> None:
        """Deliver one metered message into ``dst``'s mailbox."""

    @abc.abstractmethod
    def collect(self, dst: int, src: int, tag: int) -> Tuple[Any, float]:
        """Block until the matching message arrives; ``(payload, ready)``."""

    @abc.abstractmethod
    def barrier(self, clock: float) -> float:
        """Synchronise all ranks; returns the max clock across them."""

    @abc.abstractmethod
    def fail(self, exc: BaseException) -> None:
        """Mark the run failed and wake every blocked rank."""

    @abc.abstractmethod
    def check_failed(self) -> None:
        """Raise :class:`SpmdAbort` if any rank has failed."""


class Fabric(Transport):
    """Shared state of one virtual-cluster run (the in-process transport).

    Blocked ranks park on a condition variable and are woken by the
    matching :meth:`post`, barrier completion, or :meth:`fail` -- there is
    no sleep-poll, so an idle rank costs nothing until its message lands.
    """

    def __init__(self, n_ranks: int, cost_model: CostModel | None = None) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        self.n_ranks = n_ranks
        self.cost_model = cost_model or CostModel()
        self.ledger = TimingLedger(n_ranks, self.cost_model)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        # mailbox[(dst, src, tag)] -> deque of (payload, ready_time)
        self._mail: Dict[Tuple[int, int, int], deque] = {}
        self._failed: Optional[BaseException] = None
        # Barrier bookkeeping (generation counting).
        self._barrier_count = 0
        self._barrier_gen = 0
        self._barrier_acc = 0.0
        self._barrier_results: Dict[int, float] = {}

    # -- failure propagation ----------------------------------------------------

    def fail(self, exc: BaseException) -> None:
        with self._cond:
            if self._failed is None:
                self._failed = exc
            self._cond.notify_all()

    def check_failed(self) -> None:
        if self._failed is not None:
            raise SpmdAbort(f"another rank failed: {self._failed!r}")

    # -- point-to-point ------------------------------------------------------------

    def post(self, src: int, dst: int, tag: int, payload: Any,
             ready_time: float, nbytes: int, kind: str) -> None:
        with self._cond:
            self._mail.setdefault((dst, src, tag), deque()).append(
                (payload, ready_time)
            )
            self.ledger.events.append(
                CommEvent(kind, src, dst, nbytes, tag, send_clock=ready_time)
            )
            self._cond.notify_all()

    def collect(self, dst: int, src: int, tag: int) -> Tuple[Any, float]:
        key = (dst, src, tag)
        with self._cond:
            while True:
                if self._failed is not None:
                    raise SpmdAbort(f"another rank failed: {self._failed!r}")
                box = self._mail.get(key)
                if box:
                    return box.popleft()
                # Pure condition wait: post()/fail() notify, so there is
                # no wakeup to poll for.
                self._cond.wait()

    # -- barrier ----------------------------------------------------------------------

    def barrier(self, clock: float) -> float:
        """Synchronise all ranks; returns the max clock across them."""
        with self._cond:
            gen = self._barrier_gen
            self._barrier_count += 1
            self._barrier_acc = max(self._barrier_acc, clock)
            if self._barrier_count == self.n_ranks:
                self._barrier_results[gen] = self._barrier_acc
                self._barrier_count = 0
                self._barrier_acc = 0.0
                self._barrier_gen += 1
                self._cond.notify_all()
            else:
                while self._barrier_gen == gen:
                    if self._failed is not None:
                        raise SpmdAbort(
                            f"another rank failed: {self._failed!r}"
                        )
                    # Woken by the last arrival's notify_all or by fail().
                    self._cond.wait()
            return self._barrier_results[gen]


class VirtualComm:
    """Per-rank communicator (mpi4py-flavoured API subset).

    Lower-case methods move arbitrary Python payloads, like mpi4py's
    pickle path; there is no upper-case buffer API because payload sizes,
    not bytes, are what the cost model meters.  The communicator is
    backend-agnostic: it talks to any :class:`Transport` (the in-process
    :class:`Fabric`, or the processes backend's per-rank queue proxy) and
    keeps all clock bookkeeping on this side of the seam so every backend
    meters communication identically.
    """

    def __init__(self, fabric: Transport, rank: int) -> None:
        self.fabric = fabric
        self.rank = rank
        self._clock = 0.0
        self._compute = 0.0
        self._last_cpu = time.thread_time()

    # -- mpi4py-style introspection ------------------------------------------------

    @property
    def size(self) -> int:
        return self.fabric.n_ranks

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.fabric.n_ranks

    # -- clock bookkeeping -----------------------------------------------------------

    def _absorb_compute(self) -> None:
        """Fold thread CPU time since the last comm call into the clock."""
        now = time.thread_time()
        dt = max(now - self._last_cpu, 0.0)
        self._last_cpu = now
        scaled = dt * self.fabric.cost_model.compute_scale
        self._compute += scaled
        self._clock += scaled

    def charge_compute(self, seconds: float) -> None:
        """Explicitly add modeled compute seconds to this rank's clock
        (used by the perfmodel to inject calibrated kernel costs)."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self._compute += seconds
        self._clock += seconds

    def finalize(self) -> None:
        """Flush outstanding compute and publish this rank's totals."""
        self._absorb_compute()
        self.fabric.ledger.compute[self.rank] = self._compute
        self.fabric.ledger.clock[self.rank] = self._clock

    # -- point-to-point --------------------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0, _kind: str = "send") -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"bad destination rank {dest}")
        if not isinstance(tag, int) or isinstance(tag, bool):
            # Non-int tags are reserved for transport-internal control
            # traffic (e.g. the processes backend's barrier exchange).
            raise TypeError(f"tag must be an int, got {tag!r}")
        self._absorb_compute()
        nbytes = estimate_nbytes(obj)
        self._clock += self.fabric.cost_model.message_cost(nbytes)
        self.fabric.post(
            self.rank, dest, tag, obj, self._clock, nbytes, _kind
        )

    def recv(self, source: int, tag: int = 0) -> Any:
        if not 0 <= source < self.size:
            raise ValueError(f"bad source rank {source}")
        if not isinstance(tag, int) or isinstance(tag, bool):
            raise TypeError(f"tag must be an int, got {tag!r}")
        self._absorb_compute()
        payload, ready = self.fabric.collect(self.rank, source, tag)
        self._clock = max(self._clock, ready)
        return payload

    # -- collectives -------------------------------------------------------------------

    _TAG_COLL = 1 << 20  # tag space reserved for collectives

    def barrier(self) -> None:
        self._absorb_compute()
        self._clock = self.fabric.barrier(self._clock)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast (log2(p) rounds, like real MPI)."""
        size, rank = self.size, self.rank
        if size == 1:
            return obj
        rel = (rank - root) % size
        mask = 1
        # Receive phase: find my parent.
        while mask < size:
            if rel & mask:
                parent = (rel - mask + root) % size
                obj = self.recv(parent, self._TAG_COLL + 1)
                break
            mask <<= 1
        # Send phase: forward to children.
        mask >>= 1
        while mask > 0:
            if rel + mask < size:
                child = (rel + mask + root) % size
                self.send(obj, child, self._TAG_COLL + 1, _kind="bcast")
            mask >>= 1
        return obj

    def scatter(self, objs: Optional[List[Any]], root: int = 0) -> Any:
        """Linear scatter from the root (root keeps its own slice)."""
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("root must pass one object per rank")
            for r in range(self.size):
                if r != root:
                    self.send(objs[r], r, self._TAG_COLL + 2, _kind="scatter")
            return objs[root]
        return self.recv(root, self._TAG_COLL + 2)

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        """Linear gather at the root; returns the list at root else None."""
        if self.rank == root:
            out: List[Any] = [None] * self.size
            out[root] = obj
            for r in range(self.size):
                if r != root:
                    out[r] = self.recv(r, self._TAG_COLL + 3)
            return out
        self.send(obj, root, self._TAG_COLL + 3, _kind="gather")
        return None

    def allgather(self, obj: Any) -> List[Any]:
        """Gather to rank 0 then broadcast (the metered message pattern)."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def alltoall(self, objs: List[Any]) -> List[Any]:
        """Pairwise-exchange personalised all-to-all."""
        if len(objs) != self.size:
            raise ValueError("need one payload per rank")
        size, rank = self.size, self.rank
        out: List[Any] = [None] * size
        out[rank] = objs[rank]
        for step in range(1, size):
            dst = (rank + step) % size
            src = (rank - step) % size
            self.send(objs[dst], dst, self._TAG_COLL + 4 + step, _kind="alltoall")
            out[src] = self.recv(src, self._TAG_COLL + 4 + step)
        return out

    def reduce(
        self, obj: Any, op: Callable[[Any, Any], Any], root: int = 0
    ) -> Any:
        """Binomial-tree reduction with a user-supplied binary op.

        ``op`` must be associative; evaluation order is deterministic.
        Returns the reduced value at root, None elsewhere.
        """
        size, rank = self.size, self.rank
        rel = (rank - root) % size
        value = obj
        mask = 1
        tag = self._TAG_COLL + 5
        while mask < size:
            if rel & mask:
                parent = (rel - mask + root) % size
                self.send(value, parent, tag, _kind="reduce")
                return None
            partner = rel + mask
            if partner < size:
                other = self.recv((partner + root) % size, tag)
                value = op(value, other)
            mask <<= 1
        return value

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]) -> Any:
        return self.bcast(self.reduce(obj, op, root=0), root=0)

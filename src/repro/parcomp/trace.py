"""Text rendering of a virtual-cluster run: timelines and traffic.

Observability for the modeled cluster: per-rank send timelines on the
logical clock (a text Gantt chart) and a src x dst traffic matrix.
Useful when judging where the pipeline's communication phases sit
relative to the compute -- the shape the paper's section-3 analysis
reasons about.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.parcomp.cost import TimingLedger

__all__ = ["render_timeline", "traffic_matrix", "render_traffic"]


def render_timeline(
    ledger: TimingLedger, width: int = 72, max_events: int = 400
) -> str:
    """ASCII Gantt of message sends on the logical clock.

    One line per rank: ``.`` for idle/compute span, one letter per sent
    message at its send-clock position (``s`` send, ``b`` bcast, ``g``
    gather, ``a`` alltoall, ``r`` reduce, ``c`` scatter, ``*`` several).
    The right edge is the run's modeled end time.
    """
    total = max(ledger.modeled_time(), 1e-12)
    letters = {
        "send": "s", "bcast": "b", "gather": "g", "alltoall": "a",
        "reduce": "r", "scatter": "c",
    }
    rows = [["."] * width for _ in range(ledger.n_ranks)]
    for e in ledger.events[:max_events]:
        col = min(int(e.send_clock / total * (width - 1)), width - 1)
        cell = rows[e.src][col]
        mark = letters.get(e.kind, "?")
        rows[e.src][col] = mark if cell == "." else "*"
    lines = [
        f"rank {r:>3} |{''.join(row)}| {ledger.clock[r]:.4f}s"
        for r, row in enumerate(rows)
    ]
    header = (
        f"timeline (0 .. {total:.4f}s modeled); "
        "s=send b=bcast g=gather a=alltoall r=reduce c=scatter *=multiple"
    )
    return "\n".join([header] + lines)


def traffic_matrix(ledger: TimingLedger) -> np.ndarray:
    """Bytes sent from each rank to each rank, shape (p, p)."""
    out = np.zeros((ledger.n_ranks, ledger.n_ranks), dtype=np.int64)
    for e in ledger.events:
        out[e.src, e.dst] += e.nbytes
    return out


def render_traffic(ledger: TimingLedger) -> str:
    """Human-readable src x dst traffic table (bytes)."""
    m = traffic_matrix(ledger)
    p = ledger.n_ranks
    w = max(len(str(int(m.max(initial=0)))), 6)
    head = "src\\dst " + " ".join(f"{d:>{w}}" for d in range(p))
    lines = [head]
    for s in range(p):
        lines.append(
            f"{s:>7} " + " ".join(f"{int(m[s, d]):>{w}}" for d in range(p))
        )
    lines.append(f"total {int(m.sum())} bytes in {ledger.n_messages()} messages")
    return "\n".join(lines)

"""Pluggable execution backends for the SPMD launcher.

An :class:`ExecutionBackend` decides *where* the ranks of an SPMD program
run; the rank-side semantics (the :class:`~repro.parcomp.comm.VirtualComm`
API, message metering, logical clocks) are identical across backends, so
a program produces byte-identical results no matter which backend executes
it.  Three backends ship:

- ``"threads"`` (:class:`ThreadBackend`) -- the original virtual cluster:
  one daemon thread per rank sharing a :class:`~repro.parcomp.comm.Fabric`.
  Zero startup cost and per-rank ``thread_time`` clocks make it the
  fidelity choice for *modeled* cluster time, but the GIL serialises the
  compute, so p ranks never run faster than one host core.
- ``"processes"`` (:class:`ProcessBackend`) -- one OS process per rank
  (stdlib :mod:`multiprocessing`), queues for the wire.  Ranks really run
  in parallel, so Sample-Align-D's wall clock scales with host cores; the
  price -- paid on *every call* -- is process startup and pickling
  payloads across the boundary.  This is the cold-start reference
  backend the pool is measured against.
- ``"pool"`` (:class:`repro.pool.PoolBackend`) -- real cores without the
  per-call startup: a persistent, supervised worker pool
  (:mod:`repro.pool`) created once and reused across runs, with large
  payloads riding zero-copy shared-memory segments instead of pickled
  queues.

Rule of thumb: ``threads`` for studying the paper's communication model,
``pool`` for actually aligning fast -- especially the serving stack's
repeated short jobs -- and ``processes`` as the simple cold-start
baseline the pool's warm-start win is benchmarked against
(``benchmarks/bench_pool_scaling.py``).

Backends register by name (:func:`register_backend`) so callers select
them with a string the whole stack -- driver, engine, service, gateway,
CLI -- passes through unchanged.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import threading
import time
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence as TSequence,
    Tuple,
    Union,
)

from repro.parcomp.comm import Fabric, SpmdAbort, Transport, VirtualComm
from repro.parcomp.cost import CommEvent, CostModel, TimingLedger

__all__ = [
    "ExecutionBackend",
    "ProcessBackend",
    "SpmdResult",
    "ThreadBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "DEFAULT_BACKEND",
]

#: The backend used when a caller does not choose one.
DEFAULT_BACKEND = "threads"


@dataclass
class SpmdResult:
    """Per-rank return values plus the run's timing ledger."""

    results: List[Any]
    ledger: TimingLedger
    #: Name of the execution backend that produced this result.
    backend: str = DEFAULT_BACKEND

    @property
    def n_ranks(self) -> int:
        return self.ledger.n_ranks

    def modeled_time(self) -> float:
        return self.ledger.modeled_time()


class ExecutionBackend(ABC):
    """How to execute ``fn(comm, ...)`` once per rank.

    Subclasses implement :meth:`run` with identical semantics: every rank
    calls ``fn`` exactly once, the first rank failure aborts the job
    (surviving ranks raise :class:`~repro.parcomp.comm.SpmdAbort` out of
    their next blocking wait) and the original exception is re-raised to
    the caller as ``RuntimeError("rank r failed: ...")``.
    """

    #: Registry name of the backend.
    name: str = "abstract"

    @abstractmethod
    def run(
        self,
        n_ranks: int,
        fn: Callable[..., Any],
        args: TSequence[Any] = (),
        rank_args: Optional[TSequence[TSequence[Any]]] = None,
        cost_model: CostModel | None = None,
        **kwargs: Any,
    ) -> SpmdResult:
        """Execute ``fn`` as an SPMD program over ``n_ranks`` ranks."""

    @staticmethod
    def _validate(
        n_ranks: int, rank_args: Optional[TSequence[TSequence[Any]]]
    ) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if rank_args is not None and len(rank_args) != n_ranks:
            raise ValueError("rank_args must provide one tuple per rank")


# ---------------------------------------------------------------------------
# Threads backend (the original virtual cluster).


class ThreadBackend(ExecutionBackend):
    """One daemon thread per rank over a shared in-process fabric.

    Parameters
    ----------
    abort_join_timeout:
        How long to wait for surviving rank threads after a rank failure
        before giving up on them.  A rank stuck in a long compute phase
        (it only observes the abort at its next communication call) is
        left behind as a daemon thread rather than hanging the caller;
        the raised error notes the leak.
    """

    name = "threads"

    def __init__(self, abort_join_timeout: float = 30.0) -> None:
        if abort_join_timeout <= 0:
            raise ValueError("abort_join_timeout must be > 0")
        self.abort_join_timeout = abort_join_timeout

    def run(
        self,
        n_ranks: int,
        fn: Callable[..., Any],
        args: TSequence[Any] = (),
        rank_args: Optional[TSequence[TSequence[Any]]] = None,
        cost_model: CostModel | None = None,
        **kwargs: Any,
    ) -> SpmdResult:
        self._validate(n_ranks, rank_args)
        fabric = Fabric(n_ranks, cost_model)
        results: List[Any] = [None] * n_ranks
        errors: List[tuple] = []

        def runner(rank: int) -> None:
            comm = VirtualComm(fabric, rank)
            try:
                extra = tuple(rank_args[rank]) if rank_args is not None else ()
                results[rank] = fn(comm, *extra, *args, **kwargs)
            except SpmdAbort:
                pass  # somebody else failed first; stay quiet
            except BaseException as exc:  # noqa: BLE001 - propagated to caller
                errors.append((rank, exc))
                fabric.fail(exc)
            finally:
                comm.finalize()

        threads = [
            threading.Thread(
                target=runner, args=(r,), name=f"rank-{r}", daemon=True
            )
            for r in range(n_ranks)
        ]
        for t in threads:
            t.start()

        # Join with a post-failure deadline: a healthy run joins all ranks
        # unconditionally, but once a rank has failed the survivors get a
        # bounded grace period to unwind (they wake from blocking waits
        # immediately; only a rank deep in compute can overstay).
        deadline: Optional[float] = None
        leaked: List[str] = []
        pending = deque(threads)
        while pending:
            t = pending.popleft()
            t.join(0.1)
            if not t.is_alive():
                continue
            if errors:
                if deadline is None:
                    deadline = time.monotonic() + self.abort_join_timeout
                if time.monotonic() >= deadline:
                    leaked.append(t.name)
                    continue
            pending.append(t)

        if errors:
            rank, exc = errors[0]
            note = (
                f" ({len(leaked)} rank thread(s) still unwinding: "
                f"{', '.join(leaked)})" if leaked else ""
            )
            raise RuntimeError(f"rank {rank} failed: {exc!r}{note}") from exc
        return SpmdResult(results, fabric.ledger, backend=self.name)


# ---------------------------------------------------------------------------
# Processes backend (real cores).

#: Reserved tag for transport-internal control messages (barrier clock
#: exchange).  User tags are validated to be ints by VirtualComm, so a
#: string tag can never collide with program traffic.
_CTRL_TAG = "__ctrl__"

#: How often a blocked rank process re-checks the shared failure flag.
_PROC_POLL_S = 0.05


class _ProcessRankTransport(Transport):
    """Queue transport as seen from inside one rank process.

    Each rank owns an inbox queue; ``post`` pickles the payload into the
    destination's inbox, ``collect`` drains the own inbox into a local
    ``(src, tag)``-keyed buffer until the wanted message arrives.  Send
    events are recorded locally and shipped to the parent at the end of
    the run, where the per-rank ledgers merge into one.
    """

    def __init__(
        self,
        rank: int,
        n_ranks: int,
        cost_model: CostModel,
        inboxes: List[Any],
        fail_event: Any,
    ) -> None:
        self.rank = rank
        self.n_ranks = n_ranks
        self.cost_model = cost_model or CostModel()
        self.ledger = TimingLedger(n_ranks, self.cost_model)
        self._inboxes = inboxes
        self._fail_event = fail_event
        self._buffer: Dict[Tuple[int, Any], deque] = {}

    # -- failure propagation ------------------------------------------------

    def fail(self, exc: BaseException) -> None:
        self._fail_event.set()

    def check_failed(self) -> None:
        if self._fail_event.is_set():
            raise SpmdAbort("another rank failed")

    # -- point-to-point -----------------------------------------------------

    def post(self, src: int, dst: int, tag: int, payload: Any,
             ready_time: float, nbytes: int, kind: str) -> None:
        self.ledger.events.append(
            CommEvent(kind, src, dst, nbytes, tag, send_clock=ready_time)
        )
        self._inboxes[dst].put((src, tag, payload, ready_time))

    def collect(self, dst: int, src: int, tag: int) -> Tuple[Any, float]:
        key = (src, tag)
        inbox = self._inboxes[dst]
        while True:
            box = self._buffer.get(key)
            if box:
                payload, ready = box.popleft()
                return payload, ready
            self.check_failed()
            try:
                m_src, m_tag, payload, ready = inbox.get(timeout=_PROC_POLL_S)
            except queue_mod.Empty:
                continue
            self._buffer.setdefault((m_src, m_tag), deque()).append(
                (payload, ready)
            )

    # -- barrier ------------------------------------------------------------

    def barrier(self, clock: float) -> float:
        """Clock-max exchange over unmetered control messages.

        Linear fan-in at rank 0 then fan-out, on the reserved control
        tag -- the same zero-event footprint the threads fabric's shared
        barrier has, so ledgers stay comparable across backends.
        """
        if self.n_ranks == 1:
            return clock
        if self.rank == 0:
            mx = clock
            for src in range(1, self.n_ranks):
                other, _ = self.collect(0, src, _CTRL_TAG)
                mx = max(mx, other)
            for dst in range(1, self.n_ranks):
                self._inboxes[dst].put((0, _CTRL_TAG, mx, 0.0))
            return mx
        self._inboxes[0].put((self.rank, _CTRL_TAG, clock, 0.0))
        result, _ = self.collect(self.rank, 0, _CTRL_TAG)
        return float(result)


def _process_rank_main(
    rank: int,
    n_ranks: int,
    fn: Callable[..., Any],
    extra: tuple,
    args: tuple,
    kwargs: Dict[str, Any],
    cost_model: CostModel,
    inboxes: List[Any],
    fail_event: Any,
    report_queue: Any,
) -> None:
    """Entry point of one rank process (module-level: spawn-picklable)."""
    transport = _ProcessRankTransport(
        rank, n_ranks, cost_model, inboxes, fail_event
    )
    comm = VirtualComm(transport, rank)
    status, result, error = "ok", None, None
    try:
        result = fn(comm, *extra, *args, **kwargs)
    except SpmdAbort:
        status = "abort"
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        status, error = "error", exc
        transport.fail(exc)
    finally:
        comm.finalize()
        report = {
            "rank": rank,
            "status": status,
            "result": result,
            "error": error,
            "compute": float(transport.ledger.compute[rank]),
            "clock": float(transport.ledger.clock[rank]),
            "events": list(transport.ledger.events),
        }
        # Serialise here and ship the bytes: Queue.put pickles on a
        # feeder thread, where an unpicklable report would fail
        # *silently* and leave the parent waiting forever.  Pickling
        # once in-rank both surfaces that error and avoids paying for
        # the (potentially large) payload twice.
        try:
            blob = pickle.dumps(report, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            what = "result" if status == "ok" else "exception"
            bad = result if status == "ok" else error
            report["result"] = None
            report["error"] = RuntimeError(
                f"rank {rank} produced an unpicklable {what}: {bad!r}"
            )
            report["status"] = "error"
            fail_event.set()
            blob = pickle.dumps(report, protocol=pickle.HIGHEST_PROTOCOL)
        report_queue.put(blob)
        if status != "ok" or fail_event.is_set():
            # Aborted peers may never drain our sends; don't let the
            # queue feeder threads block this process's exit.
            for box in inboxes:
                box.cancel_join_thread()


class ProcessBackend(ExecutionBackend):
    """One OS process per rank; queues move the messages.

    This is the *cold-start reference backend*: every :meth:`run` pays
    rank-process creation and teardown, and every payload is pickled
    through a queue.  That makes it the simplest way to use real cores
    for one long run, and the baseline the persistent ``"pool"`` backend
    (:mod:`repro.pool`) is measured against on repeated short jobs,
    where the per-call startup dominates.

    Parameters
    ----------
    start_method:
        :mod:`multiprocessing` start method.  Default: the
        ``REPRO_SPMD_START_METHOD`` environment variable if set, else
        ``"fork"`` where available (fast, and rank closures need no
        pickling), else the platform default.  Forking from a threaded
        parent (the serving stack) is safe *here* because rank children
        only touch run-local queues plus locks CPython re-initialises
        after fork, but hosts that prefer strict hygiene (or Python
        3.12+'s fork-with-threads deprecation) can export
        ``REPRO_SPMD_START_METHOD=forkserver``; then the program
        function, its arguments and every payload must be picklable --
        module-level functions, not closures (``sample_align_d`` is).
    abort_join_timeout:
        Grace period for rank processes to unwind after a failure (or
        after results are in) before they are terminated, then killed.
        No child ever outlives :meth:`run`.
    """

    name = "processes"

    def __init__(
        self,
        start_method: Optional[str] = None,
        abort_join_timeout: float = 10.0,
    ) -> None:
        if abort_join_timeout <= 0:
            raise ValueError("abort_join_timeout must be > 0")
        if start_method is None:
            start_method = os.environ.get("REPRO_SPMD_START_METHOD") or None
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else None
            )
        elif start_method not in mp.get_all_start_methods():
            raise ValueError(
                f"unknown start method {start_method!r}; available: "
                f"{mp.get_all_start_methods()}"
            )
        self.start_method = start_method
        self.abort_join_timeout = abort_join_timeout

    def run(
        self,
        n_ranks: int,
        fn: Callable[..., Any],
        args: TSequence[Any] = (),
        rank_args: Optional[TSequence[TSequence[Any]]] = None,
        cost_model: CostModel | None = None,
        **kwargs: Any,
    ) -> SpmdResult:
        self._validate(n_ranks, rank_args)
        cost_model = cost_model or CostModel()
        ctx = mp.get_context(self.start_method)
        inboxes = [ctx.Queue() for _ in range(n_ranks)]
        report_queue = ctx.Queue()
        fail_event = ctx.Event()
        procs = []
        for r in range(n_ranks):
            extra = tuple(rank_args[r]) if rank_args is not None else ()
            procs.append(
                ctx.Process(
                    target=_process_rank_main,
                    args=(r, n_ranks, fn, extra, tuple(args), dict(kwargs),
                          cost_model, inboxes, fail_event, report_queue),
                    name=f"rank-{r}",
                    daemon=True,
                )
            )
        for p in procs:
            p.start()

        reports: Dict[int, Dict[str, Any]] = {}
        crashed: Dict[int, BaseException] = {}
        abort_deadline: Optional[float] = None
        while len(reports.keys() | crashed.keys()) < n_ranks:
            # Once the run is failing, surviving ranks get a bounded
            # grace period to report; a rank stuck deep in compute (it
            # only observes the abort at its next communication call)
            # must not hang the caller -- _reap terminates it below.
            if abort_deadline is None and (crashed or fail_event.is_set()):
                abort_deadline = time.monotonic() + self.abort_join_timeout
            if (abort_deadline is not None
                    and time.monotonic() >= abort_deadline):
                break
            try:
                rep = pickle.loads(report_queue.get(timeout=0.2))
                reports[rep["rank"]] = rep
            except queue_mod.Empty:
                # A rank killed outside Python (segfault, OOM killer)
                # exits non-zero and never reports; detect it, fail the
                # survivors out of their waits, and synthesise its error.
                # A clean exit (code 0) always has a report in flight --
                # the runner puts it before exiting -- so keep waiting.
                for r, p in enumerate(procs):
                    if (not p.is_alive() and p.exitcode != 0
                            and r not in reports and r not in crashed):
                        crashed[r] = RuntimeError(
                            f"rank process died without reporting "
                            f"(exitcode {p.exitcode})"
                        )
                        fail_event.set()

        self._reap(procs, timeout=self.abort_join_timeout)
        for box in inboxes:
            box.cancel_join_thread()
            box.close()
        report_queue.cancel_join_thread()
        report_queue.close()

        # Error precedence: a reported exception (the actual cause) over
        # a synthesised crash, over "stuck" ranks terminated by _reap --
        # the latter are symptoms of the abort, never the cause.  A crash
        # after an "ok" report still fails the run, because setting the
        # failure flag aborted the surviving ranks mid-computation.
        reported_errors = {
            r: rep["error"] for r, rep in reports.items()
            if rep["status"] == "error"
        }
        stuck = [
            r for r in range(n_ranks)
            if r not in reports and r not in crashed
        ]
        errors: List[Tuple[int, BaseException]] = sorted(
            list(reported_errors.items())
            + [(r, exc) for r, exc in crashed.items()
               if r not in reported_errors],
            key=lambda pair: pair[0],
        )
        ledger = TimingLedger(n_ranks, cost_model)
        results: List[Any] = [None] * n_ranks
        for r in range(n_ranks):
            rep = reports.get(r)
            if rep is None:
                continue
            results[r] = rep["result"]
            ledger.compute[r] = rep["compute"]
            ledger.clock[r] = rep["clock"]
        # Deterministic merge: rank-major, send order within a rank.
        for r in sorted(reports):
            ledger.events.extend(reports[r]["events"])

        if errors:
            rank, exc = errors[0]
            note = (
                f" ({len(stuck)} rank process(es) terminated while "
                f"unwinding: {', '.join(f'rank-{r}' for r in stuck)})"
                if stuck else ""
            )
            raise RuntimeError(f"rank {rank} failed: {exc!r}{note}") from exc
        if stuck:  # failed flag raised but no cause surfaced: still a failure
            raise RuntimeError(
                f"rank(s) {', '.join(str(r) for r in stuck)} never "
                "reported and were terminated"
            )
        return SpmdResult(results, ledger, backend=self.name)

    @staticmethod
    def _reap(procs: List[Any], timeout: float) -> None:
        """Join every child within ``timeout``; escalate to terminate/kill."""
        deadline = time.monotonic() + timeout
        for p in procs:
            p.join(max(deadline - time.monotonic(), 0.0))
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            if p.is_alive():
                p.join(1.0)
                if p.is_alive():  # pragma: no cover - last resort
                    p.kill()
                    p.join(1.0)


# ---------------------------------------------------------------------------
# Registry.

_BACKENDS: Dict[str, Callable[[], ExecutionBackend]] = {}


def register_backend(
    name: str,
    factory: Callable[[], ExecutionBackend],
    overwrite: bool = False,
) -> None:
    """Register an execution backend factory under ``name``.

    ``factory()`` must return an :class:`ExecutionBackend`.  Names are
    case-insensitive and shared by every layer's ``backend=`` option.
    """
    key = name.lower()
    if key in _BACKENDS and not overwrite:
        raise ValueError(
            f"backend {name!r} already registered "
            "(pass overwrite=True to replace)"
        )
    _BACKENDS[key] = factory


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry."""
    try:
        del _BACKENDS[name.lower()]
    except KeyError:
        raise KeyError(f"backend {name!r} is not registered") from None


def available_backends() -> List[str]:
    """Sorted names of the registered execution backends."""
    return sorted(_BACKENDS)


def get_backend(
    backend: Union[str, ExecutionBackend, None] = None,
) -> ExecutionBackend:
    """Resolve a backend selection to an instance.

    ``None`` means :data:`DEFAULT_BACKEND`; a string resolves through the
    registry; an :class:`ExecutionBackend` instance passes through.
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        factory = _BACKENDS[str(backend).lower()]
    except KeyError:
        raise KeyError(
            f"unknown execution backend {backend!r}; "
            f"available: {available_backends()}"
        ) from None
    return factory()


def _pool_backend_factory() -> ExecutionBackend:
    """Lazy factory: importing :mod:`repro.pool` here (not at module
    import) keeps the dependency one-way -- the pool builds *on* the
    backend seam -- while ``"pool"`` still shows up in
    :func:`available_backends` and in ``get_backend`` error messages
    from the first import of this module."""
    from repro.pool import PoolBackend

    return PoolBackend()


register_backend("threads", ThreadBackend)
register_backend("processes", ProcessBackend)
register_backend("pool", _pool_backend_factory)

"""Communication cost model, payload sizing and the timing ledger.

The cluster model is the classic alpha-beta (latency/bandwidth) model on
top of per-rank logical clocks:

- sending ``m`` bytes costs ``alpha + beta * m`` on the sender's clock;
- a receive synchronises the receiver's clock with the message's ready
  time (sender clock at completion of the send);
- rank-local computation advances a rank's clock by its measured *thread
  CPU time* (so other threads sharing the host's single core do not
  pollute the measurement).

The defaults correspond to a gigabit-Ethernet cluster of the paper's era
(~50 us MPI latency, ~100 MB/s effective bandwidth).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

__all__ = ["CostModel", "CommEvent", "TimingLedger", "estimate_nbytes"]


@dataclass(frozen=True)
class CostModel:
    """Latency/bandwidth (alpha-beta) point-to-point cost model.

    Attributes
    ----------
    alpha:
        Per-message latency in seconds.
    beta:
        Per-byte transfer time in seconds (1/bandwidth).
    compute_scale:
        Multiplier applied to measured rank compute time before it enters
        the logical clocks.  1.0 models "cluster nodes as fast as this
        host"; the perfmodel uses it to map host-calibrated kernels onto
        the paper's Pentium-III nodes.
    """

    alpha: float = 50e-6
    beta: float = 1.0 / 100e6
    compute_scale: float = 1.0

    def message_cost(self, nbytes: int) -> float:
        """Modeled wall time to move one message of ``nbytes``."""
        return self.alpha + self.beta * max(int(nbytes), 0)


@dataclass
class CommEvent:
    """One point-to-point message, as metered by the fabric.

    ``send_clock`` is the sender's logical clock when the message left
    (i.e. after paying the alpha-beta cost) -- the trace renderer builds
    per-rank timelines from it.
    """

    kind: str  # "send", or the collective that generated it
    src: int
    dst: int
    nbytes: int
    tag: int
    send_clock: float = 0.0


@dataclass
class TimingLedger:
    """Per-rank accounting of a virtual-cluster run.

    ``compute`` holds measured thread CPU seconds per rank; ``clock`` the
    final logical clocks (compute + modeled communication); ``events`` the
    full message log.
    """

    n_ranks: int
    cost_model: CostModel
    compute: np.ndarray = field(default=None)
    clock: np.ndarray = field(default=None)
    events: List[CommEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.compute is None:
            self.compute = np.zeros(self.n_ranks)
        if self.clock is None:
            self.clock = np.zeros(self.n_ranks)

    # -- aggregate views -------------------------------------------------------

    def modeled_time(self) -> float:
        """Modeled parallel execution time: the slowest logical clock."""
        return float(self.clock.max()) if self.n_ranks else 0.0

    def total_compute(self) -> float:
        """Total CPU seconds across ranks (serial-equivalent work)."""
        return float(self.compute.sum())

    def max_compute(self) -> float:
        return float(self.compute.max()) if self.n_ranks else 0.0

    def total_bytes(self, kind: str | None = None) -> int:
        return sum(e.nbytes for e in self.events if kind is None or e.kind == kind)

    def n_messages(self, kind: str | None = None) -> int:
        return sum(1 for e in self.events if kind is None or e.kind == kind)

    def modeled_comm_time(self) -> float:
        """Modeled time of all messages if serialised (upper bound)."""
        return sum(self.cost_model.message_cost(e.nbytes) for e in self.events)

    def bytes_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + e.nbytes
        return out

    def load_balance(self) -> float:
        """max/mean rank compute time (1.0 = perfectly balanced)."""
        mean = self.compute.mean()
        return float(self.compute.max() / mean) if mean > 0 else 1.0


def estimate_nbytes(obj: Any) -> int:
    """Approximate wire size of a payload without serialising it.

    Sized structurally for the types the pipeline actually ships (numpy
    arrays, sequences, alignments, containers); anything unknown falls
    back to ``len(pickle.dumps(obj))``.
    """
    if obj is None:
        return 1
    if isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, (str, bytes, bytearray)):
        return len(obj)
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    # Sequence / Alignment / Profile without importing them (avoid cycles).
    residues = getattr(obj, "residues", None)
    if isinstance(residues, str):
        return len(residues) + len(getattr(obj, "id", "")) + 16
    matrix = getattr(obj, "matrix", None)
    if isinstance(matrix, np.ndarray):
        ids = getattr(obj, "ids", [])
        return int(matrix.nbytes) + sum(len(str(i)) + 8 for i in ids)
    alignment = getattr(obj, "alignment", None)
    if alignment is not None and hasattr(alignment, "matrix"):
        return estimate_nbytes(alignment)
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 16 + sum(estimate_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return 16 + sum(
            estimate_nbytes(k) + estimate_nbytes(v) for k, v in obj.items()
        )
    fields_ = getattr(obj, "__dataclass_fields__", None)
    if fields_:
        return 16 + sum(
            estimate_nbytes(getattr(obj, name)) for name in fields_
        )
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64

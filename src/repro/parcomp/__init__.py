"""Virtual message-passing cluster with pluggable execution backends.

The paper runs on a 16-node Beowulf cluster via MPI.  This subpackage
provides the substitution documented in DESIGN.md: ranks execute an
mpi4py-style API
(``send/recv/bcast/scatter/gather/allgather/alltoall/barrier/reduce``),
every payload is metered in bytes, and a latency/bandwidth cost model
drives per-rank *logical clocks* so that a run yields both real wall time
and a modeled cluster time (max over ranks of compute + modeled
communication, the coarse-grained model the paper itself uses in its
section-3 analysis).

*Where* the ranks execute is an :class:`ExecutionBackend`: ``"threads"``
(the original in-process fabric -- modeled-time fidelity, GIL-bound
compute), ``"processes"`` (one OS process per rank over queues -- real
parallel compute on multi-core hosts), or ``"pool"`` (persistent warm
workers from :mod:`repro.pool` with shared-memory transport -- process
parallelism without the per-run spawn cost).  All produce
byte-identical program results and equivalent ledgers.

- :mod:`repro.parcomp.cost` -- cost model, payload sizing, event ledger.
- :mod:`repro.parcomp.comm` -- the transport seam and :class:`VirtualComm`.
- :mod:`repro.parcomp.backends` -- the execution backends and registry.
- :mod:`repro.parcomp.launcher` -- the SPMD launcher (``run_spmd``).
"""

from repro.parcomp.cost import CommEvent, CostModel, TimingLedger, estimate_nbytes
from repro.parcomp.comm import Fabric, SpmdAbort, Transport, VirtualComm
from repro.parcomp.backends import (
    DEFAULT_BACKEND,
    ExecutionBackend,
    ProcessBackend,
    SpmdResult,
    ThreadBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.parcomp.launcher import run_spmd
from repro.parcomp.trace import render_timeline, render_traffic, traffic_matrix

__all__ = [
    "CommEvent",
    "CostModel",
    "DEFAULT_BACKEND",
    "ExecutionBackend",
    "Fabric",
    "ProcessBackend",
    "SpmdAbort",
    "SpmdResult",
    "ThreadBackend",
    "TimingLedger",
    "Transport",
    "VirtualComm",
    "available_backends",
    "estimate_nbytes",
    "get_backend",
    "register_backend",
    "render_timeline",
    "render_traffic",
    "run_spmd",
    "traffic_matrix",
]

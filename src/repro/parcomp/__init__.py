"""Virtual message-passing cluster.

The paper runs on a 16-node Beowulf cluster via MPI.  This subpackage
provides the substitution documented in DESIGN.md: ranks execute as
threads over an in-process fabric exposing an mpi4py-style API
(``send/recv/bcast/scatter/gather/allgather/alltoall/barrier/reduce``),
every payload is metered in bytes, and a latency/bandwidth cost model
drives per-rank *logical clocks* so that a run yields both real wall time
and a modeled cluster time (max over ranks of compute + modeled
communication, the coarse-grained model the paper itself uses in its
section-3 analysis).

- :mod:`repro.parcomp.cost` -- cost model, payload sizing, event ledger.
- :mod:`repro.parcomp.comm` -- the fabric and :class:`VirtualComm`.
- :mod:`repro.parcomp.launcher` -- the threaded SPMD launcher.
"""

from repro.parcomp.cost import CommEvent, CostModel, TimingLedger, estimate_nbytes
from repro.parcomp.comm import Fabric, SpmdAbort, VirtualComm
from repro.parcomp.launcher import SpmdResult, run_spmd
from repro.parcomp.trace import render_timeline, render_traffic, traffic_matrix

__all__ = [
    "CommEvent",
    "CostModel",
    "Fabric",
    "SpmdAbort",
    "SpmdResult",
    "TimingLedger",
    "VirtualComm",
    "estimate_nbytes",
    "render_timeline",
    "render_traffic",
    "run_spmd",
    "traffic_matrix",
]

"""Content-addressed, disk-backed alignment result store.

:class:`ResultStore` is a :class:`~repro.engine.service.CacheBackend`
whose entries live on disk, so cached alignments survive process
restarts.  Entries written by one process are readable by any other
pointed at the same directory (content addressing + atomic publishes
make concurrent reads/writes safe); note however that the LRU *index*
and byte-budget accounting are per-process -- N concurrent writer
processes can jointly hold up to N times the budget until one of them
rescans.  Give each long-lived writer its own directory, or accept the
slack.  Design points:

- **Content addressing.**  Keys are
  :meth:`~repro.engine.api.AlignRequest.content_hash` digests; the entry
  for key ``ab12...`` lives at ``<root>/ab/ab12....json``.  Because the
  key is derived from the full request content, a path never has to be
  invalidated -- a different request is a different path.
- **Atomic writes.**  Entries are written to a temp file in the target
  directory and published with :func:`os.replace`, so readers (including
  other processes) never observe a half-written entry.
- **Corruption tolerance.**  A truncated, garbled or wrong-schema entry
  is treated as a miss: the file is deleted and the store keeps serving.
  A cache never has to be right, only never wrong -- failure mode is
  recomputation, not corruption propagation.
- **LRU-on-disk eviction.**  The store tracks per-entry sizes and evicts
  least-recently-used entries once the total exceeds ``byte_budget``.
  Recency is persisted via file mtimes (refreshed on every hit), so the
  LRU order survives restarts too.
"""

from __future__ import annotations

import json
import os
import string
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.engine.api import AlignResult

__all__ = ["ResultStore", "DEFAULT_BYTE_BUDGET"]

#: Default on-disk budget: generous for alignments (a cached result is a
#: few KB to a few hundred KB of JSON).
DEFAULT_BYTE_BUDGET = 256 * 1024 * 1024

_HEX = set(string.hexdigits.lower())


class ResultStore:
    """Disk-backed content-addressed store of :class:`AlignResult`\\ s.

    Parameters
    ----------
    root:
        Directory holding the store (created if missing).
    byte_budget:
        Total on-disk byte budget; least-recently-used entries are
        evicted once it is exceeded.  ``None`` disables eviction.

    Usage::

        store = ResultStore("/var/cache/repro-results", byte_budget=1 << 28)
        svc = AlignmentService(cache=store)   # results now survive restarts
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        byte_budget: Optional[int] = DEFAULT_BYTE_BUDGET,
    ) -> None:
        if byte_budget is not None and byte_budget < 1:
            raise ValueError("byte_budget must be >= 1 (or None)")
        self.root = Path(root)
        self.byte_budget = byte_budget
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._corrupt_dropped = 0
        self.root.mkdir(parents=True, exist_ok=True)
        #: key -> entry size in bytes, least-recently-used first.
        self._index: "OrderedDict[str, int]" = OrderedDict()
        #: Running sum of _index values (puts are hot-path; no O(n) sums).
        self._total_bytes = 0
        self._scan()

    # -- layout ------------------------------------------------------------

    @staticmethod
    def _is_key(key: str) -> bool:
        return len(key) >= 4 and set(key) <= _HEX

    def _path(self, key: str) -> Path:
        if not self._is_key(key):
            raise ValueError(f"not a content-hash key: {key!r}")
        return self.root / key[:2] / f"{key}.json"

    #: A temp file older than this is from a crashed writer, not a live
    #: one in another process, and may be reclaimed at scan time.
    _TMP_STALE_S = 300.0

    def _scan(self) -> None:
        """Rebuild the LRU index from disk (oldest mtime first)."""
        now = time.time()
        entries = []
        for sub in self.root.iterdir():
            if not (sub.is_dir() and len(sub.name) == 2):
                continue
            for path in sub.iterdir():
                if path.suffix != ".json" or not self._is_key(path.stem):
                    # Foreign files are never indexed (eviction could not
                    # address them) and never deleted.  Only our own
                    # staging files (.tmp) are reclaimed, and only when
                    # *stale* -- a fresh one may be a concurrent writer in
                    # another process mid-publish.
                    try:
                        if (path.suffix == ".tmp"
                                and now - path.stat().st_mtime
                                > self._TMP_STALE_S):
                            path.unlink(missing_ok=True)
                    except OSError:
                        pass
                    continue
                try:
                    st = path.stat()
                except OSError:
                    continue
                entries.append((st.st_mtime, path.stem, st.st_size))
        entries.sort()
        self._index = OrderedDict((key, size) for _, key, size in entries)
        self._total_bytes = sum(self._index.values())

    # -- CacheBackend ------------------------------------------------------

    def get(self, key: str) -> Optional[AlignResult]:
        # File I/O runs outside the lock (reads of content-addressed,
        # atomically-published files are safe concurrently); the lock
        # only guards the index and counters.
        path = self._path(key)
        try:
            payload = path.read_bytes()
            result = AlignResult.from_dict(json.loads(payload))
        except FileNotFoundError:
            with self._lock:
                self._misses += 1
                self._drop_from_index(key)
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Truncated write, garbled JSON, or schema drift: drop the
            # entry and miss -- the service recomputes and re-stores.
            path.unlink(missing_ok=True)
            with self._lock:
                self._corrupt_dropped += 1
                self._misses += 1
                self._drop_from_index(key)
            return None
        with self._lock:
            self._hits += 1
            self._set_index(key, len(payload))
        try:
            os.utime(path)  # persist recency for post-restart LRU order
        except OSError:
            pass
        return result

    def put(self, key: str, result: AlignResult) -> None:
        path = self._path(key)
        payload = json.dumps(result.to_dict(), sort_keys=True).encode("utf-8")
        # Stage and publish outside the lock: the temp name is unique per
        # process+thread and os.replace is atomic, so writers never need
        # to serialize on the disk.
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.{os.getpid()}.{threading.get_ident()}.tmp"
        try:
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        with self._lock:
            self._set_index(key, len(payload))
            victims = self._pop_over_budget()
        for victim in victims:
            self._path(victim).unlink(missing_ok=True)

    def clear(self) -> None:
        with self._lock:
            for key in list(self._index):
                self._path(key).unlink(missing_ok=True)
            self._index.clear()
            self._total_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    # -- index accounting (lock held) --------------------------------------

    def _set_index(self, key: str, size: int) -> None:
        self._total_bytes += size - self._index.get(key, 0)
        self._index[key] = size
        self._index.move_to_end(key)

    def _drop_from_index(self, key: str) -> None:
        size = self._index.pop(key, None)
        if size is not None:
            self._total_bytes -= size

    # -- eviction ----------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._total_bytes

    def _pop_over_budget(self) -> list:
        """Drop over-budget index entries (lock held); return their keys.

        The caller unlinks the files outside the lock.
        """
        if self.byte_budget is None:
            return []
        victims = []
        # Never evict the newest entry: a single oversized result simply
        # overflows the budget until something replaces it.
        while self._total_bytes > self.byte_budget and len(self._index) > 1:
            key, size = self._index.popitem(last=False)
            self._total_bytes -= size
            victims.append(key)
            self._evictions += 1
        return victims

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "backend": "disk",
                "root": str(self.root),
                "entries": len(self._index),
                "bytes": self._total_bytes,
                "byte_budget": self.byte_budget,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "corrupt_dropped": self._corrupt_dropped,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultStore(root={str(self.root)!r}, entries={len(self)}, "
            f"bytes={self.total_bytes})"
        )

"""HTTP frontend for the alignment gateway (stdlib ``http.server``).

A thin JSON-over-HTTP surface on top of
:class:`~repro.serve.gateway.AlignmentGateway`:

- ``POST /align`` -- submit one alignment.  The body is either a bare
  :meth:`AlignRequest.to_dict` payload, or a wrapper::

      {"request": {...}, "client_id": "alice",
       "priority": "high", "wait": false}

  With ``wait`` true (the default) the response is ``200`` with
  ``{"ticket": ..., "result": ...}``; with ``wait`` false it is ``202``
  with the ticket only, and the client polls the job endpoint.

  Distributed requests choose their execution backend like any other
  knob: ``{"request": {"engine": "sample-align-d", "engine_kwargs":
  {"backend": "processes"}, ...}}`` (or ``config.backend`` inside a full
  config dict).  Requests that stay silent inherit the gateway's
  ``default_backend`` (the ``repro serve --backend`` flag).
- ``GET /jobs/<ticket_id>`` -- ticket status, plus the result once done.
- ``GET /healthz`` -- liveness (``{"status": "ok"}``).
- ``GET /metrics`` -- :meth:`AlignmentGateway.metrics` as JSON;
  ``GET /metrics?format=prom`` -- the same surface (plus the process-wide
  obs registry and the latency histogram as a quantile summary) in
  Prometheus text format 0.0.4, served with the scrape content type.

Access logging goes through the ``repro.serve.access`` logger as one
structured line per request (method, path, status, duration_ms);
``quiet=True`` (the default) suppresses it entirely.  Nothing falls
through to the stdlib's raw stderr ``log_message``.

Admission refusals map to the HTTP codes a load balancer expects:
``429`` for a rate-limited client, ``503`` (with ``Retry-After``) for a
full admission queue, ``400`` for malformed requests.

This is deliberately stdlib-only (``ThreadingHTTPServer``): the point is
a servable process and a load-testable surface, not a production ASGI
stack.  One thread per connection pairs fine with the gateway, whose own
bounded queue -- not the socket listener -- is the real admission point.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.engine.api import AlignRequest
from repro.obs.metrics import MetricsSnapshot, registry
from repro.obs.prom import PROM_CONTENT_TYPE, render_prometheus
from repro.serve.gateway import (
    AlignmentGateway,
    QueueFullError,
    RateLimitedError,
)

__all__ = ["GatewayHTTPServer", "create_server", "serve_in_thread"]

#: One structured line per request; configure/capture like any stdlib
#: logger.  Suppressed entirely when the server runs quiet.
access_log = logging.getLogger("repro.serve.access")


def _ensure_access_log_output() -> None:
    """Make a loud server visible without app-level logging config.

    ``logging.lastResort`` only passes WARNING+, so INFO access lines
    from an unconfigured process would vanish silently -- worse than
    the raw ``log_message`` this module replaces.  A level is set only
    if unset and a handler only if none exists anywhere up the chain,
    so any real logging configuration wins.
    """
    if access_log.level == logging.NOTSET:
        access_log.setLevel(logging.INFO)
    if not access_log.hasHandlers():
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(message)s")
        )
        access_log.addHandler(handler)

#: Reject bodies over this size outright (an alignment request of
#: reasonable size is far smaller; this bounds memory per connection).
MAX_BODY_BYTES = 64 * 1024 * 1024


class GatewayHTTPServer(ThreadingHTTPServer):
    """A ``ThreadingHTTPServer`` bound to one gateway."""

    daemon_threads = True

    def __init__(self, address, gateway: AlignmentGateway, quiet: bool = True):
        self.gateway = gateway
        self.quiet = quiet
        if not quiet:
            _ensure_access_log_output()
        super().__init__(address, _Handler)

    @property
    def port(self) -> int:
        return self.server_address[1]


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def handle_one_request(self) -> None:
        # Stamped before parsing so duration_ms covers the whole request,
        # not just the handler body.
        self._t0 = time.perf_counter()
        super().handle_one_request()

    def log_request(self, code="-", size="-") -> None:
        """One structured access-log line per request (never raw stderr)."""
        if getattr(self.server, "quiet", True):
            return
        duration_ms = (
            time.perf_counter() - getattr(self, "_t0", time.perf_counter())
        ) * 1e3
        access_log.info(
            "method=%s path=%s status=%s duration_ms=%.2f",
            getattr(self, "command", None) or "-",
            getattr(self, "path", None) or "-",
            getattr(code, "value", code),
            duration_ms,
        )

    def log_message(self, fmt: str, *args) -> None:
        # log_error and any other stdlib fall-throughs land here: route
        # them to the structured logger instead of bare stderr.
        if not getattr(self.server, "quiet", True):
            access_log.info("%s", fmt % args)

    def _send_json(
        self,
        code: int,
        payload: Dict[str, Any],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ValueError("empty request body")
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body over {MAX_BODY_BYTES} bytes")
        data = json.loads(self.rfile.read(length))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        parts = urlsplit(self.path)
        path = parts.path.rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(200, {"status": "ok"})
        elif path == "/metrics":
            fmt = (parse_qs(parts.query).get("format") or ["json"])[0]
            if fmt == "prom":
                self._send_prometheus()
            else:
                self._send_json(200, self.server.gateway.metrics())
        elif path.startswith("/jobs/"):
            self._get_job(path[len("/jobs/"):])
        else:
            self._send_json(404, {"error": f"no such endpoint: {path}"})

    def _send_prometheus(self) -> None:
        """``/metrics?format=prom``: text exposition format 0.0.4."""
        gateway = self.server.gateway
        stats = gateway.metrics()
        # The latency block is served as a proper quantile summary from
        # the histogram snapshot, not as flattened point gauges.
        stats.pop("latency", None)
        snapshot = registry().snapshot().merge(
            MetricsSnapshot(
                {"gateway.latency.seconds": gateway.latency_snapshot()}
            )
        )
        body = render_prometheus(
            snapshot, extra={"gateway": stats}
        ).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", PROM_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/align":
            # Unread body bytes would desync the keep-alive connection.
            self.close_connection = True
            self._send_json(
                404, {"error": f"no such endpoint: {path}"},
                {"Connection": "close"},
            )
            return
        try:
            body = self._read_json_body()
            request_dict = body.get("request", body)
            request = AlignRequest.from_dict(request_dict)
            client_id = str(body.get("client_id", "http"))
            priority = str(body.get("priority", "normal"))
            wait = bool(body.get("wait", True))
            timeout = body.get("timeout")
            if timeout is not None:
                timeout = float(timeout)  # bad values are a 400, not a 500
        except (ValueError, KeyError, TypeError) as exc:
            # The body may be partly or wholly unread (oversized, bad
            # Content-Length): drop the connection after responding or
            # the leftover bytes desync the next keep-alive request.
            self.close_connection = True
            self._send_json(
                400, {"error": f"bad request: {exc}"},
                {"Connection": "close"},
            )
            return
        gateway = self.server.gateway
        try:
            ticket = gateway.submit(request, client_id=client_id, priority=priority)
        except RateLimitedError as exc:
            self._send_json(429, {"error": str(exc)}, {"Retry-After": "1"})
            return
        except QueueFullError as exc:
            self._send_json(503, {"error": str(exc)}, {"Retry-After": "1"})
            return
        except ValueError as exc:  # e.g. unknown priority
            self._send_json(400, {"error": str(exc)})
            return
        except RuntimeError as exc:  # gateway closed: transient, retryable
            self._send_json(503, {"error": str(exc)}, {"Retry-After": "1"})
            return
        if not wait:
            self._send_json(202, {"ticket": ticket.to_dict()})
            return
        try:
            result = ticket.wait(timeout)
        except TimeoutError:
            self._send_json(202, {"ticket": ticket.to_dict()})
            return
        except Exception as exc:
            self._send_json(
                500, {"ticket": ticket.to_dict(), "error": repr(exc)}
            )
            return
        self._send_json(
            200, {"ticket": ticket.to_dict(), "result": result.to_dict()}
        )

    def _get_job(self, ticket_id: str) -> None:
        ticket = self.server.gateway.get_ticket(ticket_id)
        if ticket is None:
            self._send_json(404, {"error": f"unknown ticket: {ticket_id}"})
            return
        payload: Dict[str, Any] = {"ticket": ticket.to_dict()}
        result = ticket.result
        if result is not None:
            payload["result"] = result.to_dict()
        self._send_json(200, payload)


def create_server(
    gateway: AlignmentGateway,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> GatewayHTTPServer:
    """Bind (``port=0`` picks an ephemeral port) without starting to serve."""
    return GatewayHTTPServer((host, port), gateway, quiet=quiet)


def serve_in_thread(
    gateway: AlignmentGateway,
    host: str = "127.0.0.1",
    port: int = 0,
) -> Tuple[GatewayHTTPServer, threading.Thread]:
    """Start a server on a daemon thread; returns ``(server, thread)``.

    Shut down with ``server.shutdown(); thread.join()`` (the gateway is
    left to its owner).
    """
    server = create_server(gateway, host, port)
    thread = threading.Thread(
        # Tight poll so shutdown() returns promptly (tests start and stop
        # many servers).
        target=lambda: server.serve_forever(poll_interval=0.05),
        name="gateway-httpd",
        daemon=True,
    )
    thread.start()
    return server, thread

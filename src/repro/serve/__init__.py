"""The serving layer: gateway, disk store, HTTP frontend, traffic gen.

This package turns the engine layer into a *servable system*:

- :mod:`repro.serve.gateway` -- :class:`AlignmentGateway`: bounded
  priority admission, per-client token-bucket rate limiting, and
  cross-client request coalescing over an
  :class:`~repro.engine.service.AlignmentService`.
- :mod:`repro.serve.store` -- :class:`ResultStore`: a content-addressed
  disk-backed cache backend (atomic writes, corruption-tolerant reads,
  LRU-by-bytes eviction) so results survive process restarts.
- :mod:`repro.serve.httpd` -- a stdlib ``ThreadingHTTPServer`` frontend
  (``POST /align``, ``GET /jobs/<id>``, ``/healthz``, ``/metrics``).
- :mod:`repro.serve.workload` -- seeded open/closed-loop traffic
  generation with uniform/zipf/repeat mixes.

Quickstart::

    from repro.engine import AlignmentService
    from repro.serve import AlignmentGateway, ResultStore, run_workload

    service = AlignmentService(cache=ResultStore("/tmp/repro-store"))
    with AlignmentGateway(service, n_workers=4, max_queue=128) as gw:
        report = run_workload(gw)
        print(report["latency"], report["coalesce_hit_rate"])

or, over HTTP: ``python -m repro serve --port 8000`` and
``python -m repro loadtest --requests 500 --clients 8``.
"""

from repro.serve.gateway import (
    PRIORITIES,
    AlignmentGateway,
    GatewayError,
    QueueFullError,
    RateLimitedError,
    Ticket,
    TokenBucket,
)
from repro.serve.httpd import GatewayHTTPServer, create_server, serve_in_thread
from repro.serve.store import ResultStore
from repro.serve.workload import (
    WorkloadConfig,
    build_request_pool,
    mix_indices,
    run_workload,
)

__all__ = [
    "AlignmentGateway",
    "GatewayError",
    "GatewayHTTPServer",
    "PRIORITIES",
    "QueueFullError",
    "RateLimitedError",
    "ResultStore",
    "Ticket",
    "TokenBucket",
    "WorkloadConfig",
    "build_request_pool",
    "create_server",
    "mix_indices",
    "run_workload",
    "serve_in_thread",
]

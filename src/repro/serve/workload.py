"""Seeded synthetic traffic for the alignment gateway.

The ROADMAP's north star is "heavy traffic from millions of users"; this
module is how we manufacture that traffic deterministically.  A workload
is a pool of distinct alignment requests (small rose families from
:mod:`repro.datagen.rose`) plus a *mix* deciding which pool entry each
request hits:

- ``uniform`` -- every entry equally likely (worst case for caches).
- ``zipf``    -- entry ranks weighted ``1/rank**s`` (web-like skew; the
  interesting regime for coalescing and the result store).
- ``repeat``  -- a hot subset gets a fixed fraction of all traffic
  (the ISSUE's "repeat-heavy" acceptance mix).

Two driving disciplines:

- **closed loop**: ``n_clients`` threads, each submitting its next
  request only after the previous one finished -- throughput adapts to
  the server (how real SDK users behave).
- **open loop**: Poisson arrivals at ``arrival_rate`` req/s regardless
  of completions -- the discipline that actually exposes queueing and
  admission behaviour (Schroeder et al.'s open-vs-closed distinction).

Everything is seeded: the pool contents, every client's request stream
and the arrival process derive from ``WorkloadConfig.seed``, so a load
test is reproducible down to the request order.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.engine.api import AlignRequest
from repro.obs.metrics import percentile
from repro.obs.tracing import global_records, stage_breakdown, tracing_enabled
from repro.serve.gateway import AlignmentGateway, GatewayError

__all__ = ["WorkloadConfig", "build_request_pool", "mix_indices", "run_workload"]

_MIXES = ("uniform", "zipf", "repeat")
_MODES = ("closed", "open")


@dataclass(frozen=True)
class WorkloadConfig:
    """One reproducible traffic scenario.

    Attributes
    ----------
    n_requests:
        Total requests to issue (across all clients).
    n_clients:
        Concurrent clients (closed loop) / distinct client ids (open
        loop -- arrivals round-robin over them).
    mode:
        ``"closed"`` or ``"open"``.
    mix:
        ``"uniform"``, ``"zipf"`` or ``"repeat"``.
    pool_size:
        Number of distinct requests in the pool.
    zipf_s:
        Skew exponent for the zipf mix (>1 = heavier head).
    hot_fraction / repeat_fraction:
        For the repeat mix: the first ``max(1, hot_fraction*pool)``
        entries receive ``repeat_fraction`` of all traffic.
    arrival_rate:
        Mean arrivals/second for the open loop (Poisson process).
    engine:
        Engine name for every pooled request (a fast sequential engine
        by default; the point is serving behaviour, not kernel speed).
    family_size / family_length / relatedness:
        Rose-family shape of each pooled request.
    seed:
        Master seed for pool generation, mixes and arrivals.
    wait_timeout:
        Per-request wait bound before it is counted as an error.
    """

    n_requests: int = 200
    n_clients: int = 4
    mode: str = "closed"
    mix: str = "zipf"
    pool_size: int = 24
    zipf_s: float = 1.1
    hot_fraction: float = 0.1
    repeat_fraction: float = 0.8
    arrival_rate: float = 200.0
    engine: str = "center-star"
    family_size: int = 6
    family_length: int = 48
    relatedness: float = 250.0
    seed: int = 0
    wait_timeout: float = 120.0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}")
        if self.mix not in _MIXES:
            raise ValueError(f"mix must be one of {_MIXES}")
        if self.n_requests < 1 or self.n_clients < 1 or self.pool_size < 1:
            raise ValueError("n_requests, n_clients and pool_size must be >= 1")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be > 0")


def build_request_pool(config: WorkloadConfig) -> List[AlignRequest]:
    """The ``pool_size`` distinct requests this workload draws from."""
    from repro.datagen.rose import generate_family

    pool = []
    for i in range(config.pool_size):
        fam = generate_family(
            n_sequences=config.family_size,
            mean_length=config.family_length,
            relatedness=config.relatedness,
            seed=config.seed * 100003 + i,
            track_alignment=False,
        )
        pool.append(
            AlignRequest(sequences=tuple(fam.sequences), engine=config.engine)
        )
    return pool


def mix_indices(config: WorkloadConfig, n: int, stream_seed: int) -> List[int]:
    """``n`` pool indices drawn from the configured mix (deterministic)."""
    # Seed via a string: str seeding is deterministic across processes
    # (tuple seeding would go through randomized hash()).
    rng = random.Random(f"{config.seed}:{config.mix}:{stream_seed}")
    size = config.pool_size
    if config.mix == "uniform":
        return [rng.randrange(size) for _ in range(n)]
    if config.mix == "zipf":
        weights = [1.0 / (rank + 1) ** config.zipf_s for rank in range(size)]
        return rng.choices(range(size), weights=weights, k=n)
    # repeat: a hot subset takes repeat_fraction of the traffic.
    n_hot = max(1, int(config.hot_fraction * size))
    out = []
    for _ in range(n):
        if rng.random() < config.repeat_fraction:
            out.append(rng.randrange(n_hot))
        else:
            out.append(rng.randrange(size))
    return out


@dataclass
class _ClientLog:
    latencies: List[float] = field(default_factory=list)
    ok: int = 0
    errors: int = 0
    rejected: int = 0
    retries: int = 0


def _drive_closed_client(
    gateway: AlignmentGateway,
    pool: List[AlignRequest],
    indices: List[int],
    client_id: str,
    config: WorkloadConfig,
    barrier: threading.Barrier,
    log: _ClientLog,
) -> None:
    barrier.wait(timeout=60)
    for idx in indices:
        request = pool[idx]
        t0 = time.monotonic()
        ticket = None
        hard_error = False
        for attempt in range(1000):
            try:
                ticket = gateway.submit(request, client_id=client_id)
                break
            except GatewayError:
                # Closed-loop clients back off and retry on admission
                # refusal -- the load is self-limiting, not lossy.
                log.retries += 1
                time.sleep(0.002 * (attempt + 1))
            except Exception:
                # Anything else (gateway closed, bad config) must count
                # against the report, not kill the client thread and
                # silently shrink the totals.
                hard_error = True
                break
        if ticket is None:
            if hard_error:
                log.errors += 1
            else:
                log.rejected += 1
            continue
        try:
            ticket.wait(config.wait_timeout)
            log.ok += 1
            log.latencies.append(time.monotonic() - t0)
        except Exception:
            log.errors += 1


def _run_closed(gateway: AlignmentGateway, pool, config) -> List[_ClientLog]:
    base = config.n_requests // config.n_clients
    extra = config.n_requests % config.n_clients
    logs = [_ClientLog() for _ in range(config.n_clients)]
    barrier = threading.Barrier(config.n_clients)
    threads = []
    for c in range(config.n_clients):
        indices = mix_indices(config, base + (1 if c < extra else 0), c)
        threads.append(
            threading.Thread(
                target=_drive_closed_client,
                args=(gateway, pool, indices, f"client-{c}", config,
                      barrier, logs[c]),
                name=f"load-client-{c}",
            )
        )
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return logs


def _run_open(gateway: AlignmentGateway, pool, config) -> List[_ClientLog]:
    """Poisson arrivals; waits for all issued tickets at the end."""
    rng = random.Random(f"{config.seed}:arrivals")
    indices = mix_indices(config, config.n_requests, stream_seed=-1)
    log = _ClientLog()
    issued = []  # (ticket, t_submitted)
    for i, idx in enumerate(indices):
        time.sleep(rng.expovariate(config.arrival_rate))
        client_id = f"client-{i % config.n_clients}"
        try:
            issued.append(
                (gateway.submit(pool[idx], client_id=client_id),
                 time.monotonic())
            )
        except GatewayError:
            # Open-loop traffic does not retry: a refusal under overload
            # is the admission controller doing its job, and is reported
            # separately from errors.
            log.rejected += 1
        except Exception:
            log.errors += 1  # gateway closed / misconfigured: a real error
    for ticket, t0 in issued:
        try:
            ticket.wait(config.wait_timeout)
            log.ok += 1
            # Latency ends when the computation completed, not when this
            # sequential drain loop happened to observe it -- otherwise
            # early completions inherit the rest of the arrival schedule.
            # (Clamped: a coalescing submit can attach in the instant
            # between the worker stamping completion and unpublishing.)
            log.latencies.append(max(0.0, ticket.completed_at - t0))
        except Exception:
            log.errors += 1
    return [log]


def run_workload(
    gateway: AlignmentGateway,
    config: Optional[WorkloadConfig] = None,
    pool: Optional[List[AlignRequest]] = None,
) -> Dict[str, Any]:
    """Drive ``gateway`` with the configured traffic; returns the report.

    The report is JSON-able: the config echo, request counts (ok /
    errors / admission rejections / closed-loop retries), wall-clock
    throughput, client-observed latency percentiles, and the gateway's
    own :meth:`~repro.serve.gateway.AlignmentGateway.metrics` snapshot.
    With tracing enabled, a ``stage_breakdown`` section folds the spans
    the run produced (gateway admission, service jobs, engine stages)
    into a nested per-stage duration tree; the spans themselves stay in
    the process-wide buffer for whoever exports the full trace
    (``loadtest --trace-out``).
    """
    config = config or WorkloadConfig()
    pool = pool if pool is not None else build_request_pool(config)
    if len(pool) < config.pool_size:
        raise ValueError("pool smaller than config.pool_size")
    traced = tracing_enabled()
    # Gateway workers record into the process-wide buffer (they are not
    # this thread); note what was already there so the breakdown covers
    # only this run's spans -- without draining, so the caller can still
    # export the full trace afterwards.
    pre_ids = {r.span_id for r in global_records()} if traced else set()
    t0 = time.monotonic()
    if config.mode == "closed":
        logs = _run_closed(gateway, pool, config)
    else:
        logs = _run_open(gateway, pool, config)
    elapsed = time.monotonic() - t0
    latencies = sorted(lat for log in logs for lat in log.latencies)
    ok = sum(log.ok for log in logs)
    metrics = gateway.metrics()
    coalesce_den = metrics["admitted"] + metrics["coalesced"]
    report = {
        "config": asdict(config),
        "elapsed_s": elapsed,
        "throughput_rps": ok / elapsed if elapsed > 0 else None,
        "requests": {
            "issued": config.n_requests,
            "ok": ok,
            "errors": sum(log.errors for log in logs),
            "rejected": sum(log.rejected for log in logs),
            "retries": sum(log.retries for log in logs),
        },
        "latency": {
            "count": len(latencies),
            "p50_s": percentile(latencies, 0.50),
            "p90_s": percentile(latencies, 0.90),
            "p99_s": percentile(latencies, 0.99),
            "max_s": latencies[-1] if latencies else None,
        },
        "coalesce_hit_rate": (
            metrics["coalesced"] / coalesce_den if coalesce_den else 0.0
        ),
        "gateway": metrics,
    }
    if traced:
        run_spans = [r for r in global_records() if r.span_id not in pre_ids]
        report["stage_breakdown"] = stage_breakdown(run_spans)
        report["trace_spans"] = len(run_spans)
    return report

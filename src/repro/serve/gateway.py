"""The alignment-serving gateway: admission, coalescing, dispatch.

:class:`AlignmentGateway` is what sits between untrusted traffic and an
:class:`~repro.engine.service.AlignmentService`.  It adds the three
things a raw service lacks under load:

- **Admission control.**  A *bounded* priority queue: when the backlog
  is full, new work is rejected immediately (:class:`QueueFullError`)
  instead of growing an unbounded queue until latency is unbounded too.
  Within the bound, ``high`` priority requests dispatch before
  ``normal`` before ``low`` (FIFO within a class).
- **Per-client rate limiting.**  A token bucket per ``client_id``
  (``rate`` tokens/second, ``burst`` capacity); a client over its budget
  gets :class:`RateLimitedError` without consuming queue space.
- **Cross-client request coalescing.**  Requests are keyed by
  :meth:`~repro.engine.api.AlignRequest.content_hash`; a request
  identical to one already admitted (from *any* client) attaches to the
  in-flight computation instead of queueing a duplicate.  Together with
  the service's result cache this means each distinct alignment runs at
  most once no matter how many clients ask for it.

Every accepted request returns a :class:`Ticket` -- waitable, pollable
by id (the HTTP frontend's ``GET /jobs/<id>``), and carrying queue and
latency metadata.  :meth:`AlignmentGateway.metrics` snapshots the whole
serving surface: queue depth, admission counters, coalesce hits, latency
percentiles, and the service/cache-backend stats underneath.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence as TSequence

from repro.engine.api import AlignRequest, AlignResult
from repro.engine.service import AlignmentService
from repro.obs.metrics import Histogram, HistogramSnapshot
from repro.obs.metrics import percentile as _obs_percentile
from repro.obs.tracing import span

__all__ = [
    "AlignmentGateway",
    "GatewayError",
    "QueueFullError",
    "RateLimitedError",
    "Ticket",
    "TokenBucket",
    "PRIORITIES",
    "percentile",
]

#: Priority classes, low number dispatches first.
PRIORITIES: Dict[str, int] = {"high": 0, "normal": 1, "low": 2}


class GatewayError(RuntimeError):
    """A request was refused at admission (not an engine failure)."""


class QueueFullError(GatewayError):
    """The bounded admission queue is at capacity; retry later."""


class RateLimitedError(GatewayError):
    """The client exhausted its token bucket; slow down."""


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Not thread-safe on its own; the gateway serializes access.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be > 0")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = time.monotonic()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        now = time.monotonic()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False


def percentile(sorted_values: TSequence[float], q: float) -> Optional[float]:
    """Nearest-rank percentile of an ascending sequence (None if empty).

    Kept for API compatibility; the one implementation now lives in
    :func:`repro.obs.metrics.percentile` (the gateway's own latency
    percentiles come from a bounded obs histogram instead of an exact
    window).
    """
    return _obs_percentile(sorted_values, q)


class _Entry:
    """One admitted computation, shared by every coalesced ticket."""

    __slots__ = ("key", "request", "priority", "enqueued", "completed",
                 "done", "result", "error")

    def __init__(self, key: str, request: AlignRequest, priority: int) -> None:
        self.key = key
        self.request = request
        self.priority = priority
        self.enqueued = time.monotonic()
        self.completed: Optional[float] = None
        self.done = threading.Event()
        self.result: Optional[AlignResult] = None
        self.error: Optional[BaseException] = None


@dataclass
class Ticket:
    """Handle for one client request admitted by the gateway."""

    ticket_id: str
    client_id: str
    priority: str
    coalesced: bool  #: attached to an already in-flight identical request
    request_hash: str
    _entry: _Entry = field(repr=False)

    @property
    def done(self) -> bool:
        return self._entry.done.is_set()

    @property
    def status(self) -> str:
        if not self.done:
            return "pending"
        return "failed" if self._entry.error is not None else "done"

    @property
    def result(self) -> Optional[AlignResult]:
        """The result if finished successfully (non-blocking); else None."""
        return self._entry.result if self.done else None

    @property
    def completed_at(self) -> Optional[float]:
        """``time.monotonic()`` at computation completion (None before).

        This is when the *work* finished, independent of when any waiter
        got around to observing it -- the right end-point for measuring
        a request's latency from its submission time.
        """
        return self._entry.completed

    def wait(self, timeout: Optional[float] = None) -> AlignResult:
        """Block until the computation finishes; re-raise its error."""
        if not self._entry.done.wait(timeout):
            raise TimeoutError(
                f"ticket {self.ticket_id} still pending after {timeout}s"
            )
        if self._entry.error is not None:
            raise self._entry.error
        assert self._entry.result is not None
        return self._entry.result

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able ticket metadata (the ``GET /jobs/<id>`` body)."""
        return {
            "ticket_id": self.ticket_id,
            "client_id": self.client_id,
            "priority": self.priority,
            "coalesced": self.coalesced,
            "request_hash": self.request_hash,
            "status": self.status,
            "error": None if self._entry.error is None
            else repr(self._entry.error),
        }


#: Queue item priority used for shutdown sentinels (after every real class).
_SENTINEL_PRIORITY = max(PRIORITIES.values()) + 1


class AlignmentGateway:
    """Bounded-admission serving frontend over an :class:`AlignmentService`.

    Parameters
    ----------
    service:
        The execution layer.  When omitted, the gateway creates (and
        owns) an ``AlignmentService(max_workers=n_workers)``; a service
        passed in explicitly is also closed by :meth:`close` unless
        ``close_service=False``.
    n_workers:
        Dispatcher threads draining the admission queue.
    max_queue:
        Admission-queue bound; the depth at which new non-coalescing
        requests are rejected with :class:`QueueFullError`.
    rate / burst:
        Per-client token-bucket parameters (tokens/second and bucket
        capacity; burst defaults to ``max(1, 2*rate)`` and must be at
        least 1, the cost of one request).  ``rate=None`` disables rate
        limiting.
    latency_window:
        Number of most-recent request latencies kept for the percentile
        metrics.
    max_tickets:
        Bound on the ticket lookup table (oldest tickets are forgotten
        first; their computations are unaffected).
    default_backend:
        Execution backend applied to distributed requests that do not
        choose one themselves (no ``config`` and no ``backend`` engine
        kwarg) -- how ``repro serve --backend processes`` puts every
        plain Sample-Align-D request on real cores.  Applied at
        admission, *before* hashing, so coalescing and the result cache
        key see the effective request.
    default_distance / default_distance_backend:
        Distance-stage defaults for engines whose registry entry
        advertises the :mod:`repro.distance` seam (the guide-tree
        baselines and ``parallel-baseline``): requests that do not pick
        their own ``distance`` / ``distance_backend`` engine kwarg get
        these folded in -- how ``repro serve --distance-backend
        processes`` puts every baseline's all-pairs stage on real
        cores.  Also applied pre-hash, so coalescing and caching key on
        the effective distance configuration.
    default_distance_out / default_distance_store_dir:
        Distance-stage result placement defaults, folded the same way:
        ``default_distance_out="memmap"`` (with an optional store
        directory) routes every unopinionated guide-tree baseline's
        all-pairs stage through the disk-backed tile store
        (:mod:`repro.distance.tilestore`), bounding the gateway's
        resident memory at genome scale.  Applied pre-hash like the
        other distance defaults.
    default_tree / default_tree_backend:
        Tree-stage defaults, symmetric with the distance pair: engines
        whose registry entry advertises the :mod:`repro.tree` seam get
        an unopinionated request's ``tree`` (guide-tree builder) /
        ``tree_backend`` (DAG-scheduled merge placement) folded in
        pre-hash -- how ``repro serve --tree-backend processes`` puts
        every baseline's progressive merge on real cores while keeping
        coalescing and the result cache keyed on the effective request.
    pool:
        A configured :class:`~repro.pool.WorkerPool` to serve
        ``backend="pool"`` requests from.  Whenever any of the three
        backend defaults above is ``"pool"`` (or ``pool`` is passed
        explicitly), the gateway owns one worker pool for its lifetime:
        it constructs the pool at startup (warm workers before the first
        request), installs it as the process default so every engine /
        distance / tree dispatch underneath lands on it, exposes its
        live counters under ``metrics()["pool"]``, and -- if it created
        the pool itself -- closes it on :meth:`close`.  A supervised
        pool survives worker crashes (automatic respawn), so a long-
        running gateway never degrades to cold starts.
    """

    def __init__(
        self,
        service: Optional[AlignmentService] = None,
        *,
        n_workers: int = 4,
        max_queue: int = 256,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        latency_window: int = 4096,
        max_tickets: int = 4096,
        close_service: bool = True,
        default_backend: Optional[str] = None,
        default_distance: Optional[str] = None,
        default_distance_backend: Optional[str] = None,
        default_distance_out: Optional[str] = None,
        default_distance_store_dir: Optional[str] = None,
        default_tree: Optional[str] = None,
        default_tree_backend: Optional[str] = None,
        pool: Optional[Any] = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if default_backend is not None:
            from repro.parcomp.backends import available_backends

            if default_backend.lower() not in available_backends():
                raise ValueError(
                    f"default_backend {default_backend!r} is not a "
                    f"registered execution backend; available: "
                    f"{available_backends()}"
                )
        if default_distance is not None:
            from repro.distance import available_estimators

            if str(default_distance).lower() not in available_estimators():
                raise ValueError(
                    f"default_distance {default_distance!r} is not a "
                    f"registered distance estimator; available: "
                    f"{available_estimators()}"
                )
        if default_distance_backend is not None:
            from repro.distance import validate_backend_name

            validate_backend_name(
                default_distance_backend, "default_distance_backend"
            )
        if default_distance_out is not None:
            from repro.distance import OUT_MODES

            if str(default_distance_out).lower() not in OUT_MODES:
                raise ValueError(
                    f"default_distance_out {default_distance_out!r} is not "
                    f"a distance out mode; one of {list(OUT_MODES)}"
                )
        if (
            default_distance_store_dir is not None
            and str(default_distance_out).lower() != "memmap"
        ):
            raise ValueError(
                "default_distance_store_dir requires "
                "default_distance_out='memmap'"
            )
        if default_tree is not None:
            from repro.tree import available_builders

            if str(default_tree).lower() not in available_builders():
                raise ValueError(
                    f"default_tree {default_tree!r} is not a registered "
                    f"tree builder; available: {available_builders()}"
                )
        if default_tree_backend is not None:
            from repro.distance import validate_backend_name

            validate_backend_name(
                default_tree_backend, "default_tree_backend"
            )
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if rate is not None and rate <= 0:
            raise ValueError("rate must be > 0 (use rate=None for unlimited)")
        if rate is None and burst is not None:
            raise ValueError("burst without rate has no effect; set rate too")
        # A request costs 1 token, so capacity below 1 would lock every
        # client out forever (low rates would otherwise default under it).
        resolved_burst = burst if burst is not None else max(1.0, (rate or 0) * 2)
        if rate is not None and resolved_burst < 1:
            raise ValueError("burst must be >= 1 (a request costs one token)")
        self._service = service or AlignmentService(max_workers=n_workers)
        self._close_service = close_service
        self._queue: "queue.PriorityQueue" = queue.PriorityQueue(maxsize=max_queue)
        self._order = itertools.count()  # FIFO tie-break within a priority
        self._lock = threading.Lock()
        self._inflight: Dict[str, _Entry] = {}
        self._tickets: "OrderedDict[str, Ticket]" = OrderedDict()
        self._max_tickets = max_tickets
        self._rate = rate
        self._burst = resolved_burst
        # Store the lowered registry names: the folded engine_kwargs feed
        # content hashes, so 'KTuple' and 'ktuple' must not split
        # cache/coalescing keys.
        self._default_backend = (
            None if default_backend is None else default_backend.lower()
        )
        self._default_distance = (
            None if default_distance is None else default_distance.lower()
        )
        self._default_distance_backend = (
            None
            if default_distance_backend is None
            else default_distance_backend.lower()
        )
        self._default_distance_out = (
            None
            if default_distance_out is None
            else default_distance_out.lower()
        )
        # A path, not a registry name: never lowered.
        self._default_distance_store_dir = default_distance_store_dir
        self._default_tree = (
            None if default_tree is None else default_tree.lower()
        )
        self._default_tree_backend = (
            None
            if default_tree_backend is None
            else default_tree_backend.lower()
        )
        # LRU-bounded: client_id comes off the wire, so an unbounded
        # table is a memory leak under adversarial ids.  (Per-client
        # limiting with open identities can always be dodged by minting
        # fresh ids; the bound keeps that costing the attacker churn,
        # not the server memory.)
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._max_buckets = max(max_tickets, 1024)
        # Request latencies go into a bounded log-bucketed histogram:
        # O(1) per observation and O(buckets) per snapshot, versus the
        # old deque that was sorted in full on every metrics() call and
        # forgot everything older than latency_window requests.  The
        # parameter is kept for API compatibility but no longer bounds
        # what the percentiles see.
        self._latencies = Histogram()
        self._counters = {
            "admitted": 0,
            "coalesced": 0,
            "rejected_queue_full": 0,
            "rejected_rate_limited": 0,
            "completed": 0,
            "failed": 0,
        }
        self._closed = False
        # Gateway-owned worker pool: one persistent pool for the whole
        # serving lifetime whenever any default backend is "pool" (or a
        # pool was handed in).  Installed as the process default so the
        # engine/distance/tree layers underneath dispatch onto it, and
        # warmed now so the first request finds running workers.
        self._pool: Optional[Any] = None
        self._own_pool = False
        self._prev_default_pool: Optional[Any] = None
        wants_pool = pool is not None or "pool" in {
            self._default_backend,
            self._default_distance_backend,
            self._default_tree_backend,
        }
        if wants_pool:
            from repro.pool import WorkerPool, set_default_pool

            self._pool = pool if pool is not None else WorkerPool()
            self._own_pool = pool is None
            self._prev_default_pool = set_default_pool(self._pool)
            self._pool.warm_up()
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"gateway-worker-{i}", daemon=True
            )
            for i in range(n_workers)
        ]
        for t in self._workers:
            t.start()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drain the queue, stop the workers, close the owned service."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._workers:
            # Sentinels sort after every real priority, so queued work
            # drains before the workers exit.
            self._queue.put((_SENTINEL_PRIORITY, next(self._order), None))
        for t in self._workers:
            t.join()
        if self._close_service:
            self._service.close()
        if self._pool is not None:
            from repro.pool import set_default_pool

            set_default_pool(self._prev_default_pool)
            if self._own_pool:
                self._pool.close()

    def __enter__(self) -> "AlignmentGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def service(self) -> AlignmentService:
        return self._service

    @property
    def pool(self) -> Optional[Any]:
        """The gateway-owned worker pool (None unless serving ``pool``)."""
        return self._pool

    # -- admission ---------------------------------------------------------

    def submit(
        self,
        request: AlignRequest,
        client_id: str = "default",
        priority: str = "normal",
    ) -> Ticket:
        """Admit one request; returns a waitable :class:`Ticket`.

        Raises :class:`RateLimitedError` or :class:`QueueFullError` when
        the request is refused (nothing was enqueued), and
        :class:`RuntimeError` after :meth:`close`.

        A coalesced request keeps the priority of the entry it joins; it
        consumes a rate-limit token but no queue slot.
        """
        try:
            prio = PRIORITIES[priority]
        except KeyError:
            raise ValueError(
                f"unknown priority {priority!r} (one of {sorted(PRIORITIES)})"
            ) from None
        request = self._effective_request(request)
        key = request.content_hash()
        with span(
            "gateway.admit", client_id=client_id, priority=priority
        ) as admit_span, self._lock:
            if self._closed:
                raise RuntimeError("gateway is closed")
            entry = self._inflight.get(key)
            coalesced = entry is not None
            # Queue-capacity check precedes the token debit: a 503 must
            # not also drain the client's bucket, or a polite client
            # retrying a full queue gets escalated to 429.  Safe order:
            # only workers (who never add) touch the queue without this
            # lock, so it cannot fill between here and put_nowait.
            if not coalesced and self._queue.full():
                self._counters["rejected_queue_full"] += 1
                raise QueueFullError(
                    f"admission queue full ({self._queue.maxsize})"
                )
            if self._rate is not None:
                bucket = self._buckets.get(client_id)
                if bucket is None:
                    bucket = self._buckets[client_id] = TokenBucket(
                        self._rate, self._burst
                    )
                    while len(self._buckets) > self._max_buckets:
                        self._buckets.popitem(last=False)
                self._buckets.move_to_end(client_id)
                if not bucket.try_acquire():
                    self._counters["rejected_rate_limited"] += 1
                    raise RateLimitedError(
                        f"client {client_id!r} exceeded {self._rate:g} req/s"
                    )
            if entry is None:
                entry = _Entry(key, request, prio)
                self._queue.put_nowait((prio, next(self._order), entry))
                self._inflight[key] = entry
                self._counters["admitted"] += 1
            else:
                self._counters["coalesced"] += 1
            admit_span.set(coalesced=coalesced, request_hash=key[:12])
            ticket = Ticket(
                ticket_id=uuid.uuid4().hex[:16],
                client_id=client_id,
                priority=priority,
                coalesced=coalesced,
                request_hash=key,
                _entry=entry,
            )
            self._tickets[ticket.ticket_id] = ticket
            while len(self._tickets) > self._max_tickets:
                self._tickets.popitem(last=False)
        return ticket

    def _effective_request(self, request: AlignRequest) -> AlignRequest:
        """Fold the gateway's defaults into an unopinionated request.

        Three independent rewrites, all pre-hash so coalescing and the
        result cache key on the *effective* request:

        - execution backend: distributed engines with no explicit choice
          (no config, no ``backend`` engine kwarg);
        - distance stage: engines whose registry entry advertises the
          :mod:`repro.distance` seam and that did not pick their own
          ``distance`` / ``distance_backend``;
        - tree stage: likewise for the :mod:`repro.tree` seam
          (``tree`` / ``tree_backend``).
        """
        updates: Dict[str, Any] = {}
        if (
            self._default_backend is not None
            and request.engine.lower() == "sample-align-d"
            and request.config is None
            and "backend" not in request.engine_kwargs
        ):
            updates["backend"] = self._default_backend
        if (
            self._default_distance is not None
            or self._default_distance_backend is not None
            or self._default_distance_out is not None
        ):
            from repro.engine.registry import engine_distance_options

            supported = engine_distance_options(request.engine)
            if (
                self._default_distance is not None
                and "distance" in supported
                and "distance" not in request.engine_kwargs
            ):
                updates["distance"] = self._default_distance
            if (
                self._default_distance_backend is not None
                and "distance_backend" in supported
                and "distance_backend" not in request.engine_kwargs
            ):
                updates["distance_backend"] = self._default_distance_backend
            if (
                self._default_distance_out is not None
                and "distance_out" in supported
                and "distance_out" not in request.engine_kwargs
            ):
                updates["distance_out"] = self._default_distance_out
                if (
                    self._default_distance_store_dir is not None
                    and "distance_store_dir" in supported
                    and "distance_store_dir" not in request.engine_kwargs
                ):
                    updates["distance_store_dir"] = (
                        self._default_distance_store_dir
                    )
        if (
            self._default_tree is not None
            or self._default_tree_backend is not None
        ):
            from repro.engine.registry import engine_tree_options

            supported = engine_tree_options(request.engine)
            if (
                self._default_tree is not None
                and "tree" in supported
                and "tree" not in request.engine_kwargs
            ):
                updates["tree"] = self._default_tree
            if (
                self._default_tree_backend is not None
                and "tree_backend" in supported
                and "tree_backend" not in request.engine_kwargs
            ):
                updates["tree_backend"] = self._default_tree_backend
        if not updates:
            return request
        import dataclasses

        return dataclasses.replace(
            request,
            engine_kwargs={**request.engine_kwargs, **updates},
        )

    def run(
        self,
        request: AlignRequest,
        client_id: str = "default",
        priority: str = "normal",
        timeout: Optional[float] = None,
    ) -> AlignResult:
        """Admit and wait (the synchronous convenience path)."""
        return self.submit(request, client_id, priority).wait(timeout)

    def get_ticket(self, ticket_id: str) -> Optional[Ticket]:
        """Look a ticket up by id (``None`` when unknown or forgotten)."""
        with self._lock:
            return self._tickets.get(ticket_id)

    # -- dispatch ----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            _, _, entry = self._queue.get()
            if entry is None:  # shutdown sentinel
                self._queue.task_done()
                return
            try:
                with span(
                    "gateway.compute",
                    request_hash=entry.key[:12],
                    engine=entry.request.engine,
                ):
                    entry.result = self._service.run(entry.request)
            except BaseException as exc:
                entry.error = exc
            finally:
                entry.completed = time.monotonic()
                latency = entry.completed - entry.enqueued
                self._latencies.observe(latency)
                with self._lock:
                    self._inflight.pop(entry.key, None)
                    if entry.error is None:
                        self._counters["completed"] += 1
                    else:
                        self._counters["failed"] += 1
                entry.done.set()
                self._queue.task_done()

    # -- introspection -----------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """JSON-able snapshot of the serving surface (the ``/metrics`` body)."""
        with self._lock:
            counters = dict(self._counters)
            inflight = len(self._inflight)
        lat = self._latencies.snapshot()
        out: Dict[str, Any] = dict(counters)
        out["queue_depth"] = self._queue.qsize()
        out["inflight"] = inflight
        out["default_backend"] = self._default_backend
        out["default_distance"] = self._default_distance
        out["default_distance_backend"] = self._default_distance_backend
        out["default_tree"] = self._default_tree
        out["default_tree_backend"] = self._default_tree_backend
        out["latency"] = {
            "count": lat.count,
            "p50_s": lat.quantile(0.50),
            "p90_s": lat.quantile(0.90),
            "p95_s": lat.quantile(0.95),
            "p99_s": lat.quantile(0.99),
            "max_s": lat.vmax,
            "mean_s": lat.mean,
        }
        out["service"] = self._service.stats
        if self._pool is not None:
            out["pool"] = self._pool.stats()
        return out

    def latency_snapshot(self) -> HistogramSnapshot:
        """The mergeable request-latency histogram (for Prometheus
        exposition and fleet-level aggregation)."""
        return self._latencies.snapshot()

"""A BAliBASE-like categorised quality benchmark.

The paper's section 5: *"Currently we are working on accessing the
quality of the method using other standard benchmarks such as BAliBASE,
SMART and SABmark."*  This module implements that future work with
synthetic analogues of BAliBASE's reference categories, each stressing a
distinct failure mode of alignment heuristics:

=====  ==========================================================
RV11   equidistant sequences, low identity (the hard core)
RV12   equidistant sequences, medium identity
RV20   a tight family plus highly divergent "orphan" sequences
RV30   several divergent subfamilies (exactly Sample-Align-D's
       bucketed regime)
RV40   long terminal extensions on a subset of members
RV50   large internal insertions in a subset of members
=====  ==========================================================

Every case carries its evolutionary reference alignment; scoring uses
the same Q/TC machinery as the PREFAB-like benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence as TSequence

import numpy as np

from repro.datagen.rose import BACKGROUND, RoseParams, generate_family
from repro.seq.alignment import Alignment
from repro.seq.alphabet import PROTEIN
from repro.seq.sequence import Sequence, SequenceSet

__all__ = ["BalibaseCase", "CATEGORIES", "make_balibase_like"]

#: The implemented category codes.
CATEGORIES = ("RV11", "RV12", "RV20", "RV30", "RV40", "RV50")


@dataclass
class BalibaseCase:
    """One categorised benchmark case with its reference alignment."""

    name: str
    category: str
    sequences: SequenceSet
    reference: Alignment

    def __repr__(self) -> str:
        return (
            f"BalibaseCase({self.name!r}, {self.category}, "
            f"n={len(self.sequences)})"
        )


def _family(n, length, relatedness, seed, prefix) -> tuple:
    fam = generate_family(
        n_sequences=n, mean_length=length, relatedness=relatedness,
        seed=seed, id_prefix=prefix,
    )
    return fam.sequences, fam.reference


def _pad_alignment_columns(
    reference: Alignment, row_extras: Dict[str, tuple]
) -> Alignment:
    """Extend reference rows with terminal extension columns.

    ``row_extras[rid] = (prefix, suffix)`` residue strings; extension
    residues occupy fresh columns (gaps in every other row), preserving
    the evolutionary reference semantics (extensions are unalignable).
    """
    n_pre = max((len(p) for p, _s in row_extras.values()), default=0)
    n_suf = max((len(s) for _p, s in row_extras.values()), default=0)
    gap = reference.alphabet.gap_code
    rows = []
    for rid in reference.ids:
        pre, suf = row_extras.get(rid, ("", ""))
        left = np.full(n_pre, gap, dtype=np.uint8)
        if pre:
            left[n_pre - len(pre):] = reference.alphabet.encode(pre)
        right = np.full(n_suf, gap, dtype=np.uint8)
        if suf:
            right[: len(suf)] = reference.alphabet.encode(suf)
        rows.append(np.concatenate([left, reference.row(rid), right]))
    return Alignment(reference.ids, np.vstack(rows), reference.alphabet)


def _insert_block(
    reference: Alignment, rid: str, position_col: int, insert: str
) -> Alignment:
    """Insert a private residue block into one row (new gap columns for
    everyone else)."""
    gap = reference.alphabet.gap_code
    block = np.full((reference.n_rows, len(insert)), gap, dtype=np.uint8)
    row_idx = reference.ids.index(rid)
    block[row_idx] = reference.alphabet.encode(insert)
    mat = np.concatenate(
        [
            reference.matrix[:, :position_col],
            block,
            reference.matrix[:, position_col:],
        ],
        axis=1,
    )
    return Alignment(reference.ids, mat, reference.alphabet)


def _make_case(category: str, index: int, rng: np.random.Generator) -> BalibaseCase:
    seed = int(rng.integers(2**31))
    prefix = f"{category.lower()}_{index:02d}_"
    if category == "RV11":
        seqs, ref = _family(10, 110, 900, seed, prefix)
    elif category == "RV12":
        seqs, ref = _family(10, 110, 450, seed, prefix)
    elif category == "RV20":
        # Tight family + two orphans evolved much further from the root.
        core, ref = _family(10, 110, 250, seed, prefix)
        orphan_fam = generate_family(
            n_sequences=12, mean_length=110, relatedness=1100,
            seed=seed, id_prefix=prefix,
        )
        # Reuse the deep generation: take the two deepest leaves as
        # orphans, the rest as core (same homology column space).
        depths = orphan_fam.leaf_depths
        order = np.argsort(depths)
        keep = list(order[:10]) + list(order[-2:])
        ids = [orphan_fam.sequences[int(i)].id for i in keep]
        ref = orphan_fam.reference.select_rows(ids).drop_all_gap_columns()
        seqs = SequenceSet([orphan_fam.sequences[int(i)] for i in keep])
    elif category == "RV30":
        # Divergent subfamilies: two families joined by a deep ancestor
        # (generated as one family with large inter-subtree distance).
        fam = generate_family(
            n_sequences=12, mean_length=110, relatedness=800,
            seed=seed, id_prefix=prefix,
        )
        seqs, ref = fam.sequences, fam.reference
    elif category == "RV40":
        seqs0, ref = _family(10, 90, 350, seed, prefix)
        sub_rng = np.random.default_rng(seed + 1)
        extras: Dict[str, tuple] = {}
        new_seqs: List[Sequence] = []
        for k, s in enumerate(seqs0):
            if k % 3 == 0:
                ext_len = int(sub_rng.integers(20, 45))
                ext = "".join(
                    PROTEIN.symbols[c]
                    for c in sub_rng.choice(21, ext_len, p=BACKGROUND)
                )
                if k % 2 == 0:
                    extras[s.id] = (ext, "")
                    new_seqs.append(Sequence(s.id, ext + s.residues))
                else:
                    extras[s.id] = ("", ext)
                    new_seqs.append(Sequence(s.id, s.residues + ext))
            else:
                new_seqs.append(s)
        ref = _pad_alignment_columns(ref, extras)
        seqs = SequenceSet(new_seqs)
    elif category == "RV50":
        seqs0, ref = _family(10, 90, 350, seed, prefix)
        sub_rng = np.random.default_rng(seed + 2)
        for k, rid in enumerate(list(ref.ids)):
            if k % 4 == 0:
                ins_len = int(sub_rng.integers(15, 35))
                ins = "".join(
                    PROTEIN.symbols[c]
                    for c in sub_rng.choice(21, ins_len, p=BACKGROUND)
                )
                pos = int(sub_rng.integers(10, ref.n_columns - 10))
                ref = _insert_block(ref, rid, pos, ins)
        seqs = ref.ungapped()
    else:
        raise ValueError(f"unknown category {category!r}")

    # Present sequences in shuffled order.
    order = rng.permutation(len(seqs))
    shuffled = SequenceSet([seqs[int(i)] for i in order])
    return BalibaseCase(
        name=f"{category}_{index:02d}",
        category=category,
        sequences=shuffled,
        reference=ref,
    )


def make_balibase_like(
    cases_per_category: int = 2,
    categories: TSequence[str] = CATEGORIES,
    seed: int = 0,
) -> List[BalibaseCase]:
    """Build the categorised benchmark (reference alignments included)."""
    bad = [c for c in categories if c not in CATEGORIES]
    if bad:
        raise ValueError(f"unknown categories: {bad}")
    if cases_per_category < 1:
        raise ValueError("cases_per_category must be >= 1")
    rng = np.random.default_rng(seed)
    out: List[BalibaseCase] = []
    for cat in categories:
        for i in range(cases_per_category):
            out.append(_make_case(cat, i, rng))
    return out

"""A synthetic archaeal-like proteome.

Stands in for the *Methanosarcina acetivorans* protein set of the paper's
Fig. 6 experiment (2000 randomly selected proteins, average length 316).
The real genome is not bundled here, so we synthesise a proteome with the
properties the experiment exercises:

- family structure: proteins fall into paralogous families of Zipf-ish
  sizes, each family evolved rose-style from its own ancestor;
- composition diversity: every family draws its residue background from a
  Dirichlet around the global background, spreading the k-mer ranks the
  way phylogenetically diverse real proteomes do;
- length distribution centred on the paper's 316 residues.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.datagen.rose import BACKGROUND, RoseParams, generate_family
from repro.seq.sequence import Sequence, SequenceSet

__all__ = ["SyntheticGenome"]


class SyntheticGenome:
    """Deterministic synthetic proteome.

    Parameters
    ----------
    n_proteins:
        Total proteins to generate (the paper's pool is the ~4500-protein
        M. acetivorans annotation; default keeps tests fast).
    mean_length:
        Mean protein length (paper: 316).
    seed:
        Master seed; the same seed always produces the same proteome.
    mean_family_size:
        Average paralog-family size; family sizes follow a truncated
        geometric around this mean.
    relatedness_range:
        Per-family rose relatedness is drawn uniformly from this range
        (mixing tight and loose families).
    """

    def __init__(
        self,
        n_proteins: int = 2000,
        mean_length: int = 316,
        seed: int = 0,
        mean_family_size: float = 12.0,
        relatedness_range: tuple = (300.0, 900.0),
    ) -> None:
        if n_proteins < 1:
            raise ValueError("n_proteins must be >= 1")
        self.n_proteins = n_proteins
        self.mean_length = mean_length
        self.seed = seed
        self.mean_family_size = mean_family_size
        self.relatedness_range = relatedness_range
        self._proteins: SequenceSet | None = None
        self._family_of: List[int] = []

    # -- generation -----------------------------------------------------------

    def _generate(self) -> None:
        rng = np.random.default_rng(self.seed)
        lo, hi = self.relatedness_range
        proteins: List[Sequence] = []
        family_of: List[int] = []
        fam = 0
        while len(proteins) < self.n_proteins:
            size = 1 + int(rng.geometric(1.0 / self.mean_family_size))
            size = min(size, self.n_proteins - len(proteins))
            # Family-specific composition: Dirichlet around the global
            # background (concentration 60 keeps it protein-like).
            bg = rng.dirichlet(BACKGROUND * 60.0 + 1e-3)
            length = max(40, int(rng.normal(self.mean_length, 60)))
            params = RoseParams(
                n_sequences=size,
                mean_length=length,
                relatedness=float(rng.uniform(lo, hi)),
                background=bg,
            )
            family = generate_family(
                seed=int(rng.integers(2**31)),
                track_alignment=False,
                id_prefix=f"MA_F{fam:04d}_",
                params=params,
            )
            proteins.extend(family.sequences)
            family_of.extend([fam] * len(family.sequences))
            fam += 1
        self._proteins = SequenceSet(proteins[: self.n_proteins])
        self._family_of = family_of[: self.n_proteins]

    @property
    def proteins(self) -> SequenceSet:
        """All proteins (generated lazily, cached)."""
        if self._proteins is None:
            self._generate()
        return self._proteins

    @property
    def n_families(self) -> int:
        if self._proteins is None:
            self._generate()
        return len(set(self._family_of))

    def family_labels(self) -> np.ndarray:
        """Family index of each protein (generation order)."""
        if self._proteins is None:
            self._generate()
        return np.asarray(self._family_of, dtype=np.int64)

    def sample_proteins(self, n: int, seed: int = 0) -> SequenceSet:
        """``n`` proteins sampled without replacement (the paper's
        "randomly selected 2000 sequences")."""
        rng = np.random.default_rng(seed)
        return self.proteins.sample(n, rng)

    def __repr__(self) -> str:
        return (
            f"SyntheticGenome(n_proteins={self.n_proteins}, "
            f"mean_length={self.mean_length}, seed={self.seed})"
        )

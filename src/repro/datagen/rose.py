"""Rose-style sequence family generation (Stoye, Evers & Meyer 1998).

A root protein sequence evolves along a random binary tree under a
substitution process with per-site rate variation plus insertions and
deletions.  The generator mirrors the rose inputs the paper uses (number
of sequences, average length, *relatedness*) and additionally retains the
**true alignment**: every residue carries an immutable homology key
(a `fractions.Fraction`, so "insert between" is exact order maintenance),
and the reference MSA is the union of leaf keys.  That true alignment is
what the PREFAB-like quality benchmark scores against.

Relatedness follows rose's convention of an expected *pairwise* PAM
distance between leaves: ``relatedness = 800`` (the paper's setting) means
two leaves are separated by ~8 substitution events per site in total --
highly divergent but still homologous, especially at low-rate (conserved)
sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional, Sequence as TSequence, Tuple

import numpy as np

from repro.seq.alignment import Alignment
from repro.seq.alphabet import PROTEIN, Alphabet
from repro.seq.sequence import Sequence, SequenceSet

__all__ = ["RoseParams", "SequenceFamily", "generate_family"]

#: Robinson-Robinson amino-acid background frequencies in PROTEIN order
#: (ARNDCQEGHILKMFPSTWYV; X gets ~0).
BACKGROUND = np.array(
    [
        0.0781, 0.0512, 0.0448, 0.0536, 0.0192, 0.0426, 0.0624, 0.0738,
        0.0219, 0.0514, 0.0901, 0.0574, 0.0225, 0.0385, 0.0520, 0.0711,
        0.0584, 0.0132, 0.0321, 0.0646, 0.0011,
    ]
)
BACKGROUND = BACKGROUND / BACKGROUND.sum()


@dataclass(frozen=True)
class RoseParams:
    """Generation parameters (mirroring the rose generator's inputs).

    Attributes
    ----------
    n_sequences:
        Number of leaves (sequences) to generate.
    mean_length:
        Root sequence length (leaf lengths fluctuate around it via indels).
    relatedness:
        Expected pairwise PAM distance between leaves (rose convention;
        the paper uses 800).  Root-to-leaf substitutions/site is
        ``relatedness / 200``.
    indel_rate:
        Expected indel *events* per site per substitution/site of branch
        length.
    mean_indel_length:
        Mean of the geometric indel length distribution.
    gamma_shape:
        Shape of the per-site rate Gamma (mean 1); small values create
        strongly conserved positions next to fast-evolving ones.
    background:
        Residue composition (defaults to Robinson-Robinson); families with
        distinct compositions produce the k-mer rank diversity the paper's
        experiments rely on.
    """

    n_sequences: int = 20
    mean_length: int = 300
    relatedness: float = 800.0
    indel_rate: float = 0.02
    mean_indel_length: float = 2.2
    gamma_shape: float = 0.6
    background: np.ndarray = field(default_factory=lambda: BACKGROUND.copy())

    def __post_init__(self) -> None:
        if self.n_sequences < 1:
            raise ValueError("n_sequences must be >= 1")
        if self.mean_length < 2:
            raise ValueError("mean_length must be >= 2")
        if self.relatedness < 0:
            raise ValueError("relatedness must be non-negative")
        bg = np.asarray(self.background, dtype=np.float64)
        if bg.shape != (PROTEIN.size,) or bg.min() < 0 or bg.sum() <= 0:
            raise ValueError("background must be a non-negative 21-vector")
        object.__setattr__(self, "background", bg / bg.sum())


@dataclass
class SequenceFamily:
    """A generated family: unaligned leaves plus (optionally) the truth.

    Attributes
    ----------
    sequences:
        The unaligned leaf sequences (generation order).
    reference:
        The true alignment (None when ``track_alignment=False``).
    params:
        Generation parameters.
    leaf_depths:
        Root-to-leaf branch lengths in substitutions/site.
    """

    sequences: SequenceSet
    reference: Optional[Alignment]
    params: RoseParams
    leaf_depths: np.ndarray

    def __repr__(self) -> str:
        return (
            f"SequenceFamily(n={len(self.sequences)}, "
            f"mean_len={self.sequences.mean_length():.1f}, "
            f"relatedness={self.params.relatedness})"
        )


class _Node:
    __slots__ = ("children", "branch")

    def __init__(self, branch: float) -> None:
        self.children: List[_Node] = []
        self.branch = branch


def _random_tree(n_leaves: int, rng: np.random.Generator) -> Tuple[_Node, int]:
    """Random binary tree via repeated random lineage splitting.

    Branch lengths start as Exp(1) draws; the caller rescales them so the
    mean root-to-leaf depth hits the target.
    Returns (root, n_leaves).
    """
    root = _Node(0.0)
    leaves = [root]
    while len(leaves) < n_leaves:
        idx = int(rng.integers(len(leaves)))
        node = leaves.pop(idx)
        a = _Node(float(rng.exponential(1.0)))
        b = _Node(float(rng.exponential(1.0)))
        node.children = [a, b]
        leaves.extend([a, b])
    return root, n_leaves


def _leaf_depths(root: _Node) -> List[float]:
    depths: List[float] = []

    def walk(node: _Node, acc: float) -> None:
        if not node.children:
            depths.append(acc)
            return
        for c in node.children:
            walk(c, acc + c.branch)

    walk(root, 0.0)
    return depths


def _scale_branches(root: _Node, factor: float) -> None:
    stack = [root]
    while stack:
        node = stack.pop()
        node.branch *= factor
        stack.extend(node.children)


def _evolve_branch(
    codes: np.ndarray,
    keys: Optional[List[Fraction]],
    rates: np.ndarray,
    branch: float,
    params: RoseParams,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, Optional[List[Fraction]], np.ndarray]:
    """Evolve one branch: substitutions, then indel events."""
    # Substitutions: per-site probability 1 - exp(-branch * rate).
    if branch > 0 and codes.size:
        p = 1.0 - np.exp(-branch * rates)
        hit = rng.random(codes.size) < p
        n_hit = int(hit.sum())
        if n_hit:
            codes = codes.copy()
            codes[hit] = rng.choice(
                PROTEIN.size, size=n_hit, p=params.background
            ).astype(np.uint8)

    # Indels: Poisson number of events, geometric lengths.
    lam = params.indel_rate * branch * max(codes.size, 1)
    n_events = int(rng.poisson(lam))
    for _ in range(n_events):
        length = min(int(rng.geometric(1.0 / params.mean_indel_length)), 20)
        if codes.size == 0 or (rng.random() < 0.5 and codes.size > length + 2):
            # Deletion (skipped if the sequence would get too short).
            if codes.size > length + 2:
                start = int(rng.integers(0, codes.size - length))
                sel = np.ones(codes.size, dtype=bool)
                sel[start : start + length] = False
                codes = codes[sel]
                if keys is not None:
                    del keys[start : start + length]
                rates = rates[sel]
        else:
            # Insertion at a random boundary.
            pos = int(rng.integers(0, codes.size + 1))
            new_codes = rng.choice(
                PROTEIN.size, size=length, p=params.background
            ).astype(np.uint8)
            new_rates = rng.gamma(params.gamma_shape, 1.0 / params.gamma_shape, length)
            codes = np.concatenate([codes[:pos], new_codes, codes[pos:]])
            rates = np.concatenate([rates[:pos], new_rates, rates[pos:]])
            if keys is not None:
                left = keys[pos - 1] if pos > 0 else Fraction(-1)
                right = keys[pos] if pos < len(keys) else (
                    keys[-1] + 2 if keys else Fraction(1)
                )
                step = (right - left) / (length + 1)
                inserted = [left + step * (t + 1) for t in range(length)]
                keys[pos:pos] = inserted
    return codes, keys, rates


def generate_family(
    n_sequences: int = 20,
    mean_length: int = 300,
    relatedness: float = 800.0,
    seed: int | None = None,
    track_alignment: bool = True,
    id_prefix: str = "seq",
    params: RoseParams | None = None,
) -> SequenceFamily:
    """Generate a homologous protein family rose-style.

    Either pass individual knobs or a full :class:`RoseParams` via
    ``params`` (which then wins).  ``track_alignment=False`` skips the
    homology bookkeeping for large timing workloads.
    """
    if params is None:
        params = RoseParams(
            n_sequences=n_sequences,
            mean_length=mean_length,
            relatedness=relatedness,
        )
    rng = np.random.default_rng(seed)

    root, n = _random_tree(params.n_sequences, rng)
    depths = _leaf_depths(root)
    target_depth = params.relatedness / 200.0  # pairwise PAM -> root-leaf subs/site
    mean_depth = float(np.mean(depths)) if depths and np.mean(depths) > 0 else 1.0
    if params.n_sequences > 1 and target_depth > 0:
        _scale_branches(root, target_depth / mean_depth)
    elif target_depth == 0:
        _scale_branches(root, 0.0)

    # Root sequence + per-site rates.
    L = params.mean_length
    root_codes = rng.choice(PROTEIN.size, size=L, p=params.background).astype(
        np.uint8
    )
    root_rates = rng.gamma(params.gamma_shape, 1.0 / params.gamma_shape, L)
    root_keys = [Fraction(i) for i in range(L)] if track_alignment else None

    leaves: List[Tuple[np.ndarray, Optional[List[Fraction]], float]] = []

    def walk(
        node: _Node,
        codes: np.ndarray,
        keys: Optional[List[Fraction]],
        rates: np.ndarray,
        depth: float,
    ) -> None:
        if not node.children:
            leaves.append((codes, keys, depth))
            return
        for child in node.children:
            c_codes, c_keys, c_rates = _evolve_branch(
                codes,
                list(keys) if keys is not None else None,
                rates,
                child.branch,
                params,
                rng,
            )
            walk(child, c_codes, c_keys, c_rates, depth + child.branch)

    walk(root, root_codes, root_keys, root_rates, 0.0)

    width = max(len(str(len(leaves))), 3)
    ids = [f"{id_prefix}{i:0{width}d}" for i in range(len(leaves))]
    seqs = SequenceSet(
        Sequence(ids[i], PROTEIN.decode(codes), PROTEIN)
        for i, (codes, _k, _d) in enumerate(leaves)
    )

    reference = None
    if track_alignment:
        all_keys = sorted({k for _c, keys, _d in leaves for k in keys})
        col_of = {k: c for c, k in enumerate(all_keys)}
        mat = np.full(
            (len(leaves), len(all_keys)), PROTEIN.gap_code, dtype=np.uint8
        )
        for r, (codes, keys, _d) in enumerate(leaves):
            cols = np.fromiter(
                (col_of[k] for k in keys), dtype=np.int64, count=len(keys)
            )
            mat[r, cols] = codes
        reference = Alignment(ids, mat, PROTEIN)

    return SequenceFamily(
        sequences=seqs,
        reference=reference,
        params=params,
        leaf_depths=np.array([d for _c, _k, d in leaves]),
    )

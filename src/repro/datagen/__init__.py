"""Synthetic data generation.

- :mod:`repro.datagen.rose` -- Rose-style sequence-family evolution along a
  random tree (substitutions with per-site rate variation + indels), with
  exact true-alignment tracking; the paper's synthetic workloads (section
  4) are generated this way with ``relatedness=800``.
- :mod:`repro.datagen.genome` -- a synthetic archaeal-like proteome
  standing in for the *Methanosarcina acetivorans* dataset.
- :mod:`repro.datagen.prefab` -- a PREFAB-like quality benchmark: many
  small sets of varying divergence with trusted reference alignments.
"""

from repro.datagen.rose import RoseParams, SequenceFamily, generate_family
from repro.datagen.genome import SyntheticGenome
from repro.datagen.prefab import PrefabCase, make_prefab_like
from repro.datagen.balibase import BalibaseCase, CATEGORIES, make_balibase_like

__all__ = [
    "BalibaseCase",
    "CATEGORIES",
    "PrefabCase",
    "RoseParams",
    "SequenceFamily",
    "SyntheticGenome",
    "generate_family",
    "make_balibase_like",
    "make_prefab_like",
]

"""A PREFAB-like alignment-quality benchmark.

PREFAB (Edgar 2004) consists of ~1000 cases; each case is a *reference
pair* of structurally aligned sequences embedded among up to ~48 homologs.
An aligner aligns the whole set and is scored with Q -- the fraction of
reference-pair residue pairs it reproduces -- on the pair only.

Our stand-in keeps that exact protocol but derives references from
evolutionary ground truth: each case is a rose family (section 2 of
DESIGN.md) whose true alignment is known exactly; the reference pair is
the two most divergent leaves.  A divergence sweep across cases mirrors
PREFAB's "varying divergence" property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence as TSequence, Tuple

import numpy as np

from repro.datagen.rose import RoseParams, generate_family
from repro.seq.alignment import Alignment
from repro.seq.sequence import SequenceSet

__all__ = ["PrefabCase", "make_prefab_like"]


@dataclass
class PrefabCase:
    """One benchmark case.

    Attributes
    ----------
    name:
        Case identifier.
    sequences:
        The unaligned input set (shuffled order).
    reference:
        True alignment of *all* members (rows in generation order).
    ref_pair:
        Ids of the two reference sequences Q is scored on.
    relatedness:
        The divergence knob the case was generated with.
    """

    name: str
    sequences: SequenceSet
    reference: Alignment
    ref_pair: Tuple[str, str]
    relatedness: float

    def reference_pair_alignment(self) -> Alignment:
        """The induced reference alignment of the scored pair only."""
        sub = self.reference.select_rows(list(self.ref_pair))
        return sub.drop_all_gap_columns()


def _most_divergent_pair(reference: Alignment) -> Tuple[str, str]:
    """The two rows sharing the fewest aligned identical residues."""
    gap = reference.alphabet.gap_code
    mat = reference.matrix
    n = mat.shape[0]
    nongap = mat != gap
    worst = (1.1, 0, 1)
    for i in range(n):
        for j in range(i + 1, n):
            both = nongap[i] & nongap[j]
            overlap = int(both.sum())
            if overlap == 0:
                return reference.ids[i], reference.ids[j]
            ident = float((mat[i][both] == mat[j][both]).sum()) / overlap
            if ident < worst[0]:
                worst = (ident, i, j)
    return reference.ids[worst[1]], reference.ids[worst[2]]


def make_prefab_like(
    n_cases: int = 24,
    seqs_per_case: Tuple[int, int] = (20, 30),
    mean_length: int = 120,
    relatedness_values: TSequence[float] = (200.0, 400.0, 600.0, 800.0),
    seed: int = 0,
) -> List[PrefabCase]:
    """Build the benchmark: ``n_cases`` families sweeping divergence.

    Cases cycle through ``relatedness_values`` (PREFAB's divergence
    spread); set sizes are drawn uniformly from ``seqs_per_case``
    (PREFAB's "20-30 sequences per set").
    """
    if n_cases < 1:
        raise ValueError("n_cases must be >= 1")
    lo, hi = seqs_per_case
    if not 2 <= lo <= hi:
        raise ValueError("seqs_per_case must satisfy 2 <= lo <= hi")
    rng = np.random.default_rng(seed)
    cases: List[PrefabCase] = []
    for c in range(n_cases):
        relatedness = float(relatedness_values[c % len(relatedness_values)])
        n_seqs = int(rng.integers(lo, hi + 1))
        fam = generate_family(
            n_sequences=n_seqs,
            mean_length=mean_length,
            relatedness=relatedness,
            seed=int(rng.integers(2**31)),
            track_alignment=True,
            id_prefix=f"case{c:03d}_",
        )
        ref_pair = _most_divergent_pair(fam.reference)
        # Shuffle the presentation order (aligners must not rely on it).
        order = rng.permutation(len(fam.sequences))
        shuffled = SequenceSet([fam.sequences[int(i)] for i in order])
        cases.append(
            PrefabCase(
                name=f"case{c:03d}",
                sequences=shuffled,
                reference=fam.reference,
                ref_pair=ref_pair,
                relatedness=relatedness,
            )
        )
    return cases

"""Sample-Align-D: high-performance multiple sequence alignment.

A from-scratch reproduction of *Sample-Align-D: A High Performance Multiple
Sequence Alignment System using Phylogenetic Sampling and Domain
Decomposition* (Saeed & Khokhar, IPDPS 2008), together with every substrate
the paper depends on:

- :mod:`repro.seq` -- sequences, alphabets, FASTA, substitution matrices.
- :mod:`repro.kmer` -- k-mer counting, Edgar k-mer distance, the k-mer *rank*
  (centralized and sample-globalized variants) that drives the decomposition.
- :mod:`repro.align` -- affine-gap pairwise and profile-profile alignment
  kernels, guide trees, progressive alignment, refinement, consensus.
- :mod:`repro.msa` -- complete sequential MSA systems used as local aligners
  and as Table-2 comparators (MUSCLE-like, CLUSTALW-like, T-Coffee-like,
  MAFFT-like).
- :mod:`repro.parcomp` -- a virtual message-passing cluster with an
  mpi4py-style API, byte metering and an alpha-beta communication cost model.
- :mod:`repro.samplesort` -- regular sampling / PSRS machinery.
- :mod:`repro.core` -- the Sample-Align-D algorithm itself.
- :mod:`repro.datagen` -- Rose-style synthetic families, a synthetic archaeal
  proteome, and a PREFAB-like quality benchmark.
- :mod:`repro.metrics` -- Q/TC/SP scores and rank statistics.
- :mod:`repro.perfmodel` -- the calibrated analytic cluster-performance model
  used to regenerate the paper-scale figures.

Quickstart::

    from repro import sample_align_d
    from repro.datagen import rose

    fam = rose.generate_family(n_sequences=40, mean_length=120, seed=0)
    result = sample_align_d(fam.sequences, n_procs=4, seed=0)
    print(result.alignment.to_fasta()[:400])
"""

from typing import TYPE_CHECKING

__version__ = "1.0.0"

# Public names are imported lazily (PEP 562) so that `import repro` stays
# cheap and subpackages can be used independently.
_LAZY = {
    "Alignment": ("repro.seq.alignment", "Alignment"),
    "MsaResult": ("repro.core.driver", "MsaResult"),
    "SampleAlignDConfig": ("repro.core.config", "SampleAlignDConfig"),
    "Sequence": ("repro.seq.sequence", "Sequence"),
    "SequenceSet": ("repro.seq.sequence", "SequenceSet"),
    "sample_align_d": ("repro.core.driver", "sample_align_d"),
}

__all__ = sorted(_LAZY) + ["__version__"]

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.core.config import SampleAlignDConfig
    from repro.core.driver import MsaResult, sample_align_d
    from repro.seq.alignment import Alignment
    from repro.seq.sequence import Sequence, SequenceSet


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value

"""Sample-Align-D: high-performance multiple sequence alignment.

A from-scratch reproduction of *Sample-Align-D: A High Performance Multiple
Sequence Alignment System using Phylogenetic Sampling and Domain
Decomposition* (Saeed & Khokhar, IPDPS 2008), together with every substrate
the paper depends on:

- :mod:`repro.seq` -- sequences, alphabets, FASTA, substitution matrices.
- :mod:`repro.kmer` -- k-mer counting, Edgar k-mer distance, the k-mer *rank*
  (centralized and sample-globalized variants) that drives the decomposition.
- :mod:`repro.align` -- affine-gap pairwise and profile-profile alignment
  kernels, guide trees, progressive alignment, refinement, consensus.
- :mod:`repro.msa` -- complete sequential MSA systems used as local aligners
  and as Table-2 comparators (MUSCLE-like, CLUSTALW-like, T-Coffee-like,
  MAFFT-like).
- :mod:`repro.distance` -- the unified distance subsystem: pluggable
  pairwise estimators (``ktuple``, ``kmer-fraction``, ``full-dp``,
  ``kband``; shared ``kimura`` post-transform) behind one registry, and
  a tiled :func:`~repro.distance.all_pairs` scheduler that runs the
  condensed upper triangle serially, on the execution backends, or
  cooperatively inside an SPMD program -- byte-identical output either
  way.  Every guide-tree baseline's distance stage routes through it.
- :mod:`repro.tree` -- the unified guide-tree subsystem: pluggable tree
  builders (``upgma``, ``wpgma``, ``nj``, ``single-linkage``) behind one
  registry, :func:`~repro.tree.merge_schedule` (the level/dependency
  scheduler turning any guide tree into a task DAG of independent
  profile merges), and :func:`~repro.tree.progressive_merge` (the DAG
  executor: serial, on the execution backends, or cooperative in-SPMD
  -- byte-identical alignments either way).  Every guide-tree
  baseline's tree stage routes through it.
- :mod:`repro.parcomp` -- a virtual message-passing cluster with an
  mpi4py-style API, byte metering and an alpha-beta communication cost model.
- :mod:`repro.samplesort` -- regular sampling / PSRS machinery.
- :mod:`repro.core` -- the Sample-Align-D algorithm itself.
- :mod:`repro.datagen` -- Rose-style synthetic families, a synthetic archaeal
  proteome, and a PREFAB-like quality benchmark.
- :mod:`repro.metrics` -- Q/TC/SP scores and rank statistics.
- :mod:`repro.perfmodel` -- the calibrated analytic cluster-performance model
  used to regenerate the paper-scale figures.
- :mod:`repro.engine` -- the unified engine API: every backend (sequential
  systems, the parallel baseline, Sample-Align-D) behind one
  :class:`~repro.engine.api.Aligner` protocol, one registry and one
  job-based :class:`~repro.engine.service.AlignmentService`.
- :mod:`repro.serve` -- the serving layer: an admission-controlled,
  request-coalescing :class:`~repro.serve.gateway.AlignmentGateway`, a
  disk-backed content-addressed :class:`~repro.serve.store.ResultStore`,
  an HTTP frontend, and a seeded open/closed-loop traffic generator
  (``python -m repro serve`` / ``python -m repro loadtest``).
- :mod:`repro.obs` -- observability: mergeable metrics (counters, gauges,
  log-bucketed histograms) whose picklable snapshots ride back from every
  execution backend, cross-process spans with per-stage duration
  breakdowns and Chrome-trace export, and Prometheus text exposition
  (``GET /metrics?format=prom``, ``python -m repro trace``).

Quickstart::

    import repro
    from repro.datagen import rose

    fam = rose.generate_family(n_sequences=40, mean_length=120, seed=0)

    # One facade, every engine: distributed or sequential.
    result = repro.align(fam.sequences, engine="sample-align-d",
                         n_procs=4, seed=0)
    print(result.summary())
    print(result.alignment.to_fasta()[:400])
    baseline = repro.align(fam.sequences, engine="muscle")

    # Request/response serving with batching and result caching.
    from repro import AlignRequest, AlignmentService

    with AlignmentService(max_workers=4) as svc:
        req = AlignRequest(tuple(fam.sequences), engine="center-star")
        jobs = svc.run_batch([req, req])     # second job is a cache hit
        print(jobs[1].cache_hit, svc.stats)

The legacy entry points (:func:`repro.sample_align_d`,
:func:`repro.msa.get_aligner`) remain available and resolve through the
same unified registry.
"""

from typing import TYPE_CHECKING

__version__ = "1.0.0"

# Public names are imported lazily (PEP 562) so that `import repro` stays
# cheap and subpackages can be used independently.
_LAZY = {
    "Aligner": ("repro.engine.api", "Aligner"),
    "Alignment": ("repro.seq.alignment", "Alignment"),
    "AlignRequest": ("repro.engine.api", "AlignRequest"),
    "AlignResult": ("repro.engine.api", "AlignResult"),
    "AlignmentGateway": ("repro.serve.gateway", "AlignmentGateway"),
    "AlignmentService": ("repro.engine.service", "AlignmentService"),
    "DistanceConfig": ("repro.distance.config", "DistanceConfig"),
    "DistanceEstimator": ("repro.distance.estimators", "DistanceEstimator"),
    "ResultStore": ("repro.serve.store", "ResultStore"),
    "all_pairs": ("repro.distance.allpairs", "all_pairs"),
    "available_distance_estimators": (
        "repro.distance.estimators",
        "available_estimators",
    ),
    "GuideTree": ("repro.align.guide_tree", "GuideTree"),
    "MergeSchedule": ("repro.tree.schedule", "MergeSchedule"),
    "MsaResult": ("repro.core.driver", "MsaResult"),
    "SampleAlignDConfig": ("repro.core.config", "SampleAlignDConfig"),
    "TreeBuilder": ("repro.tree.builders", "TreeBuilder"),
    "TreeConfig": ("repro.tree.config", "TreeConfig"),
    "available_tree_builders": ("repro.tree.builders", "available_builders"),
    "merge_schedule": ("repro.tree.schedule", "merge_schedule"),
    "progressive_merge": ("repro.tree.merge", "progressive_merge"),
    "Sequence": ("repro.seq.sequence", "Sequence"),
    "SequenceSet": ("repro.seq.sequence", "SequenceSet"),
    # ``repro.align`` is the (callable) kernel subpackage: calling it is
    # the unified alignment facade, importing from it gives the kernels.
    "align": ("repro.align", None),
    "available_engines": ("repro.engine.registry", "available_engines"),
    "disable_tracing": ("repro.obs.tracing", "disable_tracing"),
    "enable_tracing": ("repro.obs.tracing", "enable_tracing"),
    "get_engine": ("repro.engine.registry", "get_engine"),
    "metrics_registry": ("repro.obs.metrics", "registry"),
    "span": ("repro.obs.tracing", "span"),
    "stage_breakdown": ("repro.obs.tracing", "stage_breakdown"),
    "register_engine": ("repro.engine.registry", "register_engine"),
    "sample_align_d": ("repro.core.driver", "sample_align_d"),
    "unregister_engine": ("repro.engine.registry", "unregister_engine"),
}

__all__ = sorted(_LAZY) + ["__version__"]

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.align.guide_tree import GuideTree
    from repro.core.config import SampleAlignDConfig
    from repro.core.driver import MsaResult, sample_align_d
    from repro.tree.builders import (
        TreeBuilder,
        available_builders as available_tree_builders,
    )
    from repro.tree.config import TreeConfig
    from repro.tree.merge import progressive_merge
    from repro.tree.schedule import MergeSchedule, merge_schedule
    from repro.distance.allpairs import all_pairs
    from repro.distance.config import DistanceConfig
    from repro.distance.estimators import (
        DistanceEstimator,
        available_estimators as available_distance_estimators,
    )
    from repro.engine import align
    from repro.engine.api import Aligner, AlignRequest, AlignResult
    from repro.engine.registry import (
        available_engines,
        get_engine,
        register_engine,
        unregister_engine,
    )
    from repro.engine.service import AlignmentService
    from repro.obs.metrics import registry as metrics_registry
    from repro.obs.tracing import (
        disable_tracing,
        enable_tracing,
        span,
        stage_breakdown,
    )
    from repro.seq.alignment import Alignment
    from repro.seq.sequence import Sequence, SequenceSet
    from repro.serve.gateway import AlignmentGateway
    from repro.serve.store import ResultStore


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = module if attr is None else getattr(module, attr)
    globals()[name] = value
    return value

"""Complete PSRS (parallel sorting by regular sampling) over the cluster.

This is the SampleSort of Frazer & McKellar as refined by Shi & Schaeffer
-- the algorithm the paper explicitly models Sample-Align-D on.  Besides
serving as a tested substrate, running it next to the aligner makes the
structural correspondence obvious: Sample-Align-D is PSRS with k-mer ranks
as keys and "align the bucket" in place of "sort the bucket".
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy as np

from repro.parcomp.comm import VirtualComm
from repro.samplesort.regular_sampling import (
    bucket_assignments,
    choose_pivots,
    regular_sample,
)

__all__ = ["parallel_sample_sort"]


def parallel_sample_sort(
    comm: VirtualComm,
    local_values: np.ndarray,
    key: Optional[Callable[[Any], float]] = None,
) -> np.ndarray:
    """Sort values distributed over the communicator's ranks.

    Each rank passes its local block; the return value is the rank's
    bucket of the *globally* sorted order (concatenating the returns in
    rank order yields the fully sorted data).  ``key`` optionally maps
    items to sort keys (default: the items themselves).

    The exact steps of the paper's template:

    1. local sort,
    2. ``p-1`` regular samples per rank, gathered at the root,
    3. pivots at regular positions, broadcast,
    4. bucket partition + all-to-all personalised exchange,
    5. local merge of the received runs.
    """
    p = comm.size
    values = np.asarray(local_values)
    keys = values if key is None else np.asarray([key(v) for v in values])

    order = np.argsort(keys, kind="stable")
    values = values[order]
    keys = keys[order]

    samples = regular_sample(keys, p - 1)
    gathered = comm.gather(samples, root=0)
    pivots = None
    if comm.rank == 0:
        pivots = choose_pivots(np.concatenate(gathered), p)
    pivots = comm.bcast(pivots, root=0)

    buckets = bucket_assignments(keys, pivots)
    outgoing: List[np.ndarray] = [
        values[buckets == b] for b in range(p)
    ]
    incoming = comm.alltoall(outgoing)

    merged = (
        np.concatenate([a for a in incoming if a.size])
        if any(a.size for a in incoming)
        else values[:0]
    )
    if key is None:
        return np.sort(merged, kind="stable")
    merged_keys = np.asarray([key(v) for v in merged])
    return merged[np.argsort(merged_keys, kind="stable")]

"""Sample-sort machinery (regular sampling / PSRS).

The paper's redistribution step is exactly Parallel Sorting by Regular
Sampling (Shi & Schaeffer 1992) applied with k-mer ranks as keys:

- :mod:`repro.samplesort.regular_sampling` -- evenly spaced local samples,
  root-side pivot selection, bucket assignment, and the 2N/p occupancy
  bound the paper leans on in section 3.
- :mod:`repro.samplesort.parallel_sort` -- a complete PSRS sort over the
  virtual cluster (standalone demonstration + tests of the substrate).
"""

from repro.samplesort.regular_sampling import (
    bucket_assignments,
    choose_pivots,
    max_bucket_bound,
    regular_sample,
)
from repro.samplesort.parallel_sort import parallel_sample_sort

__all__ = [
    "bucket_assignments",
    "choose_pivots",
    "max_bucket_bound",
    "parallel_sample_sort",
    "regular_sample",
]

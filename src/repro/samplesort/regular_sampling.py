"""Regular sampling: local samples, pivots, buckets, and the 2N/p bound.

Regular sampling (the paper's section 2.3.2 and 3) was chosen over other
strategies because (1) it is distribution-independent, (2) it yields
near-equal ordered buckets, and (3) no processor receives more than
``2 * ceil(N/p)`` items as long as ``N > p^3`` (Shi & Schaeffer 1992) --
:func:`max_bucket_bound` encodes that guarantee and the test suite
exercises it under adversarial skew.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "regular_sample",
    "choose_pivots",
    "bucket_assignments",
    "max_bucket_bound",
]


def regular_sample(sorted_keys: np.ndarray, k: int) -> np.ndarray:
    """``k`` evenly spaced samples from a locally *sorted* key array.

    Sample ``i`` sits at position ``floor((i+1) * n / (k+1))`` (interior
    positions, never the extremes), the PSRS convention.  If the array has
    fewer than ``k`` elements, every element is returned.
    """
    keys = np.asarray(sorted_keys)
    if k < 0:
        raise ValueError("k must be non-negative")
    n = keys.shape[0]
    if n == 0 or k == 0:
        return keys[:0]
    if n <= k:
        return keys.copy()
    pos = ((np.arange(1, k + 1) * n) // (k + 1)).astype(np.int64)
    pos = np.minimum(pos, n - 1)
    return keys[pos]


def choose_pivots(samples: np.ndarray, p: int) -> np.ndarray:
    """``p - 1`` pivots from the gathered sample multiset.

    The samples (size ~ ``p * (p-1)``) are sorted and pivots are read at
    the regular positions ``p/2 + i*p`` (the paper's ``Y_{p/2},
    Y_{p+p/2}, ...``), clipped into range for small sample sets.
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    samples = np.sort(np.asarray(samples).ravel())
    if p == 1 or samples.size == 0:
        return samples[:0]
    positions = p // 2 + np.arange(p - 1) * p
    if samples.size < p * (p - 1):
        # Degenerate (tiny inputs): space pivots evenly over what we have.
        positions = ((np.arange(1, p) * samples.size) // p).astype(np.int64)
    positions = np.clip(positions, 0, samples.size - 1)
    return samples[positions]


def bucket_assignments(keys: np.ndarray, pivots: np.ndarray) -> np.ndarray:
    """Bucket index of each key: ``bucket i`` holds keys in
    ``(pivot[i-1], pivot[i]]`` (right-closed, so items equal to a pivot go
    to the lower bucket deterministically)."""
    keys = np.asarray(keys)
    pivots = np.asarray(pivots)
    return np.searchsorted(pivots, keys, side="left").astype(np.int64)


def max_bucket_bound(n_total: int, p: int) -> int:
    """The regular-sampling worst-case bucket size, ``2 * ceil(N/p)``.

    Holds for any input distribution provided each processor contributed
    ``p - 1`` regular samples (Shi & Schaeffer 1992, the bound the paper
    quotes as "no processor computes more than 2N/p sequences").
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    return 2 * int(np.ceil(n_total / p))

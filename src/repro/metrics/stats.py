"""Distribution statistics and ASCII rendering for the rank experiments.

Table 1 of the paper summarises the k-mer rank computed on a "globalized"
(sample-based) system against the "centralized" (all-vs-all) reference:
per-estimator max/min/average, plus the *variance with respect to the
centralized ranks* -- the mean squared deviation between the two rank
vectors -- and its square root.  :func:`deviation_stats` reproduces that
table; :func:`histogram_series`/:func:`ascii_histogram` regenerate the
distribution figures (Figs. 1 and 3) in terminal form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence as TSequence, Tuple

import numpy as np

__all__ = [
    "DistributionSummary",
    "summarize",
    "deviation_stats",
    "histogram_series",
    "ascii_histogram",
]


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-ish summary of a 1-D sample."""

    n: int
    minimum: float
    maximum: float
    mean: float
    variance: float
    std: float

    def row(self) -> str:
        return (
            f"n={self.n}  min={self.minimum:.5f}  max={self.maximum:.5f}  "
            f"mean={self.mean:.5f}  var={self.variance:.5f}  std={self.std:.5f}"
        )


def summarize(values: np.ndarray) -> DistributionSummary:
    """Summary statistics of a sample (population variance)."""
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        raise ValueError("cannot summarise an empty sample")
    var = float(v.var())
    return DistributionSummary(
        n=int(v.size),
        minimum=float(v.min()),
        maximum=float(v.max()),
        mean=float(v.mean()),
        variance=var,
        std=float(np.sqrt(var)),
    )


def deviation_stats(
    globalized: np.ndarray, centralized: np.ndarray
) -> Tuple[float, float]:
    """Table 1's "variance/std w.r.t. centralized".

    The mean squared deviation of the globalized ranks around the
    centralized ones, and its square root.
    """
    g = np.asarray(globalized, dtype=np.float64)
    c = np.asarray(centralized, dtype=np.float64)
    if g.shape != c.shape or g.size == 0:
        raise ValueError("rank vectors must be non-empty and equal-shaped")
    var = float(np.mean((g - c) ** 2))
    return var, float(np.sqrt(var))


def histogram_series(
    values: np.ndarray, bins: int = 30, range_: Tuple[float, float] | None = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram counts + bin centers (a printable "figure series")."""
    counts, edges = np.histogram(np.asarray(values, float), bins=bins, range=range_)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return counts, centers


def ascii_histogram(
    values: np.ndarray,
    bins: int = 24,
    width: int = 50,
    label: str = "",
    range_: Tuple[float, float] | None = None,
) -> str:
    """Terminal rendering of a histogram (the bench harness's 'figures')."""
    counts, centers = histogram_series(values, bins=bins, range_=range_)
    peak = max(int(counts.max()), 1)
    lines = [f"-- {label} (n={len(np.asarray(values).ravel())}) --"] if label else []
    for c, x in zip(counts, centers):
        bar = "#" * max(int(round(width * c / peak)), 1 if c else 0)
        lines.append(f"{x:9.3f} | {bar} {c}")
    return "\n".join(lines)
